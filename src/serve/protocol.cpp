#include "serve/protocol.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace hetflow::serve {

JobShape parse_job_shape(const std::string& name) {
  if (name == "chain") {
    return JobShape::Chain;
  }
  if (name == "fanout") {
    return JobShape::Fanout;
  }
  if (name == "diamond") {
    return JobShape::Diamond;
  }
  throw util::InvalidArgument(
      util::format("unknown job shape '%s' (chain|fanout|diamond)",
                   name.c_str()));
}

const char* to_string(JobShape shape) noexcept {
  switch (shape) {
    case JobShape::Chain:
      return "chain";
    case JobShape::Fanout:
      return "fanout";
    case JobShape::Diamond:
      return "diamond";
  }
  return "?";
}

namespace {

double number_or(const util::Json& obj, const std::string& key,
                 double fallback) {
  return obj.contains(key) ? obj.at(key).as_number() : fallback;
}

ScriptOp parse_op(const util::Json& obj) {
  const std::string& op = obj.at("op").as_string();
  ScriptOp out;
  if (op == "tenant") {
    out.kind = ScriptOp::Kind::Tenant;
    out.tenant.name =
        obj.contains("name") ? obj.at("name").as_string() : std::string();
    out.tenant.weight = number_or(obj, "weight", 1.0);
    out.tenant.priority = static_cast<int>(number_or(obj, "priority", 0.0));
    out.tenant.backlog_cap =
        static_cast<std::size_t>(number_or(obj, "backlog_cap", 0.0));
    out.tenant.max_in_flight =
        static_cast<std::size_t>(number_or(obj, "max_in_flight", 0.0));
  } else if (op == "submit") {
    out.kind = ScriptOp::Kind::Submit;
    out.target = static_cast<TenantId>(obj.at("tenant").as_number());
    if (obj.contains("shape")) {
      out.job.shape = parse_job_shape(obj.at("shape").as_string());
    }
    out.job.tasks = static_cast<std::uint32_t>(number_or(obj, "tasks", 4.0));
    out.job.flops = number_or(obj, "flops", 1e9);
    out.job.bytes = static_cast<std::uint64_t>(
        number_or(obj, "bytes", static_cast<double>(1 << 20)));
    out.count = static_cast<std::uint32_t>(number_or(obj, "count", 1.0));
    if (out.job.tasks == 0) {
      throw util::InvalidArgument("submit: tasks must be >= 1");
    }
  } else if (op == "batch") {
    out.kind = ScriptOp::Kind::Batch;
  } else if (op == "drain") {
    out.kind = ScriptOp::Kind::Drain;
  } else {
    throw util::InvalidArgument(util::format(
        "unknown op '%s' (tenant|submit|batch|drain)", op.c_str()));
  }
  return out;
}

}  // namespace

ServeScript parse_script(const std::string& text) {
  ServeScript script;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    ++line_no;
    std::string line = text.substr(start, end - start);
    start = end + 1;
    // Trim whitespace; skip blanks and comments.
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      if (end == text.size()) {
        break;
      }
      continue;
    }
    try {
      script.push_back(parse_op(util::Json::parse(line)));
    } catch (const util::Error& err) {
      throw util::ParseError(util::format("script line %zu: %s", line_no,
                                          err.what()));
    }
    if (end == text.size()) {
      break;
    }
  }
  return script;
}

util::Json op_to_json(const ScriptOp& op) {
  util::Json out = util::Json::object();
  switch (op.kind) {
    case ScriptOp::Kind::Tenant:
      out["op"] = "tenant";
      out["name"] = op.tenant.name;
      out["weight"] = op.tenant.weight;
      out["priority"] = op.tenant.priority;
      out["backlog_cap"] = op.tenant.backlog_cap;
      out["max_in_flight"] = op.tenant.max_in_flight;
      break;
    case ScriptOp::Kind::Submit:
      out["op"] = "submit";
      out["tenant"] = static_cast<std::size_t>(op.target);
      out["shape"] = to_string(op.job.shape);
      out["tasks"] = static_cast<std::size_t>(op.job.tasks);
      out["flops"] = op.job.flops;
      out["bytes"] = op.job.bytes;
      out["count"] = static_cast<std::size_t>(op.count);
      break;
    case ScriptOp::Kind::Batch:
      out["op"] = "batch";
      break;
    case ScriptOp::Kind::Drain:
      out["op"] = "drain";
      break;
  }
  return out;
}

}  // namespace hetflow::serve
