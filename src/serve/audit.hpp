// Fairness/starvation auditor for the serve layer.
//
// The monitor is an independent online mirror of the fair-share and
// admission state: the engine feeds it the same observable events it
// acts on (admit/defer/reject, release, consumption attribution, batch
// boundaries), and the monitor re-derives what SHOULD have happened from
// its own copy. Any disagreement is a Violation in the shared
// hetflow-verify taxonomy:
//
//   fair-share        a released tenant was not the lexicographic argmin
//                     (priority tier, then weighted deficit, then id)
//                     among the eligible tenants of the monitor's mirror;
//   starvation        two tenants in the same tier stayed continuously
//                     backlogged while their weighted consumptions
//                     drifted apart beyond the bounded deficit one batch
//                     can add (max observed job cost x in-flight cap,
//                     with 2x slack for attribution rounding);
//   admission-wedge   pending work existed but a batch released nothing,
//                     or a drain finished with work still queued;
//   tenant-accounting per-batch sums of attributed task counts /
//                     device-seconds disagree with the runtime's
//                     RunStats for that batch.
//
// Keeping the mirror inside src/serve (not src/check) lets the check
// layer stay below serve in the layering DAG; the report type is shared.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "check/violation.hpp"
#include "serve/tenant.hpp"

namespace hetflow::serve {

class FairnessMonitor {
 public:
  /// Mirrors one tenant registration (same call order as the engine).
  void add_tenant(double weight, int priority, std::size_t max_in_flight);

  /// Mirrors one admitted job entering the tenant's backlog.
  void on_admit(TenantId t);
  /// Mirrors a release: the engine chose `t` for the current batch.
  void on_release(TenantId t);
  /// Mirrors post-batch attribution of executed device-seconds.
  void on_consume(TenantId t, double device_seconds);
  /// Checkpoint restore: re-seeds the consumption ledger without
  /// treating the aggregate as one observed job (which would inflate the
  /// bounded-deficit unit).
  void restore_consumption(TenantId t, double device_seconds) {
    tenants_.at(t).consumed += device_seconds;
  }

  /// Marks the start of a release loop (resets per-batch counters).
  void begin_batch();
  /// Ends a batch. `released` is how many jobs the engine released;
  /// `pending_before` is the total backlog before the release loop.
  void end_batch(std::size_t released, std::size_t pending_before);
  /// Per-batch reconciliation against the runtime ledger: sums of what
  /// the engine attributed must match what the runtime measured.
  void reconcile_batch(std::uint64_t engine_tasks,
                       std::uint64_t runtime_tasks,
                       double engine_device_seconds,
                       double runtime_device_seconds);
  /// A drain loop claims completion: every queue must be empty.
  void on_drained(std::size_t total_pending);

  const check::CheckReport& report() const noexcept { return report_; }
  bool passed() const noexcept { return report_.passed(); }
  /// Finalizes coverage notes ("fair-share: N releases checked") and
  /// returns the report.
  const check::CheckReport& finish();

 private:
  struct Mirror {
    double weight = 1.0;
    int priority = 0;
    std::size_t max_in_flight = 1;
    std::size_t backlog = 0;
    std::size_t released_in_batch = 0;
    double consumed = 0.0;
    /// True when the tenant had a non-empty backlog at every batch
    /// boundary since `drift_base` was snapshotted (starvation window).
    bool continuously_backlogged = false;
  };

  TenantId expected_next() const;
  void check_starvation();

  std::vector<Mirror> tenants_;
  check::CheckReport report_;
  std::size_t releases_checked_ = 0;
  std::size_t batches_checked_ = 0;
  std::size_t reconciliations_ = 0;
  /// Largest single-job device-seconds attribution seen so far — the
  /// unit the bounded-deficit guarantee is expressed in.
  double max_job_seconds_ = 0.0;
};

}  // namespace hetflow::serve
