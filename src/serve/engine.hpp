// ServeEngine — long-lived multi-tenant workflow-as-a-service front end.
//
// One engine owns one shared simulated platform and serves workflow-DAG
// submissions from many tenants. The lifecycle is a repeating loop:
//
//   submit*  ->  run_batch  ->  submit*  ->  run_batch  ->  ...
//
// Submissions pass admission control (serve/admission.hpp) into
// per-tenant backlogs; run_batch drains the overflow queue, releases up
// to batch_limit jobs in weighted fair-share order (serve/fair_share.hpp)
// and executes them on a FRESH core::Runtime bound to the shared
// platform, with the engine's monotonically accumulating service clock
// advancing by each batch's makespan.
//
// Why a fresh runtime per batch instead of one persistent runtime: the
// runtime's task pool is append-only (a server alive for 10^6 workflows
// would hold every task ever run), its clock cannot be restored on
// resume, and per-batch independence makes the engine state between
// batches a small, JSON-serializable value — service clock, tenant
// ledgers, queued jobs, ticket counter — which is exactly what the
// campaign-style write-then-rename checkpoint (save/load) persists for
// byte-identical kill-and-resume. The trade-off (device queues and data
// residency drain between batches) is documented in docs/serving.md.
//
// Determinism: every decision is a pure function of (config, submission
// order); per-batch runtimes are seeded hash_combine(seed, batch_index).
// Two engines fed the same script produce byte-identical latency CSVs —
// including across --jobs 1 vs --jobs N replica parallelism, since each
// replica owns its engine and platform outright.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/task.hpp"
#include "hw/platform.hpp"
#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/audit.hpp"
#include "serve/fair_share.hpp"
#include "serve/protocol.hpp"
#include "serve/tenant.hpp"

namespace hetflow::core {
class Runtime;
}  // namespace hetflow::core

namespace hetflow::serve {

struct ServeConfig {
  std::string scheduler = "dmdas";
  std::uint64_t seed = 1;
  /// Max jobs released into one execution batch.
  std::size_t batch_limit = 256;
  /// Default per-tenant backlog cap (TenantSpec::backlog_cap overrides).
  std::size_t backlog_cap = 64;
  /// Default per-tenant per-batch release cap (spec overrides).
  std::size_t max_in_flight = 4;
  AdmissionController::Limits admission;
  /// Runs the FairnessMonitor mirror alongside every operation.
  bool audit = false;
  /// Per-tenant counters in an obs::MetricsRegistry snapshot.
  bool metrics = false;
  /// End-of-batch runtime validation (check::audit_run) — slow; tests.
  bool validate = false;
};

/// Submission receipt.
struct Ticket {
  AdmissionDecision decision = AdmissionDecision::Rejected;
  std::uint64_t id = 0;  ///< engine-unique job id (valid unless rejected)
};

/// One executed batch, summarized.
struct BatchResult {
  std::size_t released = 0;      ///< jobs that entered the batch
  std::size_t tasks = 0;         ///< tasks completed
  double makespan_s = 0.0;       ///< batch runtime makespan
  double device_seconds = 0.0;   ///< attributed execution time
};

class ServeEngine {
 public:
  ServeEngine(const hw::Platform& platform, ServeConfig config);

  const ServeConfig& config() const noexcept { return config_; }

  /// Registers a tenant (0-defaults in `spec` inherit the config).
  TenantId add_tenant(TenantSpec spec);
  std::size_t tenant_count() const noexcept {
    return queue_.tenant_count();
  }
  const TenantStats& stats(TenantId t) const { return stats_.at(t); }
  const TenantSpec& spec(TenantId t) const { return queue_.spec(t); }

  /// Submits one workflow on behalf of `t`; admission decides its fate.
  Ticket submit(TenantId t, const JobSpec& job);

  /// Total jobs queued (backlogs + overflow) — the backpressure signal.
  std::size_t total_pending() const noexcept {
    return queue_.total_backlog() + overflow_.size();
  }
  std::size_t overflow_size() const noexcept { return overflow_.size(); }

  /// Releases and executes one batch. No-op (released == 0) when
  /// nothing is queued.
  BatchResult run_batch();
  /// Runs batches until every queue is empty. Returns batches run.
  std::size_t run_until_drained();
  /// Audit hook for callers that loop run_batch() themselves: records
  /// that a drain claimed completion (violation if work is still queued).
  void note_drained() {
    if (config_.audit) {
      monitor_.on_drained(total_pending());
    }
  }

  /// Service clock: sum of executed batch makespans, seconds.
  double clock() const noexcept { return clock_; }
  std::size_t batches_run() const noexcept { return batches_; }

  /// Per-tenant latency/accounting table, sorted by tenant id — the
  /// byte-compared artifact of the determinism property tests.
  std::string latency_csv() const;
  /// Metrics snapshot (empty object when config.metrics is off).
  std::string metrics_json() const { return metrics_.to_json_string(); }

  /// Fairness audit report (empty/passing when config.audit is off).
  /// Finalizes coverage notes; call once at end of service.
  const check::CheckReport& audit_report() { return monitor_.finish(); }
  const FairnessMonitor& monitor() const noexcept { return monitor_; }

  // --- checkpoint / resume ------------------------------------------------
  /// Serializes engine state (clock, ledgers, queued jobs, `script_pos`)
  /// and writes it atomically (write-then-rename), campaign-style.
  void save_checkpoint(const std::string& path,
                       std::size_t script_pos) const;
  /// Restores an engine from a checkpoint written by save_checkpoint
  /// against the same platform/config. Returns the stored script_pos.
  static std::size_t load_checkpoint(const std::string& path,
                                     ServeEngine& engine);

 private:
  struct Job {
    TenantId tenant = kInvalidTenant;
    JobSpec spec;
    double arrival = 0.0;     ///< service-clock time of admission
    std::uint64_t ticket = 0;
  };

  void drain_overflow();
  Ticket enqueue(TenantId t, const JobSpec& job, AdmissionDecision decision);
  /// Materializes `job` on `rt`, returns the submitted TaskIds.
  std::vector<core::TaskId> materialize(core::Runtime& rt,
                                        const Job& job) const;
  obs::Labels tenant_labels(TenantId t) const;

  const hw::Platform* platform_;
  ServeConfig config_;
  AdmissionController admission_;
  FairShareQueue queue_;
  std::vector<TenantStats> stats_;
  /// All live (queued) jobs; refs index this table. Entries for released
  /// jobs are retired lazily (swap-free, table compacts per checkpoint).
  std::vector<Job> jobs_;
  std::deque<JobRef> overflow_;
  FairnessMonitor monitor_;
  mutable obs::MetricsRegistry metrics_;
  double clock_ = 0.0;
  std::size_t batches_ = 0;
  std::uint64_t next_ticket_ = 0;
};

/// Pure convenience used by the tool, benches and property tests: builds
/// an engine, replays `script` (optionally from `start_op`, resuming from
/// `resume_from` when non-empty), optionally checkpointing after every
/// batch, and stops after `max_batches` batch ops (0 = no limit).
struct ScriptRunResult {
  std::size_t ops_applied = 0;
  std::size_t batches = 0;
  bool stopped_early = false;  ///< hit max_batches before script end
};
ScriptRunResult run_script(ServeEngine& engine, const ServeScript& script,
                           std::size_t start_op = 0,
                           const std::string& checkpoint_path = {},
                           std::size_t max_batches = 0);

}  // namespace hetflow::serve
