#include "serve/fair_share.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hetflow::serve {

TenantId FairShareQueue::add_tenant(TenantSpec spec) {
  HETFLOW_REQUIRE_MSG(spec.weight > 0.0, "tenant weight must be > 0");
  const TenantId id = static_cast<TenantId>(tenants_.size());
  Entry entry;
  entry.spec = std::move(spec);
  tenants_.push_back(std::move(entry));
  return id;
}

void FairShareQueue::push(TenantId t, JobRef job) {
  tenants_.at(t).backlog.push_back(job);
  ++total_backlog_;
  heap_dirty_ = true;
}

void FairShareQueue::begin_batch() {
  for (Entry& entry : tenants_) {
    entry.released_in_batch = 0;
  }
  heap_dirty_ = true;
}

void FairShareQueue::rebuild_heap() const {
  heap_.clear();
  for (TenantId t = 0; t < tenants_.size(); ++t) {
    if (!eligible(t)) {
      continue;
    }
    const Entry& e = tenants_[t];
    heap_.push_back({e.spec.priority, e.consumed / e.spec.weight, t});
  }
  std::make_heap(heap_.begin(), heap_.end(), &FairShareQueue::heap_less);
  heap_dirty_ = false;
}

TenantId FairShareQueue::next_tenant() const {
  if (heap_dirty_) {
    rebuild_heap();
  }
  // Lazy deletion: keys are frozen within a batch, so the front entry is
  // either still the argmin or its tenant went ineligible — shed those.
  while (!heap_.empty()) {
    const TenantId t = heap_.front().id;
    if (eligible(t)) {
      return t;
    }
    std::pop_heap(heap_.begin(), heap_.end(), &FairShareQueue::heap_less);
    heap_.pop_back();
  }
  return kInvalidTenant;
}

JobRef FairShareQueue::pop(TenantId t) {
  Entry& e = tenants_.at(t);
  HETFLOW_REQUIRE_MSG(!e.backlog.empty(), "pop from empty tenant backlog");
  const JobRef job = e.backlog.front();
  e.backlog.pop_front();
  --total_backlog_;
  ++e.released_in_batch;
  return job;
}

void FairShareQueue::note_consumed(TenantId t, double device_seconds) {
  tenants_.at(t).consumed += device_seconds;
  heap_dirty_ = true;
}

}  // namespace hetflow::serve
