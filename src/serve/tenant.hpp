// Multi-tenant serving: tenant identity, policy knobs and accounting.
//
// A tenant is one client of the shared platform — a lab, a pipeline, a
// user — identified by a dense TenantId handed out at registration. The
// spec carries the three levers the fair-share layer schedules by
// (weight, priority, per-batch in-flight cap) plus the per-tenant
// admission cap; the stats struct is the ledger every serve-layer
// invariant reconciles against (see serve/audit.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "util/stats.hpp"

namespace hetflow::serve {

using TenantId = std::uint32_t;
inline constexpr TenantId kInvalidTenant =
    static_cast<TenantId>(-1);

/// Registration-time policy for one tenant.
struct TenantSpec {
  std::string name;
  /// Fair-share weight: a tenant with weight 2 is entitled to twice the
  /// device-seconds of a weight-1 tenant. Must be > 0.
  double weight = 1.0;
  /// Priority tier: higher tiers are released strictly before lower
  /// ones; fair share applies *within* a tier. Also forwarded to the
  /// runtime as task priority so dmdas orders accordingly.
  int priority = 0;
  /// Admission: jobs queued (not yet released) beyond this are rejected.
  /// 0 inherits ServeConfig::backlog_cap.
  std::size_t backlog_cap = 0;
  /// Release: at most this many of the tenant's jobs join one batch.
  /// 0 inherits ServeConfig::max_in_flight.
  std::size_t max_in_flight = 0;
};

/// Per-tenant ledger maintained by the engine. `device_seconds` is the
/// execution time attributed to the tenant's tasks (successful-attempt
/// spans), the quantity the weighted deficit is accounted in.
struct TenantStats {
  std::uint64_t submitted = 0;  ///< submit() calls seen
  /// Entries into the backlog — a deferred job counts here a second
  /// time when the overflow drains, so after a full drain
  /// completed == admitted.
  std::uint64_t admitted = 0;
  std::uint64_t deferred = 0;   ///< parked in the overflow queue
  std::uint64_t rejected = 0;   ///< turned away by admission control
  std::uint64_t completed = 0;  ///< workflows finished
  std::uint64_t tasks_completed = 0;
  double device_seconds = 0.0;
  /// Per-workflow latency (arrival -> last task completion), service
  /// clock seconds. Feeds the p50/p99 columns of the latency CSV.
  util::Sample latency;
};

}  // namespace hetflow::serve
