// Admission control for the serve front end.
//
// Two caps guard the shared engine, checked in order:
//
//   1. per-tenant backlog cap — a tenant that already has backlog_cap
//      jobs queued is rejected outright (its problem, not the system's);
//   2. global pending cap — when the total queued work (backlogs +
//      overflow) reaches max_pending, the BackpressurePolicy decides:
//      Reject turns the job away, Defer parks it in a bounded overflow
//      queue that drains FIFO into the backlogs as batches free room
//      (overflow full => reject after all).
//
// The controller is pure policy: it looks at counts and answers; the
// engine owns the queues and applies the decision. That keeps the logic
// trivially mirrorable by the fairness auditor.
#pragma once

#include <cstdint>
#include <cstddef>

namespace hetflow::serve {

enum class BackpressurePolicy : std::uint8_t {
  Reject = 0,  ///< over the global cap: turn the job away
  Defer,       ///< over the global cap: park in the overflow queue
};

enum class AdmissionDecision : std::uint8_t {
  Admitted = 0,  ///< enqueued on the tenant's backlog
  Deferred,      ///< parked in the overflow queue
  Rejected,      ///< turned away; the client must resubmit later
};

const char* to_string(AdmissionDecision decision) noexcept;
const char* to_string(BackpressurePolicy policy) noexcept;

class AdmissionController {
 public:
  struct Limits {
    std::size_t max_pending = 4096;  ///< global backlog + overflow cap
    std::size_t defer_cap = 1024;    ///< overflow queue bound (Defer only)
    BackpressurePolicy policy = BackpressurePolicy::Reject;
  };

  AdmissionController() = default;
  explicit AdmissionController(Limits limits) : limits_(limits) {}

  const Limits& limits() const noexcept { return limits_; }

  /// Decides for one submission given the current queue depths.
  /// `tenant_backlog` and `tenant_cap` are the submitting tenant's queue
  /// and its per-tenant cap; `total_pending` counts backlogs + overflow;
  /// `overflow_size` is the current overflow occupancy.
  AdmissionDecision decide(std::size_t tenant_backlog,
                           std::size_t tenant_cap,
                           std::size_t total_pending,
                           std::size_t overflow_size) const noexcept {
    if (tenant_backlog >= tenant_cap) {
      return AdmissionDecision::Rejected;
    }
    if (total_pending < limits_.max_pending) {
      return AdmissionDecision::Admitted;
    }
    if (limits_.policy == BackpressurePolicy::Defer &&
        overflow_size < limits_.defer_cap) {
      return AdmissionDecision::Deferred;
    }
    return AdmissionDecision::Rejected;
  }

 private:
  Limits limits_;
};

}  // namespace hetflow::serve
