#include "serve/audit.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace hetflow::serve {

void FairnessMonitor::add_tenant(double weight, int priority,
                                 std::size_t max_in_flight) {
  Mirror mirror;
  mirror.weight = weight;
  mirror.priority = priority;
  mirror.max_in_flight = max_in_flight;
  tenants_.push_back(mirror);
}

void FairnessMonitor::on_admit(TenantId t) { ++tenants_.at(t).backlog; }

TenantId FairnessMonitor::expected_next() const {
  TenantId best = kInvalidTenant;
  int best_priority = 0;
  double best_norm = 0.0;
  for (TenantId t = 0; t < tenants_.size(); ++t) {
    const Mirror& m = tenants_[t];
    if (m.backlog == 0 || m.released_in_batch >= m.max_in_flight) {
      continue;
    }
    const double norm = m.consumed / m.weight;
    if (best == kInvalidTenant || m.priority > best_priority ||
        (m.priority == best_priority && norm < best_norm)) {
      best = t;
      best_priority = m.priority;
      best_norm = norm;
    }
  }
  return best;
}

void FairnessMonitor::on_release(TenantId t) {
  ++releases_checked_;
  const TenantId expected = expected_next();
  if (t != expected) {
    check::Violation violation;
    violation.kind = check::ViolationKind::FairShare;
    violation.task_a = t;
    violation.task_b = expected;
    violation.message = util::format(
        "batch released tenant %u but the fair-share rule picks tenant "
        "%u (priority tier, weighted deficit, id)",
        static_cast<unsigned>(t), static_cast<unsigned>(expected));
    report_.add(violation);
  }
  Mirror& m = tenants_.at(t);
  if (m.backlog > 0) {
    --m.backlog;
  }
  ++m.released_in_batch;
}

void FairnessMonitor::on_consume(TenantId t, double device_seconds) {
  tenants_.at(t).consumed += device_seconds;
  max_job_seconds_ = std::max(max_job_seconds_, device_seconds);
}

void FairnessMonitor::begin_batch() {
  for (Mirror& m : tenants_) {
    m.released_in_batch = 0;
  }
}

void FairnessMonitor::end_batch(std::size_t released,
                                std::size_t pending_before) {
  ++batches_checked_;
  if (pending_before > 0 && released == 0) {
    check::Violation violation;
    violation.kind = check::ViolationKind::AdmissionWedge;
    violation.message = util::format(
        "batch released nothing with %zu job(s) pending", pending_before);
    report_.add(violation);
  }
  // Starvation window bookkeeping: a tenant participates from the first
  // batch boundary where its backlog is non-empty, and drops out the
  // moment it drains (its deficit is then allowed to lag arbitrarily —
  // an idle tenant accrues no entitlement).
  for (Mirror& m : tenants_) {
    m.continuously_backlogged = m.backlog > 0;
  }
  check_starvation();
}

void FairnessMonitor::check_starvation() {
  // Bounded deficit: two same-tier tenants that BOTH still have work
  // queued may differ in weighted consumption by at most what one batch
  // can hand a single tenant before attribution catches up — its
  // in-flight cap worth of the largest job seen — scaled by the smaller
  // weight, with 2x slack for cost variance across job mixes.
  if (max_job_seconds_ <= 0.0) {
    return;
  }
  for (TenantId a = 0; a < tenants_.size(); ++a) {
    const Mirror& ma = tenants_[a];
    if (!ma.continuously_backlogged) {
      continue;
    }
    for (TenantId b = a + 1; b < tenants_.size(); ++b) {
      const Mirror& mb = tenants_[b];
      if (!mb.continuously_backlogged || ma.priority != mb.priority) {
        continue;
      }
      const double norm_a = ma.consumed / ma.weight;
      const double norm_b = mb.consumed / mb.weight;
      const double cap = static_cast<double>(
          std::max(ma.max_in_flight, mb.max_in_flight));
      const double min_weight = std::min(ma.weight, mb.weight);
      const double bound = 2.0 * cap * max_job_seconds_ / min_weight + 1e-9;
      if (std::abs(norm_a - norm_b) > bound) {
        check::Violation violation;
        violation.kind = check::ViolationKind::Starvation;
        violation.task_a = a;
        violation.task_b = b;
        violation.message = util::format(
            "tenants %u and %u (same tier, both backlogged) drifted "
            "%.3f weighted device-seconds apart; bounded deficit is %.3f",
            static_cast<unsigned>(a), static_cast<unsigned>(b),
            std::abs(norm_a - norm_b), bound);
        report_.add(violation);
      }
    }
  }
}

void FairnessMonitor::reconcile_batch(std::uint64_t engine_tasks,
                                      std::uint64_t runtime_tasks,
                                      double engine_device_seconds,
                                      double runtime_device_seconds) {
  ++reconciliations_;
  if (engine_tasks != runtime_tasks) {
    check::Violation violation;
    violation.kind = check::ViolationKind::TenantAccounting;
    violation.message = util::format(
        "per-tenant task counts sum to %llu but RunStats completed %llu",
        static_cast<unsigned long long>(engine_tasks),
        static_cast<unsigned long long>(runtime_tasks));
    report_.add(violation);
  }
  const double scale =
      std::max({1.0, engine_device_seconds, runtime_device_seconds});
  if (std::abs(engine_device_seconds - runtime_device_seconds) >
      1e-9 * scale) {
    check::Violation violation;
    violation.kind = check::ViolationKind::TenantAccounting;
    violation.message = util::format(
        "per-tenant device-seconds sum to %.9f but RunStats measured "
        "%.9f busy seconds",
        engine_device_seconds, runtime_device_seconds);
    report_.add(violation);
  }
}

void FairnessMonitor::on_drained(std::size_t total_pending) {
  if (total_pending > 0) {
    check::Violation violation;
    violation.kind = check::ViolationKind::AdmissionWedge;
    violation.message = util::format(
        "drain finished with %zu job(s) still queued", total_pending);
    report_.add(violation);
  }
}

const check::CheckReport& FairnessMonitor::finish() {
  report_.note_check("fair-share releases", releases_checked_);
  report_.note_check("batches", batches_checked_);
  report_.note_check("stat reconciliations", reconciliations_);
  return report_;
}

}  // namespace hetflow::serve
