#include "serve/admission.hpp"

namespace hetflow::serve {

const char* to_string(AdmissionDecision decision) noexcept {
  switch (decision) {
    case AdmissionDecision::Admitted:
      return "admitted";
    case AdmissionDecision::Deferred:
      return "deferred";
    case AdmissionDecision::Rejected:
      return "rejected";
  }
  return "?";
}

const char* to_string(BackpressurePolicy policy) noexcept {
  switch (policy) {
    case BackpressurePolicy::Reject:
      return "reject";
    case BackpressurePolicy::Defer:
      return "defer";
  }
  return "?";
}

}  // namespace hetflow::serve
