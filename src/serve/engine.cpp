#include "serve/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/runtime.hpp"
#include "sched/registry.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace hetflow::serve {

namespace {

/// One shared codelet for every serve job task: CPU- and GPU-capable so
/// all preset platforms can run it. Identity (the codelet id) is stable
/// per engine, which keeps per-batch cost caches and history keyed
/// consistently.
core::CodeletPtr make_serve_codelet() {
  return core::Codelet::make("serve-job", {{hw::DeviceType::Cpu, 0.5},
                                           {hw::DeviceType::Gpu, 0.8}});
}

}  // namespace

ServeEngine::ServeEngine(const hw::Platform& platform, ServeConfig config)
    : platform_(&platform),
      config_(std::move(config)),
      admission_(config_.admission) {
  HETFLOW_REQUIRE_MSG(config_.batch_limit > 0, "batch_limit must be >= 1");
  HETFLOW_REQUIRE_MSG(config_.max_in_flight > 0,
                      "max_in_flight must be >= 1");
  HETFLOW_REQUIRE_MSG(config_.backlog_cap > 0, "backlog_cap must be >= 1");
  // Validate the scheduler name eagerly (and that it is dynamic: serve
  // feeds batches incrementally, which full-graph planners cannot take).
  auto probe = sched::make_scheduler(config_.scheduler, config_.seed);
  HETFLOW_REQUIRE_MSG(
      !probe->requires_full_graph(),
      "serve requires a dynamic scheduler (dmda/dmdas/mct/...): '" +
          config_.scheduler + "' plans the full graph up front");
}

TenantId ServeEngine::add_tenant(TenantSpec spec) {
  if (spec.backlog_cap == 0) {
    spec.backlog_cap = config_.backlog_cap;
  }
  if (spec.max_in_flight == 0) {
    spec.max_in_flight = config_.max_in_flight;
  }
  if (spec.name.empty()) {
    spec.name = util::format("tenant-%zu", queue_.tenant_count());
  }
  if (config_.audit) {
    monitor_.add_tenant(spec.weight, spec.priority, spec.max_in_flight);
  }
  const TenantId id = queue_.add_tenant(std::move(spec));
  stats_.emplace_back();
  return id;
}

obs::Labels ServeEngine::tenant_labels(TenantId t) const {
  return {{"tenant", queue_.spec(t).name}};
}

Ticket ServeEngine::enqueue(TenantId t, const JobSpec& job,
                            AdmissionDecision decision) {
  Job record;
  record.tenant = t;
  record.spec = job;
  record.arrival = clock_;
  record.ticket = next_ticket_++;
  const JobRef ref = static_cast<JobRef>(jobs_.size());
  jobs_.push_back(record);
  if (decision == AdmissionDecision::Admitted) {
    queue_.push(t, ref);
    if (config_.audit) {
      monitor_.on_admit(t);
    }
    ++stats_[t].admitted;
  } else {
    overflow_.push_back(ref);
    ++stats_[t].deferred;
  }
  return Ticket{decision, record.ticket};
}

Ticket ServeEngine::submit(TenantId t, const JobSpec& job) {
  HETFLOW_REQUIRE_MSG(t < queue_.tenant_count(), "unknown tenant id");
  ++stats_[t].submitted;
  const AdmissionDecision decision =
      admission_.decide(queue_.backlog_size(t), queue_.spec(t).backlog_cap,
                        total_pending(), overflow_.size());
  if (config_.metrics) {
    metrics_.counter(std::string("serve_") + to_string(decision),
                     tenant_labels(t))
        .inc();
  }
  if (decision == AdmissionDecision::Rejected) {
    ++stats_[t].rejected;
    return Ticket{decision, 0};
  }
  return enqueue(t, job, decision);
}

void ServeEngine::drain_overflow() {
  // Strict FIFO: the head moves only when both the global budget and its
  // tenant's cap have room. Head-of-line blocking on a full tenant is
  // transient — every batch shrinks that tenant's backlog.
  while (!overflow_.empty()) {
    const JobRef ref = overflow_.front();
    const TenantId t = jobs_[ref].tenant;
    if (queue_.total_backlog() >= admission_.limits().max_pending ||
        queue_.backlog_size(t) >= queue_.spec(t).backlog_cap) {
      break;
    }
    overflow_.pop_front();
    queue_.push(t, ref);
    if (config_.audit) {
      monitor_.on_admit(t);
    }
    ++stats_[t].admitted;
  }
}

std::vector<core::TaskId> ServeEngine::materialize(core::Runtime& rt,
                                                   const Job& job) const {
  static const core::CodeletPtr codelet = make_serve_codelet();
  const JobSpec& spec = job.spec;
  const double priority =
      static_cast<double>(queue_.spec(job.tenant).priority);
  const std::string prefix = util::format("j%llu", static_cast<unsigned long long>(job.ticket));
  std::vector<core::TaskId> tasks;
  tasks.reserve(spec.tasks);
  const auto data_name = [&](std::uint32_t i) {
    return util::format("%s.d%u", prefix.c_str(), i);
  };
  const auto task_name = [&](std::uint32_t i) {
    return util::format("%s.t%u", prefix.c_str(), i);
  };
  switch (spec.shape) {
    case JobShape::Chain: {
      // Every task read-writes one handle: a serial dependency chain.
      const data::DataId h = rt.register_data(data_name(0), spec.bytes);
      for (std::uint32_t i = 0; i < spec.tasks; ++i) {
        tasks.push_back(rt.submit(task_name(i), codelet, spec.flops,
                                  {{h, data::AccessMode::ReadWrite}},
                                  priority));
      }
      break;
    }
    case JobShape::Fanout: {
      // One producer, tasks-1 parallel readers.
      const data::DataId h = rt.register_data(data_name(0), spec.bytes);
      tasks.push_back(rt.submit(task_name(0), codelet, spec.flops,
                                {{h, data::AccessMode::Write}}, priority));
      for (std::uint32_t i = 1; i < spec.tasks; ++i) {
        tasks.push_back(rt.submit(task_name(i), codelet, spec.flops,
                                  {{h, data::AccessMode::Read}}, priority));
      }
      break;
    }
    case JobShape::Diamond: {
      // Producer -> (tasks-2) middles -> joining consumer. Degenerates
      // gracefully: tasks<=2 becomes a chain through the source handle.
      const data::DataId src = rt.register_data(data_name(0), spec.bytes);
      tasks.push_back(rt.submit(task_name(0), codelet, spec.flops,
                                {{src, data::AccessMode::Write}}, priority));
      std::vector<data::Access> join;
      for (std::uint32_t i = 1; i + 1 < spec.tasks; ++i) {
        const data::DataId mid = rt.register_data(data_name(i), spec.bytes);
        tasks.push_back(rt.submit(
            task_name(i), codelet, spec.flops,
            {{src, data::AccessMode::Read}, {mid, data::AccessMode::Write}},
            priority));
        join.push_back({mid, data::AccessMode::Read});
      }
      if (spec.tasks >= 2) {
        if (join.empty()) {
          join.push_back({src, data::AccessMode::Read});
        }
        tasks.push_back(rt.submit(
            task_name(spec.tasks - 1), codelet, spec.flops,
            std::span<const data::Access>(join.data(), join.size()),
            priority));
      }
      break;
    }
  }
  return tasks;
}

BatchResult ServeEngine::run_batch() {
  drain_overflow();
  const std::size_t pending_before = queue_.total_backlog();
  queue_.begin_batch();
  if (config_.audit) {
    monitor_.begin_batch();
  }

  // Fair-share release loop: repeatedly take the rule's pick until the
  // batch is full or nobody is eligible.
  std::vector<JobRef> released;
  while (released.size() < config_.batch_limit) {
    const TenantId t = queue_.next_tenant();
    if (t == kInvalidTenant) {
      break;
    }
    if (config_.audit) {
      monitor_.on_release(t);
    }
    released.push_back(queue_.pop(t));
  }

  BatchResult result;
  result.released = released.size();
  if (released.empty()) {
    if (config_.audit) {
      monitor_.end_batch(0, pending_before);
    }
    return result;
  }

  // One fresh runtime per batch on the shared platform (see header).
  core::RuntimeOptions options;
  options.seed = util::hash_combine(config_.seed, batches_);
  options.batch_completions = true;
  options.validate = config_.validate;
  std::size_t expected_tasks = 0;
  for (const JobRef ref : released) {
    expected_tasks += jobs_[ref].spec.tasks;
  }
  options.expected_tasks = expected_tasks;
  options.expected_data = expected_tasks;  // upper bound: <=1 handle/task
  core::Runtime rt(*platform_,
                   sched::make_scheduler(config_.scheduler, options.seed),
                   options);

  std::vector<std::vector<core::TaskId>> job_tasks;
  job_tasks.reserve(released.size());
  for (const JobRef ref : released) {
    job_tasks.push_back(materialize(rt, jobs_[ref]));
  }
  const double makespan = rt.wait_all();

  // Attribution: per-job completion time and per-tenant device-seconds
  // (successful-attempt spans; serve batches run with faults off, so
  // these reconcile exactly with RunStats busy time).
  double batch_device_seconds = 0.0;
  std::uint64_t batch_tasks = 0;
  for (std::size_t i = 0; i < released.size(); ++i) {
    const Job& job = jobs_[released[i]];
    TenantStats& stats = stats_[job.tenant];
    double job_done = 0.0;
    double job_seconds = 0.0;
    for (const core::TaskId id : job_tasks[i]) {
      const core::Task& task = rt.task(id);
      job_done = std::max(job_done, task.times().completed);
      job_seconds += task.times().completed - task.times().started;
      ++batch_tasks;
    }
    ++stats.completed;
    stats.tasks_completed += job_tasks[i].size();
    stats.device_seconds += job_seconds;
    stats.latency.add(clock_ + job_done - job.arrival);
    batch_device_seconds += job_seconds;
    queue_.note_consumed(job.tenant, job_seconds);
    if (config_.audit) {
      monitor_.on_consume(job.tenant, job_seconds);
    }
    if (config_.metrics) {
      metrics_.counter("serve_completed", tenant_labels(job.tenant)).inc();
      metrics_.counter("serve_device_seconds", tenant_labels(job.tenant))
          .inc(job_seconds);
    }
  }

  result.tasks = batch_tasks;
  result.makespan_s = makespan;
  result.device_seconds = batch_device_seconds;
  clock_ += makespan;
  ++batches_;

  if (config_.audit) {
    monitor_.end_batch(released.size(), pending_before);
    monitor_.reconcile_batch(batch_tasks, rt.stats().tasks_completed,
                             batch_device_seconds,
                             rt.stats().total_busy_seconds());
  }
  return result;
}

std::size_t ServeEngine::run_until_drained() {
  std::size_t batches = 0;
  while (total_pending() > 0) {
    const BatchResult result = run_batch();
    ++batches;
    if (result.released == 0) {
      // Nothing eligible despite pending work — impossible by
      // construction (caps are >= 1); surface rather than spin.
      note_drained();
      throw util::InternalError("serve drain wedged with pending work");
    }
  }
  note_drained();
  return batches;
}

std::string ServeEngine::latency_csv() const {
  std::ostringstream out;
  util::CsvWriter csv(out);
  csv.header({"tenant", "name", "weight", "priority", "submitted",
              "admitted", "deferred", "rejected", "completed", "tasks",
              "device_seconds", "mean_latency_s", "p50_latency_s",
              "p99_latency_s"});
  for (TenantId t = 0; t < queue_.tenant_count(); ++t) {
    const TenantSpec& spec = queue_.spec(t);
    const TenantStats& stats = stats_[t];
    const bool has = !stats.latency.empty();
    csv.row({util::format("%u", static_cast<unsigned>(t)), spec.name,
             util::format("%.6g", spec.weight),
             util::format("%d", spec.priority),
             util::format("%llu", static_cast<unsigned long long>(stats.submitted)),
             util::format("%llu", static_cast<unsigned long long>(stats.admitted)),
             util::format("%llu", static_cast<unsigned long long>(stats.deferred)),
             util::format("%llu", static_cast<unsigned long long>(stats.rejected)),
             util::format("%llu", static_cast<unsigned long long>(stats.completed)),
             util::format("%llu", static_cast<unsigned long long>(stats.tasks_completed)),
             util::format("%.6g", stats.device_seconds),
             util::format("%.6g", has ? stats.latency.mean() : 0.0),
             util::format("%.6g", has ? stats.latency.quantile(0.5) : 0.0),
             util::format("%.6g", has ? stats.latency.quantile(0.99) : 0.0)});
  }
  return out.str();
}

// --- checkpoint / resume ----------------------------------------------------

namespace {

util::Json job_to_json(const JobSpec& spec, double arrival,
                       std::uint64_t ticket, TenantId tenant) {
  util::Json out = util::Json::object();
  out["tenant"] = static_cast<std::size_t>(tenant);
  out["shape"] = to_string(spec.shape);
  out["tasks"] = static_cast<std::size_t>(spec.tasks);
  out["flops"] = spec.flops;
  out["bytes"] = spec.bytes;
  out["arrival"] = arrival;
  out["ticket"] = static_cast<std::size_t>(ticket);
  return out;
}

}  // namespace

void ServeEngine::save_checkpoint(const std::string& path,
                                  std::size_t script_pos) const {
  util::Json doc = util::Json::object();
  doc["version"] = 1;
  doc["seed"] = config_.seed;
  doc["scheduler"] = config_.scheduler;
  doc["clock"] = clock_;
  doc["batches"] = batches_;
  doc["next_ticket"] = static_cast<std::size_t>(next_ticket_);
  doc["script_pos"] = script_pos;

  util::Json tenants = util::Json::array();
  for (TenantId t = 0; t < queue_.tenant_count(); ++t) {
    const TenantSpec& spec = queue_.spec(t);
    const TenantStats& stats = stats_[t];
    util::Json entry = util::Json::object();
    entry["name"] = spec.name;
    entry["weight"] = spec.weight;
    entry["priority"] = spec.priority;
    entry["backlog_cap"] = spec.backlog_cap;
    entry["max_in_flight"] = spec.max_in_flight;
    entry["submitted"] = static_cast<std::size_t>(stats.submitted);
    entry["admitted"] = static_cast<std::size_t>(stats.admitted);
    entry["deferred"] = static_cast<std::size_t>(stats.deferred);
    entry["rejected"] = static_cast<std::size_t>(stats.rejected);
    entry["completed"] = static_cast<std::size_t>(stats.completed);
    entry["tasks_completed"] =
        static_cast<std::size_t>(stats.tasks_completed);
    entry["device_seconds"] = stats.device_seconds;
    entry["consumed"] = queue_.consumed(t);
    util::Json latencies = util::Json::array();
    for (const double v : stats.latency.values()) {
      latencies.push_back(v);
    }
    entry["latencies"] = std::move(latencies);
    tenants.push_back(std::move(entry));
  }
  doc["tenants"] = std::move(tenants);

  // Queued work: per-tenant backlogs in FIFO order, then overflow. Job
  // table refs are rebuilt densely on load.
  util::Json backlogs = util::Json::array();
  for (TenantId t = 0; t < queue_.tenant_count(); ++t) {
    for (const JobRef ref : queue_.backlog(t)) {
      backlogs.push_back(job_to_json(jobs_[ref].spec, jobs_[ref].arrival,
                                     jobs_[ref].ticket, jobs_[ref].tenant));
    }
  }
  doc["backlog"] = std::move(backlogs);

  util::Json overflow = util::Json::array();
  for (const JobRef ref : overflow_) {
    overflow.push_back(job_to_json(jobs_[ref].spec, jobs_[ref].arrival,
                                   jobs_[ref].ticket, jobs_[ref].tenant));
  }
  doc["overflow"] = std::move(overflow);

  // Campaign-style atomic write: temp file then rename.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    HETFLOW_REQUIRE_MSG(out.good(), "cannot write checkpoint: " + tmp);
    out << doc.dump_pretty() << "\n";
  }
  HETFLOW_REQUIRE_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                      "cannot rename checkpoint into place: " + path);
}

std::size_t ServeEngine::load_checkpoint(const std::string& path,
                                         ServeEngine& engine) {
  std::ifstream in(path);
  HETFLOW_REQUIRE_MSG(in.good(), "cannot read checkpoint: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const util::Json doc = util::Json::parse(buffer.str());
  HETFLOW_REQUIRE_MSG(doc.at("version").as_number() == 1.0,
                      "unsupported serve checkpoint version");
  HETFLOW_REQUIRE_MSG(
      engine.queue_.tenant_count() == 0 && engine.jobs_.empty(),
      "load_checkpoint requires a fresh engine");

  engine.clock_ = doc.at("clock").as_number();
  engine.batches_ =
      static_cast<std::size_t>(doc.at("batches").as_number());
  engine.next_ticket_ =
      static_cast<std::uint64_t>(doc.at("next_ticket").as_number());

  for (const util::Json& entry : doc.at("tenants").as_array()) {
    TenantSpec spec;
    spec.name = entry.at("name").as_string();
    spec.weight = entry.at("weight").as_number();
    spec.priority = static_cast<int>(entry.at("priority").as_number());
    spec.backlog_cap =
        static_cast<std::size_t>(entry.at("backlog_cap").as_number());
    spec.max_in_flight =
        static_cast<std::size_t>(entry.at("max_in_flight").as_number());
    const TenantId t = engine.add_tenant(std::move(spec));
    TenantStats& stats = engine.stats_[t];
    stats.submitted =
        static_cast<std::uint64_t>(entry.at("submitted").as_number());
    stats.admitted =
        static_cast<std::uint64_t>(entry.at("admitted").as_number());
    stats.deferred =
        static_cast<std::uint64_t>(entry.at("deferred").as_number());
    stats.rejected =
        static_cast<std::uint64_t>(entry.at("rejected").as_number());
    stats.completed =
        static_cast<std::uint64_t>(entry.at("completed").as_number());
    stats.tasks_completed = static_cast<std::uint64_t>(
        entry.at("tasks_completed").as_number());
    stats.device_seconds = entry.at("device_seconds").as_number();
    for (const util::Json& v : entry.at("latencies").as_array()) {
      stats.latency.add(v.as_number());
    }
    engine.queue_.note_consumed(t, entry.at("consumed").as_number());
    if (engine.config_.audit) {
      engine.monitor_.restore_consumption(t, entry.at("consumed").as_number());
    }
  }

  const auto restore_job = [&engine](const util::Json& entry,
                                     bool to_overflow) {
    Job job;
    job.tenant =
        static_cast<TenantId>(entry.at("tenant").as_number());
    job.spec.shape = parse_job_shape(entry.at("shape").as_string());
    job.spec.tasks =
        static_cast<std::uint32_t>(entry.at("tasks").as_number());
    job.spec.flops = entry.at("flops").as_number();
    job.spec.bytes =
        static_cast<std::uint64_t>(entry.at("bytes").as_number());
    job.arrival = entry.at("arrival").as_number();
    job.ticket = static_cast<std::uint64_t>(entry.at("ticket").as_number());
    const JobRef ref = static_cast<JobRef>(engine.jobs_.size());
    engine.jobs_.push_back(job);
    if (to_overflow) {
      engine.overflow_.push_back(ref);
    } else {
      engine.queue_.push(job.tenant, ref);
      if (engine.config_.audit) {
        engine.monitor_.on_admit(job.tenant);
      }
    }
  };
  for (const util::Json& entry : doc.at("backlog").as_array()) {
    restore_job(entry, false);
  }
  for (const util::Json& entry : doc.at("overflow").as_array()) {
    restore_job(entry, true);
  }
  return static_cast<std::size_t>(doc.at("script_pos").as_number());
}

// --- script replay ----------------------------------------------------------

ScriptRunResult run_script(ServeEngine& engine, const ServeScript& script,
                           std::size_t start_op,
                           const std::string& checkpoint_path,
                           std::size_t max_batches) {
  ScriptRunResult result;
  for (std::size_t pos = start_op; pos < script.size(); ++pos) {
    const ScriptOp& op = script[pos];
    switch (op.kind) {
      case ScriptOp::Kind::Tenant:
        engine.add_tenant(op.tenant);
        break;
      case ScriptOp::Kind::Submit:
        for (std::uint32_t i = 0; i < op.count; ++i) {
          engine.submit(op.target, op.job);
        }
        break;
      case ScriptOp::Kind::Batch:
        engine.run_batch();
        ++result.batches;
        if (!checkpoint_path.empty()) {
          engine.save_checkpoint(checkpoint_path, pos + 1);
        }
        if (max_batches > 0 && result.batches >= max_batches) {
          result.ops_applied = pos + 1;
          result.stopped_early = true;
          return result;
        }
        break;
      case ScriptOp::Kind::Drain:
        while (engine.total_pending() > 0) {
          const BatchResult batch = engine.run_batch();
          if (batch.released == 0) {
            engine.note_drained();
            throw util::InternalError(
                "serve drain wedged with pending work");
          }
          ++result.batches;
          if (!checkpoint_path.empty()) {
            // Mid-drain checkpoints resume at the SAME drain op; the
            // drain loop is idempotent over an emptier queue.
            engine.save_checkpoint(checkpoint_path, pos);
          }
          if (max_batches > 0 && result.batches >= max_batches) {
            result.ops_applied = pos;
            result.stopped_early = true;
            return result;
          }
        }
        engine.note_drained();
        if (!checkpoint_path.empty()) {
          engine.save_checkpoint(checkpoint_path, pos + 1);
        }
        break;
    }
    result.ops_applied = pos + 1;
  }
  return result;
}

}  // namespace hetflow::serve
