// Weighted fair-share release queue with priority tiers.
//
// The serve engine releases queued workflows into execution batches; this
// class decides WHO goes next. The rule is deterministic and independently
// re-checkable (serve/audit.hpp re-derives it from its own mirror):
//
//   eligible(t)  :=  backlog(t) non-empty
//                 && released_in_batch(t) < max_in_flight(t)
//
//   next tenant  :=  lexicographic argmin over eligible tenants of
//                      ( -priority,                    // higher tier first
//                        normalized_consumption(t),    // deficit fairness
//                        t )                           // stable tie-break
//
//   normalized_consumption(t) := device_seconds(t) / weight(t)
//
// Device-seconds are attributed after a batch executes (costs are not
// known at release time), so within one batch the deficit is the stale
// pre-batch value plus nothing — the per-batch in-flight cap is what
// bounds how far one tenant can run ahead before its consumption catches
// up in the ledger. That yields the bounded-starvation guarantee the
// checker enforces: two continuously-backlogged tenants in the same tier
// never drift further apart (normalized) than one batch's worth of their
// largest workflow.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "serve/tenant.hpp"

namespace hetflow::serve {

/// Opaque job handle: index into the engine's job table.
using JobRef = std::uint32_t;

class FairShareQueue {
 public:
  /// Registers a tenant; ids are dense and assigned in call order.
  TenantId add_tenant(TenantSpec spec);

  std::size_t tenant_count() const noexcept { return tenants_.size(); }
  const TenantSpec& spec(TenantId t) const { return tenants_.at(t).spec; }
  std::size_t backlog_size(TenantId t) const {
    return tenants_.at(t).backlog.size();
  }
  /// FIFO view of the tenant's queued jobs (checkpoint serialization).
  const std::deque<JobRef>& backlog(TenantId t) const {
    return tenants_.at(t).backlog;
  }
  /// Jobs queued across every tenant (excludes any overflow queue the
  /// engine keeps in front of admission).
  std::size_t total_backlog() const noexcept { return total_backlog_; }
  double consumed(TenantId t) const { return tenants_.at(t).consumed; }
  double normalized_consumption(TenantId t) const {
    const Entry& e = tenants_.at(t);
    return e.consumed / e.spec.weight;
  }

  /// Appends a job to the tenant's backlog (admission already passed).
  void push(TenantId t, JobRef job);

  /// Resets the per-batch release counters. Call before a release loop.
  void begin_batch();

  /// The tenant the rule picks next, or kInvalidTenant when no tenant is
  /// eligible (every backlog empty, or all capped for this batch).
  TenantId next_tenant() const;

  /// Pops the front of `t`'s backlog and charges one in-batch release.
  /// `t` must be the value next_tenant() returned.
  JobRef pop(TenantId t);

  /// Attributes executed device-seconds to the tenant's deficit ledger.
  void note_consumed(TenantId t, double device_seconds);

  /// True when some eligible tenant exists (mirrors next_tenant()).
  bool any_eligible() const { return next_tenant() != kInvalidTenant; }

  std::size_t released_in_batch(TenantId t) const {
    return tenants_.at(t).released_in_batch;
  }

 private:
  struct Entry {
    TenantSpec spec;
    std::deque<JobRef> backlog;
    double consumed = 0.0;
    std::size_t released_in_batch = 0;
  };

  /// Heap entry for the release selection. Keys are frozen per batch:
  /// consumption is attributed only between batches, so within one batch
  /// an eligible tenant's key never changes — the heap only ever sheds
  /// entries (tenant capped or backlog emptied), checked lazily at the
  /// top. Any mutation that can change keys or add eligible tenants
  /// (push / note_consumed / begin_batch) just marks the heap dirty for
  /// an O(T) rebuild on the next query, keeping a release loop O(log T)
  /// per pop instead of the O(T) scan that made 10^5-tenant batches
  /// quadratic.
  struct HeapItem {
    int priority = 0;
    double norm = 0.0;
    TenantId id = kInvalidTenant;
  };

  /// Max-heap "a < b": true when b is the better release pick (higher
  /// priority tier, then smaller weighted deficit, then smaller id), so
  /// the heap front is the rule's lexicographic argmin.
  static bool heap_less(const HeapItem& a, const HeapItem& b) noexcept {
    if (a.priority != b.priority) {
      return a.priority < b.priority;
    }
    if (a.norm != b.norm) {
      return a.norm > b.norm;
    }
    return a.id > b.id;
  }

  void rebuild_heap() const;
  bool eligible(TenantId t) const {
    const Entry& e = tenants_[t];
    return !e.backlog.empty() &&
           e.released_in_batch < e.spec.max_in_flight;
  }

  std::vector<Entry> tenants_;
  std::size_t total_backlog_ = 0;
  mutable std::vector<HeapItem> heap_;
  mutable bool heap_dirty_ = true;
};

}  // namespace hetflow::serve
