// Serve wire protocol: workflow-job specs and the JSONL script format.
//
// Transport is deliberately dumb — one JSON object per line on stdin (or
// a file), replayed in order. Four operations:
//
//   {"op":"tenant","name":"lab-a","weight":2.0,"priority":1,
//    "backlog_cap":64,"max_in_flight":4}
//       registers a tenant; ids are assigned in line order (0, 1, ...).
//
//   {"op":"submit","tenant":0,"shape":"chain","tasks":8,
//    "flops":1e9,"bytes":1048576,"count":3}
//       submits `count` (default 1) copies of the described workflow on
//       behalf of tenant 0.
//
//   {"op":"batch"}
//       releases one execution batch (admission drain + fair-share
//       selection + run on the shared platform).
//
//   {"op":"drain"}
//       runs batches until every backlog and the overflow queue are
//       empty.
//
// The same structs serve the in-process client API: build JobSpecs
// directly and skip the text round-trip.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/tenant.hpp"
#include "util/json.hpp"

namespace hetflow::serve {

/// Built-in workflow shapes. serve sits below src/workflow/ in the layer
/// DAG, so it carries its own small shape vocabulary instead of the full
/// generator library (chain covers critical-path latency, fanout covers
/// width/contention, diamond covers join pressure).
enum class JobShape : std::uint8_t {
  Chain = 0,   ///< t0 -> t1 -> ... -> tN-1 through one handle
  Fanout,      ///< one producer, N-1 parallel consumers
  Diamond,     ///< producer -> N-2 middles -> joining consumer
};

JobShape parse_job_shape(const std::string& name);
const char* to_string(JobShape shape) noexcept;

/// One workflow submission: shape + scale. The engine materializes it
/// into tasks/data on the per-batch runtime at release time.
struct JobSpec {
  JobShape shape = JobShape::Chain;
  std::uint32_t tasks = 4;      ///< total task count (>= 1)
  double flops = 1e9;           ///< per task
  std::uint64_t bytes = 1 << 20;  ///< per data handle
};

/// One parsed script line.
struct ScriptOp {
  enum class Kind : std::uint8_t { Tenant, Submit, Batch, Drain };
  Kind kind = Kind::Batch;
  TenantSpec tenant;      // Kind::Tenant
  TenantId target = 0;    // Kind::Submit
  JobSpec job;            // Kind::Submit
  std::uint32_t count = 1;  // Kind::Submit
};

using ServeScript = std::vector<ScriptOp>;

/// Parses a JSONL script; throws util::ParseError on malformed lines
/// (with the 1-based line number in the message). Blank lines and lines
/// starting with '#' are skipped.
ServeScript parse_script(const std::string& text);

/// Serializes one op back to its JSONL line (checkpoint manifests and
/// tests round-trip through this).
util::Json op_to_json(const ScriptOp& op);

}  // namespace hetflow::serve
