#include "data/handle.hpp"

namespace hetflow::data {

DataId DataRegistry::register_data(std::string_view name, std::uint64_t bytes,
                                   hw::MemoryNodeId home_node) {
  const auto id = static_cast<DataId>(handles_.size());
  handles_.push_back(
      DataHandle{id, names_.intern_view(name), bytes, home_node});
  total_bytes_ += bytes;
  return id;
}

}  // namespace hetflow::data
