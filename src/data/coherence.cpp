#include "data/coherence.hpp"

#include <algorithm>
#include <limits>

namespace hetflow::data {

const char* to_string(AccessMode mode) noexcept {
  switch (mode) {
    case AccessMode::Read:
      return "R";
    case AccessMode::Write:
      return "W";
    case AccessMode::ReadWrite:
      return "RW";
    case AccessMode::Redux:
      return "RED";
  }
  return "?";
}

const char* to_string(ReplicaState state) noexcept {
  switch (state) {
    case ReplicaState::Invalid:
      return "I";
    case ReplicaState::Shared:
      return "S";
    case ReplicaState::Modified:
      return "M";
  }
  return "?";
}

CoherenceDirectory::CoherenceDirectory(const hw::Platform& platform,
                                       const DataRegistry& registry)
    : platform_(&platform),
      registry_(&registry),
      node_count_(platform.memory_node_count()),
      resident_(node_count_),
      resident_bytes_(node_count_, 0) {
  sync_with_registry();
}

void CoherenceDirectory::sync_with_registry() {
  const std::size_t known = states_.size() / node_count_;
  const std::size_t total = registry_->count();
  if (known == total) {
    return;
  }
  states_.resize(total * node_count_, ReplicaState::Invalid);
  for (std::size_t id = known; id < total; ++id) {
    const DataHandle& handle = registry_->handle(static_cast<DataId>(id));
    set_state(handle.id, handle.home_node, ReplicaState::Shared);
  }
}

void CoherenceDirectory::check(DataId data, hw::MemoryNodeId node) const {
  HETFLOW_REQUIRE_MSG(
      static_cast<std::size_t>(data) * node_count_ + node < states_.size(),
      "coherence query out of range (missing sync_with_registry?)");
}

ReplicaState CoherenceDirectory::state(DataId data,
                                       hw::MemoryNodeId node) const {
  check(data, node);
  return states_[static_cast<std::size_t>(data) * node_count_ + node];
}

void CoherenceDirectory::set_state(DataId data, hw::MemoryNodeId node,
                                   ReplicaState next) {
  check(data, node);
  ReplicaState& slot =
      states_[static_cast<std::size_t>(data) * node_count_ + node];
  if (slot == next) {
    return;
  }
  const bool was_valid = slot != ReplicaState::Invalid;
  const bool now_valid = next != ReplicaState::Invalid;
  slot = next;
  if (was_valid == now_valid) {
    // Shared<->Modified transition: residency unchanged. Returning before
    // the handle lookup keeps the (randomly indexed) registry row out of
    // the write hot path.
    return;
  }
  const std::uint64_t bytes = registry_->handle(data).bytes;
  std::vector<DataId>& list = resident_[node];
  if (now_valid) {
    // Handles register in ascending id order, so the overwhelmingly
    // common insert position is the back — skip the binary search there
    // (the list stays sorted either way).
    if (list.empty() || list.back() < data) {
      list.push_back(data);
    } else {
      list.insert(std::lower_bound(list.begin(), list.end(), data), data);
    }
    resident_bytes_[node] += bytes;
  } else {
    const auto it = std::lower_bound(list.begin(), list.end(), data);
    HETFLOW_REQUIRE(it != list.end() && *it == data);
    list.erase(it);
    resident_bytes_[node] -= bytes;
  }
}

std::vector<hw::MemoryNodeId> CoherenceDirectory::valid_nodes(
    DataId data) const {
  std::vector<hw::MemoryNodeId> out;
  for (hw::MemoryNodeId node = 0; node < node_count_; ++node) {
    if (has_valid_replica(data, node)) {
      out.push_back(node);
    }
  }
  return out;
}

bool CoherenceDirectory::any_valid(DataId data) const {
  for (hw::MemoryNodeId node = 0; node < node_count_; ++node) {
    if (has_valid_replica(data, node)) {
      return true;
    }
  }
  return false;
}

hw::MemoryNodeId CoherenceDirectory::pick_source(DataId data,
                                                 hw::MemoryNodeId dst) const {
  const std::uint64_t bytes = registry_->handle(data).bytes;
  double best_time = std::numeric_limits<double>::infinity();
  hw::MemoryNodeId best = 0;
  bool found = false;
  for (hw::MemoryNodeId node = 0; node < node_count_; ++node) {
    if (!has_valid_replica(data, node)) {
      continue;
    }
    const double t = platform_->transfer_time_s(node, dst, bytes);
    if (t < best_time) {
      best_time = t;
      best = node;
      found = true;
    }
  }
  HETFLOW_REQUIRE_MSG(found,
                      "pick_source: no valid replica for handle '" +
                          std::string(registry_->handle(data).name) + "'");
  return best;
}

void CoherenceDirectory::mark_shared(DataId data, hw::MemoryNodeId node) {
  // A modified owner downgrading to shared keeps its (up-to-date) copy.
  set_state(data, node, ReplicaState::Shared);
}

std::vector<hw::MemoryNodeId> CoherenceDirectory::mark_modified(
    DataId data, hw::MemoryNodeId node) {
  std::vector<hw::MemoryNodeId> invalidated;
  for (hw::MemoryNodeId other = 0; other < node_count_; ++other) {
    if (other != node && has_valid_replica(data, other)) {
      set_state(data, other, ReplicaState::Invalid);
      invalidated.push_back(other);
    }
  }
  set_state(data, node, ReplicaState::Modified);
  return invalidated;
}

void CoherenceDirectory::mark_invalid(DataId data, hw::MemoryNodeId node) {
  set_state(data, node, ReplicaState::Invalid);
}

const std::vector<DataId>& CoherenceDirectory::resident(
    hw::MemoryNodeId node) const {
  HETFLOW_REQUIRE_MSG(node < node_count_, "memory node id out of range");
  return resident_[node];
}

std::uint64_t CoherenceDirectory::resident_bytes(hw::MemoryNodeId node) const {
  HETFLOW_REQUIRE_MSG(node < node_count_, "memory node id out of range");
  return resident_bytes_[node];
}

}  // namespace hetflow::data
