// Simulated data movement over the platform interconnect.
//
// Each link is a FIFO channel: a transfer occupies the link from its start
// until its completion; later transfers queue behind it. Multi-hop routes
// use store-and-forward (each hop starts when the previous one lands and
// the next link frees up) — pessimistic versus cut-through, which is the
// safe direction for schedule-quality claims.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/platform.hpp"
#include "obs/recorder.hpp"
#include "sim/event_queue.hpp"

namespace hetflow::data {

struct TransferStats {
  std::uint64_t transfer_count = 0;
  std::uint64_t bytes_moved = 0;       ///< payload bytes summed over transfers
  std::uint64_t bytes_link_hops = 0;   ///< payload bytes summed over each hop
  double busy_seconds = 0.0;           ///< total link occupancy
};

class TransferEngine {
 public:
  TransferEngine(const hw::Platform& platform, sim::EventQueue& queue);

  /// Books a transfer of `bytes` from node `src` to node `dst`, starting no
  /// earlier than `earliest`. Mutates link occupancy. Returns the absolute
  /// completion time. src == dst completes at `earliest`.
  sim::SimTime transfer(hw::MemoryNodeId src, hw::MemoryNodeId dst,
                        std::uint64_t bytes, sim::SimTime earliest);

  /// Completion time the transfer *would* have, without booking anything
  /// (used by cost-aware schedulers for estimates).
  sim::SimTime estimate(hw::MemoryNodeId src, hw::MemoryNodeId dst,
                        std::uint64_t bytes, sim::SimTime earliest) const;

  /// Time at which a link next becomes free.
  sim::SimTime link_free_at(hw::LinkId link) const;

  const TransferStats& stats() const noexcept { return stats_; }
  std::uint64_t link_bytes(hw::LinkId link) const;

  /// Observability sink (null = off). Each booked src != dst transfer
  /// emits a Transfer event spanning first-hop start to arrival and bumps
  /// the transfers / bytes_transferred{src,dst} counters.
  void set_recorder(obs::Recorder* recorder) noexcept {
    recorder_ = recorder;
  }

 private:
  const hw::Platform* platform_;
  sim::EventQueue* queue_;
  obs::Recorder* recorder_ = nullptr;
  std::vector<sim::SimTime> link_busy_until_;
  std::vector<std::uint64_t> link_bytes_;
  TransferStats stats_;

  /// Walks the route from `src` to `dst`, computing each hop's occupancy
  /// window against the current link state without mutating it. `per_hop`
  /// is invoked as (link, start, done) for every hop — `transfer` books
  /// the hop from inside the callback, `estimate` passes a no-op — so the
  /// walk itself is const and `estimate` needs no const_cast.
  template <typename PerHop>
  sim::SimTime walk_route(hw::MemoryNodeId src, hw::MemoryNodeId dst,
                          std::uint64_t bytes, sim::SimTime earliest,
                          PerHop&& per_hop) const;
};

}  // namespace hetflow::data
