// MSI-style replica directory.
//
// For every handle the directory knows which memory nodes hold a valid
// replica and whether one of them is the exclusive modified owner. The
// protocol relies on the runtime's dependency tracking to serialize
// conflicting accesses, so state transitions are applied eagerly at
// acquire time (there is never a racing reader on a stale replica —
// enforced by HETFLOW_REQUIRE in debug-style checks).
#pragma once

#include <cstdint>
#include <vector>

#include "data/access.hpp"
#include "data/handle.hpp"
#include "hw/platform.hpp"

namespace hetflow::data {

enum class ReplicaState : std::uint8_t { Invalid = 0, Shared, Modified };

const char* to_string(ReplicaState state) noexcept;

class CoherenceDirectory {
 public:
  CoherenceDirectory(const hw::Platform& platform,
                     const DataRegistry& registry);

  /// Must be called after new handles are registered, before queries.
  /// The home node of each new handle starts as its sole Shared replica.
  void sync_with_registry();

  /// Capacity hint for a known registration count (pure reservation;
  /// states_.size() keeps tracking the registered count exactly).
  void reserve(std::size_t handles) { states_.reserve(handles * node_count_); }

  /// Fast-path equivalent of sync_with_registry for exactly one freshly
  /// registered handle (the DataManager::register_data hot loop): appends
  /// the handle's per-node slots and seeds the home replica directly,
  /// skipping the catch-up scan. Inline because a million-handle
  /// registration phase calls this once per handle.
  void note_registered(const DataHandle& handle) {
    HETFLOW_REQUIRE_MSG(
        states_.size() == static_cast<std::size_t>(handle.id) * node_count_,
        "note_registered out of sync with registry");
    for (std::size_t n = 0; n < node_count_; ++n) {
      states_.push_back(ReplicaState::Invalid);
    }
    states_[static_cast<std::size_t>(handle.id) * node_count_ +
            handle.home_node] = ReplicaState::Shared;
    // Ids register in ascending order, so the sorted residency list
    // grows at the back.
    resident_[handle.home_node].push_back(handle.id);
    resident_bytes_[handle.home_node] += handle.bytes;
  }

  ReplicaState state(DataId data, hw::MemoryNodeId node) const;
  bool has_valid_replica(DataId data, hw::MemoryNodeId node) const {
    return state(data, node) != ReplicaState::Invalid;
  }
  /// Nodes currently holding a valid replica, in node-id order.
  std::vector<hw::MemoryNodeId> valid_nodes(DataId data) const;
  /// True if any node holds a valid replica (false only after a bug or
  /// for never-initialized write-only data).
  bool any_valid(DataId data) const;

  /// Best source node for fetching `data` to `dst`: the valid replica
  /// with the smallest uncontended route time. Throws InternalError when
  /// no valid replica exists.
  hw::MemoryNodeId pick_source(DataId data, hw::MemoryNodeId dst) const;

  /// Transitions for the DataManager:
  void mark_shared(DataId data, hw::MemoryNodeId node);
  /// Makes `node` the exclusive modified owner, invalidating all other
  /// replicas. Returns the list of nodes that lost their replica (for
  /// allocator accounting).
  std::vector<hw::MemoryNodeId> mark_modified(DataId data,
                                              hw::MemoryNodeId node);
  void mark_invalid(DataId data, hw::MemoryNodeId node);

  /// Handles resident (valid) on one node, in id order.
  const std::vector<DataId>& resident(hw::MemoryNodeId node) const;

  /// Total replica bytes currently valid on `node`.
  std::uint64_t resident_bytes(hw::MemoryNodeId node) const;

 private:
  const hw::Platform* platform_;
  const DataRegistry* registry_;
  std::size_t node_count_;
  // states_[data * node_count_ + node]
  std::vector<ReplicaState> states_;
  std::vector<std::vector<DataId>> resident_;       // per node, sorted
  std::vector<std::uint64_t> resident_bytes_;       // per node

  void set_state(DataId data, hw::MemoryNodeId node, ReplicaState next);
  void check(DataId data, hw::MemoryNodeId node) const;
};

}  // namespace hetflow::data
