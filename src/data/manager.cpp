#include "data/manager.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace hetflow::data {

namespace {
obs::Labels node_labels(const hw::Platform& platform,
                        hw::MemoryNodeId node) {
  return {{"node", platform.memory_node(node).name()}};
}
}  // namespace

DataManager::DataManager(const hw::Platform& platform,
                         sim::EventQueue& queue)
    : platform_(&platform),
      directory_(platform, registry_),
      transfers_(platform, queue),
      ledger_(platform) {}

void DataManager::reserve(std::size_t handles) {
  registry_.reserve(handles);
  directory_.reserve(handles);
  ledger_.reserve(handles);
  in_flight_.reserve(handles * platform_->memory_node_count());
}

DataId DataManager::register_data(std::string_view name, std::uint64_t bytes,
                                  hw::MemoryNodeId home_node) {
  HETFLOW_REQUIRE_MSG(home_node < platform_->memory_node_count(),
                      "home node out of range");
  HETFLOW_REQUIRE_MSG(
      bytes <= platform_->memory_node(home_node).capacity_bytes(),
      "datum larger than its home memory node");
  const DataId id = registry_.register_data(name, bytes, home_node);
  directory_.note_registered(registry_.handle(id));
  // Ids are dense, so the new handle's per-node slots are exactly the
  // vector tail. Appended with inline push_backs: the generic
  // fill-insert is an out-of-line call per registration, and this runs
  // a million times in a large submit phase.
  const std::size_t nodes = platform_->memory_node_count();
  for (std::size_t n = 0; n < nodes; ++n) {
    in_flight_.push_back(kNotInFlight);
  }
  return id;
}

void DataManager::ensure_capacity(hw::MemoryNodeId node, std::uint64_t needed,
                                  sim::SimTime earliest,
                                  std::span<const Access> do_not_evict) {
  const std::uint64_t capacity =
      platform_->memory_node(node).capacity_bytes();
  if (directory_.resident_bytes(node) + needed <= capacity) {
    return;
  }
  // Victim candidates: resident, unpinned, not part of the current acquire.
  std::vector<DataId> candidates;
  for (DataId data : directory_.resident(node)) {
    if (ledger_.pinned(data, node)) {
      continue;
    }
    const bool in_use =
        std::any_of(do_not_evict.begin(), do_not_evict.end(),
                    [&](const Access& a) { return a.data == data; });
    if (!in_use) {
      candidates.push_back(data);
    }
  }
  ledger_.lru_order(node, candidates);
  for (DataId victim : candidates) {
    if (directory_.resident_bytes(node) + needed <= capacity) {
      return;
    }
    if (directory_.state(victim, node) == ReplicaState::Modified) {
      // Sole up-to-date copy: flush to the handle's home node first.
      const hw::MemoryNodeId home = registry_.handle(victim).home_node;
      if (home != node) {
        transfers_.transfer(node, home, registry_.handle(victim).bytes,
                            earliest);
        ++stats_.writebacks;
        if (recorder_ != nullptr) {
          recorder_->metrics()
              .counter("writebacks", node_labels(*platform_, node))
              .inc();
        }
        directory_.mark_shared(victim, node);
        directory_.mark_shared(victim, home);
      } else {
        // Home node is this node; the replica cannot be dropped.
        continue;
      }
    } else if (directory_.valid_nodes(victim).size() == 1) {
      // Last clean copy anywhere: write back before dropping, or the data
      // would be lost.
      const hw::MemoryNodeId home = registry_.handle(victim).home_node;
      if (home == node) {
        continue;  // this IS the home copy — keep it
      }
      transfers_.transfer(node, home, registry_.handle(victim).bytes,
                          earliest);
      ++stats_.writebacks;
      if (recorder_ != nullptr) {
        recorder_->metrics()
            .counter("writebacks", node_labels(*platform_, node))
            .inc();
      }
      directory_.mark_shared(victim, home);
    }
    directory_.mark_invalid(victim, node);
    ++stats_.evictions;
    if (recorder_ != nullptr) {
      recorder_->metrics()
          .counter("evictions", node_labels(*platform_, node))
          .inc();
    }
  }
  if (directory_.resident_bytes(node) + needed > capacity) {
    throw ResourceExhausted(util::format(
        "memory node %u ('%s') cannot fit %llu more bytes (resident %llu of "
        "%llu)",
        node, platform_->memory_node(node).name().c_str(),
        static_cast<unsigned long long>(needed),
        static_cast<unsigned long long>(directory_.resident_bytes(node)),
        static_cast<unsigned long long>(capacity)));
  }
}

sim::SimTime DataManager::acquire(std::span<const Access> accesses,
                                  hw::MemoryNodeId node,
                                  sim::SimTime earliest) {
  HETFLOW_REQUIRE_MSG(node < platform_->memory_node_count(),
                      "memory node out of range");
  sim::SimTime ready = earliest;
  for (const Access& access : accesses) {
    const bool local = directory_.has_valid_replica(access.data, node);
    // An in-flight prefetch counts as "arriving": wait for it instead of
    // transferring again.
    sim::SimTime& flight = in_flight_[flight_key(access.data, node)];
    if (flight != kNotInFlight) {
      if (is_read(access.mode)) {
        ready = std::max(ready, flight);
      }
      flight = kNotInFlight;
    } else if (!local) {
      // Only the transfer paths need the handle row (bytes); the
      // everything-local fast path above never touches the registry.
      const DataHandle& handle = registry_.handle(access.data);
      if (is_read(access.mode) && handle.bytes > 0) {
        ensure_capacity(node, handle.bytes, earliest, accesses);
        const hw::MemoryNodeId source =
            directory_.pick_source(access.data, node);
        const sim::SimTime done =
            transfers_.transfer(source, node, handle.bytes, earliest);
        ++stats_.fetches;
        if (recorder_ != nullptr) {
          recorder_->metrics()
              .counter("fetches", node_labels(*platform_, node))
              .inc();
        }
        // MSI remote read: a Modified owner loses exclusivity but keeps
        // its (up-to-date) copy — both ends are Shared afterwards.
        if (directory_.state(access.data, source) == ReplicaState::Modified) {
          directory_.mark_shared(access.data, source);
        }
        directory_.mark_shared(access.data, node);
        ready = std::max(ready, done);
      } else if (handle.bytes > 0) {
        // Write-only: allocate space, no fetch of the stale value.
        ensure_capacity(node, handle.bytes, earliest, accesses);
        directory_.mark_shared(access.data, node);  // placeholder until write
      }
    }
    if (is_write(access.mode)) {
      const auto invalidated = directory_.mark_modified(access.data, node);
      for (hw::MemoryNodeId other : invalidated) {
        HETFLOW_REQUIRE_MSG(
            !ledger_.pinned(access.data, other),
            "invalidating a pinned replica — conflicting concurrent access "
            "(runtime dependency bug)");
      }
    }
    ledger_.pin(access.data, node);
    ledger_.touch(access.data, node);
  }
  return ready;
}

void DataManager::release(std::span<const Access> accesses,
                          hw::MemoryNodeId node) {
  for (const Access& access : accesses) {
    ledger_.unpin(access.data, node);
  }
}

void DataManager::prefetch(std::span<const Access> accesses,
                           hw::MemoryNodeId node, sim::SimTime earliest) {
  for (const Access& access : accesses) {
    if (!is_read(access.mode)) {
      continue;
    }
    const DataHandle& handle = registry_.handle(access.data);
    const bool local = directory_.has_valid_replica(access.data, node);
    const bool already_in_flight =
        in_flight_[flight_key(access.data, node)] != kNotInFlight;
    if (!local && !already_in_flight && handle.bytes > 0 &&
        directory_.any_valid(access.data)) {
      // Best-effort: deep queues can want more than the memory holds
      // (everything already prefetched is pinned). Skip rather than
      // fail — the execution-time acquire() fetches on demand once the
      // earlier tasks release their pins.
      try {
        ensure_capacity(node, handle.bytes, earliest, accesses);
      } catch (const ResourceExhausted&) {
        ledger_.pin(access.data, node);
        ledger_.touch(access.data, node);
        continue;
      }
      const hw::MemoryNodeId source =
          directory_.pick_source(access.data, node);
      const sim::SimTime done =
          transfers_.transfer(source, node, handle.bytes, earliest);
      ++stats_.fetches;
      ++stats_.prefetches;
      if (recorder_ != nullptr) {
        recorder_->metrics()
            .counter("fetches", node_labels(*platform_, node))
            .inc();
        recorder_->metrics()
            .counter("prefetches", node_labels(*platform_, node))
            .inc();
        obs::Event event;
        event.kind = obs::EventKind::Prefetch;
        event.time = earliest;
        event.src = static_cast<std::int64_t>(source);
        event.dst = static_cast<std::int64_t>(node);
        event.bytes = handle.bytes;
        event.name = handle.name;
        recorder_->record(std::move(event));
      }
      // Same MSI downgrade as acquire(): remote read ends exclusivity.
      if (directory_.state(access.data, source) == ReplicaState::Modified) {
        directory_.mark_shared(access.data, source);
      }
      directory_.mark_shared(access.data, node);
      in_flight_[flight_key(access.data, node)] = done;
    }
    // Pin regardless (also protects already-local replicas until start).
    ledger_.pin(access.data, node);
    ledger_.touch(access.data, node);
  }
}

void DataManager::release_prefetch(std::span<const Access> accesses,
                                   hw::MemoryNodeId node) {
  for (const Access& access : accesses) {
    if (is_read(access.mode)) {
      ledger_.unpin(access.data, node);
    }
  }
}

sim::SimTime DataManager::estimate_ready_time(
    std::span<const Access> accesses, hw::MemoryNodeId node,
    sim::SimTime earliest) const {
  sim::SimTime ready = earliest;
  for (const Access& access : accesses) {
    if (!is_read(access.mode)) {
      continue;
    }
    const DataHandle& handle = registry_.handle(access.data);
    if (handle.bytes == 0 ||
        directory_.has_valid_replica(access.data, node)) {
      continue;
    }
    if (!directory_.any_valid(access.data)) {
      continue;  // produced by a not-yet-run task; transfer unknowable
    }
    const hw::MemoryNodeId source = directory_.pick_source(access.data, node);
    ready = std::max(
        ready, transfers_.estimate(source, node, handle.bytes, earliest));
  }
  return ready;
}

std::uint64_t DataManager::missing_input_bytes(
    std::span<const Access> accesses, hw::MemoryNodeId node) const {
  std::uint64_t missing = 0;
  for (const Access& access : accesses) {
    if (!is_read(access.mode)) {
      continue;
    }
    if (!directory_.has_valid_replica(access.data, node)) {
      missing += registry_.handle(access.data).bytes;
    }
  }
  return missing;
}

}  // namespace hetflow::data
