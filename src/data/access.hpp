// Data access modes. Tasks declare how they touch each handle; the
// runtime infers inter-task dependencies from these declarations
// (sequential consistency per handle), and the coherence layer derives
// replica state transitions from them.
#pragma once

#include <cstdint>

#include "data/handle.hpp"

namespace hetflow::data {

enum class AccessMode : std::uint8_t {
  Read = 0,   ///< consumes the current value
  Write,      ///< overwrites entirely (no fetch of the old value needed)
  ReadWrite,  ///< reads then updates in place
  /// Commutative-associative accumulation (StarPU REDUX): Redux accesses
  /// to the same handle do NOT order against each other — contributors
  /// run in parallel, each into a device-local partial — but a later
  /// Read/Write orders after ALL of them. The simulation approximates
  /// the combine by charging the fetch of one replica.
  Redux,
};

constexpr bool is_read(AccessMode mode) noexcept {
  return mode == AccessMode::Read || mode == AccessMode::ReadWrite;
}

constexpr bool is_write(AccessMode mode) noexcept {
  return mode == AccessMode::Write || mode == AccessMode::ReadWrite;
}

constexpr bool is_redux(AccessMode mode) noexcept {
  return mode == AccessMode::Redux;
}

const char* to_string(AccessMode mode) noexcept;

/// One (datum, mode) pair in a task's access list.
struct Access {
  DataId data = 0;
  AccessMode mode = AccessMode::Read;
};

}  // namespace hetflow::data
