#include "data/allocator.hpp"

#include <algorithm>

namespace hetflow::data {

MemoryLedger::MemoryLedger(const hw::Platform& platform)
    : node_count_(platform.memory_node_count()) {}

void MemoryLedger::pin(DataId data, hw::MemoryNodeId node) {
  ++pins_[key(data, node)];
}

void MemoryLedger::unpin(DataId data, hw::MemoryNodeId node) {
  const auto it = pins_.find(key(data, node));
  HETFLOW_REQUIRE_MSG(it != pins_.end() && it->second > 0,
                      "unpin without matching pin");
  if (--it->second == 0) {
    pins_.erase(it);
  }
}

bool MemoryLedger::pinned(DataId data, hw::MemoryNodeId node) const {
  return pins_.count(key(data, node)) > 0;
}

std::size_t MemoryLedger::pin_count(DataId data, hw::MemoryNodeId node) const {
  const auto it = pins_.find(key(data, node));
  return it == pins_.end() ? 0 : it->second;
}

void MemoryLedger::touch(DataId data, hw::MemoryNodeId node) {
  last_use_[key(data, node)] = ++clock_;
}

void MemoryLedger::lru_order(hw::MemoryNodeId node,
                             std::vector<DataId>& candidates) const {
  const auto stamp = [&](DataId data) -> std::uint64_t {
    const auto it = last_use_.find(key(data, node));
    return it == last_use_.end() ? 0 : it->second;
  };
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](DataId a, DataId b) { return stamp(a) < stamp(b); });
}

}  // namespace hetflow::data
