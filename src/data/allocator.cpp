#include "data/allocator.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hetflow::data {

namespace {
/// Grows a flat directory so `slot` exists (doubling amortizes the
/// resize over handle registrations).
template <typename T>
T& grow_to(std::vector<T>& directory, std::size_t slot) {
  if (slot >= directory.size()) {
    directory.resize(std::max(slot + 1, directory.size() * 2));
  }
  return directory[slot];
}
}  // namespace

MemoryLedger::MemoryLedger(const hw::Platform& platform)
    : node_count_(platform.memory_node_count()) {}

void MemoryLedger::pin(DataId data, hw::MemoryNodeId node) {
  ++grow_to(pins_, key(data, node));
}

void MemoryLedger::unpin(DataId data, hw::MemoryNodeId node) {
  const std::size_t slot = key(data, node);
  HETFLOW_REQUIRE_MSG(slot < pins_.size() && pins_[slot] > 0,
                      "unpin without matching pin");
  --pins_[slot];
}

bool MemoryLedger::pinned(DataId data, hw::MemoryNodeId node) const {
  const std::size_t slot = key(data, node);
  return slot < pins_.size() && pins_[slot] > 0;
}

std::size_t MemoryLedger::pin_count(DataId data, hw::MemoryNodeId node) const {
  const std::size_t slot = key(data, node);
  return slot < pins_.size() ? pins_[slot] : 0;
}

void MemoryLedger::touch(DataId data, hw::MemoryNodeId node) {
  grow_to(last_use_, key(data, node)) = ++clock_;
}

void MemoryLedger::lru_order(hw::MemoryNodeId node,
                             std::vector<DataId>& candidates) const {
  const auto stamp = [&](DataId data) -> std::uint64_t {
    const std::size_t slot = key(data, node);
    return slot < last_use_.size() ? last_use_[slot] : 0;
  };
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](DataId a, DataId b) { return stamp(a) < stamp(b); });
}

}  // namespace hetflow::data
