// DataManager — the façade the runtime talks to for everything data:
// registration, coherent acquisition of a task's operands on a memory
// node (issuing transfers, evictions and write-backs in simulated time),
// pinning for the duration of execution, and estimates for cost-aware
// schedulers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/access.hpp"
#include "data/allocator.hpp"
#include "data/coherence.hpp"
#include "data/handle.hpp"
#include "data/transfer.hpp"
#include "hw/platform.hpp"
#include "obs/recorder.hpp"
#include "sim/event_queue.hpp"

namespace hetflow::data {

struct DataManagerStats {
  std::uint64_t evictions = 0;    ///< replicas dropped for capacity
  std::uint64_t writebacks = 0;   ///< modified replicas flushed to home
  std::uint64_t fetches = 0;      ///< replica fetch transfers issued
  std::uint64_t prefetches = 0;   ///< fetches issued ahead of execution
};

class DataManager {
 public:
  DataManager(const hw::Platform& platform, sim::EventQueue& queue);

  DataManager(const DataManager&) = delete;
  DataManager& operator=(const DataManager&) = delete;

  /// Registers a datum; its initial copy lives on `home_node`.
  DataId register_data(std::string_view name, std::uint64_t bytes,
                       hw::MemoryNodeId home_node = 0);

  /// Capacity hint: pre-allocates every per-handle directory (registry,
  /// coherence states, pin/LRU ledger, in-flight slots) for `handles`
  /// registrations. Pure reservation — see RuntimeOptions::expected_data.
  void reserve(std::size_t handles);

  const DataRegistry& registry() const noexcept { return registry_; }
  const CoherenceDirectory& directory() const noexcept { return directory_; }
  const TransferEngine& transfers() const noexcept { return transfers_; }
  const DataManagerStats& stats() const noexcept { return stats_; }

  /// Observability sink (null = off); forwarded to the transfer engine.
  /// Fetch/prefetch/eviction/writeback counters and prefetch instant
  /// events land here.
  void set_recorder(obs::Recorder* recorder) noexcept {
    recorder_ = recorder;
    transfers_.set_recorder(recorder);
  }

  /// Makes every access in `accesses` available on `node`, starting
  /// transfers no earlier than `earliest`. Pins all touched replicas (the
  /// caller must release() when the task completes). Returns the absolute
  /// simulated time at which the last required replica lands.
  ///
  /// Precondition (guaranteed by runtime dependency tracking): no other
  /// in-flight task holds a conflicting access to any of these handles.
  sim::SimTime acquire(std::span<const Access> accesses,
                       hw::MemoryNodeId node, sim::SimTime earliest);

  /// Unpins the replicas pinned by the matching acquire().
  void release(std::span<const Access> accesses, hw::MemoryNodeId node);

  /// Starts moving the Read inputs of a *queued* task toward `node` so the
  /// transfers overlap whatever the device is still executing. Only legal
  /// once the task is Ready (all producers done — the inputs are final).
  /// Pins every Read replica involved; pair with release_prefetch().
  /// Completion times are remembered so a later acquire() on `node` waits
  /// for in-flight arrivals instead of double-transferring.
  void prefetch(std::span<const Access> accesses, hw::MemoryNodeId node,
                sim::SimTime earliest);

  /// Releases the pins taken by the matching prefetch().
  void release_prefetch(std::span<const Access> accesses,
                        hw::MemoryNodeId node);

  /// Side-effect-free estimate of acquire()'s ready time (ignores
  /// capacity pressure; includes current link occupancy).
  sim::SimTime estimate_ready_time(std::span<const Access> accesses,
                                   hw::MemoryNodeId node,
                                   sim::SimTime earliest) const;

  /// Bytes among read accesses that are NOT yet valid on `node` — the
  /// data-locality metric used by dmda-style schedulers (0 = everything
  /// already local).
  std::uint64_t missing_input_bytes(std::span<const Access> accesses,
                                    hw::MemoryNodeId node) const;

 private:
  const hw::Platform* platform_;
  DataRegistry registry_;
  CoherenceDirectory directory_;
  TransferEngine transfers_;
  MemoryLedger ledger_;
  DataManagerStats stats_;
  obs::Recorder* recorder_ = nullptr;
  /// Flat (data, node) directory of in-flight prefetch completion times,
  /// kNotInFlight when none; consumed (reset) by the acquire() that waits
  /// on it. Indexed data * node_count + node, like the coherence
  /// directory — a load instead of a hash probe on every acquire.
  static constexpr sim::SimTime kNotInFlight = -1.0;
  std::vector<sim::SimTime> in_flight_;

  std::size_t flight_key(DataId data, hw::MemoryNodeId node) const {
    return static_cast<std::size_t>(data) * platform_->memory_node_count() +
           node;
  }

  /// Frees space on `node` until `needed` more bytes fit; evicts unpinned
  /// LRU replicas (write-back to home first when the victim is the sole
  /// valid copy). `earliest` anchors write-back transfers in time.
  /// Throws ResourceExhausted when pinned data alone exceeds capacity.
  void ensure_capacity(hw::MemoryNodeId node, std::uint64_t needed,
                       sim::SimTime earliest,
                       std::span<const Access> do_not_evict);
};

}  // namespace hetflow::data
