// Logical data items (the "files"/"buffers" workflow tasks exchange).
//
// A DataHandle describes one logical datum: its size and the memory node
// holding its initial (home) copy. Physical replicas across memory nodes
// are tracked by the CoherenceDirectory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/device.hpp"
#include "util/error.hpp"

namespace hetflow::data {

using DataId = std::uint32_t;

struct DataHandle {
  DataId id = 0;
  std::string name;
  std::uint64_t bytes = 0;
  hw::MemoryNodeId home_node = 0;
};

/// Owns all registered handles of one runtime instance.
class DataRegistry {
 public:
  /// Registers a datum whose initial valid copy lives on `home_node`.
  /// Zero-byte data is allowed (pure control dependencies).
  DataId register_data(std::string name, std::uint64_t bytes,
                       hw::MemoryNodeId home_node);

  // Inline: probed several times per task on the assignment hot path.
  const DataHandle& handle(DataId id) const {
    HETFLOW_REQUIRE_MSG(id < handles_.size(), "data id out of range");
    return handles_[id];
  }
  std::size_t count() const noexcept { return handles_.size(); }
  const std::vector<DataHandle>& handles() const noexcept { return handles_; }

  /// Total bytes across all handles.
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }

 private:
  std::vector<DataHandle> handles_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace hetflow::data
