// Logical data items (the "files"/"buffers" workflow tasks exchange).
//
// A DataHandle describes one logical datum: its size and the memory node
// holding its initial (home) copy. Physical replicas across memory nodes
// are tracked by the CoherenceDirectory.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "hw/device.hpp"
#include "util/error.hpp"
#include "util/interner.hpp"

namespace hetflow::data {

using DataId = std::uint32_t;

struct DataHandle {
  DataId id = 0;
  /// View into the owning registry's interner — valid for the
  /// registry's lifetime, no per-handle string allocation.
  std::string_view name;
  std::uint64_t bytes = 0;
  hw::MemoryNodeId home_node = 0;
};

/// Owns all registered handles of one runtime instance.
class DataRegistry {
 public:
  /// Registers a datum whose initial valid copy lives on `home_node`.
  /// Zero-byte data is allowed (pure control dependencies). The name is
  /// copied once into the registry's interner; the argument may be
  /// transient.
  DataId register_data(std::string_view name, std::uint64_t bytes,
                       hw::MemoryNodeId home_node);

  // Inline: probed several times per task on the assignment hot path.
  const DataHandle& handle(DataId id) const {
    HETFLOW_REQUIRE_MSG(id < handles_.size(), "data id out of range");
    return handles_[id];
  }
  std::size_t count() const noexcept { return handles_.size(); }
  const std::vector<DataHandle>& handles() const noexcept { return handles_; }

  /// Capacity hint for a known registration count (pure reservation).
  void reserve(std::size_t handles) { handles_.reserve(handles); }

  /// Total bytes across all handles.
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }

 private:
  /// Declared before handles_ so handle name views die first.
  util::StringInterner names_;
  std::vector<DataHandle> handles_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace hetflow::data
