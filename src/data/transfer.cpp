#include "data/transfer.hpp"

#include <algorithm>
#include <cmath>

namespace hetflow::data {

TransferEngine::TransferEngine(const hw::Platform& platform,
                               sim::EventQueue& queue)
    : platform_(&platform),
      queue_(&queue),
      link_busy_until_(platform.links().size(), 0.0),
      link_bytes_(platform.links().size(), 0) {}

template <typename PerHop>
sim::SimTime TransferEngine::walk_route(hw::MemoryNodeId src,
                                        hw::MemoryNodeId dst,
                                        std::uint64_t bytes,
                                        sim::SimTime earliest,
                                        PerHop&& per_hop) const {
  if (src == dst) {
    return earliest;
  }
  sim::SimTime arrival = earliest;
  for (hw::LinkId link_id : platform_->route(src, dst)) {
    const hw::Link& link = platform_->link(link_id);
    const sim::SimTime start =
        std::max(arrival, link_busy_until_[link_id]);
    const sim::SimTime done = start + link.transfer_time_s(bytes);
    per_hop(link_id, start, done);
    arrival = done;
  }
  return arrival;
}

sim::SimTime TransferEngine::transfer(hw::MemoryNodeId src,
                                      hw::MemoryNodeId dst,
                                      std::uint64_t bytes,
                                      sim::SimTime earliest) {
  // Relative slack: at large sim times (e.g. ~1e7 s) one double ulp is
  // ~1.9e-9 s, far above any fixed 1e-12 margin, so a caller that is one
  // rounding error behind now would spuriously trip an absolute check.
  const sim::SimTime now = queue_->now();
  const sim::SimTime slack = 1e-12 * std::max(1.0, std::fabs(now));
  HETFLOW_REQUIRE_MSG(earliest >= now - slack,
                      "transfer cannot start in the past");
  sim::SimTime first_hop_start = earliest;
  bool first_hop = true;
  const sim::SimTime arrival = walk_route(
      src, dst, bytes, earliest,
      [&](hw::LinkId link_id, sim::SimTime start, sim::SimTime done) {
        if (first_hop) {
          first_hop_start = start;
          first_hop = false;
        }
        link_busy_until_[link_id] = done;
        link_bytes_[link_id] += bytes;
        stats_.bytes_link_hops += bytes;
        stats_.busy_seconds += done - start;
      });
  if (src != dst) {
    ++stats_.transfer_count;
    stats_.bytes_moved += bytes;
    if (recorder_ != nullptr) {
      const obs::Labels route_labels = {
          {"src", platform_->memory_node(src).name()},
          {"dst", platform_->memory_node(dst).name()}};
      recorder_->metrics().counter("transfers", route_labels).inc();
      recorder_->metrics()
          .counter("bytes_transferred", route_labels)
          .inc(static_cast<double>(bytes));
      obs::Event event;
      event.kind = obs::EventKind::Transfer;
      event.time = first_hop_start;
      event.duration = arrival - first_hop_start;
      event.src = static_cast<std::int64_t>(src);
      event.dst = static_cast<std::int64_t>(dst);
      event.bytes = bytes;
      recorder_->record(std::move(event));
    }
  }
  return arrival;
}

sim::SimTime TransferEngine::estimate(hw::MemoryNodeId src,
                                      hw::MemoryNodeId dst,
                                      std::uint64_t bytes,
                                      sim::SimTime earliest) const {
  return walk_route(src, dst, bytes, earliest,
                    [](hw::LinkId, sim::SimTime, sim::SimTime) {});
}

sim::SimTime TransferEngine::link_free_at(hw::LinkId link) const {
  HETFLOW_REQUIRE_MSG(link < link_busy_until_.size(), "link id out of range");
  return link_busy_until_[link];
}

std::uint64_t TransferEngine::link_bytes(hw::LinkId link) const {
  HETFLOW_REQUIRE_MSG(link < link_bytes_.size(), "link id out of range");
  return link_bytes_[link];
}

}  // namespace hetflow::data
