#include "data/transfer.hpp"

#include <algorithm>

namespace hetflow::data {

TransferEngine::TransferEngine(const hw::Platform& platform,
                               sim::EventQueue& queue)
    : platform_(&platform),
      queue_(&queue),
      link_busy_until_(platform.links().size(), 0.0),
      link_bytes_(platform.links().size(), 0) {}

sim::SimTime TransferEngine::walk_route(hw::MemoryNodeId src,
                                        hw::MemoryNodeId dst,
                                        std::uint64_t bytes,
                                        sim::SimTime earliest, bool commit) {
  if (src == dst) {
    return earliest;
  }
  sim::SimTime arrival = earliest;
  for (hw::LinkId link_id : platform_->route(src, dst)) {
    const hw::Link& link = platform_->link(link_id);
    const sim::SimTime start =
        std::max(arrival, link_busy_until_[link_id]);
    const sim::SimTime done = start + link.transfer_time_s(bytes);
    if (commit) {
      link_busy_until_[link_id] = done;
      link_bytes_[link_id] += bytes;
      stats_.bytes_link_hops += bytes;
      stats_.busy_seconds += done - start;
    }
    arrival = done;
  }
  if (commit) {
    ++stats_.transfer_count;
    stats_.bytes_moved += bytes;
  }
  return arrival;
}

sim::SimTime TransferEngine::transfer(hw::MemoryNodeId src,
                                      hw::MemoryNodeId dst,
                                      std::uint64_t bytes,
                                      sim::SimTime earliest) {
  HETFLOW_REQUIRE_MSG(earliest >= queue_->now() - 1e-12,
                      "transfer cannot start in the past");
  return walk_route(src, dst, bytes, earliest, /*commit=*/true);
}

sim::SimTime TransferEngine::estimate(hw::MemoryNodeId src,
                                      hw::MemoryNodeId dst,
                                      std::uint64_t bytes,
                                      sim::SimTime earliest) const {
  // const_cast-free: walk without commit using a copy of the hot state is
  // overkill; walk_route only mutates when commit is set.
  return const_cast<TransferEngine*>(this)->walk_route(src, dst, bytes,
                                                       earliest,
                                                       /*commit=*/false);
}

sim::SimTime TransferEngine::link_free_at(hw::LinkId link) const {
  HETFLOW_REQUIRE_MSG(link < link_busy_until_.size(), "link id out of range");
  return link_busy_until_[link];
}

std::uint64_t TransferEngine::link_bytes(hw::LinkId link) const {
  HETFLOW_REQUIRE_MSG(link < link_bytes_.size(), "link id out of range");
  return link_bytes_[link];
}

}  // namespace hetflow::data
