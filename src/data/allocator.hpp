// Replica pinning and LRU bookkeeping for device memories.
//
// The ledger does not itself decide *what* to evict — the DataManager
// combines it with the coherence directory for that — it tracks which
// replicas are pinned by in-flight tasks and in what recency order the
// unpinned ones were last used.
//
// Storage is a flat (data, node) directory like the coherence
// directory's: pin/touch on the acquire/release hot path are array
// loads, not hash probes. Vectors grow on demand as handles register.
#pragma once

#include <cstdint>
#include <vector>

#include "data/handle.hpp"
#include "hw/platform.hpp"

namespace hetflow::data {

class MemoryLedger {
 public:
  explicit MemoryLedger(const hw::Platform& platform);

  /// Pin/unpin a replica (nested pins allowed). A pinned replica must not
  /// be evicted or invalidated.
  void pin(DataId data, hw::MemoryNodeId node);
  void unpin(DataId data, hw::MemoryNodeId node);
  bool pinned(DataId data, hw::MemoryNodeId node) const;
  std::size_t pin_count(DataId data, hw::MemoryNodeId node) const;

  /// Records a use for LRU ordering.
  void touch(DataId data, hw::MemoryNodeId node);

  /// Capacity hint for a known handle count. Resizes (not reserves) the
  /// flat directories: zero is exactly the value on-demand growth fills
  /// with (no pins, never used), so pre-sizing changes no answer — it
  /// only moves the growth and first-touch cost out of the hot path.
  void reserve(std::size_t handles) {
    const std::size_t slots = handles * node_count_;
    if (pins_.size() < slots) {
      pins_.resize(slots);
    }
    if (last_use_.size() < slots) {
      last_use_.resize(slots);
    }
  }

  /// Sorts `candidates` least-recently-used first (never-touched replicas
  /// come first, in id order).
  void lru_order(hw::MemoryNodeId node, std::vector<DataId>& candidates) const;

 private:
  std::size_t node_count_;
  std::vector<std::uint32_t> pins_;      ///< nested-pin counts
  std::vector<std::uint64_t> last_use_;  ///< LRU stamps (0 = never)
  std::uint64_t clock_ = 0;

  std::size_t key(DataId data, hw::MemoryNodeId node) const {
    return static_cast<std::size_t>(data) * node_count_ + node;
  }
};

}  // namespace hetflow::data
