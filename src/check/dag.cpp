#include "check/dag.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/strings.hpp"

namespace hetflow::check {

std::vector<Violation> check_workflow(const workflow::Workflow& workflow) {
  std::vector<Violation> out;
  const std::size_t files = workflow.file_count();
  std::vector<std::size_t> producer(files, workflow::Workflow::npos);
  bool indices_ok = true;

  for (std::size_t t = 0; t < workflow.task_count(); ++t) {
    const workflow::WorkflowTask& task = workflow.tasks()[t];
    if (task.kind.empty()) {
      out.push_back({ViolationKind::AccessMode,
                     util::format("task '%s' has an empty codelet kind",
                                  task.name.c_str()),
                     t, Violation::npos, Violation::npos, Violation::npos});
    }
    std::unordered_set<std::size_t> inputs;
    for (std::size_t in : task.inputs) {
      if (in >= files) {
        out.push_back({ViolationKind::DanglingReference,
                       util::format("task '%s' reads unknown file %zu",
                                    task.name.c_str(), in),
                       t, Violation::npos, in, Violation::npos});
        indices_ok = false;
        continue;
      }
      if (!inputs.insert(in).second) {
        out.push_back(
            {ViolationKind::AccessMode,
             util::format("task '%s' lists file '%s' as input twice",
                          task.name.c_str(),
                          workflow.files()[in].name.c_str()),
             t, Violation::npos, in, Violation::npos});
      }
    }
    std::unordered_set<std::size_t> outputs;
    for (std::size_t o : task.outputs) {
      if (o >= files) {
        out.push_back({ViolationKind::DanglingReference,
                       util::format("task '%s' writes unknown file %zu",
                                    task.name.c_str(), o),
                       t, Violation::npos, o, Violation::npos});
        indices_ok = false;
        continue;
      }
      if (!outputs.insert(o).second) {
        out.push_back(
            {ViolationKind::AccessMode,
             util::format("task '%s' lists file '%s' as output twice",
                          task.name.c_str(),
                          workflow.files()[o].name.c_str()),
             t, Violation::npos, o, Violation::npos});
      }
      if (inputs.count(o) > 0) {
        out.push_back(
            {ViolationKind::AccessMode,
             util::format("task '%s' lists file '%s' as both input and "
                          "output (use a distinct output file)",
                          task.name.c_str(),
                          workflow.files()[o].name.c_str()),
             t, Violation::npos, o, Violation::npos});
      }
      if (producer[o] != workflow::Workflow::npos) {
        out.push_back(
            {ViolationKind::AccessMode,
             util::format("file '%s' has multiple producers ('%s' and '%s')",
                          workflow.files()[o].name.c_str(),
                          workflow.tasks()[producer[o]].name.c_str(),
                          task.name.c_str()),
             producer[o], t, o, Violation::npos});
      } else {
        producer[o] = t;
      }
    }
  }

  // task_graph() requires in-range indices; skip when they are broken.
  if (indices_ok && workflow.task_graph().has_cycle()) {
    out.push_back({ViolationKind::Cycle,
                   "workflow '" + workflow.name() +
                       "' has a dependency cycle",
                   Violation::npos, Violation::npos, Violation::npos,
                   Violation::npos});
  }
  return out;
}

}  // namespace hetflow::check
