#include "check/race.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/strings.hpp"

namespace hetflow::check {

namespace {

/// Comparison slack for simulated timestamps (they come out of double
/// arithmetic; exact touching intervals are legal).
constexpr double kEps = 1e-9;

/// Maps task id -> index into run.tasks. Duplicate ids keep the first.
std::unordered_map<std::uint64_t, std::size_t> index_tasks(
    const RunRecord& run) {
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(run.tasks.size());
  for (std::size_t i = 0; i < run.tasks.size(); ++i) {
    index.emplace(run.tasks[i].id, i);
  }
  return index;
}

/// Redux contributors are unordered against each other by design; every
/// other combination with at least one writer conflicts.
bool conflicting(data::AccessMode a, data::AccessMode b) {
  if (data::is_redux(a) && data::is_redux(b)) {
    return false;
  }
  if (a == data::AccessMode::Read && b == data::AccessMode::Read) {
    return false;
  }
  return true;
}

const char* conflict_name(data::AccessMode first, data::AccessMode second) {
  const bool first_writes = data::is_write(first) || data::is_redux(first);
  const bool second_writes = data::is_write(second) || data::is_redux(second);
  if (first_writes && second_writes) {
    return "WAW";
  }
  return first_writes ? "RAW" : "WAR";
}

double overlap_seconds(const TaskRecord& a, const TaskRecord& b) {
  return std::min(a.end, b.end) - std::max(a.start, b.start);
}

}  // namespace

HappensBefore::HappensBefore(const RunRecord& run)
    : count_(run.tasks.size()),
      words_((run.tasks.size() + 63) / 64),
      reach_(count_ * words_, 0) {
  const auto index = index_tasks(run);
  // Kahn topological order over dependency edges (parent -> child).
  std::vector<std::size_t> indegree(count_, 0);
  std::vector<std::vector<std::size_t>> children(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    for (std::uint64_t dep : run.tasks[i].dependencies) {
      const auto it = index.find(dep);
      if (it == index.end() || it->second == i) {
        continue;  // dangling / self edges are reported by check_races
      }
      children[it->second].push_back(i);
      ++indegree[i];
    }
  }
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < count_; ++i) {
    if (indegree[i] == 0) {
      frontier.push_back(i);
    }
  }
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const std::size_t parent = frontier.back();
    frontier.pop_back();
    ++visited;
    std::uint64_t* parent_row = reach_.data() + parent * words_;
    for (std::size_t child : children[parent]) {
      std::uint64_t* child_row = reach_.data() + child * words_;
      for (std::size_t w = 0; w < words_; ++w) {
        child_row[w] |= parent_row[w];
      }
      child_row[parent / 64] |= std::uint64_t{1} << (parent % 64);
      if (--indegree[child] == 0) {
        frontier.push_back(child);
      }
    }
  }
  has_cycle_ = visited != count_;
}

bool HappensBefore::reaches(std::size_t ancestor,
                            std::size_t descendant) const {
  return (reach_[descendant * words_ + ancestor / 64] >>
          (ancestor % 64)) &
         1U;
}

bool HappensBefore::ordered(std::size_t a, std::size_t b) const {
  return reaches(a, b) || reaches(b, a);
}

std::vector<Violation> check_races(const RunRecord& run,
                                   std::size_t* pairs_checked) {
  std::vector<Violation> out;
  const auto index = index_tasks(run);
  std::size_t pairs = 0;

  // --- structural pass: dangling references ------------------------------
  for (const TaskRecord& task : run.tasks) {
    for (const data::Access& access : task.accesses) {
      if (access.data >= run.handle_count()) {
        out.push_back(
            {ViolationKind::DanglingReference,
             util::format("task '%s' (#%llu) accesses unregistered handle %u",
                          task.name.c_str(),
                          static_cast<unsigned long long>(task.id),
                          access.data),
             task.id, Violation::npos, access.data, Violation::npos});
      }
    }
    for (std::uint64_t dep : task.dependencies) {
      if (index.find(dep) == index.end()) {
        out.push_back(
            {ViolationKind::DanglingReference,
             util::format("task '%s' (#%llu) depends on unknown task #%llu",
                          task.name.c_str(),
                          static_cast<unsigned long long>(task.id),
                          static_cast<unsigned long long>(dep)),
             task.id, dep, Violation::npos, Violation::npos});
      }
    }
    if (task.completed && task.device >= run.device_count) {
      out.push_back({ViolationKind::DanglingReference,
                     util::format("task '%s' (#%llu) ran on unknown device %u",
                                  task.name.c_str(),
                                  static_cast<unsigned long long>(task.id),
                                  task.device),
                     task.id, Violation::npos, Violation::npos, task.device});
    }
  }

  const HappensBefore hb(run);
  if (hb.has_cycle()) {
    out.push_back({ViolationKind::Cycle,
                   "task dependency graph contains a cycle", Violation::npos,
                   Violation::npos, Violation::npos, Violation::npos});
  }

  // --- dependency edges must be respected by the executed schedule -------
  for (std::size_t i = 0; i < run.tasks.size(); ++i) {
    const TaskRecord& child = run.tasks[i];
    if (!child.completed) {
      continue;
    }
    for (std::uint64_t dep : child.dependencies) {
      const auto it = index.find(dep);
      if (it == index.end()) {
        continue;
      }
      const TaskRecord& parent = run.tasks[it->second];
      if (parent.completed && child.start < parent.end - kEps) {
        out.push_back(
            {ViolationKind::DependencyViolation,
             util::format(
                 "task '%s' (#%llu) started at %.9g before its dependency "
                 "'%s' (#%llu) finished at %.9g",
                 child.name.c_str(), static_cast<unsigned long long>(child.id),
                 child.start, parent.name.c_str(),
                 static_cast<unsigned long long>(parent.id), parent.end),
             parent.id, child.id, Violation::npos, Violation::npos});
      }
    }
  }

  // --- per-handle conflicting-overlap pass -------------------------------
  // Gather (task index, mode) per handle, then examine each conflicting
  // pair. Access lists per handle are short in practice (a handle has one
  // writer chain), so the pairwise pass is cheap.
  std::vector<std::vector<std::pair<std::size_t, data::AccessMode>>> by_handle(
      run.handle_count());
  for (std::size_t i = 0; i < run.tasks.size(); ++i) {
    const TaskRecord& task = run.tasks[i];
    if (!task.completed) {
      continue;
    }
    for (const data::Access& access : task.accesses) {
      if (access.data < run.handle_count()) {
        by_handle[access.data].push_back({i, access.mode});
      }
    }
  }
  for (std::size_t handle = 0; handle < by_handle.size(); ++handle) {
    const auto& uses = by_handle[handle];
    for (std::size_t x = 0; x < uses.size(); ++x) {
      for (std::size_t y = x + 1; y < uses.size(); ++y) {
        if (uses[x].first == uses[y].first ||
            !conflicting(uses[x].second, uses[y].second)) {
          continue;
        }
        ++pairs;
        const TaskRecord& a = run.tasks[uses[x].first];
        const TaskRecord& b = run.tasks[uses[y].first];
        if (overlap_seconds(a, b) <= kEps) {
          continue;
        }
        // Earlier-starting task first for a stable RAW/WAR/WAW label.
        const bool a_first = a.start <= b.start;
        const TaskRecord& first = a_first ? a : b;
        const TaskRecord& second = a_first ? b : a;
        const data::AccessMode first_mode =
            a_first ? uses[x].second : uses[y].second;
        const data::AccessMode second_mode =
            a_first ? uses[y].second : uses[x].second;
        const ViolationKind kind =
            hb.ordered(uses[x].first, uses[y].first)
                ? ViolationKind::DependencyViolation
                : ViolationKind::ConflictingOverlap;
        out.push_back(
            {kind,
             util::format(
                 "%s race on handle %zu: '%s' (#%llu, %s, [%.9g, %.9g]) "
                 "overlaps '%s' (#%llu, %s, [%.9g, %.9g])%s",
                 conflict_name(first_mode, second_mode), handle,
                 first.name.c_str(),
                 static_cast<unsigned long long>(first.id),
                 data::to_string(first_mode), first.start, first.end,
                 second.name.c_str(),
                 static_cast<unsigned long long>(second.id),
                 data::to_string(second_mode), second.start, second.end,
                 kind == ViolationKind::DependencyViolation
                     ? " despite an ordering edge"
                     : " with no ordering edge"),
             first.id, second.id, handle, Violation::npos});
      }
    }
  }
  if (pairs_checked != nullptr) {
    *pairs_checked = pairs;
  }
  return out;
}

}  // namespace hetflow::check
