// hetflow-verify: plain-data snapshots of a finished run.
//
// Checkers operate on these records rather than on live runtime objects
// so (a) tests can fabricate known-bad inputs without driving the engine
// into an impossible state, and (b) a run exported to disk (hetflow_run
// --audit-out) can be audited offline by the hetflow_check CLI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/access.hpp"
#include "data/coherence.hpp"
#include "sim/event_queue.hpp"
#include "trace/tracer.hpp"

namespace hetflow::check {

/// One executed (or still-open) task: its access list, inferred
/// dependency edges, and the simulated execution interval of the
/// successful attempt.
struct TaskRecord {
  std::uint64_t id = 0;
  std::string name;
  std::vector<data::Access> accesses;
  std::vector<std::uint64_t> dependencies;  ///< parent task ids
  std::uint32_t device = 0;                 ///< meaningful when completed
  sim::SimTime start = 0.0;
  sim::SimTime end = 0.0;
  bool completed = false;
};

/// Everything the schedule-level checkers need about one run.
struct RunRecord {
  std::size_t device_count = 0;
  std::size_t node_count = 0;
  /// Memory node backing each device (device id -> node id).
  std::vector<std::uint32_t> device_memory_node;
  /// Per data id: replica size and home node. handle_bytes.size() is the
  /// number of registered handles.
  std::vector<std::uint64_t> handle_bytes;
  std::vector<std::uint32_t> handle_home;
  std::vector<TaskRecord> tasks;
  /// Tracer spans in emission (completion) order; may be empty when the
  /// run was executed with tracing disabled.
  std::vector<trace::Span> spans;

  std::size_t handle_count() const noexcept { return handle_bytes.size(); }
};

/// End-of-run snapshot of the MSI replica directory plus the byte
/// accounting the directory *claims*, so the checker can cross-verify
/// the claim against the per-replica ground truth.
struct DirectoryRecord {
  std::size_t node_count = 0;
  std::vector<std::uint64_t> handle_bytes;       ///< per data id
  std::vector<std::uint64_t> capacity_bytes;     ///< per memory node
  /// states[data * node_count + node]
  std::vector<data::ReplicaState> states;
  std::vector<std::uint64_t> claimed_resident_bytes;  ///< per memory node

  std::size_t handle_count() const noexcept { return handle_bytes.size(); }
  data::ReplicaState state(std::size_t data, std::size_t node) const {
    return states[data * node_count + node];
  }
};

/// The complete auditable artifact (what --audit-out serializes).
struct AuditRecord {
  RunRecord run;
  DirectoryRecord directory;
};

}  // namespace hetflow::check
