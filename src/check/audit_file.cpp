#include "check/audit_file.hpp"

#include <fstream>
#include <sstream>

#include "util/json.hpp"
#include "util/strings.hpp"

namespace hetflow::check {

namespace {

const char* mode_tag(data::AccessMode mode) {
  return data::to_string(mode);  // "R" / "W" / "RW" / "RED"
}

data::AccessMode parse_mode(const std::string& tag) {
  if (tag == "R") {
    return data::AccessMode::Read;
  }
  if (tag == "W") {
    return data::AccessMode::Write;
  }
  if (tag == "RW") {
    return data::AccessMode::ReadWrite;
  }
  if (tag == "RED") {
    return data::AccessMode::Redux;
  }
  throw ParseError("unknown access mode '" + tag + "'");
}

const char* kind_tag(trace::SpanKind kind) {
  switch (kind) {
    case trace::SpanKind::Exec:
      return "exec";
    case trace::SpanKind::FailedExec:
      return "failed";
    case trace::SpanKind::Overhead:
      return "overhead";
  }
  return "exec";
}

trace::SpanKind parse_kind(const std::string& tag) {
  if (tag == "exec") {
    return trace::SpanKind::Exec;
  }
  if (tag == "failed") {
    return trace::SpanKind::FailedExec;
  }
  if (tag == "overhead") {
    return trace::SpanKind::Overhead;
  }
  throw ParseError("unknown span kind '" + tag + "'");
}

char state_tag(data::ReplicaState state) {
  return data::to_string(state)[0];  // 'I' / 'S' / 'M'
}

data::ReplicaState parse_state(char tag) {
  switch (tag) {
    case 'I':
      return data::ReplicaState::Invalid;
    case 'S':
      return data::ReplicaState::Shared;
    case 'M':
      return data::ReplicaState::Modified;
    default:
      throw ParseError(std::string("unknown replica state '") + tag + "'");
  }
}

template <typename T>
util::Json number_array(const std::vector<T>& values) {
  util::Json out = util::Json::array();
  for (const T& value : values) {
    out.push_back(static_cast<double>(value));
  }
  return out;
}

template <typename T>
std::vector<T> parse_number_array(const util::Json& json) {
  std::vector<T> out;
  out.reserve(json.as_array().size());
  for (const util::Json& value : json.as_array()) {
    out.push_back(static_cast<T>(value.as_number()));
  }
  return out;
}

}  // namespace

std::string to_audit_json(const AuditRecord& record) {
  util::Json run = util::Json::object();
  run["device_count"] = record.run.device_count;
  run["node_count"] = record.run.node_count;
  run["device_memory_node"] = number_array(record.run.device_memory_node);
  run["handle_bytes"] = number_array(record.run.handle_bytes);
  run["handle_home"] = number_array(record.run.handle_home);

  util::Json tasks = util::Json::array();
  for (const TaskRecord& task : record.run.tasks) {
    util::Json entry = util::Json::object();
    entry["id"] = static_cast<std::int64_t>(task.id);
    entry["name"] = task.name;
    entry["device"] = static_cast<std::int64_t>(task.device);
    entry["start"] = task.start;
    entry["end"] = task.end;
    entry["completed"] = task.completed;
    util::Json accesses = util::Json::array();
    for (const data::Access& access : task.accesses) {
      util::Json one = util::Json::object();
      one["data"] = static_cast<std::int64_t>(access.data);
      one["mode"] = mode_tag(access.mode);
      accesses.push_back(std::move(one));
    }
    entry["accesses"] = std::move(accesses);
    entry["deps"] = number_array(task.dependencies);
    tasks.push_back(std::move(entry));
  }
  run["tasks"] = std::move(tasks);

  util::Json spans = util::Json::array();
  for (const trace::Span& span : record.run.spans) {
    util::Json entry = util::Json::object();
    entry["task"] = static_cast<std::int64_t>(span.task_id);
    entry["name"] = span.name;
    entry["device"] = static_cast<std::int64_t>(span.device);
    entry["start"] = span.start;
    entry["end"] = span.end;
    entry["kind"] = kind_tag(span.kind);
    spans.push_back(std::move(entry));
  }
  run["spans"] = std::move(spans);

  util::Json directory = util::Json::object();
  directory["node_count"] = record.directory.node_count;
  directory["handle_bytes"] = number_array(record.directory.handle_bytes);
  directory["capacity_bytes"] = number_array(record.directory.capacity_bytes);
  directory["claimed_resident_bytes"] =
      number_array(record.directory.claimed_resident_bytes);
  std::string states;
  states.reserve(record.directory.states.size());
  for (data::ReplicaState state : record.directory.states) {
    states.push_back(state_tag(state));
  }
  directory["states"] = std::move(states);

  util::Json doc = util::Json::object();
  doc["format"] = "hetflow-audit";
  doc["version"] = 1;
  doc["run"] = std::move(run);
  doc["directory"] = std::move(directory);
  return doc.dump_pretty();
}

AuditRecord parse_audit_json(const std::string& text) {
  const util::Json doc = util::Json::parse(text);
  if (!doc.is_object() || !doc.contains("format") ||
      doc.at("format").as_string() != "hetflow-audit") {
    throw ParseError("not a hetflow audit file (missing format marker)");
  }
  if (doc.at("version").as_number() != 1) {
    throw ParseError("unsupported audit file version");
  }
  AuditRecord record;
  const util::Json& run = doc.at("run");
  record.run.device_count =
      static_cast<std::size_t>(run.at("device_count").as_number());
  record.run.node_count =
      static_cast<std::size_t>(run.at("node_count").as_number());
  record.run.device_memory_node =
      parse_number_array<std::uint32_t>(run.at("device_memory_node"));
  record.run.handle_bytes =
      parse_number_array<std::uint64_t>(run.at("handle_bytes"));
  record.run.handle_home =
      parse_number_array<std::uint32_t>(run.at("handle_home"));
  for (const util::Json& entry : run.at("tasks").as_array()) {
    TaskRecord task;
    task.id = static_cast<std::uint64_t>(entry.at("id").as_number());
    task.name = entry.at("name").as_string();
    task.device = static_cast<std::uint32_t>(entry.at("device").as_number());
    task.start = entry.at("start").as_number();
    task.end = entry.at("end").as_number();
    task.completed = entry.at("completed").as_bool();
    for (const util::Json& one : entry.at("accesses").as_array()) {
      task.accesses.push_back(
          {static_cast<data::DataId>(one.at("data").as_number()),
           parse_mode(one.at("mode").as_string())});
    }
    task.dependencies = parse_number_array<std::uint64_t>(entry.at("deps"));
    record.run.tasks.push_back(std::move(task));
  }
  for (const util::Json& entry : run.at("spans").as_array()) {
    trace::Span span;
    span.task_id = static_cast<std::uint64_t>(entry.at("task").as_number());
    span.name = entry.at("name").as_string();
    span.device = static_cast<hw::DeviceId>(entry.at("device").as_number());
    span.start = entry.at("start").as_number();
    span.end = entry.at("end").as_number();
    span.kind = parse_kind(entry.at("kind").as_string());
    record.run.spans.push_back(std::move(span));
  }

  const util::Json& directory = doc.at("directory");
  record.directory.node_count =
      static_cast<std::size_t>(directory.at("node_count").as_number());
  record.directory.handle_bytes =
      parse_number_array<std::uint64_t>(directory.at("handle_bytes"));
  record.directory.capacity_bytes =
      parse_number_array<std::uint64_t>(directory.at("capacity_bytes"));
  record.directory.claimed_resident_bytes = parse_number_array<std::uint64_t>(
      directory.at("claimed_resident_bytes"));
  const std::string& states = directory.at("states").as_string();
  const std::size_t expected =
      record.directory.handle_count() * record.directory.node_count;
  if (states.size() != expected) {
    throw ParseError(util::format(
        "directory state string has %zu entries, expected %zu (handles x "
        "nodes)",
        states.size(), expected));
  }
  record.directory.states.reserve(states.size());
  for (char tag : states) {
    record.directory.states.push_back(parse_state(tag));
  }
  return record;
}

void save_audit(const AuditRecord& record, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw Error("cannot open '" + path + "' for writing");
  }
  out << to_audit_json(record);
  if (!out) {
    throw Error("failed writing '" + path + "'");
  }
}

AuditRecord load_audit(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_audit_json(buffer.str());
}

}  // namespace hetflow::check
