// hetflow-verify: happens-before schedule race detector.
//
// Replays the task records of a completed run and flags every pair of
// conflicting accesses (RAW / WAW / WAR on one handle) whose simulated
// execution intervals overlap without an ordering path between the two
// tasks. Ordering is the transitive closure of the inferred dependency
// edges, computed as per-task reachability bitsets (the dense-DAG
// equivalent of per-handle vector clocks).
#pragma once

#include <cstdint>
#include <vector>

#include "check/record.hpp"
#include "check/violation.hpp"

namespace hetflow::check {

/// Transitive-closure oracle over a RunRecord's dependency edges.
class HappensBefore {
 public:
  explicit HappensBefore(const RunRecord& run);

  /// True when the dependency edges contain a cycle (reachability is
  /// then computed over the acyclic prefix only).
  bool has_cycle() const noexcept { return has_cycle_; }

  /// True iff a dependency path orders the two tasks (either direction).
  /// Indices are positions into run.tasks, not task ids.
  bool ordered(std::size_t a, std::size_t b) const;

  /// True iff task `ancestor` happens-before task `descendant`.
  bool reaches(std::size_t ancestor, std::size_t descendant) const;

 private:
  std::size_t count_;
  std::size_t words_;
  std::vector<std::uint64_t> reach_;  ///< count_ rows of `words_` bits
  bool has_cycle_ = false;
};

/// Runs the race detector. Also reports dependency edges the executed
/// schedule did not respect, dangling task/handle references, and
/// dependency cycles. `pairs_checked` (optional) receives the number of
/// conflicting pairs examined, for coverage reporting.
std::vector<Violation> check_races(const RunRecord& run,
                                   std::size_t* pairs_checked = nullptr);

}  // namespace hetflow::check
