// hetflow-verify: invariant checkers for the coherence directory and the
// execution trace / event timeline.
#pragma once

#include <vector>

#include "check/record.hpp"
#include "check/violation.hpp"
#include "data/coherence.hpp"
#include "data/handle.hpp"
#include "hw/platform.hpp"

namespace hetflow::check {

/// Snapshots a live directory (plus the platform's capacities) into the
/// plain record the checker consumes.
DirectoryRecord snapshot_directory(const hw::Platform& platform,
                                   const data::DataRegistry& registry,
                                   const data::CoherenceDirectory& directory);

/// MSI directory invariants: at most one Modified owner per handle; a
/// Modified owner excludes every other valid replica; every handle keeps
/// at least one valid replica (no data loss — a read would otherwise
/// come from an Invalid replica); claimed per-node byte accounting
/// matches the per-replica ground truth; resident bytes never exceed a
/// node's capacity.
std::vector<Violation> check_directory(const DirectoryRecord& directory);

/// Trace timeline invariants: spans end no earlier than they start, the
/// emission order is completion-monotone (simulated time never goes
/// backwards), spans reference known devices, and no two spans overlap
/// on one (serial) device.
std::vector<Violation> check_trace(const RunRecord& run);

}  // namespace hetflow::check
