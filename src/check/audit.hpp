// hetflow-verify: auditing a live Runtime.
//
// snapshot_* turn the runtime's state into the plain records the
// checkers consume; audit_run() runs every end-of-run checker (race
// detector, trace timeline, coherence directory, event-queue drain) and
// aggregates one CheckReport. Runtime::wait_all() calls audit_run() and
// enforce() when RuntimeOptions::validate is set.
#pragma once

#include <span>
#include <vector>

#include "check/invariants.hpp"
#include "check/race.hpp"
#include "check/record.hpp"
#include "check/violation.hpp"
#include "core/runtime.hpp"

namespace hetflow::check {

/// Copies tasks (accesses, dependency edges, execution intervals),
/// platform topology and tracer spans out of the runtime.
RunRecord snapshot_run(const core::Runtime& runtime);

/// snapshot_run plus the coherence-directory snapshot (the artifact
/// hetflow_run --audit-out serializes).
AuditRecord snapshot_audit(const core::Runtime& runtime);

/// Runs every checker against the runtime's current state. Meaningful
/// after wait_all() has drained (mid-run audits see half-executed state
/// and will report in-flight tasks as suspicious).
CheckReport audit_run(const core::Runtime& runtime);

/// Submit-time access-list sanity: duplicate handles in one access list
/// (the dependency inference would silently treat them as one access).
std::vector<Violation> check_accesses(
    std::span<const data::Access> accesses, std::string_view task_name);

/// Throws ValidationError unless the report passed.
void enforce(const CheckReport& report);

}  // namespace hetflow::check
