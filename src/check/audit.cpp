#include "check/audit.hpp"

#include <unordered_set>

#include "util/strings.hpp"

namespace hetflow::check {

RunRecord snapshot_run(const core::Runtime& runtime) {
  const hw::Platform& platform = runtime.platform();
  RunRecord run;
  run.device_count = platform.device_count();
  run.node_count = platform.memory_node_count();
  run.device_memory_node.reserve(run.device_count);
  for (const hw::Device& device : platform.devices()) {
    run.device_memory_node.push_back(device.memory_node());
  }
  const data::DataRegistry& registry = runtime.data().registry();
  run.handle_bytes.reserve(registry.count());
  run.handle_home.reserve(registry.count());
  for (const data::DataHandle& handle : registry.handles()) {
    run.handle_bytes.push_back(handle.bytes);
    run.handle_home.push_back(handle.home_node);
  }
  run.tasks.reserve(runtime.task_count());
  for (core::TaskId id = 0; id < runtime.task_count(); ++id) {
    const core::Task& task = runtime.task(id);
    TaskRecord record;
    record.id = task.id();
    record.name = task.name();
    const auto accesses = task.accesses();
    record.accesses.assign(accesses.begin(), accesses.end());
    record.dependencies.assign(task.dependencies.begin(),
                               task.dependencies.end());
    record.completed = task.state() == core::TaskState::Completed;
    if (record.completed) {
      record.device = task.device();
      record.start = task.times().started;
      record.end = task.times().completed;
    }
    run.tasks.push_back(std::move(record));
  }
  run.spans = runtime.tracer().spans();
  return run;
}

AuditRecord snapshot_audit(const core::Runtime& runtime) {
  AuditRecord record;
  record.run = snapshot_run(runtime);
  record.directory =
      snapshot_directory(runtime.platform(), runtime.data().registry(),
                         runtime.data().directory());
  return record;
}

CheckReport audit_run(const core::Runtime& runtime) {
  CheckReport report;
  const RunRecord run = snapshot_run(runtime);
  std::size_t pairs = 0;
  report.merge(check_races(run, &pairs));
  report.note_check("conflicting access pairs", pairs);
  report.merge(check_trace(run));
  report.note_check("trace spans", run.spans.size());
  report.merge(check_directory(snapshot_directory(
      runtime.platform(), runtime.data().registry(),
      runtime.data().directory())));
  report.note_check("directory replicas",
                    runtime.data().registry().count() *
                        runtime.platform().memory_node_count());
  if (!runtime.event_queue().empty()) {
    report.add({ViolationKind::EventResidue,
                util::format("event queue still holds %zu event(s) after the "
                             "run drained",
                             runtime.event_queue().pending()),
                Violation::npos, Violation::npos, Violation::npos,
                Violation::npos});
  }
  return report;
}

std::vector<Violation> check_accesses(
    std::span<const data::Access> accesses, std::string_view task_name) {
  std::vector<Violation> out;
  std::unordered_set<data::DataId> seen;
  for (const data::Access& access : accesses) {
    if (!seen.insert(access.data).second) {
      out.push_back(
          {ViolationKind::AccessMode,
           util::format("task '%s' lists handle %u more than once in its "
                        "access list",
                        std::string(task_name).c_str(), access.data),
           Violation::npos, Violation::npos, access.data, Violation::npos});
    }
  }
  return out;
}

void enforce(const CheckReport& report) {
  if (!report.passed()) {
    throw ValidationError(report);
  }
}

}  // namespace hetflow::check
