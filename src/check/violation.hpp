// hetflow-verify: violation taxonomy and check reports.
//
// Every checker in src/check/ returns a list of Violations; a CheckReport
// aggregates them across checkers so callers (RuntimeOptions::validate,
// the hetflow_check CLI, tests) can render or enforce them uniformly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace hetflow::check {

/// Classes of correctness violations hetflow-verify detects. Each value
/// corresponds to one invariant catalogued in docs/invariants.md.
enum class ViolationKind : std::uint8_t {
  /// Two conflicting accesses (RAW/WAW/WAR) overlap in simulated time
  /// with no happens-before path between their tasks.
  ConflictingOverlap = 0,
  /// A dependency edge exists but was not respected by the executed
  /// schedule (child started before its parent finished).
  DependencyViolation,
  /// MSI directory state broken: multiple Modified owners, a Modified
  /// owner coexisting with other valid replicas, or a handle with no
  /// valid replica anywhere (data loss / read-from-Invalid).
  CoherenceState,
  /// Directory byte accounting disagrees with the sum of resident
  /// replica sizes.
  ByteAccounting,
  /// Resident replica bytes exceed a memory node's capacity.
  CapacityExceeded,
  /// Simulated time went backwards: a span ends before it starts, or
  /// the trace's completion order is not monotone.
  TimeMonotonicity,
  /// Two execution spans overlap on the same (serial) device.
  DeviceOverlap,
  /// A record references an unknown task, handle, device or file.
  DanglingReference,
  /// The dependency / task graph contains a cycle.
  Cycle,
  /// Access-mode sanity: duplicate handles in one access list, a file
  /// listed as both input and output of one workflow task, etc.
  AccessMode,
  /// The event queue still holds events after the run drained.
  EventResidue,
  /// Fair-share order broken: a batch released a tenant that was not the
  /// deficit-ordered front (serve-layer scheduling invariant).
  FairShare,
  /// A ready tenant starved beyond the bounded deficit the weighted
  /// fair-share policy guarantees.
  Starvation,
  /// Admission control wedged: pending work existed but a batch released
  /// nothing, or a drain ended with work still queued.
  AdmissionWedge,
  /// Per-tenant serve accounting disagrees with the runtime's RunStats
  /// (task counts or attributed device-seconds fail to reconcile).
  TenantAccounting,
};

const char* to_string(ViolationKind kind) noexcept;

/// One detected violation. `task_a`/`task_b`/`data`/`node` identify the
/// participants where applicable (npos = not applicable).
struct Violation {
  static constexpr std::uint64_t npos = static_cast<std::uint64_t>(-1);

  ViolationKind kind = ViolationKind::ConflictingOverlap;
  std::string message;
  std::uint64_t task_a = npos;
  std::uint64_t task_b = npos;
  std::uint64_t data = npos;
  std::uint64_t node = npos;

  /// "[conflicting-overlap] message" — the rendering used everywhere.
  std::string describe() const;
};

/// Aggregated result of one or more checkers.
class CheckReport {
 public:
  void add(Violation violation);
  void merge(std::vector<Violation> violations);
  void note_check(const std::string& name, std::size_t checked);

  bool passed() const noexcept { return violations_.empty(); }
  const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  std::size_t count(ViolationKind kind) const noexcept;

  /// Multi-line human-readable report: one line per violation plus a
  /// per-checker coverage footer ("races: 42 pairs checked").
  std::string summary() const;

 private:
  std::vector<Violation> violations_;
  std::vector<std::string> notes_;
};

/// Thrown by RuntimeOptions::validate enforcement; carries the report.
class ValidationError : public Error {
 public:
  explicit ValidationError(const CheckReport& report)
      : Error(report.summary()), report_(report) {}

  const CheckReport& report() const noexcept { return report_; }

 private:
  CheckReport report_;
};

}  // namespace hetflow::check
