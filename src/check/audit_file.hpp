// hetflow-verify: on-disk audit snapshots ("hetflow audit v1").
//
// An AuditRecord serializes to a single JSON document so a run executed
// elsewhere (hetflow_run --audit-out audit.json) can be checked offline
// with `hetflow_check --audit audit.json`.
#pragma once

#include <string>

#include "check/record.hpp"

namespace hetflow::check {

/// Serializes the audit record to the v1 JSON format.
std::string to_audit_json(const AuditRecord& record);

/// Parses the v1 JSON format; throws ParseError on malformed input.
AuditRecord parse_audit_json(const std::string& text);

/// File-based convenience wrappers.
void save_audit(const AuditRecord& record, const std::string& path);
AuditRecord load_audit(const std::string& path);

}  // namespace hetflow::check
