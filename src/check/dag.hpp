// hetflow-verify: structural validation of abstract workflows.
//
// A report-returning complement to Workflow::validate() (which throws on
// the first problem): collects *every* structural violation so the
// hetflow_check CLI can list them all at once, and adds access-mode
// sanity checks validate() does not cover.
#pragma once

#include <vector>

#include "check/violation.hpp"
#include "workflow/workflow.hpp"

namespace hetflow::check {

/// Checks: file indices in range, at most one producer per file, acyclic
/// task graph, no duplicate entries in one task's input/output lists, no
/// file listed as both input and output of the same task, non-empty
/// codelet kinds.
std::vector<Violation> check_workflow(const workflow::Workflow& workflow);

}  // namespace hetflow::check
