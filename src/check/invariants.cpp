#include "check/invariants.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace hetflow::check {

namespace {
constexpr double kEps = 1e-9;
}  // namespace

DirectoryRecord snapshot_directory(const hw::Platform& platform,
                                   const data::DataRegistry& registry,
                                   const data::CoherenceDirectory& directory) {
  DirectoryRecord record;
  record.node_count = platform.memory_node_count();
  record.handle_bytes.reserve(registry.count());
  for (const data::DataHandle& handle : registry.handles()) {
    record.handle_bytes.push_back(handle.bytes);
  }
  record.capacity_bytes.reserve(record.node_count);
  record.claimed_resident_bytes.reserve(record.node_count);
  for (hw::MemoryNodeId node = 0; node < record.node_count; ++node) {
    record.capacity_bytes.push_back(
        platform.memory_node(node).capacity_bytes());
    record.claimed_resident_bytes.push_back(directory.resident_bytes(node));
  }
  record.states.resize(registry.count() * record.node_count,
                       data::ReplicaState::Invalid);
  for (data::DataId id = 0; id < registry.count(); ++id) {
    for (hw::MemoryNodeId node = 0; node < record.node_count; ++node) {
      record.states[static_cast<std::size_t>(id) * record.node_count + node] =
          directory.state(id, node);
    }
  }
  return record;
}

std::vector<Violation> check_directory(const DirectoryRecord& directory) {
  std::vector<Violation> out;
  const std::size_t nodes = directory.node_count;
  const std::size_t handles = directory.handle_count();

  for (std::size_t id = 0; id < handles; ++id) {
    std::size_t modified = 0;
    std::size_t modified_node = 0;
    std::size_t valid = 0;
    for (std::size_t node = 0; node < nodes; ++node) {
      const data::ReplicaState state = directory.state(id, node);
      if (state != data::ReplicaState::Invalid) {
        ++valid;
      }
      if (state == data::ReplicaState::Modified) {
        ++modified;
        modified_node = node;
      }
    }
    if (modified > 1) {
      out.push_back({ViolationKind::CoherenceState,
                     util::format("handle %zu has %zu Modified owners", id,
                                  modified),
                     Violation::npos, Violation::npos, id, Violation::npos});
    } else if (modified == 1 && valid > 1) {
      out.push_back(
          {ViolationKind::CoherenceState,
           util::format("handle %zu is Modified on node %zu but %zu other "
                        "replica(s) are still valid",
                        id, modified_node, valid - 1),
           Violation::npos, Violation::npos, id, modified_node});
    }
    if (valid == 0) {
      out.push_back(
          {ViolationKind::CoherenceState,
           util::format("handle %zu has no valid replica anywhere — the "
                        "data is lost and any read would come from an "
                        "Invalid replica",
                        id),
           Violation::npos, Violation::npos, id, Violation::npos});
    }
  }

  for (std::size_t node = 0; node < nodes; ++node) {
    std::uint64_t computed = 0;
    for (std::size_t id = 0; id < handles; ++id) {
      if (directory.state(id, node) != data::ReplicaState::Invalid) {
        computed += directory.handle_bytes[id];
      }
    }
    if (node < directory.claimed_resident_bytes.size() &&
        computed != directory.claimed_resident_bytes[node]) {
      out.push_back(
          {ViolationKind::ByteAccounting,
           util::format("node %zu claims %llu resident bytes but valid "
                        "replicas sum to %llu",
                        node,
                        static_cast<unsigned long long>(
                            directory.claimed_resident_bytes[node]),
                        static_cast<unsigned long long>(computed)),
           Violation::npos, Violation::npos, Violation::npos, node});
    }
    if (node < directory.capacity_bytes.size() &&
        computed > directory.capacity_bytes[node]) {
      out.push_back(
          {ViolationKind::CapacityExceeded,
           util::format("node %zu holds %llu resident bytes, exceeding its "
                        "capacity of %llu",
                        node, static_cast<unsigned long long>(computed),
                        static_cast<unsigned long long>(
                            directory.capacity_bytes[node])),
           Violation::npos, Violation::npos, Violation::npos, node});
    }
  }
  return out;
}

std::vector<Violation> check_trace(const RunRecord& run) {
  std::vector<Violation> out;

  for (std::size_t i = 0; i < run.spans.size(); ++i) {
    const trace::Span& span = run.spans[i];
    if (span.end < span.start - kEps) {
      out.push_back(
          {ViolationKind::TimeMonotonicity,
           util::format("span '%s' (task #%llu) ends at %.9g before it "
                        "starts at %.9g",
                        std::string(span.name).c_str(),
                        static_cast<unsigned long long>(span.task_id),
                        span.end, span.start),
           span.task_id, Violation::npos, Violation::npos, span.device});
    }
    if (i > 0 && span.end < run.spans[i - 1].end - kEps) {
      out.push_back(
          {ViolationKind::TimeMonotonicity,
           util::format("trace emission order not completion-monotone: span "
                        "%zu ('%s') completes at %.9g after span %zu "
                        "recorded %.9g — simulated time went backwards",
                        i, std::string(span.name).c_str(), span.end, i - 1,
                        run.spans[i - 1].end),
           span.task_id, run.spans[i - 1].task_id, Violation::npos,
           Violation::npos});
    }
    if (run.device_count > 0 && span.device >= run.device_count) {
      out.push_back({ViolationKind::DanglingReference,
                     util::format("span '%s' references unknown device %u",
                                  std::string(span.name).c_str(), span.device),
                     span.task_id, Violation::npos, Violation::npos,
                     span.device});
    }
  }

  // Per-device serialization: every span (successful or failed attempt)
  // occupies the device exclusively.
  std::vector<std::vector<const trace::Span*>> by_device(
      std::max<std::size_t>(run.device_count, 1));
  for (const trace::Span& span : run.spans) {
    if (span.device < by_device.size()) {
      by_device[span.device].push_back(&span);
    }
  }
  for (auto& spans : by_device) {
    std::sort(spans.begin(), spans.end(),
              [](const trace::Span* a, const trace::Span* b) {
                return a->start < b->start;
              });
    for (std::size_t i = 1; i < spans.size(); ++i) {
      if (spans[i]->start < spans[i - 1]->end - kEps) {
        out.push_back(
            {ViolationKind::DeviceOverlap,
             util::format("device %u runs '%s' (task #%llu, [%.9g, %.9g]) "
                          "overlapping '%s' (task #%llu, [%.9g, %.9g])",
                          spans[i]->device, std::string(spans[i - 1]->name).c_str(),
                          static_cast<unsigned long long>(
                              spans[i - 1]->task_id),
                          spans[i - 1]->start, spans[i - 1]->end,
                          std::string(spans[i]->name).c_str(),
                          static_cast<unsigned long long>(spans[i]->task_id),
                          spans[i]->start, spans[i]->end),
             spans[i - 1]->task_id, spans[i]->task_id, Violation::npos,
             spans[i]->device});
      }
    }
  }
  return out;
}

}  // namespace hetflow::check
