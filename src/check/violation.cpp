#include "check/violation.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace hetflow::check {

const char* to_string(ViolationKind kind) noexcept {
  switch (kind) {
    case ViolationKind::ConflictingOverlap:
      return "conflicting-overlap";
    case ViolationKind::DependencyViolation:
      return "dependency-violation";
    case ViolationKind::CoherenceState:
      return "coherence-state";
    case ViolationKind::ByteAccounting:
      return "byte-accounting";
    case ViolationKind::CapacityExceeded:
      return "capacity-exceeded";
    case ViolationKind::TimeMonotonicity:
      return "time-monotonicity";
    case ViolationKind::DeviceOverlap:
      return "device-overlap";
    case ViolationKind::DanglingReference:
      return "dangling-reference";
    case ViolationKind::Cycle:
      return "cycle";
    case ViolationKind::AccessMode:
      return "access-mode";
    case ViolationKind::EventResidue:
      return "event-residue";
    case ViolationKind::FairShare:
      return "fair-share";
    case ViolationKind::Starvation:
      return "starvation";
    case ViolationKind::AdmissionWedge:
      return "admission-wedge";
    case ViolationKind::TenantAccounting:
      return "tenant-accounting";
  }
  return "unknown";
}

std::string Violation::describe() const {
  return std::string("[") + to_string(kind) + "] " + message;
}

void CheckReport::add(Violation violation) {
  violations_.push_back(std::move(violation));
}

void CheckReport::merge(std::vector<Violation> violations) {
  for (Violation& violation : violations) {
    violations_.push_back(std::move(violation));
  }
}

void CheckReport::note_check(const std::string& name, std::size_t checked) {
  notes_.push_back(util::format("%s: %zu checked", name.c_str(), checked));
}

std::size_t CheckReport::count(ViolationKind kind) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(violations_.begin(), violations_.end(),
                    [&](const Violation& v) { return v.kind == kind; }));
}

std::string CheckReport::summary() const {
  std::string out;
  if (passed()) {
    out += "hetflow-verify: all checks passed\n";
  } else {
    out += util::format("hetflow-verify: %zu violation(s)\n",
                        violations_.size());
    for (const Violation& violation : violations_) {
      out += "  " + violation.describe() + "\n";
    }
  }
  for (const std::string& note : notes_) {
    out += "  (" + note + ")\n";
  }
  return out;
}

}  // namespace hetflow::check
