#include "perf/transfer_model.hpp"

namespace hetflow::perf {

TransferModel::TransferModel(const hw::Platform& platform)
    : platform_(&platform) {
  const std::size_t n = platform.memory_node_count();
  std::size_t pairs = 0;
  for (hw::MemoryNodeId src = 0; src < n; ++src) {
    for (hw::MemoryNodeId dst = 0; dst < n; ++dst) {
      if (src == dst) {
        continue;
      }
      double latency = 0.0;
      double inv_bw = 0.0;
      for (hw::LinkId id : platform.route(src, dst)) {
        const hw::Link& link = platform.link(id);
        latency += link.latency_s();
        inv_bw += 1.0 / (link.bandwidth_gbps() * 1e9);
      }
      mean_latency_ += latency;
      mean_inv_bandwidth_ += inv_bw;
      ++pairs;
    }
  }
  if (pairs > 0) {
    mean_latency_ /= static_cast<double>(pairs);
    mean_inv_bandwidth_ /= static_cast<double>(pairs);
  }
}

double TransferModel::time_s(hw::MemoryNodeId src, hw::MemoryNodeId dst,
                             std::uint64_t bytes) const {
  return platform_->transfer_time_s(src, dst, bytes);
}

double TransferModel::mean_time_s(std::uint64_t bytes) const {
  return mean_latency_ + mean_inv_bandwidth_ * static_cast<double>(bytes);
}

double TransferModel::mean_device_time_s(hw::DeviceId a, hw::DeviceId b,
                                         std::uint64_t bytes) const {
  const hw::MemoryNodeId src = platform_->device(a).memory_node();
  const hw::MemoryNodeId dst = platform_->device(b).memory_node();
  if (src == dst) {
    return 0.0;
  }
  return time_s(src, dst, bytes);
}

}  // namespace hetflow::perf
