#include "perf/energy_model.hpp"

#include "util/error.hpp"

namespace hetflow::perf {

double EnergyModel::busy_energy_j(const hw::Device& device, std::size_t state,
                                  double busy_seconds) {
  HETFLOW_REQUIRE_MSG(busy_seconds >= 0.0, "negative busy time");
  return device.dvfs_state(state).busy_watts * busy_seconds;
}

double EnergyModel::idle_energy_j(const hw::Device& device,
                                  double idle_seconds) {
  HETFLOW_REQUIRE_MSG(idle_seconds >= -1e-9, "negative idle time");
  return device.nominal_dvfs().idle_watts * (idle_seconds < 0 ? 0 : idle_seconds);
}

}  // namespace hetflow::perf
