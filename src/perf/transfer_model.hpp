// Analytic (alpha-beta) communication-cost helpers built on the platform
// description. Used by static schedulers (HEFT) that need *average*
// communication costs before any placement is known.
#pragma once

#include <cstdint>

#include "hw/platform.hpp"

namespace hetflow::perf {

class TransferModel {
 public:
  explicit TransferModel(const hw::Platform& platform);

  /// Uncontended time to move `bytes` between two memory nodes.
  double time_s(hw::MemoryNodeId src, hw::MemoryNodeId dst,
                std::uint64_t bytes) const;

  /// Mean transfer time of `bytes` over all ordered node pairs with
  /// src != dst (HEFT's average communication cost). Returns 0 for a
  /// single-node platform.
  double mean_time_s(std::uint64_t bytes) const;

  /// Mean time between the memory nodes of two *devices* (0 if same node).
  double mean_device_time_s(hw::DeviceId a, hw::DeviceId b,
                            std::uint64_t bytes) const;

 private:
  const hw::Platform* platform_;
  double mean_latency_ = 0.0;        // cached alpha over node pairs
  double mean_inv_bandwidth_ = 0.0;  // cached beta (s/byte) over node pairs
};

}  // namespace hetflow::perf
