#include "perf/history_model.hpp"

#include "util/error.hpp"

namespace hetflow::perf {

void HistoryModel::record(std::uint32_t codelet_id, hw::DeviceType type,
                          double flops, double seconds) {
  HETFLOW_REQUIRE_MSG(seconds >= 0.0, "negative execution time");
  if (flops <= 0.0) {
    return;  // zero-work tasks carry no throughput information
  }
  history_[key(codelet_id, type)].add(seconds / flops);
  ++version_;
}

bool HistoryModel::calibrated(std::uint32_t codelet_id,
                              hw::DeviceType type) const {
  const auto it = history_.find(key(codelet_id, type));
  return it != history_.end() && it->second.count() >= kMinSamples;
}

double HistoryModel::estimate(std::uint32_t codelet_id, hw::DeviceType type,
                              double flops) const {
  const auto it = history_.find(key(codelet_id, type));
  if (it == history_.end() || it->second.count() < kMinSamples) {
    return -1.0;
  }
  return it->second.mean() * flops;
}

double HistoryModel::seconds_per_flop(std::uint32_t codelet_id,
                                      hw::DeviceType type) const {
  const auto it = history_.find(key(codelet_id, type));
  if (it == history_.end() || it->second.count() < kMinSamples) {
    return -1.0;
  }
  return it->second.mean();
}

std::size_t HistoryModel::sample_count(std::uint32_t codelet_id,
                                       hw::DeviceType type) const {
  const auto it = history_.find(key(codelet_id, type));
  return it == history_.end() ? 0 : it->second.count();
}

}  // namespace hetflow::perf
