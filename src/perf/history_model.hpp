// History-based execution-time model (StarPU-style).
//
// The runtime feeds back every measured task execution as a
// seconds-per-flop sample keyed by (codelet, device type); schedulers ask
// for estimates, which blend the calibrated history with the codelet's
// analytic model until enough samples exist. Normalizing by flops and by
// the device's nominal operating point makes one history entry serve all
// task sizes and DVFS states of that (codelet, device-type) pair.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "hw/device.hpp"
#include "util/stats.hpp"

namespace hetflow::perf {

class HistoryModel {
 public:
  /// Minimum samples before the history overrides the analytic estimate.
  static constexpr std::size_t kMinSamples = 3;

  /// Records one measured execution: `seconds` of pure compute (overhead
  /// excluded) for `flops` work at the nominal DVFS point equivalent.
  void record(std::uint32_t codelet_id, hw::DeviceType type, double flops,
              double seconds);

  /// True once estimate() would use calibrated data for this pair.
  bool calibrated(std::uint32_t codelet_id, hw::DeviceType type) const;

  /// Estimated pure-compute seconds for `flops` work at nominal frequency,
  /// or a negative value when uncalibrated (caller falls back to the
  /// analytic model).
  double estimate(std::uint32_t codelet_id, hw::DeviceType type,
                  double flops) const;

  /// Calibrated mean seconds-per-flop for the pair, or a negative value
  /// when uncalibrated. estimate() is exactly this value * flops, which
  /// is what makes the pair memoizable bitwise: callers may cache the
  /// rate under the current version() and reproduce estimate() exactly.
  double seconds_per_flop(std::uint32_t codelet_id,
                          hw::DeviceType type) const;

  std::size_t sample_count(std::uint32_t codelet_id,
                           hw::DeviceType type) const;

  /// Monotonic generation counter, bumped whenever a recorded sample (or
  /// clear()) may have changed some pair's estimate. Cost-model caches
  /// key their history snapshot on this.
  std::uint64_t version() const noexcept { return version_; }

  void clear() {
    history_.clear();
    ++version_;
  }

 private:
  static std::uint64_t key(std::uint32_t codelet_id,
                           hw::DeviceType type) noexcept {
    return (static_cast<std::uint64_t>(codelet_id) << 8) |
           static_cast<std::uint64_t>(type);
  }

  // Welford stats over seconds-per-flop samples.
  std::unordered_map<std::uint64_t, util::RunningStats> history_;
  std::uint64_t version_ = 0;
};

}  // namespace hetflow::perf
