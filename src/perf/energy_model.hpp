// Device energy accounting.
//
// E_device = sum over executed tasks of busy_watts(state) * busy_seconds
//          + idle_watts(nominal) * idle_seconds.
// The model is intentionally simple — experiments compare *policies*
// under one consistent model, mirroring how DVFS-scheduling papers
// evaluate on analytic power envelopes.
#pragma once

#include <cstddef>

#include "hw/device.hpp"

namespace hetflow::perf {

class EnergyModel {
 public:
  /// Joules consumed executing for `busy_seconds` at DVFS point `state`.
  static double busy_energy_j(const hw::Device& device, std::size_t state,
                              double busy_seconds);

  /// Joules consumed idling for `idle_seconds` (at the nominal point —
  /// clock gating while idle is not modeled separately).
  static double idle_energy_j(const hw::Device& device, double idle_seconds);

  /// Estimated energy for a task of `exec_seconds` (already scaled to
  /// `state`) — what an energy-aware scheduler minimizes.
  static double task_energy_j(const hw::Device& device, std::size_t state,
                              double exec_seconds) {
    return busy_energy_j(device, state, exec_seconds);
  }
};

}  // namespace hetflow::perf
