// Pluggable scheduling policy interface.
//
// The Runtime pushes events to the policy; the policy responds by calling
// SchedContext::assign (push model) and/or by handing back tasks from
// on_device_idle (pull model). A policy may use either or both styles:
//
//   * push: decide a device the moment a task becomes ready
//     (MCT, dmda, HEFT honoring a precomputed mapping);
//   * pull: keep ready tasks in its own structure and give one out when a
//     device runs dry (eager central queue, work stealing).
//
// All policies are single-threaded with respect to the runtime: callbacks
// are invoked from the simulation loop, never concurrently.
#pragma once

#include <string>
#include <vector>

#include "core/sched_context.hpp"
#include "core/task.hpp"
#include "hw/device.hpp"

namespace hetflow::core {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Static (full-graph) policies plan every task in prepare() and can
  /// NOT absorb tasks that first reach on_task_ready without a plan —
  /// e.g. failed attempts handed back by FailurePolicy::Reschedule. The
  /// runtime rejects that hand-back at its boundary (clear error instead
  /// of a deep assertion or a stall). Submitting further waves between
  /// wait_all() calls is fine: each wave is re-planned by prepare().
  virtual bool requires_full_graph() const noexcept { return false; }

  /// Called once, before any task event, with the query/command context.
  /// The context outlives the scheduler's use of it.
  virtual void attach(SchedContext& ctx) { ctx_ = &ctx; }

  /// Called after the full graph is known (at wait_all), before execution
  /// begins — static schedulers compute their mapping here.
  virtual void prepare(const std::vector<Task*>& all_tasks) {
    (void)all_tasks;
  }

  /// A task's dependencies are satisfied. The policy may assign it now
  /// via ctx().assign(...) or retain it for pull-mode dispatch.
  virtual void on_task_ready(Task& task) = 0;

  /// `device` has no queued work. Return a retained ready task to run on
  /// it (the runtime then assigns it there), or nullptr.
  virtual Task* on_device_idle(const hw::Device& device) {
    (void)device;
    return nullptr;
  }

  /// Pull-model fast path: returning false guarantees on_device_idle
  /// would return nullptr for every device right now, so the runtime may
  /// skip the per-device probe after each completion (it probes every
  /// device each time a task finishes — a real cost at 10^6 tasks).
  /// Policies retaining ready tasks should override it alongside
  /// on_device_idle; the conservative default never skips.
  virtual bool has_retained_work() const noexcept { return true; }

  /// A task finished successfully (informational; fires before dependents
  /// become ready).
  virtual void on_task_complete(const Task& task) { (void)task; }

  /// A task attempt failed and the runtime's policy routed it back to the
  /// scheduler (Reschedule policy only re-enters via on_task_ready).
  virtual void on_task_failed(const Task& task, hw::DeviceId device) {
    (void)task;
    (void)device;
  }

 protected:
  SchedContext& ctx() {
    HETFLOW_REQUIRE_MSG(ctx_ != nullptr, "scheduler used before attach()");
    return *ctx_;
  }
  const SchedContext& ctx() const {
    HETFLOW_REQUIRE_MSG(ctx_ != nullptr, "scheduler used before attach()");
    return *ctx_;
  }

 private:
  SchedContext* ctx_ = nullptr;
};

}  // namespace hetflow::core
