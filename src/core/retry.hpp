// Fault-tolerance policy knobs and per-device health tracking.
//
// A run survives flaky devices through three cooperating mechanisms, all
// configured on RuntimeOptions::retry:
//
//   * attempt budget — a task is retried up to max_attempts times; what
//     happens when the budget is exhausted is ExhaustionPolicy's call
//     (abort the run, or drop the task and its dependent subtree);
//   * exponential backoff — a failed attempt is requeued only after
//     base * factor^(attempt-1) seconds (capped), plus deterministic
//     jitter drawn from the run rng, so a transiently sick device is not
//     hammered with immediate retries;
//   * timeout + blacklist — an attempt running past timeout_s is
//     cancelled (EventQueue::cancel) and retried, and a device that
//     fails blacklist_after consecutive attempts is quarantined: its
//     queued tasks go back to the scheduler and it takes no new work
//     until a probation timer expires.
//
// The blacklist state machine (see docs/fault_tolerance.md):
//
//     Healthy --K consecutive failures--> Blacklisted
//     Blacklisted --probation_s timer--> Probation
//     Probation --success--> Healthy
//     Probation --failure--> Blacklisted (immediately, threshold 1)
#pragma once

#include <cstdint>
#include <vector>

#include "hw/device.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace hetflow::core {

/// What to do when a task exhausts its attempt budget.
enum class ExhaustionPolicy : std::uint8_t {
  Abort = 0,  ///< throw and end the run (legacy behaviour)
  Drop,       ///< abandon the task and its transitive dependents
};

/// Retry/timeout/blacklist configuration. The defaults reproduce the
/// legacy behaviour exactly: immediate retries, no timeout, no
/// blacklist, abort on exhaustion.
struct RetryPolicy {
  /// Attempt budget per task; 0 inherits RuntimeOptions::max_attempts.
  std::size_t max_attempts = 0;
  /// First retry delay in simulated seconds; 0 = retry immediately
  /// (which also skips the backoff event entirely, keeping legacy event
  /// ordering byte-identical).
  double backoff_base_s = 0.0;
  /// Multiplier applied per additional failed attempt.
  double backoff_factor = 2.0;
  /// Upper bound on the (pre-jitter) delay.
  double backoff_max_s = 60.0;
  /// Jitter fraction in [0, 1]: the delay is scaled by a factor drawn
  /// uniformly from [1, 1 + jitter) using a deterministic stream split
  /// from the run rng — identical across reruns of the same seed.
  double backoff_jitter = 0.0;
  /// Wall-clock budget of one attempt, measured from dispatch (so data
  /// stalls count). 0 = no timeout. A breached attempt is cancelled via
  /// EventQueue::cancel, charged as a failed attempt, and retried under
  /// the same backoff/failure policy.
  double timeout_s = 0.0;
  /// Consecutive failures (on one device) that trip the blacklist;
  /// 0 = never blacklist. Requires a dynamic scheduler: quarantined
  /// work re-enters on_task_ready, which full-graph plans cannot absorb.
  std::size_t blacklist_after = 0;
  /// Simulated seconds a blacklisted device sits out before probation.
  double probation_s = 5.0;
  ExhaustionPolicy on_exhausted = ExhaustionPolicy::Abort;

  /// Pre-jitter delay before retry number `attempt` (1-based: the delay
  /// applied after the attempt-th failure).
  double backoff_delay_s(std::uint32_t attempt) const noexcept;
  /// Full delay including deterministic jitter drawn from `rng` (one
  /// uniform draw iff backoff_jitter > 0, so seeds stay comparable
  /// across jitter settings).
  double backoff_delay_s(std::uint32_t attempt, util::Rng& rng) const;
};

/// Tracks per-device consecutive failures and the quarantine state
/// machine. Owned by the Runtime; time-based transitions (probation
/// expiry) are driven by the runtime's event queue, not by this class.
class DeviceHealth {
 public:
  enum class State : std::uint8_t {
    Healthy = 0,
    Blacklisted,  ///< takes no work; queued tasks were handed back
    Probation,    ///< working again, but one failure re-blacklists
  };

  DeviceHealth() = default;
  explicit DeviceHealth(std::size_t device_count)
      : entries_(device_count) {}

  std::size_t device_count() const noexcept { return entries_.size(); }
  State state(hw::DeviceId id) const { return entry(id).state; }
  bool blacklisted(hw::DeviceId id) const {
    return entry(id).state == State::Blacklisted;
  }
  std::uint64_t consecutive_failures(hw::DeviceId id) const {
    return entry(id).consecutive_failures;
  }
  /// Times this device has been quarantined so far.
  std::uint64_t blacklist_events(hw::DeviceId id) const {
    return entry(id).blacklist_events;
  }
  /// Absolute simulated time at which the current quarantine ends
  /// (meaningful while blacklisted; 0 before the first quarantine).
  sim::SimTime blacklisted_until(hw::DeviceId id) const {
    return entry(id).blacklisted_until;
  }

  /// Records a failed attempt on `id`. Returns true when this failure
  /// trips the blacklist (threshold `blacklist_after`, or any failure
  /// during probation); the caller quarantines the device and arranges
  /// the probation timer for `until`.
  bool note_failure(hw::DeviceId id, std::size_t blacklist_after,
                    sim::SimTime until);
  /// Records a successful completion (resets the consecutive counter;
  /// promotes Probation back to Healthy). Returns true when the state
  /// actually transitioned (Probation -> Healthy) so the caller can
  /// invalidate health-sensitive caches on recovery.
  bool note_success(hw::DeviceId id);
  /// The probation timer fired: Blacklisted -> Probation.
  void end_blacklist(hw::DeviceId id);

 private:
  struct Entry {
    State state = State::Healthy;
    std::uint64_t consecutive_failures = 0;
    std::uint64_t blacklist_events = 0;
    sim::SimTime blacklisted_until = 0.0;
  };

  const Entry& entry(hw::DeviceId id) const {
    HETFLOW_REQUIRE_MSG(id < entries_.size(), "device id out of range");
    return entries_[id];
  }
  Entry& entry(hw::DeviceId id) {
    HETFLOW_REQUIRE_MSG(id < entries_.size(), "device id out of range");
    return entries_[id];
  }

  std::vector<Entry> entries_;
};

const char* to_string(DeviceHealth::State state) noexcept;

}  // namespace hetflow::core
