#include "core/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "check/audit.hpp"
#include "perf/energy_model.hpp"
#include "util/log.hpp"
#include "util/prefetch.hpp"
#include "util/strings.hpp"

namespace hetflow::core {

namespace {
obs::Labels device_labels(const hw::Device& device) {
  return {{"device", device.name()}};
}
}  // namespace

// ---------------------------------------------------------------------------
// SchedContext implementation
// ---------------------------------------------------------------------------

class Runtime::Context final : public SchedContext {
 public:
  explicit Context(Runtime& rt) : rt_(&rt) {}

  const hw::Platform& platform() const override { return *rt_->platform_; }
  sim::SimTime now() const override { return rt_->queue_.now(); }

  const data::DataRegistry& data_registry() const override {
    return rt_->data_.registry();
  }

  double estimate_exec_seconds(
      const Task& task, const hw::Device& device,
      std::optional<std::size_t> dvfs) const override {
    return rt_->exec_estimate(task, device, dvfs);
  }

  sim::SimTime device_available_at(const hw::Device& device) const override {
    const DeviceState& state = rt_->device_states_[device.id()];
    sim::SimTime base =
        state.running != nullptr ? state.busy_until : rt_->queue_.now();
    // A quarantined device starts nothing before its probation timer
    // fires — surface that through availability so cost-based policies
    // steer around it without a dedicated blacklist check.
    if (rt_->health_.blacklisted(device.id())) {
      base = std::max(base, rt_->health_.blacklisted_until(device.id()));
    }
    return base + state.queued_est_seconds;
  }

  bool device_blacklisted(const hw::Device& device) const override {
    return rt_->health_.blacklisted(device.id());
  }

  sim::SimTime estimate_data_ready(const Task& task, const hw::Device& device,
                                   sim::SimTime earliest) const override {
    return rt_->data_.estimate_ready_time(task.accesses(),
                                          device.memory_node(), earliest);
  }

  std::uint64_t missing_input_bytes(const Task& task,
                                    const hw::Device& device) const override {
    return rt_->data_.missing_input_bytes(task.accesses(),
                                          device.memory_node());
  }

  sim::SimTime estimate_completion(
      const Task& task, const hw::Device& device,
      std::optional<std::size_t> dvfs) const override {
    const double exec = rt_->exec_estimate(task, device, dvfs);
    if (!std::isfinite(exec)) {
      return std::numeric_limits<double>::infinity();
    }
    const sim::SimTime avail = device_available_at(device);
    const sim::SimTime data_ready = estimate_data_ready(task, device, avail);
    return std::max(avail, data_ready) + exec;
  }

  double estimate_energy(const Task& task, const hw::Device& device,
                         std::optional<std::size_t> dvfs) const override {
    const double exec = rt_->exec_estimate(task, device, dvfs);
    if (!std::isfinite(exec)) {
      return std::numeric_limits<double>::infinity();
    }
    const std::size_t state = dvfs.value_or(device.nominal_dvfs_index());
    return perf::EnergyModel::task_energy_j(device, state, exec);
  }

  obs::Recorder* recorder() const noexcept override {
    return rt_->recorder_.get();
  }

  std::size_t queue_length(const hw::Device& device) const override {
    return rt_->device_states_[device.id()].queue.size();
  }

  std::size_t busy_device_count() const override {
    std::size_t count = 0;
    for (const DeviceState& state : rt_->device_states_) {
      if (state.running != nullptr || !state.queue.empty()) {
        ++count;
      }
    }
    return count;
  }

  void assign(Task& task, const hw::Device& device,
              std::optional<std::size_t> dvfs) override {
    rt_->internal_assign(task, device, dvfs);
  }

 private:
  Runtime* rt_;
};

// ---------------------------------------------------------------------------
// Construction / submission
// ---------------------------------------------------------------------------

Runtime::Runtime(const hw::Platform& platform,
                 std::unique_ptr<Scheduler> scheduler, RuntimeOptions options)
    : platform_(&platform),
      options_(options),
      data_(platform, queue_),
      tracer_(options.record_trace),
      scheduler_(std::move(scheduler)),
      rng_(options.seed),
      health_(platform.device_count()),
      device_states_(platform.device_count()) {
  HETFLOW_REQUIRE_MSG(scheduler_ != nullptr, "runtime needs a scheduler");
  if (options_.retry.blacklist_after > 0 &&
      scheduler_->requires_full_graph()) {
    throw InvalidArgument(util::format(
        "static scheduler '%s' cannot be combined with device "
        "blacklisting: quarantined work re-enters the scheduler at run "
        "time, which a full-graph plan cannot absorb",
        scheduler_->name().c_str()));
  }
  if (options_.failure_model.enabled() &&
      options_.failure_model.hang_fraction() > 0.0 &&
      options_.retry.timeout_s <= 0.0) {
    throw InvalidArgument(
        "fail-silent faults (hang_fraction > 0) require a per-attempt "
        "timeout (RetryPolicy::timeout_s): a hung attempt delivers no "
        "failure signal, so only the watchdog can recover it");
  }
  if (options_.metrics) {
    recorder_ = std::make_unique<obs::Recorder>();
    data_.set_recorder(recorder_.get());
  }
  cost_cache_.attach(platform);
  context_ = std::make_unique<Context>(*this);
  scheduler_->attach(*context_);
  stats_.devices.resize(platform.device_count());
  for (std::size_t i = 0; i < platform.device_count(); ++i) {
    stats_.devices[i].device = static_cast<hw::DeviceId>(i);
  }
  // Capacity hints: pure reservation (allocation + first-touch), zero
  // effect on the submit sequence or any simulated result.
  if (options_.expected_tasks > 0) {
    tasks_.reserve(options_.expected_tasks);
    dependents_.reserve(options_.expected_tasks);
    dep_mark_.reserve(options_.expected_tasks);
    deps_open_.reserve(options_.expected_tasks);
    task_states_.reserve(options_.expected_tasks);
  }
  if (options_.expected_data > 0) {
    handle_uses_.reserve(options_.expected_data);
    data_.reserve(options_.expected_data);
  }
}

Runtime::~Runtime() = default;

data::DataId Runtime::register_data(std::string_view name,
                                    std::uint64_t bytes,
                                    hw::MemoryNodeId home_node) {
  const data::DataId id = data_.register_data(name, bytes, home_node);
  handle_uses_.emplace_back();  // one slot per handle; ids are sequential
  return id;
}

TaskId Runtime::submit(std::string_view name, CodeletPtr codelet, double flops,
                       std::span<const data::Access> accesses) {
  return submit(name, std::move(codelet), flops, accesses, 0.0);
}

std::vector<data::DataId> Runtime::partition_data(data::DataId parent,
                                                  std::size_t parts) {
  HETFLOW_REQUIRE_MSG(parent < data_.registry().count(),
                      "partition of unregistered handle");
  HETFLOW_REQUIRE_MSG(parts >= 1, "partition needs at least one part");
  if (is_partitioned(parent)) {
    throw InvalidArgument("handle is already partitioned");
  }
  if (child_parent_.count(parent) > 0 &&
      partitions_.at(child_parent_.at(parent)).active) {
    throw InvalidArgument("cannot partition a live partition child");
  }
  // Copy: registering children reallocates the registry's storage.
  const data::DataHandle parent_handle = data_.registry().handle(parent);
  const std::string parent_name(parent_handle.name);
  PartitionInfo info;
  info.active = true;
  const std::uint64_t block = parent_handle.bytes / parts;
  for (std::size_t i = 0; i < parts; ++i) {
    const std::uint64_t bytes =
        i + 1 == parts ? parent_handle.bytes - block * (parts - 1) : block;
    const data::DataId child = register_data(
        util::format("%s[%zu/%zu]", parent_name.c_str(), i, parts), bytes,
        parent_handle.home_node);
    // Children inherit the parent's ordering point: a child's first
    // reader/writer orders after whatever last wrote the parent.
    handle_uses_[child].last_writer = handle_uses_[parent].last_writer;
    child_parent_[child] = parent;
    info.children.push_back(child);
  }
  partitions_[parent] = std::move(info);
  return partitions_[parent].children;
}

void Runtime::unpartition_data(data::DataId parent) {
  const auto it = partitions_.find(parent);
  if (it == partitions_.end() || !it->second.active) {
    throw InvalidArgument("handle is not partitioned");
  }
  HandleUse& parent_use = handle_uses_[parent];
  for (data::DataId child : it->second.children) {
    // Everything that touched a child becomes an (unordered) predecessor
    // of the parent's next accessor — expressed via the redux list,
    // whose semantics are exactly "next read/write orders after all".
    HandleUse& child_use = handle_uses_[child];
    if (child_use.last_writer != kInvalidTask) {
      parent_use.redux_since_write.push_back(child_use.last_writer);
    }
    for (TaskId reader : child_use.readers_since_write) {
      parent_use.redux_since_write.push_back(reader);
    }
    for (TaskId contributor : child_use.redux_since_write) {
      parent_use.redux_since_write.push_back(contributor);
    }
  }
  it->second.active = false;
}

bool Runtime::is_partitioned(data::DataId parent) const {
  const auto it = partitions_.find(parent);
  return it != partitions_.end() && it->second.active;
}

TaskId Runtime::submit(std::string_view name, CodeletPtr codelet, double flops,
                       std::span<const data::Access> accesses,
                       double priority) {
  // The codelet must be runnable somewhere on this platform.
  bool supported = false;
  for (const hw::Device& device : platform_->devices()) {
    if (codelet->supports(device.type())) {
      supported = true;
      break;
    }
  }
  if (!supported) {
    throw InvalidArgument("codelet '" + codelet->name() +
                          "' runs on no device of platform '" +
                          platform_->name() + "'");
  }
  // Guard the per-access partition probes on the maps being non-empty:
  // runs that never partition (the 10^6-task regime) skip two hash
  // lookups per access.
  const bool partitions_possible = !partitions_.empty();
  std::uint64_t working_set = 0;
  for (const data::Access& access : accesses) {
    HETFLOW_REQUIRE_MSG(access.data < data_.registry().count(),
                        "task references an unregistered data handle");
    // infer_dependencies walks these same handles' use chains in a few
    // hundred cycles; start pulling the scattered rows now.
    util::prefetch_write(&handle_uses_[access.data]);
    working_set += data_.registry().handle(access.data).bytes;
    if (!partitions_possible) {
      continue;
    }
    if (is_partitioned(access.data)) {
      throw InvalidArgument(
          "task accesses handle '" +
          std::string(data_.registry().handle(access.data).name) +
          "' while it is partitioned — access its children instead");
    }
    const auto parent_it = child_parent_.find(access.data);
    if (parent_it != child_parent_.end() &&
        !partitions_.at(parent_it->second).active) {
      throw InvalidArgument(
          "task accesses partition child '" +
          std::string(data_.registry().handle(access.data).name) +
          "' after unpartition");
    }
  }
  if (options_.validate) {
    check::CheckReport report;
    report.merge(check::check_accesses(accesses, name));
    check::enforce(report);
  }
  const TaskId id = tasks_.size();
  Task& task = tasks_.emplace_back(id, names_.intern_view(name),
                                   std::move(codelet), flops, accesses);
  task.set_working_set_bytes(working_set);
  dep_mark_.push_back(0);  // ids are sequential; one stamp slot per task
  deps_open_.push_back(0);
  dependents_.emplace_back();
  task_states_.push_back(TaskState::Submitted);
  task.set_priority(priority);
  task.mutable_times().submitted = queue_.now();
  infer_dependencies(task);
  ++pending_;
  // A dependency abandoned in an earlier wave can never complete; the
  // new task is lost on arrival (and so is anything submitted on top).
  for (const TaskId dep : task.dependencies) {
    if (task_states_[dep] == TaskState::Abandoned) {
      abandon_task(task);
      break;
    }
  }
  return id;
}

Task& Runtime::task(TaskId id) {
  HETFLOW_REQUIRE_MSG(id < tasks_.size(), "task id out of range");
  return tasks_[id];
}

const Task& Runtime::task(TaskId id) const {
  HETFLOW_REQUIRE_MSG(id < tasks_.size(), "task id out of range");
  return tasks_[id];
}

std::uint64_t Runtime::unfinished_deps(TaskId id) const {
  HETFLOW_REQUIRE_MSG(id < deps_open_.size(), "task id out of range");
  return deps_open_[id];
}

const TaskIdList& Runtime::dependents(TaskId id) const {
  HETFLOW_REQUIRE_MSG(id < dependents_.size(), "task id out of range");
  return dependents_[id];
}

void Runtime::infer_dependencies(Task& task) {
  // Duplicate-parent detection by stamping: dep_mark_[p] == task.id() + 1
  // iff p was already recorded as a parent of *this* task. O(1) per edge,
  // no allocation, no clearing between submits (stamps from earlier tasks
  // are simply stale), and — unlike a hash set — iteration-order-free:
  // dependencies are recorded in exactly the order add_dep sees them,
  // which the static schedulers' tie-breaks depend on.
  const TaskId self = task.id();
  const TaskId stamp = self + 1;
  // Edges are recorded by TaskId against the dense side arrays only —
  // the parent Task object (5 cache lines, randomly placed) is never
  // loaded. On wide random DAGs this halves the submit path's working
  // set and is a measurable share of end-to-end throughput.
  const auto add_dep = [&](TaskId parent) {
    if (parent == kInvalidTask || parent == self) {
      return;
    }
    if (dep_mark_[parent] == stamp) {
      return;
    }
    dep_mark_[parent] = stamp;
    task.dependencies.push_back(parent);
    if (task_states_[parent] != TaskState::Completed) {
      dependents_[parent].push_back(self);
      ++deps_open_[self];
    }
  };
  for (const data::Access& access : task.accesses()) {
    HandleUse& use = handle_uses_[access.data];
    if (data::is_read(access.mode)) {
      add_dep(use.last_writer);  // RAW
      for (TaskId contributor : use.redux_since_write) {
        add_dep(contributor);  // read sees the combined reduction
      }
    }
    if (data::is_write(access.mode)) {
      add_dep(use.last_writer);  // WAW
      for (TaskId reader : use.readers_since_write) {
        add_dep(reader);  // WAR
      }
      for (TaskId contributor : use.redux_since_write) {
        add_dep(contributor);  // write overwrites the reduction result
      }
    }
    if (data::is_redux(access.mode)) {
      // Contributors order after the preceding writer and readers, but
      // NOT after each other — that is the whole point of Redux.
      add_dep(use.last_writer);
      for (TaskId reader : use.readers_since_write) {
        add_dep(reader);
      }
    }
  }
  // Second pass so a RW access doesn't register itself as its own parent.
  for (const data::Access& access : task.accesses()) {
    HandleUse& use = handle_uses_[access.data];
    if (data::is_write(access.mode)) {
      use.last_writer = self;
      use.readers_since_write.clear();
      use.redux_since_write.clear();
    }
    if (access.mode == data::AccessMode::Read) {
      use.readers_since_write.push_back(self);
    }
    if (data::is_redux(access.mode)) {
      use.redux_since_write.push_back(self);
    }
  }
}

// ---------------------------------------------------------------------------
// Execution engine
// ---------------------------------------------------------------------------

sim::SimTime Runtime::wait_all() {
  // Static pre-pass over every not-yet-completed task. Scans the dense
  // state mirror so repeated waves skip finished tasks without paging
  // their Task objects back in.
  std::vector<Task*> open_tasks;
  for (TaskId id = 0; id < task_states_.size(); ++id) {
    if (task_states_[id] == TaskState::Submitted) {
      open_tasks.push_back(&tasks_[id]);
    }
  }
  if (!open_tasks.empty()) {
    scheduler_->prepare(open_tasks);
    prepared_anything_ = true;
  }
  for (Task* task : open_tasks) {
    if (deps_open_[task->id()] == 0 && task->state() == TaskState::Submitted &&
        (deferred_.empty() || deferred_.count(task->id()) == 0)) {
      ready_or_defer(*task);
    }
  }
  pump_all();
  while (pending_ > 0) {
    if (recorder_ != nullptr) {
      recorder_->metrics()
          .time_weighted("event_queue_depth")
          .update(queue_.now(), static_cast<double>(queue_.pending()));
    }
    // Batched mode drains the whole same-timestamp completion batch and
    // pumps the schedulers once at its end (request_pump defers the
    // per-completion pump_all into pump_deferred_); legacy mode steps
    // one event and pumps inside the callback as before.
    const bool ran = options_.batch_completions ? queue_.drain_ready() > 0
                                                : queue_.step();
    if (!ready_batch_.empty()) {
      flush_ready_batch();
    }
    if (pump_deferred_) {
      pump_deferred_ = false;
      pump_all();
    }
    if (!ran) {
      // Drained with work outstanding: give pull-mode schedulers one more
      // chance, then declare deadlock.
      pump_all();
      if (pending_ > 0 && queue_.empty()) {
        throw InternalError(util::format(
            "scheduler '%s' stalled with %zu unfinished tasks",
            scheduler_->name().c_str(), pending_));
      }
    }
  }
  // The run is over: lift any still-pending quarantine (its probation
  // timer would otherwise linger in the queue past the drain). The
  // device re-enters the next wave on probation — a single failure
  // re-quarantines it.
  for (hw::DeviceId id = 0; id < device_states_.size(); ++id) {
    DeviceState& state = device_states_[id];
    if (state.probation_event != 0 && queue_.cancel(state.probation_event)) {
      health_.end_blacklist(id);
      cost_cache_.invalidate();
    }
    state.probation_event = 0;
  }
  finalize_stats();
  if (options_.validate) {
    check::enforce(check::audit_run(*this));
  }
  return queue_.now();
}

void Runtime::ready_or_defer(Task& task) {
  if (task.release_time() > queue_.now()) {
    deferred_.insert(task.id());
    queue_.schedule_at(task.release_time(), [this, &task] {
      deferred_.erase(task.id());
      if (task.state() == TaskState::Submitted) {
        make_ready(task);
        request_pump();
      }
    });
    return;
  }
  make_ready(task);
}

void Runtime::make_ready(Task& task) {
  HETFLOW_REQUIRE(task.state() == TaskState::Submitted);
  HETFLOW_REQUIRE(deps_open_[task.id()] == 0);
  set_task_state(task, TaskState::Ready);
  task.mutable_times().ready = queue_.now();
  scheduler_->on_task_ready(task);
}

void Runtime::internal_assign(Task& task, const hw::Device& device,
                              std::optional<std::size_t> dvfs) {
  HETFLOW_REQUIRE_MSG(task.state() == TaskState::Ready,
                      "assign() on a task that is not Ready");
  HETFLOW_REQUIRE_MSG(task.codelet().supports(device.type()),
                      "assigned task to a device type without implementation");
  if (dvfs.has_value()) {
    HETFLOW_REQUIRE_MSG(*dvfs < device.dvfs_states().size(),
                        "DVFS index out of range");
  }
  set_task_state(task, TaskState::Queued);
  task.set_device(device.id());
  task.set_dvfs_state(dvfs);
  DeviceState& state = device_states_[device.id()];
  state.queue.push_back(&task);
  task.queued_est_s = exec_estimate(task, device, dvfs);
  state.queued_est_seconds += task.queued_est_s;
  if (recorder_ != nullptr) {
    recorder_->metrics()
        .counter("tasks_scheduled", {{"device", device.name()},
                                     {"scheduler", scheduler_->name()}})
        .inc();
    recorder_->metrics()
        .time_weighted("queue_depth", device_labels(device))
        .update(queue_.now(), static_cast<double>(state.queue.size()));
  }
  if (options_.enable_prefetch) {
    // The task is Ready, so its inputs are final: start moving them now,
    // overlapping whatever the device is still executing.
    data_.prefetch(task.accesses(), device.memory_node(), queue_.now());
    prefetched_.insert(task.id());
  }
  pump_device(device.id());
}

void Runtime::pump_all() {
  for (hw::DeviceId id = 0; id < device_states_.size(); ++id) {
    pump_device(id);
  }
}

void Runtime::request_pump() {
  if (options_.batch_completions) {
    // Inside a drain batch: wait_all() pumps once after the whole
    // same-timestamp batch has been processed.
    pump_deferred_ = true;
    return;
  }
  pump_all();
}

void Runtime::flush_ready_batch() {
  // Two concerns meet here. Correctness: a fail/abandon event later in
  // the same drained batch may have doomed an id recorded earlier, so
  // each task is re-checked against the dense state mirror. Throughput:
  // the Ready transition is the first touch of a Task object placed at
  // the whim of submission order, so the batch is walked with the
  // objects prefetched a few iterations ahead — scattered stalls become
  // pipelined misses.
  constexpr std::size_t kPrefetchAhead = 8;
  for (std::size_t i = 0; i < ready_batch_.size(); ++i) {
    if (i + kPrefetchAhead < ready_batch_.size()) {
      util::prefetch_range_write(&tasks_[ready_batch_[i + kPrefetchAhead]],
                                 sizeof(Task));
    }
    const TaskId id = ready_batch_[i];
    if (task_states_[id] == TaskState::Submitted) {
      ready_or_defer(tasks_[id]);
    }
  }
  ready_batch_.clear();
}

void Runtime::pump_device(hw::DeviceId id) {
  DeviceState& state = device_states_[id];
  if (health_.blacklisted(id)) {
    // Quarantined: starts nothing until the probation timer fires (any
    // stragglers assigned meanwhile simply wait it out).
    return;
  }
  while (state.running == nullptr) {
    if (state.queue.empty()) {
      if (!scheduler_->has_retained_work()) {
        return;  // nothing to pull; skip the per-device probe
      }
      const hw::Device& device = platform_->device(id);
      Task* pulled = scheduler_->on_device_idle(device);
      if (pulled == nullptr) {
        return;
      }
      // Fused pull fast path: the queue is empty and the device idle, so
      // internal_assign would push the task only for start_next to pop
      // it back within this same call — and with no recorder, no
      // prefetch and no queued-estimate mass the round-trip (deque
      // churn, one exec_estimate, the est add/subtract that cancels to
      // exactly 0.0) is unobservable. Dispatch directly.
      if (recorder_ == nullptr && !options_.enable_prefetch &&
          state.queued_est_seconds == 0.0) {
        Task& task = *pulled;
        HETFLOW_REQUIRE_MSG(task.state() == TaskState::Ready,
                            "pulled task is not Ready");
        HETFLOW_REQUIRE_MSG(
            task.codelet().supports(device.type()),
            "pulled task lacks an implementation for this device type");
        set_task_state(task, TaskState::Queued);
        task.set_device(id);
        task.set_dvfs_state(std::nullopt);
        begin_execution(task, id);
        return;
      }
      internal_assign(*pulled, device, std::nullopt);
      // internal_assign recursed into pump_device; stop this frame.
      return;
    }
    start_next(id);
  }
}

std::size_t Runtime::dvfs_or_nominal(const Task& task,
                                     const hw::Device& device) const {
  return task.dvfs_state().value_or(device.nominal_dvfs_index());
}

void Runtime::start_next(hw::DeviceId id) {
  DeviceState& state = device_states_[id];
  HETFLOW_REQUIRE(state.running == nullptr && !state.queue.empty());
  Task& task = *state.queue.front();
  state.queue.pop_front();
  if (recorder_ != nullptr) {
    recorder_->metrics()
        .time_weighted("queue_depth", device_labels(platform_->device(id)))
        .update(queue_.now(), static_cast<double>(state.queue.size()));
  }
  state.queued_est_seconds =
      std::max(0.0, state.queued_est_seconds - task.queued_est_s);
  begin_execution(task, id);
}

void Runtime::begin_execution(Task& task, hw::DeviceId id) {
  DeviceState& state = device_states_[id];
  const hw::Device& device = platform_->device(id);
  set_task_state(task, TaskState::Running);
  task.note_attempt();
  if (task.attempts() > effective_max_attempts()) {
    throw Error(util::format("task '%s' exceeded %zu attempts",
                             std::string(task.name()).c_str(),
                             effective_max_attempts()));
  }

  const sim::SimTime now = queue_.now();
  // Hand prefetch pins over to the execution-time acquire. (Guard on
  // empty: the common no-prefetch run skips the hash probe per task.)
  if (!prefetched_.empty() && prefetched_.erase(task.id()) > 0) {
    data_.release_prefetch(task.accesses(), device.memory_node());
  }
  // Data transfers begin immediately; the launch overhead overlaps them.
  const sim::SimTime data_ready =
      data_.acquire(task.accesses(), device.memory_node(), now);
  const sim::SimTime start =
      std::max(now + device.launch_overhead_s(), data_ready);

  const std::size_t dvfs_index = dvfs_or_nominal(task, device);
  double pure_exec =
      task.codelet().compute_seconds(device, task.flops()) *
      device.time_scale(dvfs_index);
  if (options_.noise_cv > 0.0) {
    // Lognormal with unit mean: mu = -sigma^2/2.
    const double sigma =
        std::sqrt(std::log(1.0 + options_.noise_cv * options_.noise_cv));
    util::Rng attempt_rng =
        rng_.split(task.id() * 131 + task.attempts());
    pure_exec *= attempt_rng.lognormal(-sigma * sigma / 2.0, sigma);
  }

  // Fault injection: does this attempt die before finishing?
  std::optional<double> failure_at;
  if (options_.failure_model.enabled()) {
    util::Rng failure_rng =
        rng_.split(0x8000000000000000ULL ^ (task.id() * 131 + task.attempts()));
    failure_at = options_.failure_model.sample_failure(
        failure_rng, device.id(), device.type(), pure_exec);
  }

  state.running = &task;
  task.mutable_times().started = start;
  bool hung = false;
  if (failure_at.has_value()) {
    util::Rng hang_rng = rng_.split(0xC000000000000000ULL ^
                                    (task.id() * 131 + task.attempts()));
    hung = options_.failure_model.sample_hang(hang_rng);
  }
  if (hung) {
    // Fail-silent: the attempt dies at the sampled instant but no signal
    // is ever delivered — the device sits occupied until the timeout
    // watchdog (mandatory with hangs enabled; enforced in the ctor)
    // cancels the attempt.
    state.busy_until = std::numeric_limits<double>::infinity();
    state.completion_event = 0;
  } else if (failure_at.has_value()) {
    const sim::SimTime died = start + *failure_at;
    state.busy_until = died;
    state.completion_event =
        queue_.schedule_at(died, [this, &task, id, start, busy = *failure_at,
                                  dvfs_index] {
          fail_task(task, id, start, busy, dvfs_index);
        });
  } else {
    const sim::SimTime end = start + pure_exec;
    state.busy_until = end;
    state.completion_event =
        queue_.schedule_at(end, [this, &task, id, start, busy = pure_exec,
                                 dvfs_index] {
          finish_task(task, id, start, busy, dvfs_index);
        });
  }
  // Timeout watchdog: the attempt's wall budget runs from dispatch, so
  // data stalls count against it. Whichever of {completion, watchdog}
  // fires first cancels the other (EventQueue::cancel).
  state.watchdog_event = 0;
  if (options_.retry.timeout_s > 0.0) {
    const sim::SimTime deadline = now + options_.retry.timeout_s;
    if (deadline < state.busy_until) {
      state.busy_until = deadline;
    }
    state.watchdog_event =
        queue_.schedule_at(deadline, [this, &task, id, start, dvfs_index] {
          timeout_task(task, id, start, dvfs_index);
        });
  }
}

void Runtime::timeout_task(Task& task, hw::DeviceId id, sim::SimTime started,
                           std::size_t dvfs_index) {
  DeviceState& state = device_states_[id];
  const hw::Device& device = platform_->device(id);
  HETFLOW_REQUIRE(state.running == &task);
  state.watchdog_event = 0;
  // Cancel the in-flight completion: the attempt is dead the moment the
  // watchdog fires, even though the simulated execution would have ended
  // later. A hung attempt has no completion event to cancel.
  if (state.completion_event != 0) {
    HETFLOW_REQUIRE(queue_.cancel(state.completion_event));
    state.completion_event = 0;
  }
  state.running = nullptr;

  data_.release(task.accesses(), device.memory_node());
  // The device was occupied from attempt start until the cancellation.
  const double busy_s = std::max(0.0, queue_.now() - started);
  ++state.failed_attempts;
  ++state.timeouts;
  ++stats_.failed_attempts;
  ++stats_.timeouts;
  const double energy_j =
      perf::EnergyModel::busy_energy_j(device, dvfs_index, busy_s);
  state.busy_seconds += busy_s;
  state.busy_energy_j += energy_j;
  if (recorder_ != nullptr) {
    obs::MetricsRegistry& metrics = recorder_->metrics();
    const obs::Labels labels = device_labels(device);
    metrics.counter("failed_attempts", labels).inc();
    metrics.counter("timeouts", labels).inc();
    metrics.counter("busy_seconds", labels).inc(busy_s);
    metrics.counter("busy_energy_j", labels).inc(energy_j);
    obs::Event event;
    event.kind = obs::EventKind::Timeout;
    event.time = queue_.now();
    event.device = static_cast<std::int64_t>(id);
    event.task = task.id();
    event.aux = task.attempts();
    event.name = task.name();
    recorder_->record(std::move(event));
  }
  if (busy_s > 0.0) {
    tracer_.add(trace::Span{task.id(), task.name(), id, started, queue_.now(),
                            trace::SpanKind::FailedExec});
  }
  HETFLOW_DEBUG << "task '" << task.name() << "' timed out on "
                << device.name() << " after "
                << options_.retry.timeout_s << " s (attempt "
                << task.attempts() << ")";
  recover_attempt(task, id);
}

void Runtime::finish_task(Task& task, hw::DeviceId id, sim::SimTime started,
                          double busy_s, std::size_t dvfs_index) {
  DeviceState& state = device_states_[id];
  const hw::Device& device = platform_->device(id);
  HETFLOW_REQUIRE(state.running == &task);
  state.running = nullptr;
  state.completion_event = 0;
  if (state.watchdog_event != 0) {
    queue_.cancel(state.watchdog_event);
    state.watchdog_event = 0;
  }

  data_.release(task.accesses(), device.memory_node());
  if (health_.note_success(id)) {
    cost_cache_.invalidate();  // Probation -> Healthy transition
  }
  set_task_state(task, TaskState::Completed);
  task.mutable_times().completed = queue_.now();

  // Feed the measurement back, normalized to the nominal DVFS point.
  if (options_.use_history_model) {
    history_.record(task.codelet().id(), device.type(), task.flops(),
                    busy_s / device.time_scale(dvfs_index));
  }

  ++state.tasks_completed;
  const double energy_j =
      perf::EnergyModel::busy_energy_j(device, dvfs_index, busy_s);
  state.busy_seconds += busy_s;
  state.busy_energy_j += energy_j;
  if (recorder_ != nullptr) {
    obs::MetricsRegistry& metrics = recorder_->metrics();
    const obs::Labels labels = device_labels(device);
    metrics.counter("tasks_completed", labels).inc();
    metrics.counter("busy_seconds", labels).inc(busy_s);
    metrics.counter("busy_energy_j", labels).inc(energy_j);
  }
  if (tracer_.enabled()) {
    // Hoisted enabled check: Span construction copies the task name, a
    // real cost per task when tracing is off.
    tracer_.add(trace::Span{task.id(), task.name(), id, started,
                            queue_.now(), trace::SpanKind::Exec});
  }

  --pending_;
  scheduler_->on_task_complete(task);
  for (TaskId dependent_id : dependents_[task.id()]) {
    // Touch only the dense counter (and state mirror) per edge; the
    // Task object itself is loaded just once, when its last parent
    // completes.
    std::uint32_t& open = deps_open_[dependent_id];
    HETFLOW_REQUIRE(open > 0);
    if (--open == 0 && task_states_[dependent_id] == TaskState::Submitted) {
      if (options_.batch_completions) {
        // Deferred like the pump: the ids accumulate over the drained
        // batch and flush_ready_batch() releases them together, so the
        // scattered Task objects can be prefetched ahead. Same release
        // order; the scheduler just sees the batch's completions first.
        ready_batch_.push_back(dependent_id);
      } else {
        ready_or_defer(tasks_[dependent_id]);
      }
    }
  }
  request_pump();
}

void Runtime::fail_task(Task& task, hw::DeviceId id, sim::SimTime started,
                        double busy_s, std::size_t dvfs_index) {
  DeviceState& state = device_states_[id];
  const hw::Device& device = platform_->device(id);
  HETFLOW_REQUIRE(state.running == &task);
  state.running = nullptr;
  state.completion_event = 0;
  if (state.watchdog_event != 0) {
    queue_.cancel(state.watchdog_event);
    state.watchdog_event = 0;
  }

  data_.release(task.accesses(), device.memory_node());
  ++state.failed_attempts;
  ++stats_.failed_attempts;
  const double energy_j =
      perf::EnergyModel::busy_energy_j(device, dvfs_index, busy_s);
  state.busy_seconds += busy_s;
  state.busy_energy_j += energy_j;
  if (recorder_ != nullptr) {
    obs::MetricsRegistry& metrics = recorder_->metrics();
    const obs::Labels labels = device_labels(device);
    metrics.counter("failed_attempts", labels).inc();
    metrics.counter("busy_seconds", labels).inc(busy_s);
    metrics.counter("busy_energy_j", labels).inc(energy_j);
  }
  tracer_.add(trace::Span{task.id(), task.name(), id, started, queue_.now(),
                          trace::SpanKind::FailedExec});
  HETFLOW_DEBUG << "task '" << task.name() << "' failed on " << device.name()
                << " (attempt " << task.attempts() << ")";
  recover_attempt(task, id);
}

void Runtime::recover_attempt(Task& task, hw::DeviceId id) {
  // Health tracking first: this failure may quarantine the device, which
  // also decides where the retry itself may go.
  if (health_.note_failure(id, options_.retry.blacklist_after,
                           queue_.now() + options_.retry.probation_s)) {
    blacklist_device(id);
  }

  // Attempt budget under Drop: the task (and its dependent subtree) is
  // abandoned instead of aborting the run. Under Abort the existing
  // guard in start_next throws when the next attempt begins.
  if (options_.retry.on_exhausted == ExhaustionPolicy::Drop &&
      task.attempts() >= effective_max_attempts()) {
    abandon_task(task);
    request_pump();
    return;
  }

  // Exponential backoff with deterministic jitter: the retry re-enters
  // the system only after the delay. A zero delay requeues inline,
  // which keeps legacy runs (no backoff configured) byte-identical.
  double delay = 0.0;
  if (options_.retry.backoff_base_s > 0.0) {
    util::Rng jitter_rng =
        rng_.split(0x4000000000000000ULL ^ (task.id() * 131 + task.attempts()));
    delay = options_.retry.backoff_delay_s(task.attempts(), jitter_rng);
  }
  if (delay <= 0.0) {
    requeue_attempt(task, id);
    request_pump();
    return;
  }
  set_task_state(task, TaskState::Ready);  // in backoff limbo, owned by no queue
  queue_.schedule_after(delay, [this, &task, id] {
    if (task.state() != TaskState::Ready) {
      return;  // abandoned while backing off
    }
    requeue_attempt(task, id);
    request_pump();
  });
}

void Runtime::requeue_attempt(Task& task, hw::DeviceId device_id) {
  if (recorder_ != nullptr) {
    recorder_->metrics()
        .counter("retry_attempts",
                 device_labels(platform_->device(device_id)))
        .inc();
    obs::Event event;
    event.kind = obs::EventKind::Retry;
    event.time = queue_.now();
    event.device = static_cast<std::int64_t>(device_id);
    event.task = task.id();
    event.aux = task.attempts();
    event.name = task.name();
    recorder_->record(std::move(event));
  }
  FailurePolicy policy = options_.failure_policy;
  // A quarantined device cannot take its own retry: divert to the
  // scheduler so the task lands on a surviving device. (Blacklisting
  // requires a dynamic scheduler — enforced at construction.)
  if (policy == FailurePolicy::RetrySameDevice &&
      health_.blacklisted(device_id)) {
    policy = FailurePolicy::Reschedule;
  }
  switch (policy) {
    case FailurePolicy::RetrySameDevice: {
      const hw::Device& device = platform_->device(device_id);
      DeviceState& state = device_states_[device_id];
      set_task_state(task, TaskState::Queued);
      state.queue.push_front(&task);
      task.queued_est_s = exec_estimate(task, device, task.dvfs_state());
      state.queued_est_seconds += task.queued_est_s;
      if (recorder_ != nullptr) {
        recorder_->metrics()
            .time_weighted("queue_depth", device_labels(device))
            .update(queue_.now(), static_cast<double>(state.queue.size()));
      }
      break;
    }
    case FailurePolicy::Reschedule: {
      // Runtime-boundary check: a rescheduled attempt re-enters
      // on_task_ready, which a static (full-graph) plan cannot absorb —
      // the policy would either trip a deep plan-table assertion or
      // silently hold the task forever and stall the run.
      if (scheduler_->requires_full_graph()) {
        throw InvalidArgument(util::format(
            "static scheduler '%s' cannot accept dynamically submitted "
            "tasks: FailurePolicy::Reschedule hands failed attempts back "
            "to the scheduler at run time; use "
            "FailurePolicy::RetrySameDevice or a dynamic policy",
            scheduler_->name().c_str()));
      }
      set_task_state(task, TaskState::Ready);
      task.set_dvfs_state(std::nullopt);
      scheduler_->on_task_failed(task, device_id);
      scheduler_->on_task_ready(task);
      break;
    }
  }
}

void Runtime::blacklist_device(hw::DeviceId device_id) {
  const hw::Device& device = platform_->device(device_id);
  DeviceState& state = device_states_[device_id];
  ++stats_.blacklist_events;
  // Health transition (Healthy/Probation -> Blacklisted): drop the cost
  // memo so no estimate computed against the pre-quarantine device set
  // survives the transition.
  cost_cache_.invalidate();
  if (recorder_ != nullptr) {
    recorder_->metrics()
        .counter("blacklist_events", device_labels(device))
        .inc();
    obs::Event event;
    event.kind = obs::EventKind::Blacklist;
    event.time = queue_.now();
    event.device = static_cast<std::int64_t>(device_id);
    event.name = device.name();
    recorder_->record(std::move(event));
  }
  HETFLOW_DEBUG << "device " << device.name() << " blacklisted after "
                << health_.consecutive_failures(device_id)
                << " consecutive failures (probation in "
                << options_.retry.probation_s << " s)";

  // Hand the queued tasks back to the scheduler so the run degrades
  // onto the surviving devices instead of stalling behind the sick one.
  std::deque<Task*> orphaned;
  orphaned.swap(state.queue);
  state.queued_est_seconds = 0.0;
  for (Task* orphan : orphaned) {
    if (prefetched_.erase(orphan->id()) > 0) {
      data_.release_prefetch(orphan->accesses(), device.memory_node());
    }
    set_task_state(*orphan, TaskState::Ready);
    orphan->set_dvfs_state(std::nullopt);
    scheduler_->on_task_ready(*orphan);
  }

  // Probation timer: the device re-enters service tentatively — one
  // more failure before a success re-quarantines it immediately.
  state.probation_event =
      queue_.schedule_after(options_.retry.probation_s, [this, device_id] {
        device_states_[device_id].probation_event = 0;
        health_.end_blacklist(device_id);
        cost_cache_.invalidate();  // Blacklisted -> Probation transition
        if (recorder_ != nullptr) {
          obs::Event event;
          event.kind = obs::EventKind::Probation;
          event.time = queue_.now();
          event.device = static_cast<std::int64_t>(device_id);
          event.name = platform_->device(device_id).name();
          recorder_->record(std::move(event));
        }
        pump_device(device_id);
      });
}

void Runtime::abandon_task(Task& task) {
  std::vector<Task*> frontier = {&task};
  while (!frontier.empty()) {
    Task* doomed = frontier.back();
    frontier.pop_back();
    if (doomed->state() == TaskState::Abandoned ||
        doomed->state() == TaskState::Completed) {
      continue;
    }
    HETFLOW_DEBUG << "abandoning task '" << doomed->name() << "' ("
                  << (doomed == &task ? "attempt budget exhausted"
                                      : "dependency abandoned")
                  << ")";
    set_task_state(*doomed, TaskState::Abandoned);
    ++stats_.tasks_lost;
    if (recorder_ != nullptr) {
      recorder_->metrics().counter("tasks_lost").inc();
      obs::Event event;
      event.kind = obs::EventKind::Abandon;
      event.time = queue_.now();
      event.task = doomed->id();
      event.name = doomed->name();
      recorder_->record(std::move(event));
    }
    HETFLOW_REQUIRE(pending_ > 0);
    --pending_;
    deferred_.erase(doomed->id());
    if (prefetched_.erase(doomed->id()) > 0) {
      data_.release_prefetch(
          doomed->accesses(),
          platform_->device(doomed->device()).memory_node());
    }
    for (TaskId dependent : dependents_[doomed->id()]) {
      frontier.push_back(&tasks_[dependent]);
    }
  }
}

std::size_t Runtime::effective_max_attempts() const noexcept {
  return options_.retry.max_attempts > 0 ? options_.retry.max_attempts
                                         : options_.max_attempts;
}

double Runtime::exec_estimate(const Task& task, const hw::Device& device,
                              std::optional<std::size_t> dvfs) const {
  if (!options_.memoize_costs) {
    // Reference path: the pre-memoization computation, kept verbatim as
    // the oracle for the memo-vs-direct bitwise property test.
    if (!task.codelet().supports(device.type())) {
      return std::numeric_limits<double>::infinity();
    }
    // A device whose memory cannot hold the task's working set even when
    // empty is not a feasible target; cost-model policies route around it.
    std::uint64_t working_set = 0;
    for (const data::Access& access : task.accesses()) {
      working_set += data_.registry().handle(access.data).bytes;
    }
    if (working_set >
        platform_->memory_node(device.memory_node()).capacity_bytes()) {
      return std::numeric_limits<double>::infinity();
    }
    double pure = -1.0;
    if (options_.use_history_model) {
      pure =
          history_.estimate(task.codelet().id(), device.type(), task.flops());
    }
    if (pure < 0.0) {
      pure = task.codelet().compute_seconds(device, task.flops());
    }
    const std::size_t index = dvfs.value_or(device.nominal_dvfs_index());
    return device.launch_overhead_s() + pure * device.time_scale(index);
  }

  // Memoized path — bitwise-identical to the reference above: the entry
  // caches the exact analytic denominator (divided per call, never its
  // reciprocal) and the calibrated mean seconds-per-flop under the
  // history model's current version; the working set was summed once at
  // submit in the same access order.
  const CostModelCache::Entry& entry = cost_cache_.entry(
      task.codelet(), device,
      options_.use_history_model ? &history_ : nullptr);
  if (!entry.supported) {
    return std::numeric_limits<double>::infinity();
  }
  if (task.working_set_bytes() > entry.capacity_bytes) {
    return std::numeric_limits<double>::infinity();
  }
  double pure = 0.0;
  if (entry.hist_spf >= 0.0) {
    pure = entry.hist_spf * task.flops();
  } else if (task.flops() > 0.0) {
    pure = task.flops() / entry.denom;
  }
  const std::size_t index = dvfs.value_or(entry.nominal_dvfs);
  return entry.launch_overhead_s + pure * device.time_scale(index);
}

void Runtime::finalize_stats() {
  stats_.makespan_s = queue_.now();
  stats_.tasks_completed = 0;
  for (const TaskState state : task_states_) {
    if (state == TaskState::Completed) {
      ++stats_.tasks_completed;
    }
  }
  for (std::size_t i = 0; i < device_states_.size(); ++i) {
    const DeviceState& state = device_states_[i];
    DeviceRunStats& out = stats_.devices[i];
    out.tasks_completed = state.tasks_completed;
    out.failed_attempts = state.failed_attempts;
    out.timeouts = state.timeouts;
    out.blacklist_events =
        health_.blacklist_events(static_cast<hw::DeviceId>(i));
    out.busy_seconds = state.busy_seconds;
    out.busy_energy_j = state.busy_energy_j;
    out.idle_energy_j = perf::EnergyModel::idle_energy_j(
        platform_->device(static_cast<hw::DeviceId>(i)),
        stats_.makespan_s - state.busy_seconds);
  }
  stats_.transfers = data_.transfers().stats();
  stats_.data = data_.stats();
  if (recorder_ != nullptr) {
    obs::MetricsRegistry& metrics = recorder_->metrics();
    metrics.gauge("makespan_s").set(stats_.makespan_s);
    metrics.gauge("events_executed")
        .set(static_cast<double>(queue_.executed()));
    metrics.gauge("event_queue_peak_pending")
        .set(static_cast<double>(queue_.peak_pending()));
  }
}

}  // namespace hetflow::core
