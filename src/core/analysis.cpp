#include "core/analysis.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace hetflow::core {

ScheduleAnalysis analyze_schedule(const Runtime& runtime) {
  HETFLOW_REQUIRE_MSG(runtime.tracer().enabled(),
                      "analysis needs a recorded trace");
  ScheduleAnalysis analysis;

  // Successful execution windows, keyed by task.
  std::map<TaskId, const trace::Span*> span_of;
  for (const trace::Span& span : runtime.tracer().spans()) {
    if (span.kind == trace::SpanKind::Exec) {
      span_of[span.task_id] = &span;
      analysis.makespan = std::max(analysis.makespan, span.end);
    }
  }
  if (span_of.empty()) {
    return analysis;
  }

  // Per-device execution order (to find "device predecessor" constraints).
  std::map<hw::DeviceId, std::vector<const trace::Span*>> per_device;
  for (const auto& [id, span] : span_of) {
    per_device[span->device].push_back(span);
  }
  for (auto& [device, spans] : per_device) {
    std::sort(spans.begin(), spans.end(),
              [](const trace::Span* a, const trace::Span* b) {
                return a->start < b->start;
              });
  }
  const auto device_predecessor =
      [&](const trace::Span& span) -> const trace::Span* {
    const auto& spans = per_device[span.device];
    const trace::Span* prev = nullptr;
    for (const trace::Span* candidate : spans) {
      if (candidate->task_id == span.task_id) {
        break;
      }
      prev = candidate;
    }
    return prev;
  };

  // Timings + waits.
  for (const auto& [id, span] : span_of) {
    const Task& task = runtime.task(id);
    TaskTiming timing;
    timing.task = id;
    timing.name = span->name;
    timing.device = span->device;
    timing.start = span->start;
    timing.end = span->end;
    timing.wait = span->start - task.times().ready;
    analysis.tasks.push_back(timing);
  }

  // Realized critical path: walk back from the last finisher. At each
  // hop, the binding constraint is whichever finished latest among (a)
  // dependencies and (b) the task that ran immediately before on the
  // same device. Stop when the task started at its ready time with no
  // binding predecessor.
  const trace::Span* cursor = nullptr;
  for (const auto& [id, span] : span_of) {
    if (cursor == nullptr || span->end > cursor->end) {
      cursor = span;
    }
  }
  std::vector<TaskId> path;
  while (cursor != nullptr) {
    path.push_back(cursor->task_id);
    analysis.critical_exec_seconds += cursor->duration();
    const Task& task = runtime.task(cursor->task_id);
    const trace::Span* binding = nullptr;
    for (TaskId dep : task.dependencies) {
      const auto it = span_of.find(dep);
      if (it != span_of.end() &&
          (binding == nullptr || it->second->end > binding->end)) {
        binding = it->second;
      }
    }
    const trace::Span* prev_on_device = device_predecessor(*cursor);
    if (prev_on_device != nullptr &&
        (binding == nullptr || prev_on_device->end > binding->end)) {
      // Only binding if the device hand-off actually gated the start.
      if (prev_on_device->end > cursor->start - 1e-12 ||
          binding == nullptr) {
        binding = prev_on_device;
      }
    }
    // A release-time or transfer-bound start has no task predecessor.
    if (binding == nullptr || binding->end <= 1e-12) {
      cursor = binding;
      if (cursor != nullptr) {
        path.push_back(cursor->task_id);
        analysis.critical_exec_seconds += cursor->duration();
      }
      break;
    }
    cursor = binding;
  }
  std::reverse(path.begin(), path.end());
  analysis.critical_path = std::move(path);

  // Slack: forward tolerance per task = min over dependents of (dependent
  // start - this end), and makespan - end for terminal tasks.
  for (TaskTiming& timing : analysis.tasks) {
    double slack = analysis.makespan - timing.end;
    for (TaskId dependent : runtime.dependents(timing.task)) {
      const auto it = span_of.find(dependent);
      if (it != span_of.end()) {
        slack = std::min(slack, it->second->start - timing.end);
      }
    }
    timing.slack = std::max(0.0, slack);
  }
  return analysis;
}

RunStats apply_sleep_model(const Runtime& runtime,
                           const SleepPolicy& policy) {
  HETFLOW_REQUIRE_MSG(runtime.tracer().enabled(),
                      "sleep model needs a recorded trace");
  HETFLOW_REQUIRE_MSG(policy.threshold_s >= 0.0 && policy.sleep_watts >= 0.0,
                      "sleep policy parameters cannot be negative");
  RunStats stats = runtime.stats();
  const hw::Platform& platform = runtime.platform();
  // Busy intervals per device (successful and failed attempts both keep
  // the device out of sleep).
  std::vector<std::vector<std::pair<double, double>>> busy(
      platform.device_count());
  for (const trace::Span& span : runtime.tracer().spans()) {
    busy[span.device].push_back({span.start, span.end});
  }
  for (std::size_t d = 0; d < busy.size(); ++d) {
    std::sort(busy[d].begin(), busy[d].end());
    const hw::Device& device = platform.device(static_cast<hw::DeviceId>(d));
    const double idle_watts = device.nominal_dvfs().idle_watts;
    double energy = 0.0;
    double cursor = 0.0;
    const auto account_gap = [&](double gap) {
      if (gap <= 0.0) {
        return;
      }
      const double awake = std::min(gap, policy.threshold_s);
      energy += idle_watts * awake +
                policy.sleep_watts * (gap - awake);
    };
    for (const auto& [start, end] : busy[d]) {
      account_gap(start - cursor);
      cursor = std::max(cursor, end);
    }
    account_gap(stats.makespan_s - cursor);
    stats.devices[d].idle_energy_j = energy;
  }
  return stats;
}

std::string critical_path_report(const ScheduleAnalysis& analysis,
                                 std::size_t max_rows) {
  std::ostringstream out;
  out << util::format(
      "makespan %.4f s; realized critical path: %zu tasks, %.4f s compute "
      "(%.1f%% of makespan)\n",
      analysis.makespan, analysis.critical_path.size(),
      analysis.critical_exec_seconds,
      analysis.critical_compute_fraction() * 100.0);

  std::map<TaskId, const TaskTiming*> timing_of;
  for (const TaskTiming& timing : analysis.tasks) {
    timing_of[timing.task] = &timing;
  }
  util::Table table({"#", "task", "device", "start", "end", "wait"});
  std::size_t row = 0;
  for (TaskId id : analysis.critical_path) {
    if (row >= max_rows) {
      break;
    }
    const TaskTiming* t = timing_of.at(id);
    table.add_row({std::to_string(row), t->name, std::to_string(t->device),
                   util::format("%.4f", t->start),
                   util::format("%.4f", t->end),
                   util::format("%.4f", t->wait)});
    ++row;
  }
  out << table.render();
  return out.str();
}

}  // namespace hetflow::core
