#include "core/stats.hpp"

#include <sstream>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace hetflow::core {

double RunStats::total_busy_seconds() const noexcept {
  double total = 0.0;
  for (const DeviceRunStats& d : devices) {
    total += d.busy_seconds;
  }
  return total;
}

double RunStats::busy_energy_j() const noexcept {
  double total = 0.0;
  for (const DeviceRunStats& d : devices) {
    total += d.busy_energy_j;
  }
  return total;
}

double RunStats::idle_energy_j() const noexcept {
  double total = 0.0;
  for (const DeviceRunStats& d : devices) {
    total += d.idle_energy_j;
  }
  return total;
}

double RunStats::mean_utilization() const noexcept {
  if (devices.empty() || makespan_s <= 0.0) {
    return 0.0;
  }
  double total = 0.0;
  for (const DeviceRunStats& d : devices) {
    total += d.busy_seconds / makespan_s;
  }
  return total / static_cast<double>(devices.size());
}

std::string RunStats::summary(const hw::Platform& platform) const {
  std::ostringstream out;
  out << "makespan " << util::human_seconds(makespan_s) << ", "
      << tasks_completed << " tasks, " << failed_attempts
      << " failed attempts";
  if (timeouts > 0) {
    out << " (" << timeouts << " timeouts)";
  }
  if (tasks_lost > 0) {
    out << ", " << tasks_lost << " tasks LOST";
  }
  if (blacklist_events > 0) {
    out << ", " << blacklist_events << " blacklist events";
  }
  out << ", energy " << util::format("%.1f J", total_energy_j())
      << " (busy " << util::format("%.1f", busy_energy_j()) << " + idle "
      << util::format("%.1f", idle_energy_j()) << "), "
      << util::human_bytes(static_cast<double>(transfers.bytes_moved))
      << " moved in " << transfers.transfer_count << " transfers, mean util "
      << util::format("%.1f%%", mean_utilization() * 100.0) << '\n';
  util::Table table({"device", "type", "tasks", "failed", "busy", "util%",
                     "energy J"});
  for (const DeviceRunStats& d : devices) {
    const hw::Device& device = platform.device(d.device);
    table.add_row(
        {device.name(), hw::to_string(device.type()),
         std::to_string(d.tasks_completed), std::to_string(d.failed_attempts),
         util::human_seconds(d.busy_seconds),
         util::format("%.1f", makespan_s > 0
                                  ? d.busy_seconds / makespan_s * 100.0
                                  : 0.0),
         util::format("%.1f", d.busy_energy_j + d.idle_energy_j)});
  }
  out << table.render();
  return out.str();
}

}  // namespace hetflow::core
