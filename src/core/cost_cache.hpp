// CostModelCache — memoized (codelet, device) cost-model terms.
//
// Every scheduler candidate loop funnels through
// SchedContext::estimate_exec_seconds / estimate_completion /
// estimate_energy, and before this cache each call re-derived the same
// per-(codelet, device) constants: the analytic denominator
// peak_gflops * 1e9 * efficiency, the device's memory-node capacity and
// launch overhead, and — when the history model is on — a hash lookup of
// the calibrated seconds-per-flop keyed (codelet, device *type*), the
// Reshi/Tarema-style keying that makes the model memoizable at all. At
// 10^6 tasks × ~8 device candidates that is millions of redundant
// recomputations.
//
// The cache stores one Entry per (codelet id, device id) in a flat arena
// indexed through a tiny open-addressing table keyed by codelet id (one
// integer probe on the hot path, no std::hash). Bitwise contract: an
// estimate computed through the cache is identical to the direct
// computation — the denominator is cached as the *exact* expression the
// analytic model evaluates (not its reciprocal; multiply-by-reciprocal
// rounds differently than divide), and the history term caches the mean
// seconds-per-flop, whose product with flops is precisely
// HistoryModel::estimate(). Property-tested in tests/core_memo_test.cpp.
//
// Invalidation: history drift is tracked automatically through
// HistoryModel::version() (each entry snapshots the generation it read).
// Platform mutations — DVFS table edits, capacity changes, device
// addition — are *not* observable from here; whoever mutates the
// platform must call invalidate() (Runtime::invalidate_cost_cache()
// re-exports it). The platform is immutable during a normal run, so the
// hot path never pays for that case.
#pragma once

#include <cstdint>
#include <vector>

#include "core/codelet.hpp"
#include "hw/platform.hpp"
#include "perf/history_model.hpp"

namespace hetflow::core {

class CostModelCache {
 public:
  struct Entry {
    /// peak_gflops * 1e9 * efficiency — the exact denominator
    /// Codelet::compute_seconds divides by. Valid only when supported.
    double denom = 0.0;
    double launch_overhead_s = 0.0;
    /// Calibrated mean seconds-per-flop, negative when uncalibrated
    /// (fall back to the analytic denominator).
    double hist_spf = -1.0;
    /// HistoryModel::version() at which hist_spf was snapshotted.
    std::uint64_t hist_gen = kNeverRefreshed;
    std::uint64_t capacity_bytes = 0;
    std::uint32_t nominal_dvfs = 0;
    bool supported = false;
  };

  /// Binds the cache to a platform. Entries are filled lazily per
  /// codelet; drops anything cached against a previous platform.
  void attach(const hw::Platform& platform) {
    platform_ = &platform;
    invalidate();
  }

  /// The entry for (codelet, device), refreshing its history snapshot if
  /// `history` (nullable — analytic-only runs pass nullptr) has recorded
  /// since the last read. The reference is invalidated by the next
  /// entry() call — read the fields before touching the cache again.
  const Entry& entry(const Codelet& codelet, const hw::Device& device,
                     const perf::HistoryModel* history) {
    Entry* row = find_row(codelet);
    Entry& slot = row[device.id()];
    if (history != nullptr && slot.supported &&
        slot.hist_gen != history->version()) {
      slot.hist_spf = history->seconds_per_flop(codelet.id(), device.type());
      slot.hist_gen = history->version();
    }
    return slot;
  }

  /// Drops every cached entry; they refill lazily. Must be called after
  /// any platform mutation (DVFS tables, capacities, device set) — see
  /// the invalidation contract above. The Runtime also calls this on
  /// every DeviceHealth blacklist transition (quarantine, probation,
  /// recovery): the cached terms themselves are health-independent, but
  /// dropping the memo on each transition keeps the contract simple and
  /// future-proofs any entry field that starts depending on health.
  void invalidate();

  /// Codelets currently cached (observability / tests).
  std::size_t cached_codelets() const noexcept { return filled_; }

  /// Times invalidate() has run since construction (observability /
  /// tests — regression coverage that health transitions drop the memo).
  std::uint64_t invalidations() const noexcept { return invalidations_; }

 private:
  static constexpr std::uint64_t kNeverRefreshed =
      0xffffffffffffffffULL;
  struct IndexSlot {
    std::uint32_t key = 0;  ///< codelet id + 1; 0 = empty
    std::uint32_t row = 0;  ///< offset into entries_ (units of Entry)
  };

  Entry* find_row(const Codelet& codelet) {
    if (index_.empty()) {
      grow_index();
    }
    const std::uint32_t key = codelet.id() + 1;
    std::size_t mask = index_.size() - 1;
    std::size_t pos = (codelet.id() * 2654435761U) & mask;
    while (true) {
      const IndexSlot& slot = index_[pos];
      if (slot.key == key) {
        return entries_.data() + slot.row;
      }
      if (slot.key == 0) {
        return fill_row(codelet);  // cold: first sight of this codelet
      }
      pos = (pos + 1) & mask;
    }
  }

  /// Appends a row of per-device entries for `codelet` and indexes it.
  Entry* fill_row(const Codelet& codelet);
  void grow_index();

  const hw::Platform* platform_ = nullptr;
  std::vector<Entry> entries_;     ///< filled_ rows × device_count
  std::vector<IndexSlot> index_;   ///< open addressing, power-of-two size
  std::size_t filled_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace hetflow::core
