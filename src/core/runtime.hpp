// Runtime — hetflow's execution engine and primary public API.
//
// Usage:
//
//   hw::Platform platform = hw::make_workstation();
//   Runtime rt(platform, sched::make_scheduler("dmda"));
//   auto a = rt.register_data("A", 8 * N * N);
//   auto gemm = Codelet::make("gemm", {{DeviceType::Cpu, 0.6},
//                                      {DeviceType::Gpu, 0.85}});
//   rt.submit("gemm0", gemm, 2.0 * N * N * N, {{a, AccessMode::ReadWrite}});
//   rt.wait_all();
//   std::cout << rt.stats().summary(platform);
//
// Dependencies between tasks are inferred from their data accesses under
// sequential consistency per handle (StarPU's implicit mode): a reader
// depends on the last writer; a writer depends on the last writer and on
// every reader since (RAW, WAW, WAR). Execution happens in simulated time
// on the platform model — deterministic for a given seed.
#pragma once

#include <deque>
#include <initializer_list>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "core/codelet.hpp"
#include "core/cost_cache.hpp"
#include "core/retry.hpp"
#include "core/scheduler.hpp"
#include "core/stats.hpp"
#include "core/task.hpp"
#include "data/manager.hpp"
#include "hw/failure.hpp"
#include "hw/platform.hpp"
#include "obs/recorder.hpp"
#include "perf/history_model.hpp"
#include "sim/event_queue.hpp"
#include "trace/tracer.hpp"
#include "util/interner.hpp"
#include "util/rng.hpp"
#include "util/stable_vector.hpp"

namespace hetflow::core {

/// What to do when fault injection kills a task attempt.
enum class FailurePolicy : std::uint8_t {
  RetrySameDevice = 0,  ///< re-run at the front of the same device's queue
  Reschedule,           ///< hand the task back to the scheduler
};

struct RuntimeOptions {
  std::uint64_t seed = 42;
  /// Coefficient of variation of lognormal execution-time noise
  /// (0 = exact cost model).
  double noise_cv = 0.0;
  hw::FailureModel failure_model;
  FailurePolicy failure_policy = FailurePolicy::RetrySameDevice;
  /// A task attempt beyond this count aborts the run (guards against
  /// pathological failure rates). RetryPolicy::max_attempts, when set,
  /// takes precedence; RetryPolicy::on_exhausted decides abort vs drop.
  std::size_t max_attempts = 50;
  /// Fault-tolerance knobs: retry backoff, per-attempt timeout, device
  /// blacklisting (see core/retry.hpp). Defaults preserve the legacy
  /// immediate-retry behaviour byte-for-byte.
  RetryPolicy retry;
  bool record_trace = true;
  /// Feed measured execution times back into the history model used for
  /// estimates (on-line calibration).
  bool use_history_model = true;
  /// Start moving a task's inputs toward its device the moment it is
  /// queued (overlapping transfers with the device's current execution)
  /// instead of at task start. Off by default so baseline experiments
  /// isolate scheduling effects.
  bool enable_prefetch = false;
  /// hetflow-verify: run submit-time access-list checks and, inside
  /// wait_all(), the full end-of-run audit (happens-before race
  /// detector, trace timeline, coherence-directory invariants,
  /// event-queue drain). Violations throw check::ValidationError.
  bool validate = false;
  /// Observability layer: collect the typed metrics registry, the
  /// structured event log (transfers, prefetches, retries, blacklists)
  /// and the scheduler decision log — surfaced via recorder(). Off by
  /// default; the off path leaves every legacy output byte-identical.
  bool metrics = false;
  /// Drain same-timestamp completion batches through
  /// EventQueue::drain_ready() and probe the schedulers once per batch
  /// instead of once per completion. Deterministic for a given seed, but
  /// NOT stream-identical to the unbatched engine: deferring the pump
  /// changes which device pulls which ready task within a timestamp, so
  /// it is opt-in to keep legacy traces byte-for-byte (the throughput
  /// benches and batching tests turn it on; see docs/performance.md).
  bool batch_completions = false;
  /// Memoize the per-(codelet, device) cost-model terms (analytic
  /// denominator, capacity bound, calibrated seconds-per-flop) behind
  /// estimate_exec_seconds/estimate_completion/estimate_energy.
  /// Bitwise-identical to the direct computation (property-tested in
  /// tests/core_memo_test.cpp); the off switch exists as the reference
  /// path for that proof.
  bool memoize_costs = true;
  /// Capacity hints: expected task / data-handle counts for this run
  /// (0 = unknown). When set, the constructor pre-allocates and
  /// pre-faults the per-task and per-handle pools so the submit loop
  /// pays no chunk allocations, vector growth copies, or first-touch
  /// page faults. Pure reservation — the submit/registration sequence
  /// and every simulated result are identical with or without hints
  /// (property-tested in core_memo_test). Over- or under-estimating is
  /// safe; growth past a hint falls back to the normal amortized path.
  std::size_t expected_tasks = 0;
  std::size_t expected_data = 0;
};

class Runtime {
 public:
  Runtime(const hw::Platform& platform, std::unique_ptr<Scheduler> scheduler,
          RuntimeOptions options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Registers a datum with its initial copy on `home_node`. The name is
  /// interned by the data registry — no per-handle string allocation.
  data::DataId register_data(std::string_view name, std::uint64_t bytes,
                             hw::MemoryNodeId home_node = 0);

  /// Splits `parent` into `parts` equal block children (last child takes
  /// the remainder) so tasks can work on blocks in parallel. While the
  /// partition is active, submitting a task that accesses `parent` is an
  /// error. Tasks writing a child transparently order after the parent's
  /// previous writer. Returns the child handles.
  ///
  /// Timing approximation: children are fresh handles homed with the
  /// parent; the split/gather itself is treated as free (block
  /// partitioning is a pointer adjustment in a real runtime).
  std::vector<data::DataId> partition_data(data::DataId parent,
                                           std::size_t parts);

  /// Ends the partition: `parent` becomes accessible again and its next
  /// accessors order after every task that touched any child; the
  /// children become inaccessible.
  void unpartition_data(data::DataId parent);

  /// True while `parent` is split into live children.
  bool is_partitioned(data::DataId parent) const;

  /// Submits one task. Dependencies are inferred from `accesses` against
  /// all previously submitted tasks. Returns the task id. The name is
  /// interned (tasks borrow a stable view — no per-task string copy) and
  /// the accesses are copied into the task's inline access list, so both
  /// arguments may be transient.
  TaskId submit(std::string_view name, CodeletPtr codelet, double flops,
                std::span<const data::Access> accesses);

  /// Submits with an explicit priority hint (larger = more urgent).
  TaskId submit(std::string_view name, CodeletPtr codelet, double flops,
                std::span<const data::Access> accesses, double priority);

  /// Braced-list conveniences: submit("t", c, flops, {{a, Mode::Read}}).
  TaskId submit(std::string_view name, CodeletPtr codelet, double flops,
                std::initializer_list<data::Access> accesses) {
    return submit(name, std::move(codelet), flops,
                  std::span<const data::Access>(accesses.begin(),
                                                accesses.size()));
  }
  TaskId submit(std::string_view name, CodeletPtr codelet, double flops,
                std::initializer_list<data::Access> accesses,
                double priority) {
    return submit(name, std::move(codelet), flops,
                  std::span<const data::Access>(accesses.begin(),
                                                accesses.size()),
                  priority);
  }

  Task& task(TaskId id);
  const Task& task(TaskId id) const;
  /// Number of this task's parents that have not completed yet (the
  /// counter finish_task drains; 0 once the task is ready or beyond).
  std::uint64_t unfinished_deps(TaskId id) const;
  /// Tasks that depend on `id` (the reverse of Task::dependencies).
  const TaskIdList& dependents(TaskId id) const;
  std::size_t task_count() const noexcept { return tasks_.size(); }

  /// Executes every submitted-but-unfinished task to completion in
  /// simulated time; returns the simulation clock afterwards. May be
  /// called repeatedly, interleaved with further submissions (iterative
  /// discovery campaigns) — the clock carries over.
  sim::SimTime wait_all();

  /// Valid after wait_all(); reflects the whole run so far.
  const RunStats& stats() const noexcept { return stats_; }

  const hw::Platform& platform() const noexcept { return *platform_; }
  const DeviceHealth& health() const noexcept { return health_; }
  const trace::Tracer& tracer() const noexcept { return tracer_; }
  const data::DataManager& data() const noexcept { return data_; }
  const perf::HistoryModel& history() const noexcept { return history_; }
  const Scheduler& scheduler() const noexcept { return *scheduler_; }
  const sim::EventQueue& event_queue() const noexcept { return queue_; }
  sim::SimTime now() const noexcept { return queue_.now(); }

  /// Observability sink; null unless RuntimeOptions::metrics is set.
  obs::Recorder* recorder() noexcept { return recorder_.get(); }
  const obs::Recorder* recorder() const noexcept { return recorder_.get(); }

  /// Drops every memoized cost-model entry. The platform is immutable
  /// during a normal run, so this only matters for callers that mutate
  /// device DVFS tables or memory capacities between waves — the cache
  /// cannot observe those, per the CostModelCache contract.
  void invalidate_cost_cache() { cost_cache_.invalidate(); }

  /// Read-only view of the memo (tests: invalidation-counter probes).
  const CostModelCache& cost_cache() const noexcept { return cost_cache_; }

 private:
  class Context;  // SchedContext implementation

  struct DeviceState {
    std::deque<Task*> queue;        ///< assigned, waiting
    Task* running = nullptr;
    sim::SimTime busy_until = 0.0;  ///< end of the running task
    /// Pending finish/fail event of the running task; cancelled when the
    /// timeout watchdog wins the race (0 = none).
    sim::EventId completion_event = 0;
    /// Pending timeout watchdog; cancelled when the task completes or
    /// fails naturally first (0 = none).
    sim::EventId watchdog_event = 0;
    /// Pending probation timer while blacklisted; cancelled (with the
    /// quarantine lifted) when the run drains first (0 = none).
    sim::EventId probation_event = 0;
    double queued_est_seconds = 0.0;
    // cumulative accounting (uint64_t: explicit width for campaign-scale
    // attempt counts; size_t is only guaranteed 16 bits)
    std::uint64_t tasks_completed = 0;
    std::uint64_t failed_attempts = 0;
    std::uint64_t timeouts = 0;
    double busy_seconds = 0.0;
    double busy_energy_j = 0.0;
  };

  const hw::Platform* platform_;
  RuntimeOptions options_;
  /// Task-name arena. Declared before every member that can hold views
  /// into it (tasks_, tracer_, recorder_) so it is destroyed last.
  util::StringInterner names_;
  sim::EventQueue queue_;
  data::DataManager data_;
  perf::HistoryModel history_;
  trace::Tracer tracer_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<Context> context_;
  util::Rng rng_;
  DeviceHealth health_;
  std::unique_ptr<obs::Recorder> recorder_;

  /// Task pool: chunked storage with stable addresses (the runtime hands
  /// out Task* into handle-use chains, device queues and schedulers).
  /// 8192-element chunks put each chunk past StableVector's 2 MiB
  /// huge-page threshold: a 10^6-task pool is ~320 MB touched in
  /// DAG-completion order, and 2 MiB pages cut its first-touch faults
  /// ~500x and keep the walk inside the dTLB.
  util::StableVector<Task, 8192> tasks_;
  /// Per-handle sequential-consistency chain. Holds TaskIds, not Task*:
  /// dependency inference only needs the id, the state (from the dense
  /// task_states_ mirror) and the dependents list (dense dependents_),
  /// so the scattered 320-byte Task objects stay untouched on the
  /// submit path.
  struct HandleUse {
    TaskId last_writer = kInvalidTask;
    util::SmallVector<TaskId, 4> readers_since_write;
    util::SmallVector<TaskId, 4> redux_since_write;  ///< unordered contributors
  };
  /// One slot per handle, chunked like the task pool: HandleUse carries
  /// two SmallVectors, so a std::vector's growth reallocs would move a
  /// million elements element-by-element; StableVector never relocates.
  /// 65536-element chunks (~3.7 MB) ride the huge-page path — this
  /// array takes the submit loop's random parent-chain hits.
  util::StableVector<HandleUse, 65536> handle_uses_;
  /// Scratch for infer_dependencies' duplicate-parent check: slot p holds
  /// `child + 1` when parent p was already recorded for that child —
  /// an O(1) stamped lookup with no per-submit allocation or clearing.
  std::vector<TaskId> dep_mark_;
  /// Unfinished-parent counters, indexed by TaskId. Kept out of Task on
  /// purpose: the completion hot loop decrements one counter per
  /// dependent edge, and a dense 4-byte array keeps those writes inside
  /// a few-KiB working set instead of scattering across Task objects.
  std::vector<std::uint32_t> deps_open_;
  /// Dependents lists, indexed by TaskId — the reverse edges. Out of
  /// Task for the same reason as deps_open_: infer_dependencies appends
  /// to an arbitrary parent's list per edge, and the dense array keeps
  /// that random write inside a window ~6x smaller than the Task pool.
  /// Chunked (not std::vector) so growth never moves a million
  /// SmallVectors; 65536-element chunks for huge pages, as above.
  util::StableVector<TaskIdList, 65536> dependents_;
  /// Dense mirror of every task's state, maintained by set_task_state
  /// (the only place runtime.cpp transitions a task). Lets the submit
  /// path test "parent completed?" / "dependency abandoned?" against a
  /// 1-byte-per-task array instead of loading the parent Task.
  std::vector<TaskState> task_states_;
  struct PartitionInfo {
    std::vector<data::DataId> children;
    bool active = false;
  };
  std::unordered_map<data::DataId, PartitionInfo> partitions_;
  // child -> owning parent while that partition is or was active.
  std::unordered_map<data::DataId, data::DataId> child_parent_;

  std::vector<DeviceState> device_states_;
  std::uint64_t pending_ = 0;  ///< submitted, not yet completed
  std::unordered_set<TaskId> deferred_;  ///< waiting on release_time
  std::unordered_set<TaskId> prefetched_;  ///< holding prefetch pins
  RunStats stats_;
  bool prepared_anything_ = false;
  /// Batched mode only: tasks released by the current completion batch,
  /// handed to the scheduler together once the batch has drained (see
  /// flush_ready_batch). Member, not a local, to reuse its capacity.
  std::vector<TaskId> ready_batch_;
  /// Set by request_pump() inside event callbacks while a batched drain
  /// is in flight; wait_all() pumps once per drained batch.
  bool pump_deferred_ = false;
  /// Memoized cost-model terms (mutable: a cache behind the logically
  /// const exec_estimate).
  mutable CostModelCache cost_cache_;

  // --- engine ------------------------------------------------------------
  /// Sole state-transition point: updates the Task and the dense mirror.
  void set_task_state(Task& task, TaskState state) noexcept {
    task.set_state(state);
    task_states_[task.id()] = state;
  }
  void infer_dependencies(Task& task);
  /// Makes the task Ready now, or schedules that for its release time.
  void ready_or_defer(Task& task);
  void make_ready(Task& task);
  void internal_assign(Task& task, const hw::Device& device,
                       std::optional<std::size_t> dvfs);
  void pump_device(hw::DeviceId id);
  void pump_all();
  /// Hands every task in ready_batch_ to the scheduler (batched mode:
  /// completions only record released ids; the Ready transitions happen
  /// here, once per drained batch, with the scattered Task objects
  /// prefetched a few iterations ahead).
  void flush_ready_batch();
  /// pump_all(), or — with batch_completions, from inside an event
  /// callback — a deferral of it to the end of the current drain batch.
  void request_pump();
  void start_next(hw::DeviceId id);
  /// Dispatches `task` on device `id` (shared tail of start_next and the
  /// fused pull path in pump_device): attempt accounting, data acquire,
  /// noise/failure sampling, completion + watchdog events.
  void begin_execution(Task& task, hw::DeviceId id);
  void finish_task(Task& task, hw::DeviceId id, sim::SimTime started,
                   double busy_s, std::size_t dvfs_index);
  void fail_task(Task& task, hw::DeviceId id, sim::SimTime started,
                 double busy_s, std::size_t dvfs_index);
  /// The per-attempt timeout watchdog fired: cancels the in-flight
  /// completion event, charges the partial busy time as a failed
  /// attempt, and recovers like any other failure.
  void timeout_task(Task& task, hw::DeviceId id, sim::SimTime started,
                    std::size_t dvfs_index);
  /// Shared tail of fail_task and the timeout watchdog: health tracking,
  /// attempt-budget enforcement, backoff and requeue.
  void recover_attempt(Task& task, hw::DeviceId id);
  /// Performs the FailurePolicy action for `task` (now, after any
  /// backoff delay has elapsed). `device_id` is the failed device.
  void requeue_attempt(Task& task, hw::DeviceId device_id);
  /// Quarantines `device_id`: hands its queued tasks back to the
  /// scheduler and arms the probation timer.
  void blacklist_device(hw::DeviceId device_id);
  /// Drops `task` (attempt budget exhausted under ExhaustionPolicy::Drop)
  /// together with every task that transitively depends on it.
  void abandon_task(Task& task);
  std::size_t effective_max_attempts() const noexcept;
  void finalize_stats();

  double exec_estimate(const Task& task, const hw::Device& device,
                       std::optional<std::size_t> dvfs) const;
  std::size_t dvfs_or_nominal(const Task& task,
                              const hw::Device& device) const;
};

}  // namespace hetflow::core
