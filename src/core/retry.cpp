#include "core/retry.hpp"

#include <algorithm>
#include <cmath>

namespace hetflow::core {

double RetryPolicy::backoff_delay_s(std::uint32_t attempt) const noexcept {
  if (backoff_base_s <= 0.0) {
    return 0.0;
  }
  const double exponent =
      attempt > 0 ? static_cast<double>(attempt - 1) : 0.0;
  const double delay = backoff_base_s * std::pow(backoff_factor, exponent);
  return std::min(delay, backoff_max_s);
}

double RetryPolicy::backoff_delay_s(std::uint32_t attempt,
                                    util::Rng& rng) const {
  double delay = backoff_delay_s(attempt);
  if (backoff_jitter > 0.0 && delay > 0.0) {
    HETFLOW_REQUIRE_MSG(backoff_jitter <= 1.0,
                        "backoff_jitter must be in [0, 1]");
    delay *= 1.0 + backoff_jitter * rng.uniform();
  }
  return delay;
}

bool DeviceHealth::note_failure(hw::DeviceId id, std::size_t blacklist_after,
                                sim::SimTime until) {
  Entry& e = entry(id);
  ++e.consecutive_failures;
  if (blacklist_after == 0 || e.state == State::Blacklisted) {
    return false;
  }
  // During probation a single failure re-quarantines immediately — the
  // device has not yet proven itself healthy again.
  const std::size_t threshold =
      e.state == State::Probation ? 1 : blacklist_after;
  if (e.consecutive_failures < threshold) {
    return false;
  }
  e.state = State::Blacklisted;
  e.blacklisted_until = until;
  ++e.blacklist_events;
  return true;
}

bool DeviceHealth::note_success(hw::DeviceId id) {
  Entry& e = entry(id);
  e.consecutive_failures = 0;
  if (e.state == State::Probation) {
    e.state = State::Healthy;
    return true;
  }
  return false;
}

void DeviceHealth::end_blacklist(hw::DeviceId id) {
  Entry& e = entry(id);
  HETFLOW_REQUIRE_MSG(e.state == State::Blacklisted,
                      "end_blacklist on a device that is not blacklisted");
  e.state = State::Probation;
  e.consecutive_failures = 0;
}

const char* to_string(DeviceHealth::State state) noexcept {
  switch (state) {
    case DeviceHealth::State::Healthy:
      return "healthy";
    case DeviceHealth::State::Blacklisted:
      return "blacklisted";
    case DeviceHealth::State::Probation:
      return "probation";
  }
  return "?";
}

}  // namespace hetflow::core
