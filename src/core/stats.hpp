// Aggregate results of one runtime execution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/manager.hpp"
#include "data/transfer.hpp"
#include "hw/platform.hpp"

namespace hetflow::core {

// Event counters are std::uint64_t, not std::size_t: campaign-scale runs
// accumulate well past 2^32 attempts across sweeps, and size_t is only
// guaranteed 16 bits. uint64_t makes the width explicit on every platform.
struct DeviceRunStats {
  hw::DeviceId device = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t failed_attempts = 0;
  std::uint64_t timeouts = 0;          ///< attempts cancelled by the watchdog
  std::uint64_t blacklist_events = 0;  ///< times this device was quarantined
  double busy_seconds = 0.0;     ///< compute time (successful + failed)
  double busy_energy_j = 0.0;    ///< energy while computing
  double idle_energy_j = 0.0;    ///< energy while idle over the makespan
};

struct RunStats {
  double makespan_s = 0.0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t failed_attempts = 0;
  /// Attempts cancelled for exceeding RetryPolicy::timeout_s (these are
  /// also counted in failed_attempts).
  std::uint64_t timeouts = 0;
  /// Tasks abandoned under ExhaustionPolicy::Drop, including the
  /// dependent subtrees of exhausted tasks.
  std::uint64_t tasks_lost = 0;
  /// Device quarantines triggered by RetryPolicy::blacklist_after.
  std::uint64_t blacklist_events = 0;
  std::vector<DeviceRunStats> devices;
  data::TransferStats transfers;
  data::DataManagerStats data;

  double total_busy_seconds() const noexcept;
  double busy_energy_j() const noexcept;
  double idle_energy_j() const noexcept;
  double total_energy_j() const noexcept {
    return busy_energy_j() + idle_energy_j();
  }
  /// Energy-delay product (J*s) — the energy-aware scheduling objective.
  double edp() const noexcept { return total_energy_j() * makespan_s; }
  /// Mean busy fraction across devices over the makespan.
  double mean_utilization() const noexcept;

  /// Multi-line human-readable summary.
  std::string summary(const hw::Platform& platform) const;
};

}  // namespace hetflow::core
