// Codelet — a multi-device task implementation descriptor (StarPU's
// central abstraction).
//
// A codelet names one kind of computation ("dgemm-tile", "project-image")
// and declares, per device type, whether an implementation exists and how
// efficiently it uses that device type's peak throughput. A task instance
// binds a codelet to a flop count and concrete data accesses; its
// execution time on device d at the nominal DVFS point is
//
//     launch_overhead(d) + flops / (peak_gflops(d) * 1e9 * efficiency(type(d)))
//
// Efficiency captures how well the kernel maps onto the architecture:
// dense GEMM might be 0.85 on a GPU but an irregular graph kernel 0.05.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "hw/device.hpp"
#include "util/error.hpp"

namespace hetflow::core {

class Codelet {
 public:
  /// Storage stays owning (codelets are shared across runtimes, so they
  /// cannot borrow from any one runtime's interner); the view parameter
  /// just avoids a temporary std::string at the call sites.
  explicit Codelet(std::string_view name);

  /// Globally unique id (used to key performance histories).
  std::uint32_t id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }

  /// Declares an implementation for `type` with the given efficiency in
  /// (0, 1]. Returns *this for chaining.
  Codelet& implement(hw::DeviceType type, double efficiency);

  bool supports(hw::DeviceType type) const noexcept {
    return efficiency_[static_cast<std::size_t>(type)] > 0.0;
  }
  /// Efficiency in (0, 1], or 0 when unsupported.
  double efficiency(hw::DeviceType type) const noexcept {
    return efficiency_[static_cast<std::size_t>(type)];
  }
  /// True if at least one device type has an implementation.
  bool implemented() const noexcept;

  /// Analytic pure-compute time (excl. launch overhead) on `device` at its
  /// nominal DVFS point. Throws InvalidArgument when unsupported.
  /// Inline: called ~3x per task from the assignment hot path, and the
  /// body is one divide off a cached efficiency table.
  double compute_seconds(const hw::Device& device, double flops) const {
    const double eff = efficiency(device.type());
    if (eff <= 0.0) {
      throw_no_implementation(device.type());
    }
    if (flops <= 0.0) {
      return 0.0;
    }
    return flops / (device.peak_gflops() * 1e9 * eff);
  }

  /// Convenience factory returning a shared immutable codelet.
  static std::shared_ptr<const Codelet> make(
      std::string_view name,
      std::initializer_list<std::pair<hw::DeviceType, double>> impls);

 private:
  /// Cold path of compute_seconds, kept out of line so the inline body
  /// stays a divide.
  [[noreturn]] void throw_no_implementation(hw::DeviceType type) const;

  std::uint32_t id_;
  std::string name_;
  std::array<double, hw::kDeviceTypeCount> efficiency_{};
};

using CodeletPtr = std::shared_ptr<const Codelet>;

}  // namespace hetflow::core
