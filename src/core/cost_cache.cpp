#include "core/cost_cache.hpp"

#include "util/error.hpp"

namespace hetflow::core {

void CostModelCache::invalidate() {
  entries_.clear();
  index_.clear();
  filled_ = 0;
  ++invalidations_;
}

void CostModelCache::grow_index() {
  const std::size_t new_size = index_.empty() ? 32 : index_.size() * 2;
  std::vector<IndexSlot> grown(new_size);
  const std::size_t mask = new_size - 1;
  for (const IndexSlot& slot : index_) {
    if (slot.key == 0) {
      continue;
    }
    std::size_t pos = ((slot.key - 1) * 2654435761U) & mask;
    while (grown[pos].key != 0) {
      pos = (pos + 1) & mask;
    }
    grown[pos] = slot;
  }
  index_ = std::move(grown);
}

CostModelCache::Entry* CostModelCache::fill_row(const Codelet& codelet) {
  HETFLOW_REQUIRE_MSG(platform_ != nullptr,
                      "CostModelCache used before attach()");
  if ((filled_ + 1) * 2 > index_.size()) {
    grow_index();
  }
  const auto& devices = platform_->devices();
  const std::uint32_t row = static_cast<std::uint32_t>(entries_.size());
  for (const hw::Device& device : devices) {
    Entry entry;
    entry.supported = codelet.supports(device.type());
    if (entry.supported) {
      // Exact evaluation order of Codelet::compute_seconds' denominator:
      // (peak_gflops * 1e9) * efficiency.
      entry.denom = device.peak_gflops() * 1e9 *
                    codelet.efficiency(device.type());
    }
    entry.launch_overhead_s = device.launch_overhead_s();
    entry.capacity_bytes =
        platform_->memory_node(device.memory_node()).capacity_bytes();
    entry.nominal_dvfs =
        static_cast<std::uint32_t>(device.nominal_dvfs_index());
    entries_.push_back(entry);
  }

  const std::uint32_t key = codelet.id() + 1;
  const std::size_t mask = index_.size() - 1;
  std::size_t pos = (codelet.id() * 2654435761U) & mask;
  while (index_[pos].key != 0) {
    pos = (pos + 1) & mask;
  }
  index_[pos] = IndexSlot{key, row};
  ++filled_;
  return entries_.data() + row;
}

}  // namespace hetflow::core
