// Post-mortem schedule analysis: given a completed run's trace and task
// dependency structure, reconstruct the *realized* critical path (the
// chain of tasks and waits that actually determined the makespan) and
// per-task slack — the classic "where did my time go" question for
// workflow runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/runtime.hpp"

namespace hetflow::core {

struct TaskTiming {
  TaskId task = 0;
  std::string name;
  hw::DeviceId device = 0;
  double start = 0.0;
  double end = 0.0;
  /// How much later this task could have finished without growing the
  /// makespan (0 on the realized critical path).
  double slack = 0.0;
  /// Time between becoming ready and starting (queueing + transfers).
  double wait = 0.0;
};

struct ScheduleAnalysis {
  double makespan = 0.0;
  /// Task ids along the realized critical path, in execution order.
  std::vector<TaskId> critical_path;
  /// Summed execution time on that path; the rest of the makespan is
  /// wait (queueing, transfers, release gaps, device serialization).
  double critical_exec_seconds = 0.0;
  std::vector<TaskTiming> tasks;  ///< all completed tasks, by id order

  /// Fraction of the makespan spent computing on the critical path
  /// (1.0 = a perfectly compute-bound chain).
  double critical_compute_fraction() const noexcept {
    return makespan > 0.0 ? critical_exec_seconds / makespan : 0.0;
  }
};

/// Analyzes a completed run. Requires a recorded trace
/// (RuntimeOptions::record_trace). Successful executions only. The
/// realized critical path is traced backwards from the last-finishing
/// task through whichever constraint bound each start: the latest
/// dependency, or the task that occupied the device immediately before.
ScheduleAnalysis analyze_schedule(const Runtime& runtime);

/// Human-readable report: summary line, the critical path (up to
/// `max_rows` hops) with per-hop wait, and the largest-wait tasks.
std::string critical_path_report(const ScheduleAnalysis& analysis,
                                 std::size_t max_rows = 20);

/// Dynamic resource sleep (DRS): a device idle for longer than
/// `threshold_s` drops from its idle power to `sleep_watts` for the
/// remainder of the gap (wake latency is not modeled — the policy is an
/// energy-accounting ablation, not a timing change).
struct SleepPolicy {
  double threshold_s = 0.1;
  double sleep_watts = 0.5;
};

/// Returns a copy of the run's stats with per-device idle energy
/// recomputed under `policy`, using the recorded execution trace to find
/// the idle gaps. Requires record_trace.
RunStats apply_sleep_model(const Runtime& runtime,
                           const SleepPolicy& policy);

}  // namespace hetflow::core
