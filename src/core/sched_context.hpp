// SchedContext — the window through which scheduling policies see the
// runtime: cost estimates, device/queue state, data locality, and the
// assign() command. Implemented by the Runtime; policies hold a reference.
#pragma once

#include <cstdint>
#include <optional>

#include "data/handle.hpp"
#include "hw/platform.hpp"
#include "sim/event_queue.hpp"

namespace hetflow::obs {
class Recorder;
}

namespace hetflow::core {

class Task;

class SchedContext {
 public:
  virtual ~SchedContext() = default;

  virtual const hw::Platform& platform() const = 0;
  virtual sim::SimTime now() const = 0;

  /// Registered data handles (for edge-size computations in static
  /// schedulers).
  virtual const data::DataRegistry& data_registry() const = 0;

  /// Estimated wall time of `task` on `device` at DVFS point `dvfs`
  /// (nominal when omitted), including launch overhead, excluding data
  /// movement and queueing. Uses the calibrated history when available,
  /// else the codelet's analytic model. +inf when unsupported.
  ///
  /// Cost: the per-(codelet, device) model terms behind this call (and
  /// estimate_completion / estimate_energy, which derive from it) are
  /// memoized in the runtime's CostModelCache (core/cost_cache.hpp) —
  /// bitwise-identical to a direct recompute, so every candidate loop in
  /// src/sched/ may call these freely per (task, device) pair. History
  /// recalibration invalidates automatically; platform mutations require
  /// Runtime::invalidate_cost_cache().
  virtual double estimate_exec_seconds(
      const Task& task, const hw::Device& device,
      std::optional<std::size_t> dvfs = std::nullopt) const = 0;

  /// Time at which `device` would finish everything currently running
  /// and queued on it (its earliest availability for new work).
  virtual sim::SimTime device_available_at(const hw::Device& device) const = 0;

  /// Estimated absolute time at which `task`'s inputs could be resident on
  /// `device`'s memory node, starting transfers at `earliest` (accounts
  /// for current link occupancy; inputs from unexecuted producers are
  /// assumed in place).
  virtual sim::SimTime estimate_data_ready(const Task& task,
                                           const hw::Device& device,
                                           sim::SimTime earliest) const = 0;

  /// Bytes of `task`'s inputs not yet resident on `device`'s node.
  virtual std::uint64_t missing_input_bytes(
      const Task& task, const hw::Device& device) const = 0;

  /// Estimated earliest completion time: max(device availability, data
  /// ready) + execution estimate. The building block of list schedulers.
  virtual sim::SimTime estimate_completion(
      const Task& task, const hw::Device& device,
      std::optional<std::size_t> dvfs = std::nullopt) const = 0;

  /// Estimated Joules to execute `task` on `device` at `dvfs`.
  virtual double estimate_energy(
      const Task& task, const hw::Device& device,
      std::optional<std::size_t> dvfs = std::nullopt) const = 0;

  /// True while `device` is quarantined by the health tracker
  /// (RetryPolicy::blacklist_after): it accepts assignments but starts
  /// nothing until probation, and device_available_at() already reflects
  /// the quarantine end — cost-based policies route around it without
  /// consulting this. Pull-mode policies can use it to park work.
  virtual bool device_blacklisted(const hw::Device& device) const {
    (void)device;
    return false;
  }

  /// Observability sink for scheduler decision logging; null when
  /// RuntimeOptions::metrics is off (policies must tolerate null).
  virtual obs::Recorder* recorder() const noexcept { return nullptr; }

  /// Number of tasks queued (not running) on `device`.
  virtual std::size_t queue_length(const hw::Device& device) const = 0;

  /// Total number of devices with a queued or running task.
  virtual std::size_t busy_device_count() const = 0;

  /// Commits `task` to `device`'s FIFO queue, optionally at a non-nominal
  /// DVFS point. Only legal for Ready tasks the policy owns.
  virtual void assign(Task& task, const hw::Device& device,
                      std::optional<std::size_t> dvfs = std::nullopt) = 0;
};

}  // namespace hetflow::core
