#include "core/task.hpp"

namespace hetflow::core {

const char* to_string(TaskState state) noexcept {
  switch (state) {
    case TaskState::Submitted:
      return "submitted";
    case TaskState::Ready:
      return "ready";
    case TaskState::Queued:
      return "queued";
    case TaskState::Running:
      return "running";
    case TaskState::Completed:
      return "completed";
    case TaskState::Abandoned:
      return "abandoned";
  }
  return "?";
}

Task::Task(TaskId id, std::string_view name, CodeletPtr codelet, double flops,
           std::span<const data::Access> accesses)
    : id_(id),
      name_(name),
      codelet_(std::move(codelet)),
      flops_(flops),
      accesses_(accesses.begin(), accesses.end()) {
  HETFLOW_REQUIRE_MSG(codelet_ != nullptr, "task needs a codelet");
  HETFLOW_REQUIRE_MSG(codelet_->implemented(),
                      "codelet has no implementation on any device type");
  HETFLOW_REQUIRE_MSG(flops_ >= 0.0, "task flops cannot be negative");
}

}  // namespace hetflow::core
