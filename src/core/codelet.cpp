#include "core/codelet.hpp"

#include <atomic>

namespace hetflow::core {

namespace {
std::atomic<std::uint32_t> g_next_codelet_id{0};
}

Codelet::Codelet(std::string_view name)
    : id_(g_next_codelet_id.fetch_add(1, std::memory_order_relaxed)),
      name_(name) {
  HETFLOW_REQUIRE_MSG(!name_.empty(), "codelet name cannot be empty");
}

Codelet& Codelet::implement(hw::DeviceType type, double efficiency) {
  HETFLOW_REQUIRE_MSG(efficiency > 0.0 && efficiency <= 1.0,
                      "codelet efficiency must be in (0, 1]");
  efficiency_[static_cast<std::size_t>(type)] = efficiency;
  return *this;
}

bool Codelet::implemented() const noexcept {
  for (double e : efficiency_) {
    if (e > 0.0) {
      return true;
    }
  }
  return false;
}

void Codelet::throw_no_implementation(hw::DeviceType type) const {
  throw InvalidArgument("codelet '" + name_ + "' has no implementation for " +
                        std::string(hw::to_string(type)));
}

std::shared_ptr<const Codelet> Codelet::make(
    std::string_view name,
    std::initializer_list<std::pair<hw::DeviceType, double>> impls) {
  auto codelet = std::make_shared<Codelet>(name);
  for (const auto& [type, eff] : impls) {
    codelet->implement(type, eff);
  }
  return codelet;
}

}  // namespace hetflow::core
