// Task — one node of the executed DAG: a codelet instance with a flop
// count, data accesses and runtime bookkeeping.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string_view>

#include "core/codelet.hpp"
#include "data/access.hpp"
#include "hw/device.hpp"
#include "sim/event_queue.hpp"
#include "util/small_vector.hpp"

namespace hetflow::core {

using TaskId = std::uint64_t;

/// Sentinel for "no task" (e.g. a handle that was never written).
inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();

/// Inline capacities for per-task edge/access lists. Workflow DAGs are
/// sparse (Montage medians: 2 dependencies, 3 dependents, ≤4 accesses),
/// so these keep the common case allocation-free; hub tasks spill to the
/// heap transparently.
using AccessList = util::SmallVector<data::Access, 4>;
using TaskIdList = util::SmallVector<TaskId, 4>;

enum class TaskState : std::uint8_t {
  Submitted = 0,  ///< dependencies not yet satisfied
  Ready,          ///< all dependencies done, awaiting scheduling decision
  Queued,         ///< assigned to a device, waiting in its queue
  Running,        ///< executing (in simulated time)
  Completed,
  Abandoned,      ///< attempt budget exhausted under ExhaustionPolicy::Drop
                  ///< (or a dependency was); will never run
};

const char* to_string(TaskState state) noexcept;

/// Per-task timestamps in simulated seconds.
struct TaskTimes {
  sim::SimTime submitted = 0.0;
  sim::SimTime ready = 0.0;
  sim::SimTime started = 0.0;    ///< start of the successful attempt
  sim::SimTime completed = 0.0;
};

class Task {
 public:
  /// `name` is borrowed, not copied — the caller (Runtime interns task
  /// names; tests may pass string literals) must keep the characters
  /// alive for the task's lifetime. `accesses` is copied into the inline
  /// access list.
  Task(TaskId id, std::string_view name, CodeletPtr codelet, double flops,
       std::span<const data::Access> accesses);

  TaskId id() const noexcept { return id_; }
  std::string_view name() const noexcept { return name_; }
  const Codelet& codelet() const noexcept { return *codelet_; }
  const CodeletPtr& codelet_ptr() const noexcept { return codelet_; }
  double flops() const noexcept { return flops_; }
  std::span<const data::Access> accesses() const noexcept {
    return {accesses_.data(), accesses_.size()};
  }

  /// Scheduler priority hint; larger = more urgent. Defaults to 0. Static
  /// schedulers overwrite this with computed ranks.
  double priority() const noexcept { return priority_; }
  void set_priority(double priority) noexcept { priority_ = priority; }

  /// Earliest simulated time the task may become Ready (periodic /
  /// streaming arrivals). 0 = immediately once dependencies allow. Must
  /// be set before the surrounding wait_all() processes the task.
  sim::SimTime release_time() const noexcept { return release_time_; }
  void set_release_time(sim::SimTime t) noexcept { release_time_ = t; }

  TaskState state() const noexcept { return state_; }
  const TaskTimes& times() const noexcept { return times_; }

  /// Device the task ran on (set once Queued). Meaningless before.
  hw::DeviceId device() const noexcept { return device_; }
  /// DVFS point chosen for execution (defaults to the device's nominal).
  std::optional<std::size_t> dvfs_state() const noexcept { return dvfs_; }

  std::uint32_t attempts() const noexcept { return attempts_; }

  /// Total bytes of the handles this task accesses, summed in access
  /// order at submit time. Device-invariant, so the cost model reads it
  /// instead of re-walking the access list per (task, device) estimate.
  std::uint64_t working_set_bytes() const noexcept {
    return working_set_bytes_;
  }

  // --- runtime-internal interface (used by Runtime and schedulers) ------
  void set_state(TaskState state) noexcept { state_ = state; }
  TaskTimes& mutable_times() noexcept { return times_; }
  void set_device(hw::DeviceId device) noexcept { device_ = device; }
  void set_dvfs_state(std::optional<std::size_t> dvfs) noexcept {
    dvfs_ = dvfs;
  }
  void note_attempt() noexcept { ++attempts_; }
  void set_working_set_bytes(std::uint64_t bytes) noexcept {
    working_set_bytes_ = bytes;
  }

  // The unfinished-parent counter and the dependents list live in the
  // Runtime (dense arrays indexed by TaskId), not here: dependency
  // inference appends to a random parent's dependents and finish_task
  // decrements one counter per edge, and keeping both in flat side
  // arrays turns scattered 320-byte Task-object touches into hits in a
  // small dense window. Read them via Runtime::unfinished_deps(id) and
  // Runtime::dependents(id).
  TaskIdList dependencies;  ///< parents (for static schedulers)

  /// Estimate added to the device's queued_est_seconds when this task was
  /// enqueued; subtracted back on dequeue. Cached so the dequeue side
  /// does not recompute it (same inputs — device and DVFS are fixed while
  /// Queued — so the cached value is bit-identical to a recompute).
  double queued_est_s = 0.0;

 private:
  TaskId id_;
  std::string_view name_;
  CodeletPtr codelet_;
  double flops_;
  AccessList accesses_;
  std::uint64_t working_set_bytes_ = 0;
  double priority_ = 0.0;
  sim::SimTime release_time_ = 0.0;
  TaskState state_ = TaskState::Submitted;
  TaskTimes times_;
  hw::DeviceId device_ = std::numeric_limits<hw::DeviceId>::max();
  std::optional<std::size_t> dvfs_;
  std::uint32_t attempts_ = 0;
};

}  // namespace hetflow::core
