#include "exec/thread_pool.hpp"

#include <atomic>
#include <cstdlib>

namespace hetflow::exec {

namespace {

std::size_t hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace

std::size_t parse_jobs(const std::string& text) {
  std::size_t value = 0;
  std::size_t consumed = 0;
  try {
    value = std::stoul(text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != text.size() || text.empty()) {
    throw InvalidArgument("jobs must be a non-negative integer, got '" +
                          text + "'");
  }
  return value == 0 ? hardware_jobs() : value;
}

std::size_t default_jobs() {
  const char* env = std::getenv("HETFLOW_JOBS");
  if (env == nullptr || *env == '\0') {
    return 1;
  }
  try {
    return parse_jobs(env);
  } catch (const InvalidArgument&) {
    return 1;  // a library must not abort on a malformed env var
  }
}

ThreadPool::ThreadPool(std::size_t threads) {
  HETFLOW_REQUIRE_MSG(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    all_idle_.wait(lock, [this] { return in_flight_ == 0; });
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> job) {
  HETFLOW_REQUIRE_MSG(job != nullptr, "cannot submit a null job");
  {
    std::lock_guard lock(mutex_);
    jobs_.push_back(std::move(job));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) {
        return;  // stopping_ with a drained deque
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

namespace detail {

void run_indexed(std::size_t count, std::size_t jobs,
                 const std::function<void(std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  if (jobs <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  const std::size_t workers = std::min(jobs, count);
  std::vector<std::exception_ptr> errors(count);
  std::atomic<std::size_t> next{0};
  {
    ThreadPool pool(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.submit([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) {
            return;
          }
          try {
            fn(i);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      });
    }
    pool.wait_idle();
  }
  for (const std::exception_ptr& error : errors) {
    if (error) {
      std::rethrow_exception(error);  // lowest index wins, deterministically
    }
  }
}

}  // namespace detail

}  // namespace hetflow::exec
