// Grid-sweep engine: (workflow x platform x scheduler x seed) cells, each
// an independent simulation, executed serially or across a thread pool.
//
// This is the engine behind `hetflow_bench`, the determinism property
// tests and `bench_sweep_scaling`. Cells are enumerated in the canonical
// nesting order (platform, then workflow, then scheduler, then seed) and
// results are collected by cell index, so the CSV emitted from a run is
// byte-identical whatever `jobs` is.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/stats.hpp"

namespace hetflow::exec {

struct SweepSpec {
  std::vector<std::string> workflows;   ///< workflow specs or .dag paths
  std::vector<std::string> platforms;   ///< platform specs or .json paths
  std::vector<std::string> schedulers;  ///< scheduler names
  std::uint64_t seeds = 1;              ///< seeds 1..N per combination
  double noise_cv = 0.0;
  double failure_rate = 0.0;  ///< uniform failure rate per busy-second
  bool validate = false;      ///< hetflow-verify end-of-run audit per cell
  bool metrics = false;       ///< collect the observability layer per cell
  std::size_t jobs = 1;       ///< worker threads (1 = serial)
};

/// One finished cell, in canonical grid order.
struct SweepRow {
  std::string workflow;
  std::size_t tasks = 0;
  std::string platform;
  std::string scheduler;
  std::uint64_t seed = 1;
  core::RunStats stats;
};

/// Runs every cell of the grid and returns the rows in canonical order.
/// Workflows and platforms are built once, up front, on the calling
/// thread and shared read-only across workers; each cell's Runtime is
/// thread-confined. Throws on the first failing cell (lowest cell index).
std::vector<SweepRow> run_sweep(const SweepSpec& spec);

/// The hetflow_bench CSV schema. Writing rows from run_sweep reproduces
/// the serial tool's output byte for byte.
void write_sweep_header(std::ostream& out);
void write_sweep_rows(std::ostream& out, const std::vector<SweepRow>& rows);

}  // namespace hetflow::exec
