#include "exec/sweep.hpp"

#include "core/runtime.hpp"
#include "exec/thread_pool.hpp"
#include "hw/failure.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "workflow/spec.hpp"
#include "workflow/workflow.hpp"

namespace hetflow::exec {

std::vector<SweepRow> run_sweep(const SweepSpec& spec) {
  HETFLOW_REQUIRE_MSG(spec.seeds >= 1, "need at least one seed");
  HETFLOW_REQUIRE_MSG(!spec.workflows.empty(), "sweep needs a workflow");
  HETFLOW_REQUIRE_MSG(!spec.platforms.empty(), "sweep needs a platform");
  HETFLOW_REQUIRE_MSG(!spec.schedulers.empty(), "sweep needs a scheduler");

  // Immutable inputs, built once on the driver thread (codelet
  // construction is the one global side effect: ids draw from a process
  // counter) and shared read-only by every worker.
  const workflow::CodeletLibrary library =
      workflow::CodeletLibrary::standard();
  std::vector<hw::Platform> platforms;
  platforms.reserve(spec.platforms.size());
  for (const std::string& platform_spec : spec.platforms) {
    platforms.push_back(workflow::make_platform_from_spec(platform_spec));
  }
  std::vector<workflow::Workflow> workflows;
  workflows.reserve(spec.workflows.size());
  for (const std::string& workflow_spec : spec.workflows) {
    workflows.push_back(workflow::make_workflow_from_spec(workflow_spec));
  }

  struct Cell {
    std::size_t platform;
    std::size_t workflow;
    std::size_t scheduler;
    std::uint64_t seed;
  };
  std::vector<Cell> cells;
  cells.reserve(platforms.size() * workflows.size() *
                spec.schedulers.size() * spec.seeds);
  for (std::size_t p = 0; p < platforms.size(); ++p) {
    for (std::size_t w = 0; w < workflows.size(); ++w) {
      for (std::size_t s = 0; s < spec.schedulers.size(); ++s) {
        for (std::uint64_t seed = 1; seed <= spec.seeds; ++seed) {
          cells.push_back(Cell{p, w, s, seed});
        }
      }
    }
  }

  return parallel_map<SweepRow>(cells.size(), spec.jobs, [&](std::size_t i) {
    const Cell& cell = cells[i];
    core::RuntimeOptions options;
    options.validate = spec.validate;
    options.metrics = spec.metrics;
    options.seed = cell.seed;
    options.noise_cv = spec.noise_cv;
    options.record_trace = false;
    if (spec.failure_rate > 0.0) {
      options.failure_model = hw::FailureModel::uniform(spec.failure_rate);
    }
    SweepRow row;
    row.workflow = workflows[cell.workflow].name();
    row.tasks = workflows[cell.workflow].task_count();
    row.platform = platforms[cell.platform].name();
    row.scheduler = spec.schedulers[cell.scheduler];
    row.seed = cell.seed;
    row.stats =
        workflow::run_workflow(platforms[cell.platform], row.scheduler,
                               workflows[cell.workflow], library, options);
    return row;
  });
}

void write_sweep_header(std::ostream& out) {
  util::CsvWriter csv(out);
  csv.header({"workflow", "tasks", "platform", "sched", "seed", "makespan_s",
              "energy_j", "bytes_moved", "failed_attempts", "mean_util"});
}

void write_sweep_rows(std::ostream& out, const std::vector<SweepRow>& rows) {
  util::CsvWriter csv(out);
  for (const SweepRow& row : rows) {
    csv.row({row.workflow, std::to_string(row.tasks), row.platform,
             row.scheduler, std::to_string(row.seed),
             util::format("%.6g", row.stats.makespan_s),
             util::format("%.6g", row.stats.total_energy_j()),
             std::to_string(row.stats.transfers.bytes_moved),
             std::to_string(row.stats.failed_attempts),
             util::format("%.4f", row.stats.mean_utilization())});
  }
}

}  // namespace hetflow::exec
