// Host-side execution: a thread pool for embarrassingly-parallel
// experiment grids (sweeps, bench tables, campaign candidate scoring).
//
// Everything hetflow simulates is deterministic in *simulated* time; this
// pool parallelizes the *host* work of running many independent
// simulations. The contract that makes this safe is thread confinement:
// one worker owns one simulation (Runtime, EventQueue, DataManager, Rng,
// Tracer) end to end, and only immutable inputs (Platform,
// CodeletLibrary, Workflow) are shared across workers. See
// docs/parallelism.md for the full contract.
//
// Result ordering: parallel_map/parallel_for_each index jobs over a
// dense range and collect results by index, so output built from the
// results is byte-identical to a serial run regardless of the thread
// count or interleaving.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace hetflow::exec {

/// Number of worker threads requested via the HETFLOW_JOBS environment
/// variable; 1 (serial) when unset/empty/invalid. "0" means "all
/// hardware threads".
std::size_t default_jobs();

/// Parses a --jobs style value: positive integer, or 0 for all hardware
/// threads. Throws InvalidArgument for garbage.
std::size_t parse_jobs(const std::string& text);

/// Fixed-size pool of worker threads draining a shared job deque.
///
/// Workers take from the front and the submitter pushes to the back, so
/// jobs start in submission order (FIFO); any worker going idle takes the
/// next pending job, which is the work-stealing property that keeps an
/// irregular grid (one slow cell, many fast ones) load-balanced without
/// static partitioning. Coarse-grained by design: a job is a whole
/// simulation (milliseconds and up), so one mutex around the deque is
/// nowhere near contention.
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);
  /// Joins after draining every submitted job.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues one job. Jobs must not submit further jobs to the same
  /// pool (a worker blocking on its own pool would deadlock wait_idle).
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished running.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> jobs_;
  std::size_t in_flight_ = 0;  ///< queued + currently running
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

namespace detail {

/// Runs fn(i) for i in [0, count) across `jobs` threads (inline when
/// jobs <= 1 or count <= 1). Exceptions are captured per index and the
/// lowest-index one is rethrown after the barrier, so failure behavior
/// is deterministic and independent of thread interleaving.
void run_indexed(std::size_t count, std::size_t jobs,
                 const std::function<void(std::size_t)>& fn);

}  // namespace detail

/// Parallel loop over a dense index range with a full barrier at the end.
template <typename Fn>
void parallel_for_each(std::size_t count, std::size_t jobs, Fn&& fn) {
  detail::run_indexed(count, jobs,
                      [&fn](std::size_t i) { std::forward<Fn>(fn)(i); });
}

/// Parallel map: results land in a vector slot per index, preserving the
/// serial order no matter which worker computed which cell. R must be
/// default-constructible.
template <typename R, typename Fn>
std::vector<R> parallel_map(std::size_t count, std::size_t jobs, Fn&& fn) {
  std::vector<R> results(count);
  detail::run_indexed(count, jobs, [&](std::size_t i) {
    results[i] = std::forward<Fn>(fn)(i);
  });
  return results;
}

}  // namespace hetflow::exec
