#include "sched/peft.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "perf/transfer_model.hpp"
#include "sched/graph_utils.hpp"

namespace hetflow::sched {

void PeftScheduler::prepare(const std::vector<core::Task*>& all_tasks) {
  plans_.clear();
  device_sequence_.assign(ctx().platform().device_count(), {});
  next_to_release_.assign(ctx().platform().device_count(), 0);
  ready_held_.clear();
  // Size the per-task maps up front: at 10^5+ planned tasks, letting the
  // hash tables rehash their way up dominates plan time.
  plans_.reserve(all_tasks.size());
  ready_held_.reserve(all_tasks.size());
  if (all_tasks.empty()) {
    return;
  }

  const hw::Platform& platform = ctx().platform();
  const std::size_t devices = platform.device_count();
  const TaskGraphView view = TaskGraphView::build(ctx(), all_tasks);
  const perf::TransferModel comm(platform);

  // Per-(task, device) execution estimates; infinity = unsupported.
  std::vector<std::vector<double>> exec(view.size(),
                                        std::vector<double>(devices));
  for (std::size_t i = 0; i < view.size(); ++i) {
    for (const hw::Device& device : platform.devices()) {
      exec[i][device.id()] =
          ctx().estimate_exec_seconds(*all_tasks[i], device);
    }
  }

  // Optimistic cost table, filled in reverse topological order.
  const std::vector<std::size_t> order = view.graph().topological_order();
  std::vector<std::vector<double>> oct(view.size(),
                                       std::vector<double>(devices, 0.0));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t t = *it;
    for (std::size_t p = 0; p < devices; ++p) {
      double worst = 0.0;
      for (std::size_t s : view.graph().successors(t)) {
        const double avg_comm = comm.mean_time_s(view.edge_bytes(t, s));
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t q = 0; q < devices; ++q) {
          if (!std::isfinite(exec[s][q])) {
            continue;
          }
          best = std::min(best, oct[s][q] + exec[s][q] +
                                    (q == p ? 0.0 : avg_comm));
        }
        worst = std::max(worst, best);
      }
      oct[t][p] = worst;
    }
  }

  // Priority: mean OCT over devices that can run the task.
  std::vector<double> rank(view.size(), 0.0);
  for (std::size_t i = 0; i < view.size(); ++i) {
    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t p = 0; p < devices; ++p) {
      if (std::isfinite(exec[i][p])) {
        total += oct[i][p];
        ++count;
      }
    }
    rank[i] = count > 0 ? total / static_cast<double>(count) : 0.0;
    all_tasks[i]->set_priority(rank[i]);
  }

  // Placement in topological order (priority fixes only tie-breaking
  // within a level; topology guarantees parents are placed first).
  InsertionTimeline timeline(devices);
  std::vector<double> finish(view.size(), 0.0);
  std::vector<hw::DeviceId> placed(view.size(), 0);
  for (std::size_t i : order) {
    const hw::Device* best_device = nullptr;
    double best_score = std::numeric_limits<double>::infinity();
    double best_start = 0.0;
    double best_exec = 0.0;
    for (const hw::Device& device : platform.devices()) {
      if (!std::isfinite(exec[i][device.id()])) {
        continue;
      }
      double ready = 0.0;
      for (std::size_t parent : view.graph().predecessors(i)) {
        double arrival = finish[parent];
        const hw::MemoryNodeId src =
            platform.device(placed[parent]).memory_node();
        if (src != device.memory_node()) {
          arrival += platform.transfer_time_s(src, device.memory_node(),
                                              view.edge_bytes(parent, i));
        }
        ready = std::max(ready, arrival);
      }
      const double start = timeline.earliest_fit(
          device.id(), ready, exec[i][device.id()]);
      const double eft = start + exec[i][device.id()];
      // PEFT's objective: finish time plus the optimistic remainder.
      const double score = eft + oct[i][device.id()];
      if (score < best_score) {
        best_score = score;
        best_device = &device;
        best_start = start;
        best_exec = exec[i][device.id()];
      }
    }
    HETFLOW_REQUIRE_MSG(best_device != nullptr, "peft: no eligible device");
    timeline.book(best_device->id(), best_start, best_exec);
    finish[i] = best_start + best_exec;
    placed[i] = best_device->id();
  }

  std::vector<std::vector<std::pair<double, std::size_t>>> per_device(
      devices);
  for (std::size_t i = 0; i < view.size(); ++i) {
    per_device[placed[i]].push_back({finish[i], i});
  }
  for (hw::DeviceId d = 0; d < per_device.size(); ++d) {
    std::sort(per_device[d].begin(), per_device[d].end());
    for (const auto& [t, i] : per_device[d]) {
      plans_[all_tasks[i]->id()] = Plan{d};
      device_sequence_[d].push_back(all_tasks[i]);
    }
  }
}

void PeftScheduler::on_task_ready(core::Task& task) {
  const auto it = plans_.find(task.id());
  HETFLOW_REQUIRE_MSG(it != plans_.end(),
                      "peft: static scheduler cannot accept dynamically "
                      "submitted tasks (task ready without a plan)");
  ready_held_[task.id()] = true;
  release_available(it->second.device);
}

void PeftScheduler::release_available(hw::DeviceId device) {
  std::size_t& cursor = next_to_release_[device];
  std::vector<core::Task*>& sequence = device_sequence_[device];
  while (cursor < sequence.size()) {
    core::Task* task = sequence[cursor];
    const auto held = ready_held_.find(task->id());
    if (held == ready_held_.end() || !held->second) {
      return;
    }
    held->second = false;
    ++cursor;
    ctx().assign(*task, ctx().platform().device(device));
  }
}

}  // namespace hetflow::sched
