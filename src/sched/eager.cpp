#include "sched/eager.hpp"

#include <algorithm>

#include "util/prefetch.hpp"

namespace hetflow::sched {

void EagerScheduler::on_task_ready(core::Task& task) {
  fifo_.push_back(&task);
}

core::Task* EagerScheduler::on_device_idle(const hw::Device& device) {
  if (head_ == fifo_.size()) {
    return nullptr;
  }
  core::Task* picked = nullptr;
  // Fast path: the head of the queue runs here (always true on uniform
  // platforms, the million-task regime). Same pick as the scan below.
  if (fifo_[head_]->codelet().supports(device.type())) {
    picked = fifo_[head_];
    ++head_;
  } else {
    for (std::size_t i = head_ + 1; i < fifo_.size(); ++i) {
      if (fifo_[i]->codelet().supports(device.type())) {
        picked = fifo_[i];
        fifo_.erase(fifo_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
  // The runtime dispatches the picked task immediately and pulls again
  // for the next idle device within the same pump, so the next entry's
  // Task object (scattered in the pool) is wanted ~one dispatch from
  // now — far enough out for a prefetch to hide the miss.
  if (head_ < fifo_.size()) {
    util::prefetch_range_read(fifo_[head_], sizeof(core::Task));
  }
  // Trim the consumed prefix once it dominates the buffer (amortized
  // O(1)); resetting outright when the queue drains is the common case.
  if (head_ == fifo_.size()) {
    fifo_.clear();
    head_ = 0;
  } else if (head_ >= 1024 && head_ * 2 >= fifo_.size()) {
    fifo_.erase(fifo_.begin(), fifo_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  return picked;
}

}  // namespace hetflow::sched
