#include "sched/eager.hpp"

namespace hetflow::sched {

void EagerScheduler::on_task_ready(core::Task& task) {
  fifo_.push_back(&task);
}

core::Task* EagerScheduler::on_device_idle(const hw::Device& device) {
  for (auto it = fifo_.begin(); it != fifo_.end(); ++it) {
    if ((*it)->codelet().supports(device.type())) {
      core::Task* task = *it;
      fifo_.erase(it);
      return task;
    }
  }
  return nullptr;
}

}  // namespace hetflow::sched
