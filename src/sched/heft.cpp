#include <cmath>
#include "sched/heft.hpp"

#include <algorithm>
#include <limits>

#include "sched/graph_utils.hpp"

namespace hetflow::sched {

// Edge byte counts come from TaskGraphView::edge_bytes — the one
// implementation shared with CPOP/PEFT, so all three rank identical
// communication volumes (a private duplicate here once diverged on
// Redux-mode edges).

void HeftScheduler::prepare(const std::vector<core::Task*>& all_tasks) {
  plans_.clear();
  device_sequence_.assign(ctx().platform().device_count(), {});
  next_to_release_.assign(ctx().platform().device_count(), 0);
  ready_held_.clear();
  // Size the per-task maps up front: at 10^5+ planned tasks, letting the
  // hash tables rehash their way up dominates plan time.
  plans_.reserve(all_tasks.size());
  ready_held_.reserve(all_tasks.size());
  planned_makespan_ = 0.0;
  if (all_tasks.empty()) {
    return;
  }

  const hw::Platform& platform = ctx().platform();
  const TaskGraphView view = TaskGraphView::build(ctx(), all_tasks);
  const std::vector<double> ranks = view.upward_ranks(platform);

  std::vector<std::size_t> order(all_tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (ranks[a] != ranks[b]) {
      return ranks[a] > ranks[b];
    }
    return all_tasks[a]->id() < all_tasks[b]->id();  // deterministic ties
  });

  // EFT placement with insertion.
  InsertionTimeline timeline(platform.device_count());
  std::vector<double> actual_finish(all_tasks.size(), 0.0);
  std::vector<hw::DeviceId> placed_on(all_tasks.size(), 0);

  for (std::size_t i : order) {
    core::Task& task = *all_tasks[i];
    double best_eft = std::numeric_limits<double>::infinity();
    double best_start = 0.0;
    const hw::Device* best_device = nullptr;
    for (const hw::Device& device : platform.devices()) {
      const double exec = ctx().estimate_exec_seconds(task, device);
      if (!std::isfinite(exec)) {
        continue;
      }
      // Data-ready time given parent placements.
      double ready = 0.0;
      for (std::size_t parent : view.graph().predecessors(i)) {
        double arrival = actual_finish[parent];
        const hw::MemoryNodeId src =
            platform.device(placed_on[parent]).memory_node();
        if (src != device.memory_node()) {
          arrival += platform.transfer_time_s(src, device.memory_node(),
                                              view.edge_bytes(parent, i));
        }
        ready = std::max(ready, arrival);
      }
      const double start = timeline.earliest_fit(device.id(), ready, exec);
      if (start + exec < best_eft) {
        best_eft = start + exec;
        best_start = start;
        best_device = &device;
      }
    }
    HETFLOW_REQUIRE_MSG(best_device != nullptr, "heft: no eligible device");
    actual_finish[i] = best_eft;
    placed_on[i] = best_device->id();
    task.set_priority(ranks[i]);
    timeline.book(best_device->id(), best_start, best_eft - best_start);
    planned_makespan_ = std::max(planned_makespan_, best_eft);
  }

  // Fix the per-device execution order by planned finish time (per-device
  // slots do not overlap, so finish order equals start order).
  std::vector<std::vector<std::pair<double, std::size_t>>> per_device(
      platform.device_count());
  for (std::size_t i = 0; i < all_tasks.size(); ++i) {
    per_device[placed_on[i]].push_back({actual_finish[i], i});
  }
  for (hw::DeviceId d = 0; d < per_device.size(); ++d) {
    std::sort(per_device[d].begin(), per_device[d].end());
    for (const auto& [finish, i] : per_device[d]) {
      plans_[all_tasks[i]->id()] = Plan{d, device_sequence_[d].size()};
      device_sequence_[d].push_back(all_tasks[i]);
    }
  }
}

hw::DeviceId HeftScheduler::planned_device(core::TaskId id) const {
  const auto it = plans_.find(id);
  HETFLOW_REQUIRE_MSG(it != plans_.end(), "no plan for task");
  return it->second.device;
}

void HeftScheduler::on_task_ready(core::Task& task) {
  const auto it = plans_.find(task.id());
  HETFLOW_REQUIRE_MSG(it != plans_.end(),
                      "heft: static scheduler cannot accept dynamically "
                      "submitted tasks (task ready without a plan)");
  ready_held_[task.id()] = true;
  release_available(it->second.device);
}

void HeftScheduler::release_available(hw::DeviceId device) {
  std::size_t& cursor = next_to_release_[device];
  std::vector<core::Task*>& sequence = device_sequence_[device];
  while (cursor < sequence.size()) {
    core::Task* task = sequence[cursor];
    const auto held = ready_held_.find(task->id());
    if (held == ready_held_.end() || !held->second) {
      return;  // next planned task not ready yet — preserve HEFT order
    }
    held->second = false;
    ++cursor;
    ctx().assign(*task, ctx().platform().device(device));
  }
}

}  // namespace hetflow::sched
