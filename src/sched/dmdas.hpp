// dmdas (data-aware + sorted, after StarPU's dmdas): like dmda, but
// ready tasks are committed in order of their precomputed upward-rank
// priority rather than submission order, so critical-path work grabs the
// fast devices before filler does. Placement per task is dmda's rule —
// minimize estimated completion including data movement.
#pragma once

#include <queue>
#include <vector>

#include "core/scheduler.hpp"

namespace hetflow::sched {

class DmdasScheduler final : public core::Scheduler {
 public:
  std::string name() const override { return "dmdas"; }

  void prepare(const std::vector<core::Task*>& all_tasks) override;
  void on_task_ready(core::Task& task) override;
  core::Task* on_device_idle(const hw::Device& device) override;
  bool has_retained_work() const noexcept override { return !held_.empty(); }

 private:
  struct LowerRank {
    bool operator()(const core::Task* a, const core::Task* b) const {
      if (a->priority() != b->priority()) {
        return a->priority() < b->priority();
      }
      return a->id() > b->id();
    }
  };
  std::priority_queue<core::Task*, std::vector<core::Task*>, LowerRank>
      held_;

  void flush();
};

}  // namespace hetflow::sched
