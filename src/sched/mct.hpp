// MCT (Minimum Completion Time) — greedy list scheduling: each ready task
// goes to the device with the earliest estimated completion, considering
// device load and execution cost but IGNORING data movement. The ablation
// counterpart of dmda (Fig 2).
#pragma once

#include "core/scheduler.hpp"

namespace hetflow::sched {

class MctScheduler final : public core::Scheduler {
 public:
  std::string name() const override { return "mct"; }
  void on_task_ready(core::Task& task) override;
};

}  // namespace hetflow::sched
