// HEFT (Heterogeneous Earliest Finish Time, Topcuoglu et al. 2002) —
// static list scheduling over the whole DAG:
//
//   1. rank each task by its "upward rank": mean execution cost across
//      devices + the heaviest (comm + rank) path to a sink;
//   2. in rank order, place each task on the device minimizing its
//      earliest finish time (EFT), including the transfer of parent
//      outputs across memory nodes, with insertion into idle gaps of the
//      device timeline.
//
// The runtime then honors the computed (device, order) assignment: ready
// tasks are released to their planned device strictly in planned order.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "core/scheduler.hpp"

namespace hetflow::sched {

class HeftScheduler final : public core::Scheduler {
 public:
  std::string name() const override { return "heft"; }
  bool requires_full_graph() const noexcept override { return true; }

  void prepare(const std::vector<core::Task*>& all_tasks) override;
  void on_task_ready(core::Task& task) override;

  /// Planned device for a task (exposed for tests). Only valid after
  /// prepare().
  hw::DeviceId planned_device(core::TaskId id) const;
  /// Schedule-estimated makespan of the static plan.
  double planned_makespan() const noexcept { return planned_makespan_; }

 private:
  struct Plan {
    hw::DeviceId device = 0;
    std::size_t order = 0;  ///< position in the device's planned sequence
  };
  std::unordered_map<core::TaskId, Plan> plans_;
  // Per device: planned task sequence and release cursor.
  std::vector<std::vector<core::Task*>> device_sequence_;
  std::vector<std::size_t> next_to_release_;
  std::unordered_map<core::TaskId, bool> ready_held_;
  double planned_makespan_ = 0.0;

  void release_available(hw::DeviceId device);
};

}  // namespace hetflow::sched
