#include <cmath>
#include "sched/energy_aware.hpp"

#include <limits>
#include <string>

namespace hetflow::sched {

const char* to_string(EnergyObjective objective) noexcept {
  switch (objective) {
    case EnergyObjective::Energy:
      return "energy";
    case EnergyObjective::Edp:
      return "edp";
    case EnergyObjective::Performance:
      return "performance";
  }
  return "?";
}

std::string EnergyAwareScheduler::name() const {
  return std::string("energy-") + to_string(objective_);
}

void EnergyAwareScheduler::on_task_ready(core::Task& task) {
  struct Candidate {
    const hw::Device* device = nullptr;
    std::size_t dvfs = 0;
    double completion = 0.0;
    double energy = 0.0;
  };
  std::vector<Candidate> candidates;
  double best_completion = std::numeric_limits<double>::infinity();
  for (const hw::Device& device : ctx().platform().devices()) {
    for (std::size_t state = 0; state < device.dvfs_states().size();
         ++state) {
      const double completion =
          ctx().estimate_completion(task, device, state);
      if (!std::isfinite(completion)) {
        break;  // unsupported device type — no state will work
      }
      const double energy = ctx().estimate_energy(task, device, state);
      candidates.push_back(Candidate{&device, state, completion, energy});
      best_completion = std::min(best_completion, completion);
    }
  }
  HETFLOW_REQUIRE_MSG(!candidates.empty(), "energy-aware: no eligible device");

  const Candidate* best = nullptr;
  double best_score = std::numeric_limits<double>::infinity();
  const double now = ctx().now();
  for (const Candidate& candidate : candidates) {
    double score = 0.0;
    switch (objective_) {
      case EnergyObjective::Energy:
        // Admissible only within the slack envelope of the fastest option.
        if (candidate.completion - now >
            slack_factor_ * (best_completion - now)) {
          continue;
        }
        score = candidate.energy;
        break;
      case EnergyObjective::Edp:
        score = candidate.energy * (candidate.completion - now);
        break;
      case EnergyObjective::Performance:
        score = candidate.completion;
        break;
    }
    if (score < best_score) {
      best_score = score;
      best = &candidate;
    }
  }
  HETFLOW_REQUIRE_MSG(best != nullptr, "energy-aware: empty admissible set");
  ctx().assign(task, *best->device, best->dvfs);
}

}  // namespace hetflow::sched
