#include <cmath>
#include "sched/batch.hpp"

#include <algorithm>
#include <limits>

namespace hetflow::sched {

const char* to_string(BatchPolicy policy) noexcept {
  switch (policy) {
    case BatchPolicy::MinMin:
      return "min-min";
    case BatchPolicy::MaxMin:
      return "max-min";
    case BatchPolicy::Sufferage:
      return "sufferage";
  }
  return "?";
}

void BatchScheduler::on_task_ready(core::Task& task) {
  held_.push_back(&task);
}

core::Task* BatchScheduler::on_device_idle(const hw::Device& device) {
  (void)device;
  flush();  // assigns through ctx().assign — nothing returned directly
  return nullptr;
}

BatchScheduler::Choice BatchScheduler::evaluate(const core::Task& task) const {
  Choice choice;
  choice.best_completion = std::numeric_limits<double>::infinity();
  choice.second_completion = std::numeric_limits<double>::infinity();
  for (const hw::Device& device : ctx().platform().devices()) {
    const double completion = ctx().estimate_completion(task, device);
    if (!std::isfinite(completion)) {
      continue;
    }
    if (completion < choice.best_completion) {
      choice.second_completion = choice.best_completion;
      choice.best_completion = completion;
      choice.best_device = &device;
    } else if (completion < choice.second_completion) {
      choice.second_completion = completion;
    }
  }
  HETFLOW_REQUIRE_MSG(choice.best_device != nullptr,
                      "batch: no eligible device");
  return choice;
}

void BatchScheduler::flush() {
  while (!held_.empty()) {
    std::size_t pick = 0;
    Choice pick_choice = evaluate(*held_[0]);
    for (std::size_t i = 1; i < held_.size(); ++i) {
      const Choice choice = evaluate(*held_[i]);
      bool better = false;
      switch (policy_) {
        case BatchPolicy::MinMin:
          better = choice.best_completion < pick_choice.best_completion;
          break;
        case BatchPolicy::MaxMin:
          better = choice.best_completion > pick_choice.best_completion;
          break;
        case BatchPolicy::Sufferage: {
          const auto sufferage = [](const Choice& c) {
            return std::isfinite(c.second_completion)
                       ? c.second_completion - c.best_completion
                       : std::numeric_limits<double>::infinity();
          };
          better = sufferage(choice) > sufferage(pick_choice);
          break;
        }
      }
      if (better) {
        pick = i;
        pick_choice = choice;
      }
    }
    core::Task* task = held_[pick];
    held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(pick));
    // Assignment updates device load, so the next evaluate() sees it.
    ctx().assign(*task, *pick_choice.best_device);
  }
}

}  // namespace hetflow::sched
