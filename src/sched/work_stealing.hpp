// Locality-aware work stealing (StarPU "ws"/"lws" family).
//
// Each device owns a deque. A ready task is pushed onto the deque of the
// eligible device already holding the most input bytes (ties: shortest
// deque). An idle device pops from its own deque front; when empty it
// steals from the back of the longest eligible victim deque — classic
// owner-LIFO/thief-FIFO asymmetry preserving locality.
#pragma once

#include <deque>
#include <vector>

#include "core/scheduler.hpp"

namespace hetflow::sched {

class WorkStealingScheduler final : public core::Scheduler {
 public:
  std::string name() const override { return "work-stealing"; }

  void attach(core::SchedContext& ctx) override;
  void on_task_ready(core::Task& task) override;
  core::Task* on_device_idle(const hw::Device& device) override;
  bool has_retained_work() const noexcept override {
    for (const auto& dq : deques_) {
      if (!dq.empty()) {
        return true;
      }
    }
    return false;
  }

  /// Steals performed so far (ablation metric).
  std::size_t steal_count() const noexcept { return steals_; }

 private:
  std::vector<std::deque<core::Task*>> deques_;
  std::size_t steals_ = 0;
};

}  // namespace hetflow::sched
