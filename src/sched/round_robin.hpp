// Round-robin scheduler — rotates ready tasks over eligible devices in id
// order; blind to cost and data placement but perfectly "fair".
#pragma once

#include "core/scheduler.hpp"

namespace hetflow::sched {

class RoundRobinScheduler final : public core::Scheduler {
 public:
  std::string name() const override { return "round-robin"; }
  void on_task_ready(core::Task& task) override;

 private:
  std::size_t cursor_ = 0;
};

}  // namespace hetflow::sched
