// Critical-path priority scheduler: a dynamic list scheduler that ranks
// tasks by their HEFT-style upward rank (computed once over the whole DAG
// in prepare()) and, whenever a device idles, hands it the highest-rank
// ready task it can run. Placement is therefore pull-driven but
// criticality-ordered — between static HEFT and dynamic eager.
#pragma once

#include <queue>
#include <vector>

#include "core/scheduler.hpp"

namespace hetflow::sched {

class CriticalPathScheduler final : public core::Scheduler {
 public:
  std::string name() const override { return "critical-path"; }

  void prepare(const std::vector<core::Task*>& all_tasks) override;
  void on_task_ready(core::Task& task) override;
  core::Task* on_device_idle(const hw::Device& device) override;
  bool has_retained_work() const noexcept override { return !ready_.empty(); }

 private:
  struct LowerRank {
    bool operator()(const core::Task* a, const core::Task* b) const {
      if (a->priority() != b->priority()) {
        return a->priority() < b->priority();
      }
      return a->id() > b->id();
    }
  };
  std::priority_queue<core::Task*, std::vector<core::Task*>, LowerRank>
      ready_;
};

}  // namespace hetflow::sched
