// Batch-mode mapping heuristics: min-min, max-min, sufferage.
//
// Classic heterogeneous-computing heuristics (Maheswaran et al., HCW'99):
// they look at the whole set of currently ready tasks at once and commit
// (task, device) pairs one by one, recomputing completion estimates after
// each commitment. hetflow runs them in dynamic batch mode — the held set
// is flushed whenever a device runs dry, so batching still happens at
// every dependency-release wave.
#pragma once

#include <vector>

#include "core/scheduler.hpp"

namespace hetflow::sched {

enum class BatchPolicy { MinMin, MaxMin, Sufferage };

const char* to_string(BatchPolicy policy) noexcept;

class BatchScheduler final : public core::Scheduler {
 public:
  explicit BatchScheduler(BatchPolicy policy) : policy_(policy) {}

  std::string name() const override { return to_string(policy_); }
  void on_task_ready(core::Task& task) override;
  core::Task* on_device_idle(const hw::Device& device) override;
  bool has_retained_work() const noexcept override { return !held_.empty(); }

 private:
  BatchPolicy policy_;
  std::vector<core::Task*> held_;

  /// Commits every held task per the policy (empties held_).
  void flush();

  struct Choice {
    const hw::Device* best_device = nullptr;
    double best_completion = 0.0;
    double second_completion = 0.0;  ///< for sufferage
  };
  Choice evaluate(const core::Task& task) const;
};

}  // namespace hetflow::sched
