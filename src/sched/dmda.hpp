// dmda (deque model, data aware — after StarPU's dmda) — greedy earliest-
// completion placement where the estimate INCLUDES the time to move the
// task's missing inputs onto the candidate device, given current link
// occupancy. An optional locality bonus further favors devices already
// holding the inputs.
#pragma once

#include "core/scheduler.hpp"

namespace hetflow::sched {

class DmdaScheduler final : public core::Scheduler {
 public:
  /// @param locality_weight extra seconds charged per GiB of missing
  ///        input (0 = pure ECT; small positive values break ECT ties
  ///        toward data locality).
  explicit DmdaScheduler(double locality_weight = 0.0)
      : locality_weight_(locality_weight) {}

  std::string name() const override { return "dmda"; }
  void on_task_ready(core::Task& task) override;

 private:
  double locality_weight_;
};

}  // namespace hetflow::sched
