// CPOP (Critical-Path-On-a-Processor, Topcuoglu et al. 2002) — HEFT's
// sibling: tasks are prioritized by rank_u + rank_d; every task on the
// critical path is pinned to the single device that executes the whole
// critical path fastest, while off-path tasks are placed by insertion
// EFT. Compared with HEFT, CPOP wins when the critical path dominates
// and benefits from zero intra-path communication.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/scheduler.hpp"

namespace hetflow::sched {

class CpopScheduler final : public core::Scheduler {
 public:
  std::string name() const override { return "cpop"; }
  bool requires_full_graph() const noexcept override { return true; }

  void prepare(const std::vector<core::Task*>& all_tasks) override;
  void on_task_ready(core::Task& task) override;

  hw::DeviceId critical_path_device() const noexcept { return cp_device_; }
  std::size_t critical_path_length() const noexcept { return cp_size_; }

 private:
  struct Plan {
    hw::DeviceId device = 0;
  };
  std::unordered_map<core::TaskId, Plan> plans_;
  // Release machinery identical to HEFT: per-device planned order.
  std::vector<std::vector<core::Task*>> device_sequence_;
  std::vector<std::size_t> next_to_release_;
  std::unordered_map<core::TaskId, bool> ready_held_;
  hw::DeviceId cp_device_ = 0;
  std::size_t cp_size_ = 0;

  void release_available(hw::DeviceId device);
};

}  // namespace hetflow::sched
