#include "sched/cpop.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "sched/graph_utils.hpp"

namespace hetflow::sched {

void CpopScheduler::prepare(const std::vector<core::Task*>& all_tasks) {
  plans_.clear();
  device_sequence_.assign(ctx().platform().device_count(), {});
  next_to_release_.assign(ctx().platform().device_count(), 0);
  ready_held_.clear();
  // Size the per-task maps up front: at 10^5+ planned tasks, letting the
  // hash tables rehash their way up dominates plan time.
  plans_.reserve(all_tasks.size());
  ready_held_.reserve(all_tasks.size());
  cp_device_ = 0;
  cp_size_ = 0;
  if (all_tasks.empty()) {
    return;
  }

  const hw::Platform& platform = ctx().platform();
  const TaskGraphView view = TaskGraphView::build(ctx(), all_tasks);
  const std::vector<double> up = view.upward_ranks(platform);
  const std::vector<double> down = view.downward_ranks(platform);

  std::vector<double> priority(view.size());
  double cp_priority = 0.0;
  for (std::size_t i = 0; i < view.size(); ++i) {
    priority[i] = up[i] + down[i];
    all_tasks[i]->set_priority(priority[i]);
    cp_priority = std::max(cp_priority, priority[i]);
  }

  // Critical path: ONE source-to-sink path of maximum priority. Walking
  // greedily (highest-priority successor, smallest id on ties) rather
  // than taking every tied task matters for workflows with identical
  // parallel branches — pinning all tied branches to one device would
  // serialize the whole graph.
  std::vector<bool> on_cp(view.size(), false);
  {
    std::size_t entry = view.size();
    for (std::size_t i = 0; i < view.size(); ++i) {
      if (view.graph().in_degree(i) == 0 &&
          priority[i] >= cp_priority * (1.0 - 1e-9) &&
          (entry == view.size() ||
           all_tasks[i]->id() < all_tasks[entry]->id())) {
        entry = i;
      }
    }
    for (std::size_t node = entry; node != view.size();) {
      on_cp[node] = true;
      ++cp_size_;
      std::size_t next = view.size();
      for (std::size_t succ : view.graph().successors(node)) {
        if (next == view.size() || priority[succ] > priority[next] ||
            (priority[succ] == priority[next] &&
             all_tasks[succ]->id() < all_tasks[next]->id())) {
          next = succ;
        }
      }
      node = next;
    }
  }

  // Critical-path processor: device minimizing the summed execution time
  // of the CP tasks (must support all of them).
  double best_total = std::numeric_limits<double>::infinity();
  for (const hw::Device& device : platform.devices()) {
    double total = 0.0;
    bool feasible = true;
    for (std::size_t i = 0; i < view.size(); ++i) {
      if (!on_cp[i]) {
        continue;
      }
      const double est = ctx().estimate_exec_seconds(*all_tasks[i], device);
      if (!std::isfinite(est)) {
        feasible = false;
        break;
      }
      total += est;
    }
    if (feasible && total < best_total) {
      best_total = total;
      cp_device_ = device.id();
    }
  }
  if (!std::isfinite(best_total)) {
    // No single device runs the whole CP (mixed-support kinds): fall back
    // to per-task EFT for everyone.
    std::fill(on_cp.begin(), on_cp.end(), false);
    cp_size_ = 0;
  }

  // Priority-ordered placement with insertion EFT; CP tasks pinned.
  std::vector<std::size_t> order(view.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (priority[a] != priority[b]) {
      return priority[a] > priority[b];
    }
    return all_tasks[a]->id() < all_tasks[b]->id();
  });

  InsertionTimeline timeline(platform.device_count());
  std::vector<double> finish(view.size(), 0.0);
  std::vector<hw::DeviceId> placed(view.size(), 0);
  // Process in topological-compatible priority order: CPOP's priority is
  // monotone along edges (rank_u + rank_d decreases from parent to child
  // only when off the CP), so enforce topology explicitly.
  const std::vector<std::size_t> topo = view.graph().topological_order();
  // Merge: stable placement by topo order but CP pinning preserved.
  for (std::size_t i : topo) {
    core::Task& task = *all_tasks[i];
    const auto data_ready = [&](const hw::Device& device) {
      double ready = 0.0;
      for (std::size_t parent : view.graph().predecessors(i)) {
        double arrival = finish[parent];
        const hw::MemoryNodeId src =
            platform.device(placed[parent]).memory_node();
        if (src != device.memory_node()) {
          arrival += platform.transfer_time_s(src, device.memory_node(),
                                              view.edge_bytes(parent, i));
        }
        ready = std::max(ready, arrival);
      }
      return ready;
    };
    const hw::Device* chosen = nullptr;
    double chosen_start = 0.0;
    double chosen_exec = 0.0;
    if (on_cp[i]) {
      const hw::Device& device = platform.device(cp_device_);
      chosen = &device;
      chosen_exec = ctx().estimate_exec_seconds(task, device);
      chosen_start =
          timeline.earliest_fit(device.id(), data_ready(device), chosen_exec);
    } else {
      double best_eft = std::numeric_limits<double>::infinity();
      for (const hw::Device& device : platform.devices()) {
        const double exec = ctx().estimate_exec_seconds(task, device);
        if (!std::isfinite(exec)) {
          continue;
        }
        const double start =
            timeline.earliest_fit(device.id(), data_ready(device), exec);
        if (start + exec < best_eft) {
          best_eft = start + exec;
          chosen = &device;
          chosen_start = start;
          chosen_exec = exec;
        }
      }
    }
    HETFLOW_REQUIRE_MSG(chosen != nullptr, "cpop: no eligible device");
    timeline.book(chosen->id(), chosen_start, chosen_exec);
    finish[i] = chosen_start + chosen_exec;
    placed[i] = chosen->id();
  }

  // Per-device release order by planned finish time.
  std::vector<std::vector<std::pair<double, std::size_t>>> per_device(
      platform.device_count());
  for (std::size_t i = 0; i < view.size(); ++i) {
    per_device[placed[i]].push_back({finish[i], i});
  }
  for (hw::DeviceId d = 0; d < per_device.size(); ++d) {
    std::sort(per_device[d].begin(), per_device[d].end());
    for (const auto& [t, i] : per_device[d]) {
      plans_[all_tasks[i]->id()] = Plan{d};
      device_sequence_[d].push_back(all_tasks[i]);
    }
  }
}

void CpopScheduler::on_task_ready(core::Task& task) {
  const auto it = plans_.find(task.id());
  HETFLOW_REQUIRE_MSG(it != plans_.end(),
                      "cpop: static scheduler cannot accept dynamically "
                      "submitted tasks (task ready without a plan)");
  ready_held_[task.id()] = true;
  release_available(it->second.device);
}

void CpopScheduler::release_available(hw::DeviceId device) {
  std::size_t& cursor = next_to_release_[device];
  std::vector<core::Task*>& sequence = device_sequence_[device];
  while (cursor < sequence.size()) {
    core::Task* task = sequence[cursor];
    const auto held = ready_held_.find(task->id());
    if (held == ready_held_.end() || !held->second) {
      return;
    }
    held->second = false;
    ++cursor;
    ctx().assign(*task, ctx().platform().device(device));
  }
}

}  // namespace hetflow::sched
