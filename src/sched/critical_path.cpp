#include "sched/critical_path.hpp"

#include <vector>

#include "sched/graph_utils.hpp"

namespace hetflow::sched {

void CriticalPathScheduler::prepare(
    const std::vector<core::Task*>& all_tasks) {
  if (all_tasks.empty()) {
    return;
  }
  const TaskGraphView view = TaskGraphView::build(ctx(), all_tasks);
  const std::vector<double> ranks = view.upward_ranks(ctx().platform());
  for (std::size_t i = 0; i < all_tasks.size(); ++i) {
    all_tasks[i]->set_priority(ranks[i]);
  }
}

void CriticalPathScheduler::on_task_ready(core::Task& task) {
  ready_.push(&task);
}

core::Task* CriticalPathScheduler::on_device_idle(const hw::Device& device) {
  // Highest-priority runnable task; skipped tasks go back afterwards.
  std::vector<core::Task*> skipped;
  core::Task* chosen = nullptr;
  while (!ready_.empty()) {
    core::Task* task = ready_.top();
    ready_.pop();
    if (task->codelet().supports(device.type())) {
      chosen = task;
      break;
    }
    skipped.push_back(task);
  }
  for (core::Task* task : skipped) {
    ready_.push(task);
  }
  return chosen;
}

}  // namespace hetflow::sched
