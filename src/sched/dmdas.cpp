#include "sched/dmdas.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/recorder.hpp"
#include "perf/energy_model.hpp"
#include "sched/graph_utils.hpp"

namespace hetflow::sched {

void DmdasScheduler::prepare(const std::vector<core::Task*>& all_tasks) {
  if (all_tasks.empty()) {
    return;
  }
  const TaskGraphView view = TaskGraphView::build(ctx(), all_tasks);
  const std::vector<double> ranks = view.upward_ranks(ctx().platform());
  for (std::size_t i = 0; i < all_tasks.size(); ++i) {
    all_tasks[i]->set_priority(ranks[i]);
  }
}

void DmdasScheduler::on_task_ready(core::Task& task) {
  held_.push(&task);
}

core::Task* DmdasScheduler::on_device_idle(const hw::Device& device) {
  (void)device;
  flush();
  return nullptr;
}

void DmdasScheduler::flush() {
  obs::Recorder* recorder = ctx().recorder();
  while (!held_.empty()) {
    core::Task* task = held_.top();
    held_.pop();
    const hw::Device* best = nullptr;
    double best_completion = std::numeric_limits<double>::infinity();
    std::vector<obs::DecisionCandidate> candidates;
    // Skip quarantined devices; if every capable device is quarantined,
    // fall back to considering them all.
    for (const bool skip_blacklisted : {true, false}) {
      candidates.clear();
      for (const hw::Device& device : ctx().platform().devices()) {
        if (skip_blacklisted && ctx().device_blacklisted(device)) {
          continue;
        }
        // One exec estimate per candidate, shared by the completion
        // score and the decision-log energy column — the per-push
        // estimate_completion + estimate_energy pair used to derive the
        // same exec twice. Reassembles SchedContext::estimate_completion
        // exactly: max(avail, data_ready) + exec.
        const double exec = ctx().estimate_exec_seconds(*task, device);
        if (!std::isfinite(exec)) {
          continue;
        }
        const sim::SimTime avail = ctx().device_available_at(device);
        const sim::SimTime data_ready =
            ctx().estimate_data_ready(*task, device, avail);
        const double completion = std::max(avail, data_ready) + exec;
        if (recorder != nullptr) {
          candidates.push_back(
              {device.id(), completion,
               perf::EnergyModel::task_energy_j(
                   device, device.nominal_dvfs_index(), exec),
               ctx().device_blacklisted(device)});
        }
        if (completion < best_completion) {
          best_completion = completion;
          best = &device;
        }
      }
      if (best != nullptr) {
        break;
      }
    }
    HETFLOW_REQUIRE_MSG(best != nullptr, "dmdas: no eligible device");
    if (recorder != nullptr) {
      obs::SchedDecision decision;
      decision.task = task->id();
      decision.task_name = task->name();
      decision.time = ctx().now();
      decision.scheduler = name();
      decision.candidates = std::move(candidates);
      decision.winner = best->id();
      decision.reason = "priority order, min completion";
      recorder->add_decision(std::move(decision));
    }
    ctx().assign(*task, *best);
  }
}

}  // namespace hetflow::sched
