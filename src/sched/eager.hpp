// Eager scheduler — the classic central-queue baseline (StarPU "eager"):
// ready tasks enter one FIFO; any idle device pulls the oldest task it
// can execute. No cost model, no data awareness.
#pragma once

#include <cstddef>
#include <vector>

#include "core/scheduler.hpp"

namespace hetflow::sched {

class EagerScheduler final : public core::Scheduler {
 public:
  std::string name() const override { return "eager"; }
  void on_task_ready(core::Task& task) override;
  core::Task* on_device_idle(const hw::Device& device) override;
  bool has_retained_work() const noexcept override {
    return head_ < fifo_.size();
  }

 private:
  /// FIFO as vector + head cursor instead of std::deque: the steady state
  /// alternates push/pop a million times, and a deque oscillating across
  /// a block boundary pays an allocation per cycle. The consumed prefix
  /// is trimmed when the cursor passes half the (grown) buffer, keeping
  /// amortized O(1) pops and bounded memory.
  std::vector<core::Task*> fifo_;
  std::size_t head_ = 0;
};

}  // namespace hetflow::sched
