// Eager scheduler — the classic central-queue baseline (StarPU "eager"):
// ready tasks enter one FIFO; any idle device pulls the oldest task it
// can execute. No cost model, no data awareness.
#pragma once

#include <deque>

#include "core/scheduler.hpp"

namespace hetflow::sched {

class EagerScheduler final : public core::Scheduler {
 public:
  std::string name() const override { return "eager"; }
  void on_task_ready(core::Task& task) override;
  core::Task* on_device_idle(const hw::Device& device) override;
  bool has_retained_work() const noexcept override { return !fifo_.empty(); }

 private:
  std::deque<core::Task*> fifo_;
};

}  // namespace hetflow::sched
