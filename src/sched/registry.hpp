// Scheduler factory: construct any built-in policy by name. The canonical
// spelling list is what benches/tests iterate over.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.hpp"

namespace hetflow::sched {

/// Names accepted by make_scheduler, in canonical order:
/// "eager", "random", "round-robin", "mct", "dmda", "min-min", "max-min",
/// "sufferage", "heft", "work-stealing", "critical-path",
/// "energy-energy", "energy-edp", "energy-performance".
std::vector<std::string> scheduler_names();

/// Builds a scheduler by name; `seed` feeds randomized policies.
/// Throws InvalidArgument for unknown names.
std::unique_ptr<core::Scheduler> make_scheduler(const std::string& name,
                                                std::uint64_t seed = 1);

}  // namespace hetflow::sched
