#include "sched/graph_utils.hpp"

#include <algorithm>
#include <cmath>

#include "perf/transfer_model.hpp"

namespace hetflow::sched {

TaskGraphView TaskGraphView::build(const core::SchedContext& ctx,
                                   const std::vector<core::Task*>& tasks) {
  TaskGraphView view;
  view.tasks_ = tasks;
  view.graph_.resize(tasks.size());
  view.mean_exec_.assign(tasks.size(), 0.0);

  std::unordered_map<core::TaskId, std::size_t> index;
  index.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    index[tasks[i]->id()] = i;
  }

  const data::DataRegistry& registry = ctx.data_registry();
  // Workflow DAGs are sparse — a couple of parents per task — so sizing
  // for 2 edges per task absorbs nearly every rehash up front.
  view.edge_bytes_.reserve(tasks.size() * 2);
  for (std::size_t child = 0; child < tasks.size(); ++child) {
    for (core::TaskId parent_id : tasks[child]->dependencies) {
      const auto it = index.find(parent_id);
      if (it == index.end()) {
        continue;  // parent completed in an earlier wave
      }
      const std::size_t parent = it->second;
      view.graph_.add_edge(parent, child);
      // Edge payload: handles the parent writes that the child reads.
      std::uint64_t bytes = 0;
      for (const data::Access& out : tasks[parent]->accesses()) {
        if (!data::is_write(out.mode) && !data::is_redux(out.mode)) {
          continue;
        }
        for (const data::Access& in : tasks[child]->accesses()) {
          if (data::is_read(in.mode) && in.data == out.data) {
            bytes += registry.handle(in.data).bytes;
            break;
          }
        }
      }
      view.edge_bytes_[key(parent, child)] = bytes;
    }
  }

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    double total = 0.0;
    std::size_t count = 0;
    for (const hw::Device& device : ctx.platform().devices()) {
      const double est = ctx.estimate_exec_seconds(*tasks[i], device);
      if (std::isfinite(est)) {
        total += est;
        ++count;
      }
    }
    HETFLOW_REQUIRE_MSG(count > 0, "task runs on no device");
    view.mean_exec_[i] = total / static_cast<double>(count);
  }
  return view;
}

std::uint64_t TaskGraphView::edge_bytes(std::size_t a, std::size_t b) const {
  const auto it = edge_bytes_.find(key(a, b));
  return it == edge_bytes_.end() ? 0 : it->second;
}

std::vector<double> TaskGraphView::upward_ranks(
    const hw::Platform& platform) const {
  const perf::TransferModel comm(platform);
  return graph_.upward_ranks(mean_exec_, [&](std::size_t a, std::size_t b) {
    return comm.mean_time_s(edge_bytes(a, b));
  });
}

std::vector<double> TaskGraphView::downward_ranks(
    const hw::Platform& platform) const {
  const perf::TransferModel comm(platform);
  return graph_.downward_ranks(mean_exec_, [&](std::size_t a, std::size_t b) {
    return comm.mean_time_s(edge_bytes(a, b));
  });
}

double InsertionTimeline::earliest_fit(hw::DeviceId device, double ready,
                                       double duration) const {
  const std::vector<Slot>& slots = slots_[device];
  // Slots are sorted and non-overlapping, so their end times are ordered
  // too; skip straight past every slot that ends at or before `ready` —
  // none of them can host or constrain a fit that starts at >= ready.
  // (A zero-length slot exactly at `ready` is skipped as well: the scan
  // below then finds the same gap at `ready` the full scan would.)
  // Without the skip, a plan-time loop over N tasks goes quadratic: HEFT
  // probes every device timeline once per task, and each probe walked
  // the whole booked prefix.
  auto it = std::partition_point(
      slots.begin(), slots.end(),
      [ready](const Slot& slot) { return slot.end <= ready; });
  double cursor = ready;
  for (; it != slots.end(); ++it) {
    if (cursor + duration <= it->start) {
      return cursor;
    }
    cursor = std::max(cursor, it->end);
  }
  return cursor;
}

void InsertionTimeline::book(hw::DeviceId device, double start,
                             double duration) {
  std::vector<Slot>& slots = slots_[device];
  const Slot inserted{start, start + duration};
  slots.insert(
      std::upper_bound(slots.begin(), slots.end(), inserted,
                       [](const Slot& a, const Slot& b) {
                         return a.start < b.start;
                       }),
      inserted);
}

}  // namespace hetflow::sched
