#include "sched/random_sched.hpp"

#include <vector>

namespace hetflow::sched {

void RandomScheduler::on_task_ready(core::Task& task) {
  std::vector<const hw::Device*> eligible;
  for (const hw::Device& device : ctx().platform().devices()) {
    if (task.codelet().supports(device.type())) {
      eligible.push_back(&device);
    }
  }
  HETFLOW_REQUIRE_MSG(!eligible.empty(), "no eligible device (runtime bug)");
  ctx().assign(task, *eligible[rng_.index(eligible.size())]);
}

}  // namespace hetflow::sched
