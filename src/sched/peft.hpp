// PEFT (Predict Earliest Finish Time, Arabnejad & Barbosa 2014) — list
// scheduling with lookahead. Instead of HEFT's device-agnostic upward
// rank, PEFT precomputes an Optimistic Cost Table
//
//   OCT(t, p) = max over successors s of
//               min over devices q of [ OCT(s, q) + w(s, q)
//                                       + (q == p ? 0 : avg_comm(t, s)) ]
//
// (0 for exit tasks) — the best-case remaining path if t runs on p.
// Tasks are prioritized by the mean OCT row and placed on the device
// minimizing EFT(t, p) + OCT(t, p): the lookahead steers away from
// devices that finish this task early but strand its descendants.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/scheduler.hpp"

namespace hetflow::sched {

class PeftScheduler final : public core::Scheduler {
 public:
  std::string name() const override { return "peft"; }
  bool requires_full_graph() const noexcept override { return true; }

  void prepare(const std::vector<core::Task*>& all_tasks) override;
  void on_task_ready(core::Task& task) override;

 private:
  struct Plan {
    hw::DeviceId device = 0;
  };
  std::unordered_map<core::TaskId, Plan> plans_;
  std::vector<std::vector<core::Task*>> device_sequence_;
  std::vector<std::size_t> next_to_release_;
  std::unordered_map<core::TaskId, bool> ready_held_;

  void release_available(hw::DeviceId device);
};

}  // namespace hetflow::sched
