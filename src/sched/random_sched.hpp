// Random scheduler — lower-bound baseline: each ready task goes to a
// uniformly random device that can run it.
#pragma once

#include "core/scheduler.hpp"
#include "util/rng.hpp"

namespace hetflow::sched {

class RandomScheduler final : public core::Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed = 1) : rng_(seed) {}

  std::string name() const override { return "random"; }
  void on_task_ready(core::Task& task) override;

 private:
  util::Rng rng_;
};

}  // namespace hetflow::sched
