#include "sched/registry.hpp"

#include "sched/batch.hpp"
#include "sched/cpop.hpp"
#include "sched/critical_path.hpp"
#include "sched/dmda.hpp"
#include "sched/dmdas.hpp"
#include "sched/eager.hpp"
#include "sched/energy_aware.hpp"
#include "sched/heft.hpp"
#include "sched/mct.hpp"
#include "sched/peft.hpp"
#include "sched/random_sched.hpp"
#include "sched/round_robin.hpp"
#include "sched/work_stealing.hpp"
#include "util/error.hpp"

namespace hetflow::sched {

std::vector<std::string> scheduler_names() {
  return {"eager",     "random",        "round-robin",   "mct",
          "dmda",      "dmdas",         "min-min",       "max-min",
          "sufferage", "heft",          "cpop",          "peft",
          "work-stealing",
          "critical-path", "energy-energy", "energy-edp",
          "energy-performance"};
}

std::unique_ptr<core::Scheduler> make_scheduler(const std::string& name,
                                                std::uint64_t seed) {
  if (name == "eager") {
    return std::make_unique<EagerScheduler>();
  }
  if (name == "random") {
    return std::make_unique<RandomScheduler>(seed);
  }
  if (name == "round-robin") {
    return std::make_unique<RoundRobinScheduler>();
  }
  if (name == "mct") {
    return std::make_unique<MctScheduler>();
  }
  if (name == "dmda") {
    return std::make_unique<DmdaScheduler>();
  }
  if (name == "dmdas") {
    return std::make_unique<DmdasScheduler>();
  }
  if (name == "min-min") {
    return std::make_unique<BatchScheduler>(BatchPolicy::MinMin);
  }
  if (name == "max-min") {
    return std::make_unique<BatchScheduler>(BatchPolicy::MaxMin);
  }
  if (name == "sufferage") {
    return std::make_unique<BatchScheduler>(BatchPolicy::Sufferage);
  }
  if (name == "heft") {
    return std::make_unique<HeftScheduler>();
  }
  if (name == "cpop") {
    return std::make_unique<CpopScheduler>();
  }
  if (name == "peft") {
    return std::make_unique<PeftScheduler>();
  }
  if (name == "work-stealing") {
    return std::make_unique<WorkStealingScheduler>();
  }
  if (name == "critical-path") {
    return std::make_unique<CriticalPathScheduler>();
  }
  if (name == "energy-energy") {
    return std::make_unique<EnergyAwareScheduler>(EnergyObjective::Energy);
  }
  if (name == "energy-edp") {
    return std::make_unique<EnergyAwareScheduler>(EnergyObjective::Edp);
  }
  if (name == "energy-performance") {
    return std::make_unique<EnergyAwareScheduler>(
        EnergyObjective::Performance);
  }
  throw InvalidArgument("unknown scheduler '" + name + "'");
}

}  // namespace hetflow::sched
