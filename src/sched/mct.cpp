#include <cmath>
#include "sched/mct.hpp"

#include <limits>

namespace hetflow::sched {

void MctScheduler::on_task_ready(core::Task& task) {
  const hw::Device* best = nullptr;
  double best_completion = std::numeric_limits<double>::infinity();
  // Skip quarantined devices; if every capable device is quarantined,
  // fall back to considering them all.
  for (const bool skip_blacklisted : {true, false}) {
    for (const hw::Device& device : ctx().platform().devices()) {
      if (skip_blacklisted && ctx().device_blacklisted(device)) {
        continue;
      }
      const double exec = ctx().estimate_exec_seconds(task, device);
      if (!std::isfinite(exec)) {
        continue;
      }
      // Completion without the data-movement term — deliberately blind.
      const double completion = ctx().device_available_at(device) + exec;
      if (completion < best_completion) {
        best_completion = completion;
        best = &device;
      }
    }
    if (best != nullptr) {
      break;
    }
  }
  HETFLOW_REQUIRE_MSG(best != nullptr, "mct: no eligible device");
  ctx().assign(task, *best);
}

}  // namespace hetflow::sched
