#include <cmath>
#include "sched/mct.hpp"

#include <limits>

#include "obs/recorder.hpp"

namespace hetflow::sched {

void MctScheduler::on_task_ready(core::Task& task) {
  obs::Recorder* recorder = ctx().recorder();
  const hw::Device* best = nullptr;
  double best_completion = std::numeric_limits<double>::infinity();
  std::vector<obs::DecisionCandidate> candidates;
  // Skip quarantined devices; if every capable device is quarantined,
  // fall back to considering them all.
  for (const bool skip_blacklisted : {true, false}) {
    candidates.clear();
    for (const hw::Device& device : ctx().platform().devices()) {
      if (skip_blacklisted && ctx().device_blacklisted(device)) {
        continue;
      }
      const double exec = ctx().estimate_exec_seconds(task, device);
      if (!std::isfinite(exec)) {
        continue;
      }
      // Completion without the data-movement term — deliberately blind.
      const double completion = ctx().device_available_at(device) + exec;
      if (recorder != nullptr) {
        candidates.push_back({device.id(), completion,
                              ctx().estimate_energy(task, device),
                              ctx().device_blacklisted(device)});
      }
      if (completion < best_completion) {
        best_completion = completion;
        best = &device;
      }
    }
    if (best != nullptr) {
      break;
    }
  }
  HETFLOW_REQUIRE_MSG(best != nullptr, "mct: no eligible device");
  if (recorder != nullptr) {
    obs::SchedDecision decision;
    decision.task = task.id();
    decision.task_name = task.name();
    decision.time = ctx().now();
    decision.scheduler = name();
    decision.candidates = std::move(candidates);
    decision.winner = best->id();
    decision.reason = "min completion (data-blind)";
    recorder->add_decision(std::move(decision));
  }
  ctx().assign(task, *best);
}

}  // namespace hetflow::sched
