#include "sched/round_robin.hpp"

namespace hetflow::sched {

void RoundRobinScheduler::on_task_ready(core::Task& task) {
  const auto& devices = ctx().platform().devices();
  for (std::size_t probe = 0; probe < devices.size(); ++probe) {
    const hw::Device& device = devices[(cursor_ + probe) % devices.size()];
    if (task.codelet().supports(device.type())) {
      cursor_ = (cursor_ + probe + 1) % devices.size();
      ctx().assign(task, device);
      return;
    }
  }
  // Unreachable: the runtime rejects tasks no platform device can run.
  throw InternalError("round-robin: no eligible device");
}

}  // namespace hetflow::sched
