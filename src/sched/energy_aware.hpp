// Energy-aware scheduler with DVFS selection.
//
// For each ready task it scans every (device, DVFS point) pair and picks
// the one minimizing the configured objective:
//
//   * Energy — task Joules, with a slack bound so the schedule does not
//     degenerate (a pair is admissible only while its completion stays
//     within `slack_factor` of the best achievable completion);
//   * Edp    — task Joules x estimated completion latency from now;
//   * Performance — earliest completion (race-to-idle reference point).
#pragma once

#include "core/scheduler.hpp"

namespace hetflow::sched {

enum class EnergyObjective { Energy, Edp, Performance };

const char* to_string(EnergyObjective objective) noexcept;

class EnergyAwareScheduler final : public core::Scheduler {
 public:
  explicit EnergyAwareScheduler(
      EnergyObjective objective = EnergyObjective::Edp,
      double slack_factor = 2.0)
      : objective_(objective), slack_factor_(slack_factor) {}

  std::string name() const override;
  void on_task_ready(core::Task& task) override;

 private:
  EnergyObjective objective_;
  double slack_factor_;
};

}  // namespace hetflow::sched
