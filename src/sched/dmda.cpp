#include <cmath>
#include "sched/dmda.hpp"

#include <limits>

#include "obs/recorder.hpp"

namespace hetflow::sched {

void DmdaScheduler::on_task_ready(core::Task& task) {
  obs::Recorder* recorder = ctx().recorder();
  const hw::Device* best = nullptr;
  double best_score = std::numeric_limits<double>::infinity();
  std::vector<obs::DecisionCandidate> candidates;
  constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
  // Quarantined devices are excluded outright (parking work on one
  // serializes behind its probation timer); if every capable device is
  // quarantined, fall back to considering them all.
  for (const bool skip_blacklisted : {true, false}) {
    candidates.clear();
    for (const hw::Device& device : ctx().platform().devices()) {
      if (skip_blacklisted && ctx().device_blacklisted(device)) {
        continue;
      }
      const double completion = ctx().estimate_completion(task, device);
      if (!std::isfinite(completion)) {
        continue;
      }
      if (recorder != nullptr) {
        candidates.push_back({device.id(), completion,
                              ctx().estimate_energy(task, device),
                              ctx().device_blacklisted(device)});
      }
      const double missing =
          static_cast<double>(ctx().missing_input_bytes(task, device));
      const double score = completion + locality_weight_ * missing / kGiB;
      if (score < best_score) {
        best_score = score;
        best = &device;
      }
    }
    if (best != nullptr) {
      break;
    }
  }
  HETFLOW_REQUIRE_MSG(best != nullptr, "dmda: no eligible device");
  if (recorder != nullptr) {
    obs::SchedDecision decision;
    decision.task = task.id();
    decision.task_name = task.name();
    decision.time = ctx().now();
    decision.scheduler = name();
    decision.candidates = std::move(candidates);
    decision.winner = best->id();
    decision.reason = "min completion + locality penalty";
    recorder->add_decision(std::move(decision));
  }
  ctx().assign(task, *best);
}

}  // namespace hetflow::sched
