#include <cmath>
#include "sched/dmda.hpp"

#include <limits>

namespace hetflow::sched {

void DmdaScheduler::on_task_ready(core::Task& task) {
  const hw::Device* best = nullptr;
  double best_score = std::numeric_limits<double>::infinity();
  constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
  for (const hw::Device& device : ctx().platform().devices()) {
    const double completion = ctx().estimate_completion(task, device);
    if (!std::isfinite(completion)) {
      continue;
    }
    const double missing =
        static_cast<double>(ctx().missing_input_bytes(task, device));
    const double score = completion + locality_weight_ * missing / kGiB;
    if (score < best_score) {
      best_score = score;
      best = &device;
    }
  }
  HETFLOW_REQUIRE_MSG(best != nullptr, "dmda: no eligible device");
  ctx().assign(task, *best);
}

}  // namespace hetflow::sched
