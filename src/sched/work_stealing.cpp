#include "sched/work_stealing.hpp"

#include <limits>

#include "obs/recorder.hpp"
#include "util/strings.hpp"

namespace hetflow::sched {

namespace {

/// Enqueue/pull decisions share this shape: one record naming the device
/// the task is headed to. The pull/steal record comes second, so the
/// LAST record per task names the device it actually ran on.
void log_placement(core::SchedContext& ctx, const core::Task& task,
                   const hw::Device& device, std::string reason) {
  obs::Recorder* recorder = ctx.recorder();
  if (recorder == nullptr) {
    return;
  }
  obs::SchedDecision decision;
  decision.task = task.id();
  decision.task_name = task.name();
  decision.time = ctx.now();
  decision.scheduler = "work-stealing";
  decision.candidates.push_back(
      {device.id(), ctx.estimate_completion(task, device),
       ctx.estimate_energy(task, device),
       ctx.device_blacklisted(device)});
  decision.winner = device.id();
  decision.reason = std::move(reason);
  recorder->add_decision(std::move(decision));
}

}  // namespace

void WorkStealingScheduler::attach(core::SchedContext& ctx) {
  Scheduler::attach(ctx);
  deques_.assign(ctx.platform().device_count(), {});
}

void WorkStealingScheduler::on_task_ready(core::Task& task) {
  const hw::Device* best = nullptr;
  std::uint64_t best_missing = std::numeric_limits<std::uint64_t>::max();
  std::size_t best_queue = 0;
  for (const hw::Device& device : ctx().platform().devices()) {
    if (!task.codelet().supports(device.type())) {
      continue;
    }
    const std::uint64_t missing = ctx().missing_input_bytes(task, device);
    const std::size_t queued =
        deques_[device.id()].size() + ctx().queue_length(device);
    if (best == nullptr || missing < best_missing ||
        (missing == best_missing && queued < best_queue)) {
      best = &device;
      best_missing = missing;
      best_queue = queued;
    }
  }
  HETFLOW_REQUIRE_MSG(best != nullptr, "work-stealing: no eligible device");
  log_placement(ctx(), task, *best,
                "enqueued: min missing bytes, then shortest queue");
  deques_[best->id()].push_back(&task);
}

core::Task* WorkStealingScheduler::on_device_idle(const hw::Device& device) {
  std::deque<core::Task*>& own = deques_[device.id()];
  // Own work first (front — oldest, inputs most likely resident by now).
  for (auto it = own.begin(); it != own.end(); ++it) {
    if ((*it)->codelet().supports(device.type())) {
      core::Task* task = *it;
      own.erase(it);
      log_placement(ctx(), *task, device, "pulled by idle owner");
      return task;
    }
  }
  // Steal from the richest victim's back.
  std::size_t victim = deques_.size();
  std::size_t victim_size = 0;
  for (std::size_t d = 0; d < deques_.size(); ++d) {
    if (d == device.id() || deques_[d].empty()) {
      continue;
    }
    // Victim must hold at least one task this thief can run.
    bool runnable = false;
    for (core::Task* task : deques_[d]) {
      if (task->codelet().supports(device.type())) {
        runnable = true;
        break;
      }
    }
    if (runnable && deques_[d].size() > victim_size) {
      victim = d;
      victim_size = deques_[d].size();
    }
  }
  if (victim == deques_.size()) {
    return nullptr;
  }
  std::deque<core::Task*>& loot = deques_[victim];
  for (auto it = loot.rbegin(); it != loot.rend(); ++it) {
    if ((*it)->codelet().supports(device.type())) {
      core::Task* task = *it;
      loot.erase(std::next(it).base());
      ++steals_;
      log_placement(
          ctx(), *task, device,
          util::format("stolen from %s",
                       ctx()
                           .platform()
                           .device(static_cast<hw::DeviceId>(victim))
                           .name()
                           .c_str()));
      return task;
    }
  }
  return nullptr;
}

}  // namespace hetflow::sched
