// Shared machinery for static list schedulers (HEFT, CPOP,
// critical-path): a dense-index view of the open task graph with edge
// byte counts and per-task mean execution costs.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/scheduler.hpp"
#include "util/graph.hpp"

namespace hetflow::sched {

class TaskGraphView {
 public:
  /// Builds the view over `tasks` (dependencies to tasks outside the set
  /// — already completed in earlier waves — are ignored).
  static TaskGraphView build(const core::SchedContext& ctx,
                             const std::vector<core::Task*>& tasks);

  const std::vector<core::Task*>& tasks() const noexcept { return tasks_; }
  const util::Digraph& graph() const noexcept { return graph_; }
  std::size_t size() const noexcept { return tasks_.size(); }

  /// Mean finite execution estimate across devices, per task index.
  const std::vector<double>& mean_exec() const noexcept { return mean_exec_; }

  /// Bytes flowing over dependency edge a -> b (0 if none recorded).
  std::uint64_t edge_bytes(std::size_t a, std::size_t b) const;

  /// HEFT upward ranks using mean exec + mean communication costs.
  std::vector<double> upward_ranks(const hw::Platform& platform) const;
  /// Downward ranks (CPOP needs rank_u + rank_d).
  std::vector<double> downward_ranks(const hw::Platform& platform) const;

 private:
  static std::uint64_t key(std::size_t a, std::size_t b) noexcept {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  std::vector<core::Task*> tasks_;
  util::Digraph graph_;
  std::unordered_map<std::uint64_t, std::uint64_t> edge_bytes_;
  std::vector<double> mean_exec_;
};

/// Per-device timeline for insertion-based EFT placement: finds the
/// earliest gap of `duration` at or after `ready`, and books it.
class InsertionTimeline {
 public:
  explicit InsertionTimeline(std::size_t device_count)
      : slots_(device_count) {}

  /// Earliest start achievable on `device` (does not book).
  double earliest_fit(hw::DeviceId device, double ready,
                      double duration) const;
  /// Books [start, start + duration) on `device`.
  void book(hw::DeviceId device, double start, double duration);

 private:
  struct Slot {
    double start;
    double end;
  };
  std::vector<std::vector<Slot>> slots_;
};

}  // namespace hetflow::sched
