// Discrete-event simulation core.
//
// All of hetflow's "hardware" runs in virtual time on top of this queue:
// devices, interconnect links and the runtime schedule callbacks at future
// simulated instants. Determinism contract: two events at the same
// timestamp fire in the order they were scheduled (FIFO tie-break by a
// monotonically increasing sequence number), so a given seed always yields
// the identical trace.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace hetflow::sim {

/// Simulated time in seconds since simulation start.
using SimTime = double;

/// Handle used to cancel a pending event.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time. Starts at 0.
  SimTime now() const noexcept { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now). Returns an id
  /// that may be passed to `cancel`.
  EventId schedule_at(SimTime when, Callback fn);

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_after(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns false if it already ran, was
  /// cancelled before, or never existed. Amortized O(1): deletion is
  /// lazy, but once cancelled carcasses outnumber half the live events
  /// the heap is compacted, so a cancel-heavy run (failure injection,
  /// timeout retries) never holds more than ~1.5x the live entries.
  bool cancel(EventId id);

  /// Runs events until the queue drains. Returns the time of the last
  /// event executed (or `now()` if none ran).
  SimTime run();

  /// Runs events with timestamp <= `limit`; afterwards now() == max(last
  /// event time, limit) if any event ran, else limit.
  SimTime run_until(SimTime limit);

  /// Executes exactly one event if available. Returns false on empty.
  bool step();

  bool empty() const noexcept { return live_events_ == 0; }
  std::size_t pending() const noexcept { return live_events_; }
  /// Largest number of live events ever pending at once (observability:
  /// the simulator's working-set high-water mark).
  std::size_t peak_pending() const noexcept { return peak_pending_; }
  /// Total events executed since construction (for overhead accounting).
  std::uint64_t executed() const noexcept { return executed_; }

  /// Heap entries currently held, live + cancelled carcasses
  /// (observability for the compaction bound).
  std::size_t heap_entries() const noexcept { return heap_.size(); }
  /// Cancelled entries still sitting in the heap.
  std::size_t heap_carcasses() const noexcept { return carcasses_; }
  /// O(heap) bookkeeping audit: every live event has exactly one heap
  /// entry and a callback, and the carcass counter matches the heap.
  /// Exercised by `hetflow_check --selftest` and the unit tests.
  bool debug_consistent() const;

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Min-heap over a plain vector (std::push_heap/pop_heap) so compaction
  // can walk and rebuild the container — std::priority_queue hides it.
  std::vector<Event> heap_;
  // id -> callback; erased on execution/cancellation (deletion is lazy:
  // cancel leaves the heap entry behind as a carcass).
  std::unordered_map<EventId, Callback> callbacks_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_events_ = 0;
  std::size_t peak_pending_ = 0;
  std::size_t carcasses_ = 0;
  std::uint64_t executed_ = 0;
  SimTime now_ = 0.0;

  Callback take_callback(EventId id) noexcept;
  Event pop_top() noexcept;
  /// Drops every carcass and re-heapifies; called when carcasses exceed
  /// half the live events.
  void compact();
};

}  // namespace hetflow::sim
