// Discrete-event simulation core.
//
// All of hetflow's "hardware" runs in virtual time on top of this queue:
// devices, interconnect links and the runtime schedule callbacks at future
// simulated instants. Determinism contract: two events at the same
// timestamp fire in the order they were scheduled (FIFO tie-break by a
// monotonically increasing sequence number), so a given seed always yields
// the identical trace.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace hetflow::sim {

/// Simulated time in seconds since simulation start.
using SimTime = double;

/// Handle used to cancel a pending event.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time. Starts at 0.
  SimTime now() const noexcept { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now). Returns an id
  /// that may be passed to `cancel`.
  EventId schedule_at(SimTime when, Callback fn);

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_after(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns false if it already ran, was
  /// cancelled before, or never existed. O(1) (lazy deletion).
  bool cancel(EventId id) noexcept;

  /// Runs events until the queue drains. Returns the time of the last
  /// event executed (or `now()` if none ran).
  SimTime run();

  /// Runs events with timestamp <= `limit`; afterwards now() == max(last
  /// event time, limit) if any event ran, else limit.
  SimTime run_until(SimTime limit);

  /// Executes exactly one event if available. Returns false on empty.
  bool step();

  bool empty() const noexcept { return live_events_ == 0; }
  std::size_t pending() const noexcept { return live_events_; }
  /// Total events executed since construction (for overhead accounting).
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  // id -> callback; erased on execution/cancellation (lazy deletion keeps
  // the heap untouched on cancel).
  std::unordered_map<EventId, Callback> callbacks_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_events_ = 0;
  std::uint64_t executed_ = 0;
  SimTime now_ = 0.0;

  Callback take_callback(EventId id) noexcept;
};

}  // namespace hetflow::sim
