// Discrete-event simulation core.
//
// All of hetflow's "hardware" runs in virtual time on top of this queue:
// devices, interconnect links and the runtime schedule callbacks at future
// simulated instants. Determinism contract: two events at the same
// timestamp fire in the order they were scheduled (FIFO tie-break by a
// monotonically increasing sequence number), so a given seed always yields
// the identical trace.
//
// Storage: callbacks live in a slab of recycled slots (free-list arena)
// instead of a node-based map — scheduling an event at 10^6-task scale is
// a slot reuse plus a heap push, with the callback capture stored inline
// in the slot (util::SmallFunction). EventIds encode (slot, generation)
// so a stale cancel of a recycled slot is detected in O(1).
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/small_function.hpp"

namespace hetflow::sim {

/// Simulated time in seconds since simulation start.
using SimTime = double;

/// Handle used to cancel a pending event.
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// 64 bytes of inline capture: the runtime's largest callback (`this`,
  /// task, device id, two doubles, a size_t) fits without a heap hop.
  using Callback = util::SmallFunction<void(), 64>;

  /// Current simulated time. Starts at 0.
  SimTime now() const noexcept { return now_; }

  /// Schedules `fn` to run at absolute time `when`. Returns an id that
  /// may be passed to `cancel`. A `when` within floating-point rounding
  /// distance below now() is clamped to now() (accumulated fp error over
  /// ~10^6 events lands exactly there); anything further in the past
  /// still throws — that is API misuse, not rounding.
  EventId schedule_at(SimTime when, Callback fn);

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_after(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns false if it already ran, was
  /// cancelled before, or never existed. Amortized O(1): deletion is
  /// lazy, but once cancelled carcasses outnumber half the live events
  /// the heap is compacted, so a cancel-heavy run (failure injection,
  /// timeout retries) never holds more than ~1.5x the live entries.
  bool cancel(EventId id);

  /// Runs events until the queue drains. Returns the time of the last
  /// event executed (or `now()` if none ran).
  SimTime run();

  /// Runs events with timestamp <= `limit`; afterwards now() == max(last
  /// event time, limit) if any event ran, else limit.
  SimTime run_until(SimTime limit);

  /// Executes exactly one event if available. Returns false on empty.
  bool step();

  /// Executes every event sharing the earliest pending timestamp — the
  /// same-time completion batch — and returns how many ran (0 iff no
  /// live event is pending). Events scheduled *during* the drain at that
  /// same timestamp join the batch, and ordering is identical to calling
  /// step() repeatedly (FIFO by sequence number), so a full run via
  /// drain_ready() executes the exact event sequence step() would. What
  /// changes is the caller's batching opportunity: the runtime defers
  /// scheduler pumps to once per drained batch (docs/performance.md).
  std::size_t drain_ready();

  bool empty() const noexcept { return live_events_ == 0; }
  std::size_t pending() const noexcept { return live_events_; }
  /// Largest number of live events ever pending at once (observability:
  /// the simulator's working-set high-water mark).
  std::size_t peak_pending() const noexcept { return peak_pending_; }
  /// Total events executed since construction (for overhead accounting).
  std::uint64_t executed() const noexcept { return executed_; }

  /// Heap entries currently held, live + cancelled carcasses
  /// (observability for the compaction bound).
  std::size_t heap_entries() const noexcept { return heap_.size(); }
  /// Cancelled entries still sitting in the heap.
  std::size_t heap_carcasses() const noexcept { return carcasses_; }
  /// Slab slots currently allocated (live + free-listed; observability
  /// for the arena's high-water mark).
  std::size_t slab_slots() const noexcept { return slots_.size(); }
  /// O(heap + slab) bookkeeping audit: every live event has exactly one
  /// heap entry and an occupied slot, the carcass counter matches the
  /// heap, and the free list is exactly the unoccupied slots.
  /// Exercised by `hetflow_check --selftest` and the unit tests.
  bool debug_consistent() const;

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };
  /// One arena slot. Occupied iff `fn` is non-null; `gen` distinguishes
  /// reuses of the same slot (ids of executed/cancelled events go stale).
  struct Slot {
    Callback fn;
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNil;
  };
  static constexpr std::uint32_t kNil = 0xffffffffU;

  static std::uint32_t slot_index(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static std::uint32_t slot_gen(EventId id) noexcept {
    return static_cast<std::uint32_t>(id);
  }

  bool is_live(EventId id) const noexcept {
    const std::uint32_t index = slot_index(id);
    return index < slots_.size() && slots_[index].gen == slot_gen(id) &&
           slots_[index].fn != nullptr;
  }

  // Min-heap over a plain vector (std::push_heap/pop_heap) so compaction
  // can walk and rebuild the container — std::priority_queue hides it.
  std::vector<Event> heap_;
  // Callback arena: slots recycled through an intrusive free list.
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNil;
  std::uint64_t next_seq_ = 0;
  std::size_t live_events_ = 0;
  std::size_t peak_pending_ = 0;
  std::size_t carcasses_ = 0;
  std::uint64_t executed_ = 0;
  SimTime now_ = 0.0;

  /// Takes the callback out of a live event's slot and retires the slot.
  /// Returns a null callback for stale ids (cancelled / already run).
  Callback take_callback(EventId id) noexcept;
  /// Retires a slot: bumps the generation and links it into the free list.
  void retire_slot(std::uint32_t index) noexcept;
  Event pop_top() noexcept;
  /// Drops every carcass and re-heapifies; called when carcasses exceed
  /// half the live events.
  void compact();
};

}  // namespace hetflow::sim
