#include "sim/event_queue.hpp"

#include <cmath>

namespace hetflow::sim {

EventId EventQueue::schedule_at(SimTime when, Callback fn) {
  HETFLOW_REQUIRE_MSG(fn != nullptr, "cannot schedule a null callback");
  HETFLOW_REQUIRE_MSG(std::isfinite(when), "event time must be finite");
  HETFLOW_REQUIRE_MSG(when >= now_, "cannot schedule an event in the past");
  const EventId id = next_id_++;
  heap_.push(Event{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  ++live_events_;
  return id;
}

bool EventQueue::cancel(EventId id) noexcept {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) {
    return false;
  }
  callbacks_.erase(it);
  --live_events_;
  return true;
}

EventQueue::Callback EventQueue::take_callback(EventId id) noexcept {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) {
    return nullptr;  // cancelled
  }
  Callback fn = std::move(it->second);
  callbacks_.erase(it);
  --live_events_;
  return fn;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    const Event event = heap_.top();
    heap_.pop();
    Callback fn = take_callback(event.id);
    if (!fn) {
      continue;  // lazily deleted
    }
    now_ = event.when;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

SimTime EventQueue::run() {
  while (step()) {
  }
  return now_;
}

SimTime EventQueue::run_until(SimTime limit) {
  HETFLOW_REQUIRE_MSG(limit >= now_, "run_until limit is in the past");
  while (!heap_.empty()) {
    // Skip cancelled carcasses at the head without advancing time.
    const Event event = heap_.top();
    if (callbacks_.find(event.id) == callbacks_.end()) {
      heap_.pop();
      continue;
    }
    if (event.when > limit) {
      break;
    }
    step();
  }
  now_ = std::max(now_, limit);
  return now_;
}

}  // namespace hetflow::sim
