#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hetflow::sim {

EventId EventQueue::schedule_at(SimTime when, Callback fn) {
  HETFLOW_REQUIRE_MSG(fn != nullptr, "cannot schedule a null callback");
  HETFLOW_REQUIRE_MSG(std::isfinite(when), "event time must be finite");
  if (when < now_) {
    // Accumulated floating-point error over ~10^6 `now + duration` hops
    // can land a deadline a few ulps below now(); clamp those to fire
    // immediately. A gap beyond rounding slack is a logic bug upstream.
    const SimTime slack = 1e-9 * std::max(1.0, std::abs(now_));
    HETFLOW_REQUIRE_MSG(when >= now_ - slack,
                        "cannot schedule an event in the past");
    assert(now_ - when <= slack && "schedule_at clamped an almost-past time");
    when = now_;
  }

  std::uint32_t index;
  if (free_head_ != kNil) {
    index = free_head_;
    free_head_ = slots_[index].next_free;
  } else {
    HETFLOW_REQUIRE_MSG(slots_.size() < kNil, "event slab exhausted");
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  const EventId id =
      (static_cast<EventId>(index) << 32) | static_cast<EventId>(slot.gen);

  heap_.push_back(Event{when, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_events_;
  peak_pending_ = std::max(peak_pending_, live_events_);
  return id;
}

void EventQueue::retire_slot(std::uint32_t index) noexcept {
  Slot& slot = slots_[index];
  ++slot.gen;
  if (slot.gen == 0) {
    slot.gen = 1;  // keep ids nonzero so 0 stays the "no event" sentinel
  }
  slot.next_free = free_head_;
  free_head_ = index;
}

bool EventQueue::cancel(EventId id) {
  if (!is_live(id)) {
    return false;
  }
  const std::uint32_t index = slot_index(id);
  slots_[index].fn = nullptr;
  retire_slot(index);
  --live_events_;
  ++carcasses_;
  // Keep the heap at most ~1.5x the live entries: a cancel-heavy run
  // (failure injection + retries) would otherwise pay O(cancelled) space
  // and log-factor time until drained.
  if (carcasses_ > live_events_ / 2 && carcasses_ > 8) {
    compact();
  }
  return true;
}

void EventQueue::compact() {
  std::erase_if(heap_,
                [this](const Event& event) { return !is_live(event.id); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  carcasses_ = 0;
}

bool EventQueue::debug_consistent() const {
  std::size_t occupied = 0;
  for (const Slot& slot : slots_) {
    occupied += slot.fn != nullptr ? 1 : 0;
  }
  if (occupied != live_events_) {
    return false;
  }
  if (heap_.size() != live_events_ + carcasses_) {
    return false;
  }
  std::size_t live_in_heap = 0;
  for (const Event& event : heap_) {
    live_in_heap += is_live(event.id) ? 1 : 0;
  }
  if (live_in_heap != live_events_) {
    return false;
  }
  // The free list must thread exactly the unoccupied slots, acyclically.
  std::size_t free_len = 0;
  for (std::uint32_t walk = free_head_; walk != kNil;
       walk = slots_[walk].next_free) {
    if (walk >= slots_.size() || slots_[walk].fn != nullptr ||
        ++free_len > slots_.size()) {
      return false;
    }
  }
  return free_len == slots_.size() - occupied;
}

EventQueue::Callback EventQueue::take_callback(EventId id) noexcept {
  if (!is_live(id)) {
    return nullptr;  // cancelled
  }
  const std::uint32_t index = slot_index(id);
  Callback fn = std::move(slots_[index].fn);
  slots_[index].fn = nullptr;
  retire_slot(index);
  --live_events_;
  return fn;
}

EventQueue::Event EventQueue::pop_top() noexcept {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Event event = heap_.back();
  heap_.pop_back();
  return event;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    const Event event = pop_top();
    Callback fn = take_callback(event.id);
    if (!fn) {
      assert(carcasses_ > 0 && "dead heap entry with no carcass counted");
      --carcasses_;  // lazily deleted
      continue;
    }
    now_ = event.when;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

std::size_t EventQueue::drain_ready() {
  // Find the live head (skipping carcasses without advancing time) to
  // learn the batch timestamp.
  while (!heap_.empty() && !is_live(heap_.front().id)) {
    pop_top();
    assert(carcasses_ > 0 && "dead heap entry with no carcass counted");
    --carcasses_;
  }
  if (heap_.empty()) {
    return 0;
  }
  const SimTime batch_time = heap_.front().when;
  std::size_t ran = 0;
  // Callbacks may schedule new events at batch_time (they join the batch,
  // FIFO by seq) or cancel pending ones — including events already IN
  // this batch (a completion's finish path cancelling the same-timestamp
  // retry watchdog, or the watchdog cancelling the completion). The
  // cancelled-carcass check below is the only delivery gate, and it is
  // authoritative: cancel() retires the slot (bumping its generation),
  // so take_callback's is_live test rejects the dead id no matter when
  // within the batch the cancel landed. A mid-drain compact() is safe
  // because the heap front is re-read each iteration, and it cannot
  // desynchronize the carcass count: compact() removes every dead entry
  // and zeroes carcasses_ together, so each dead entry popped here was
  // counted exactly once (asserted below).
  while (!heap_.empty() && heap_.front().when == batch_time) {
    const Event event = pop_top();
    Callback fn = take_callback(event.id);
    if (!fn) {
      assert(carcasses_ > 0 && "dead heap entry with no carcass counted");
      --carcasses_;
      continue;
    }
    now_ = event.when;
    ++executed_;
    ++ran;
    fn();
  }
  return ran;
}

SimTime EventQueue::run() {
  while (step()) {
  }
  return now_;
}

SimTime EventQueue::run_until(SimTime limit) {
  HETFLOW_REQUIRE_MSG(limit >= now_, "run_until limit is in the past");
  while (!heap_.empty()) {
    // Skip cancelled carcasses at the head without advancing time.
    const Event event = heap_.front();
    if (!is_live(event.id)) {
      pop_top();
      assert(carcasses_ > 0 && "dead heap entry with no carcass counted");
      --carcasses_;
      continue;
    }
    if (event.when > limit) {
      break;
    }
    step();
  }
  now_ = std::max(now_, limit);
  return now_;
}

}  // namespace hetflow::sim
