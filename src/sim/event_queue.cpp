#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>

namespace hetflow::sim {

EventId EventQueue::schedule_at(SimTime when, Callback fn) {
  HETFLOW_REQUIRE_MSG(fn != nullptr, "cannot schedule a null callback");
  HETFLOW_REQUIRE_MSG(std::isfinite(when), "event time must be finite");
  HETFLOW_REQUIRE_MSG(when >= now_, "cannot schedule an event in the past");
  const EventId id = next_id_++;
  heap_.push_back(Event{when, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  callbacks_.emplace(id, std::move(fn));
  ++live_events_;
  peak_pending_ = std::max(peak_pending_, live_events_);
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) {
    return false;
  }
  callbacks_.erase(it);
  --live_events_;
  ++carcasses_;
  // Keep the heap at most ~1.5x the live entries: a cancel-heavy run
  // (failure injection + retries) would otherwise pay O(cancelled) space
  // and log-factor time until drained.
  if (carcasses_ > live_events_ / 2 && carcasses_ > 8) {
    compact();
  }
  return true;
}

void EventQueue::compact() {
  std::erase_if(heap_, [this](const Event& event) {
    return callbacks_.find(event.id) == callbacks_.end();
  });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  carcasses_ = 0;
}

bool EventQueue::debug_consistent() const {
  if (callbacks_.size() != live_events_) {
    return false;
  }
  if (heap_.size() != live_events_ + carcasses_) {
    return false;
  }
  std::size_t live_in_heap = 0;
  for (const Event& event : heap_) {
    live_in_heap += callbacks_.count(event.id);
  }
  return live_in_heap == live_events_;
}

EventQueue::Callback EventQueue::take_callback(EventId id) noexcept {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) {
    return nullptr;  // cancelled
  }
  Callback fn = std::move(it->second);
  callbacks_.erase(it);
  --live_events_;
  return fn;
}

EventQueue::Event EventQueue::pop_top() noexcept {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Event event = heap_.back();
  heap_.pop_back();
  return event;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    const Event event = pop_top();
    Callback fn = take_callback(event.id);
    if (!fn) {
      --carcasses_;  // lazily deleted
      continue;
    }
    now_ = event.when;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

SimTime EventQueue::run() {
  while (step()) {
  }
  return now_;
}

SimTime EventQueue::run_until(SimTime limit) {
  HETFLOW_REQUIRE_MSG(limit >= now_, "run_until limit is in the past");
  while (!heap_.empty()) {
    // Skip cancelled carcasses at the head without advancing time.
    const Event event = heap_.front();
    if (callbacks_.find(event.id) == callbacks_.end()) {
      pop_top();
      --carcasses_;
      continue;
    }
    if (event.when > limit) {
      break;
    }
    step();
  }
  now_ = std::max(now_, limit);
  return now_;
}

}  // namespace hetflow::sim
