// Trace-derived summaries (device utilization table).
#pragma once

#include <string>

#include "trace/tracer.hpp"

namespace hetflow::trace {

struct DeviceUtilization {
  hw::DeviceId device = 0;
  std::size_t task_count = 0;
  std::size_t failed_count = 0;
  double busy_seconds = 0.0;    ///< useful + wasted (all span kinds)
  double useful_seconds = 0.0;  ///< successful execution spans only
  /// Failed attempts and overhead spans — device time that produced no
  /// completed task.
  double wasted_seconds = 0.0;
  double utilization = 0.0;         ///< busy / makespan
  double useful_utilization = 0.0;  ///< useful / makespan
  double wasted_utilization = 0.0;  ///< wasted / makespan
};

/// Per-device utilization extracted from a trace (makespan = max span end).
std::vector<DeviceUtilization> utilization(const Tracer& tracer,
                                           const hw::Platform& platform);

/// Rendered ASCII table of the above.
std::string utilization_report(const Tracer& tracer,
                               const hw::Platform& platform);

/// CSV dump of the spans (task,name,device,start,end,kind) for external
/// plotting tools.
std::string spans_to_csv(const Tracer& tracer);

}  // namespace hetflow::trace
