// SVG Gantt rendering — publication-quality schedule figures straight
// from a trace, no external tooling. One lane per device, execution
// spans colored by codelet name (stable hash -> palette), failed
// attempts hatched red, a time axis with tick labels, and an optional
// title. The output is self-contained SVG 1.1.
#pragma once

#include <string>

#include "hw/platform.hpp"
#include "trace/tracer.hpp"

namespace hetflow::trace {

struct SvgOptions {
  int width_px = 1000;        ///< drawing width of the time area
  int lane_height_px = 22;
  std::string title;          ///< omitted when empty
  bool show_labels = true;    ///< task names inside wide-enough spans
};

/// Renders the trace as an SVG document. Devices with no spans still get
/// an (empty) lane so idle hardware is visible. An empty trace yields a
/// small valid SVG with the axis only.
std::string to_svg(const Tracer& tracer, const hw::Platform& platform,
                   const SvgOptions& options = {});

/// Convenience: writes to_svg() to a file; throws Error on I/O failure.
void save_svg(const Tracer& tracer, const hw::Platform& platform,
              const std::string& path, const SvgOptions& options = {});

}  // namespace hetflow::trace
