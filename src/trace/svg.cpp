#include "trace/svg.hpp"

#include <algorithm>
#include <string_view>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace hetflow::trace {

namespace {

/// Stable categorical color per span name: hash -> HSL-ish palette.
std::string color_for(std::string_view name) {
  std::uint64_t state = 0x243f6a8885a308d3ULL;
  for (char c : name) {
    state = util::hash_combine(state, static_cast<std::uint64_t>(
                                          static_cast<unsigned char>(c)));
  }
  const double hue = static_cast<double>(state % 360);
  // Fixed saturation/lightness keeps adjacent lanes readable.
  return util::format("hsl(%.0f, 62%%, 62%%)", hue);
}

std::string escape_xml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Rounds a duration to a "nice" tick step (1/2/5 x 10^k).
double nice_step(double span, int target_ticks) {
  const double raw = span / target_ticks;
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  for (double mult : {1.0, 2.0, 5.0, 10.0}) {
    if (raw <= mult * mag) {
      return mult * mag;
    }
  }
  return 10.0 * mag;
}

}  // namespace

std::string to_svg(const Tracer& tracer, const hw::Platform& platform,
                   const SvgOptions& options) {
  double makespan = 0.0;
  for (const Span& span : tracer.spans()) {
    makespan = std::max(makespan, span.end);
  }
  const int lanes = static_cast<int>(platform.device_count());
  const int label_width = 110;
  const int top = options.title.empty() ? 16 : 44;
  const int axis_height = 28;
  const int height = top + lanes * options.lane_height_px + axis_height;
  const int width = label_width + options.width_px + 16;
  const double scale =
      makespan > 0.0 ? options.width_px / makespan : 0.0;

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\" font-family=\"sans-serif\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  if (!options.title.empty()) {
    svg << "<text x=\"" << width / 2 << "\" y=\"24\" font-size=\"15\" "
           "text-anchor=\"middle\">"
        << escape_xml(options.title) << "</text>\n";
  }

  // Lanes and device labels.
  for (int lane = 0; lane < lanes; ++lane) {
    const int y = top + lane * options.lane_height_px;
    svg << "<rect x=\"" << label_width << "\" y=\"" << y << "\" width=\""
        << options.width_px << "\" height=\"" << options.lane_height_px
        << "\" fill=\"" << (lane % 2 == 0 ? "#f4f4f4" : "#ececec")
        << "\"/>\n";
    svg << "<text x=\"" << label_width - 6 << "\" y=\""
        << y + options.lane_height_px / 2 + 4
        << "\" font-size=\"11\" text-anchor=\"end\">"
        << escape_xml(
               platform.device(static_cast<hw::DeviceId>(lane)).name())
        << "</text>\n";
  }

  // Spans.
  for (const Span& span : tracer.spans()) {
    const int y = top +
                  static_cast<int>(span.device) * options.lane_height_px + 2;
    const double x = label_width + span.start * scale;
    const double w = std::max(0.75, span.duration() * scale);
    const int h = options.lane_height_px - 4;
    const bool failed = span.kind == SpanKind::FailedExec;
    svg << util::format(
        "<rect x=\"%.2f\" y=\"%d\" width=\"%.2f\" height=\"%d\" "
        "fill=\"%s\" stroke=\"%s\" stroke-width=\"0.5\"",
        x, y, w, h,
        failed ? "#e06060" : color_for(span.name).c_str(),
        failed ? "#901010" : "#555555");
    svg << "><title>" << escape_xml(span.name)
        << util::format(" [%.6f, %.6f] dev %u%s", span.start, span.end,
                        span.device, failed ? " FAILED" : "")
        << "</title></rect>\n";
    if (options.show_labels && !failed && w > 46.0) {
      svg << util::format(
                 "<text x=\"%.2f\" y=\"%d\" font-size=\"9\" "
                 "clip-path=\"none\">",
                 x + 3.0, y + h - 5)
          << escape_xml(span.name.substr(0, static_cast<std::size_t>(
                                                w / 6.0)))
          << "</text>\n";
    }
  }

  // Time axis.
  const int axis_y = top + lanes * options.lane_height_px;
  svg << "<line x1=\"" << label_width << "\" y1=\"" << axis_y << "\" x2=\""
      << label_width + options.width_px << "\" y2=\"" << axis_y
      << "\" stroke=\"#333\"/>\n";
  if (makespan > 0.0) {
    const double step = nice_step(makespan, 8);
    for (double t = 0.0; t <= makespan + 1e-12; t += step) {
      const double x = label_width + t * scale;
      svg << util::format(
          "<line x1=\"%.2f\" y1=\"%d\" x2=\"%.2f\" y2=\"%d\" "
          "stroke=\"#333\"/>\n",
          x, axis_y, x, axis_y + 4);
      svg << util::format(
                 "<text x=\"%.2f\" y=\"%d\" font-size=\"10\" "
                 "text-anchor=\"middle\">",
                 x, axis_y + 16)
          << escape_xml(util::human_seconds(t)) << "</text>\n";
    }
  }
  svg << "</svg>\n";
  return svg.str();
}

void save_svg(const Tracer& tracer, const hw::Platform& platform,
              const std::string& path, const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) {
    throw Error("cannot open '" + path + "' for writing");
  }
  out << to_svg(tracer, platform, options);
}

}  // namespace hetflow::trace
