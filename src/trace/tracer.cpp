#include "trace/tracer.hpp"

#include <algorithm>

#include "util/json.hpp"
#include "util/strings.hpp"

namespace hetflow::trace {

void Tracer::add(Span span) {
  if (!enabled_) {
    return;
  }
  spans_.push_back(std::move(span));
}

std::string Tracer::to_chrome_json(const hw::Platform& platform) const {
  util::Json events = util::Json::array();
  for (const hw::Device& device : platform.devices()) {
    util::Json meta = util::Json::object();
    meta["ph"] = "M";
    meta["name"] = "thread_name";
    meta["pid"] = 1;
    meta["tid"] = static_cast<std::int64_t>(device.id());
    util::Json args = util::Json::object();
    args["name"] = device.name();
    meta["args"] = std::move(args);
    events.push_back(std::move(meta));
  }
  for (const Span& span : spans_) {
    util::Json event = util::Json::object();
    event["ph"] = "X";
    event["name"] = span.name;
    event["pid"] = 1;
    event["tid"] = static_cast<std::int64_t>(span.device);
    event["ts"] = span.start * 1e6;          // microseconds
    event["dur"] = span.duration() * 1e6;
    util::Json args = util::Json::object();
    args["task"] = static_cast<std::int64_t>(span.task_id);
    args["kind"] = span.kind == SpanKind::Exec
                       ? "exec"
                       : (span.kind == SpanKind::FailedExec ? "failed"
                                                            : "overhead");
    event["args"] = std::move(args);
    events.push_back(std::move(event));
  }
  util::Json doc = util::Json::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return doc.dump();
}

std::string Tracer::ascii_gantt(const hw::Platform& platform,
                                std::size_t width) const {
  double makespan = 0.0;
  for (const Span& span : spans_) {
    makespan = std::max(makespan, span.end);
  }
  std::string out;
  if (spans_.empty()) {
    return "(empty trace)\n";
  }
  // An instant run (every span at t = 0) still renders — all marks land
  // in the first column instead of dividing by a zero makespan.
  const double scale = makespan > 0.0 ? makespan : 1.0;
  std::size_t label_width = 0;
  for (const hw::Device& device : platform.devices()) {
    label_width = std::max(label_width, device.name().size());
  }
  for (const hw::Device& device : platform.devices()) {
    std::string row(width, '.');
    for (const Span& span : spans_) {
      if (span.device != device.id()) {
        continue;
      }
      auto lo = static_cast<std::size_t>(
          span.start / scale * static_cast<double>(width));
      auto hi = static_cast<std::size_t>(span.end / scale *
                                         static_cast<double>(width));
      lo = std::min(lo, width - 1);
      hi = std::min(hi, width - 1);
      const char mark = span.kind == SpanKind::FailedExec ? 'x' : '#';
      for (std::size_t i = lo; i <= hi; ++i) {
        row[i] = mark;
      }
    }
    out += device.name();
    out += std::string(label_width - device.name().size(), ' ');
    out += " |" + row + "|\n";
  }
  out += util::format("%*s  0%*s%s\n", static_cast<int>(label_width), "",
                      static_cast<int>(width) - 1, "",
                      util::human_seconds(makespan).c_str());
  return out;
}

}  // namespace hetflow::trace
