// Execution tracing: every task execution (and failed attempt) becomes a
// span; exports to Chrome trace-event JSON (load in chrome://tracing or
// Perfetto) and to a quick ASCII Gantt for terminals.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hw/platform.hpp"
#include "sim/event_queue.hpp"

namespace hetflow::trace {

enum class SpanKind : std::uint8_t { Exec = 0, FailedExec, Overhead };

struct Span {
  std::uint64_t task_id = 0;
  /// Borrowed view — sources are stable for the runtime's lifetime
  /// (interned task names, Device::name()); exporters that outlive the
  /// runtime serialize to owning strings first. Keeps span capture on
  /// the hot path copy-free.
  std::string_view name;
  hw::DeviceId device = 0;
  sim::SimTime start = 0.0;
  sim::SimTime end = 0.0;
  SpanKind kind = SpanKind::Exec;

  double duration() const noexcept { return end - start; }
};

class Tracer {
 public:
  /// A disabled tracer drops spans (zero overhead path for benches).
  explicit Tracer(bool enabled = true) : enabled_(enabled) {}

  bool enabled() const noexcept { return enabled_; }
  void add(Span span);
  const std::vector<Span>& spans() const noexcept { return spans_; }
  void clear() { spans_.clear(); }

  /// Chrome trace-event format ("X" complete events, one row per device).
  std::string to_chrome_json(const hw::Platform& platform) const;

  /// Terminal Gantt chart: one row per device, `width` characters across
  /// the makespan. '#' = executing, 'x' = failed attempt.
  std::string ascii_gantt(const hw::Platform& platform,
                          std::size_t width = 80) const;

 private:
  bool enabled_;
  std::vector<Span> spans_;
};

}  // namespace hetflow::trace
