#include "trace/report.hpp"

#include <algorithm>
#include <sstream>

#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace hetflow::trace {

std::vector<DeviceUtilization> utilization(const Tracer& tracer,
                                           const hw::Platform& platform) {
  std::vector<DeviceUtilization> out(platform.device_count());
  double makespan = 0.0;
  for (const Span& span : tracer.spans()) {
    makespan = std::max(makespan, span.end);
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].device = static_cast<hw::DeviceId>(i);
  }
  for (const Span& span : tracer.spans()) {
    DeviceUtilization& u = out.at(span.device);
    if (span.kind == SpanKind::FailedExec) {
      ++u.failed_count;
    } else if (span.kind == SpanKind::Exec) {
      ++u.task_count;
    }
    u.busy_seconds += span.duration();
    // Only a successful execution is useful time; failed attempts and
    // overhead occupied the device without advancing the run.
    if (span.kind == SpanKind::Exec) {
      u.useful_seconds += span.duration();
    } else {
      u.wasted_seconds += span.duration();
    }
  }
  if (makespan > 0.0) {
    for (DeviceUtilization& u : out) {
      u.utilization = u.busy_seconds / makespan;
      u.useful_utilization = u.useful_seconds / makespan;
      u.wasted_utilization = u.wasted_seconds / makespan;
    }
  }
  return out;
}

std::string utilization_report(const Tracer& tracer,
                               const hw::Platform& platform) {
  util::Table table(
      {"device", "type", "tasks", "failed", "busy", "useful%", "wasted%"});
  for (const DeviceUtilization& u : utilization(tracer, platform)) {
    const hw::Device& device = platform.device(u.device);
    table.add_row({device.name(), to_string(device.type()),
                   std::to_string(u.task_count), std::to_string(u.failed_count),
                   util::human_seconds(u.busy_seconds),
                   util::format("%.1f", u.useful_utilization * 100.0),
                   util::format("%.1f", u.wasted_utilization * 100.0)});
  }
  return table.render();
}

std::string spans_to_csv(const Tracer& tracer) {
  std::ostringstream out;
  util::CsvWriter csv(out);
  csv.header({"task", "name", "device", "start_s", "end_s", "kind"});
  for (const Span& span : tracer.spans()) {
    csv.row({std::to_string(span.task_id), std::string(span.name),
             std::to_string(span.device), util::format("%.9f", span.start),
             util::format("%.9f", span.end),
             span.kind == SpanKind::Exec
                 ? "exec"
                 : (span.kind == SpanKind::FailedExec ? "failed"
                                                      : "overhead")});
  }
  return out.str();
}

}  // namespace hetflow::trace
