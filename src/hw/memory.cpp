#include "hw/memory.hpp"

#include "util/error.hpp"

namespace hetflow::hw {

MemoryNode::MemoryNode(MemoryNodeId id, std::string name,
                       std::uint64_t capacity_bytes)
    : id_(id), name_(std::move(name)), capacity_bytes_(capacity_bytes) {
  HETFLOW_REQUIRE_MSG(capacity_bytes > 0, "memory node capacity must be > 0");
}

}  // namespace hetflow::hw
