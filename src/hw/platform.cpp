#include "hw/platform.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <sstream>

#include "util/strings.hpp"

namespace hetflow::hw {

const Device& Platform::device(DeviceId id) const {
  HETFLOW_REQUIRE_MSG(id < devices_.size(), "device id out of range");
  return devices_[id];
}

const MemoryNode& Platform::memory_node(MemoryNodeId id) const {
  HETFLOW_REQUIRE_MSG(id < nodes_.size(), "memory node id out of range");
  return nodes_[id];
}

const Link& Platform::link(LinkId id) const {
  HETFLOW_REQUIRE_MSG(id < links_.size(), "link id out of range");
  return links_[id];
}

std::optional<LinkId> Platform::link_between(MemoryNodeId src,
                                             MemoryNodeId dst) const {
  const auto it = link_index_.find({src, dst});
  if (it == link_index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const std::vector<LinkId>& Platform::route(MemoryNodeId src,
                                           MemoryNodeId dst) const {
  HETFLOW_REQUIRE_MSG(src < nodes_.size() && dst < nodes_.size(),
                      "memory node id out of range");
  const std::vector<LinkId>& r = routes_[src * nodes_.size() + dst];
  if (src != dst && r.empty()) {
    throw InvalidArgument(util::format(
        "no route between memory nodes %u and %u on platform '%s'", src, dst,
        name_.c_str()));
  }
  return r;
}

double Platform::transfer_time_s(MemoryNodeId src, MemoryNodeId dst,
                                 std::uint64_t bytes) const {
  double total = 0.0;
  for (LinkId id : route(src, dst)) {
    total += links_[id].transfer_time_s(bytes);
  }
  return total;
}

std::vector<DeviceId> Platform::devices_of_type(DeviceType type) const {
  std::vector<DeviceId> out;
  for (const Device& d : devices_) {
    if (d.type() == type) {
      out.push_back(d.id());
    }
  }
  return out;
}

std::vector<DeviceId> Platform::devices_on_node(MemoryNodeId node) const {
  std::vector<DeviceId> out;
  for (const Device& d : devices_) {
    if (d.memory_node() == node) {
      out.push_back(d.id());
    }
  }
  return out;
}

double Platform::total_gflops() const noexcept {
  double total = 0.0;
  for (const Device& d : devices_) {
    total += d.peak_gflops();
  }
  return total;
}

std::string Platform::describe() const {
  std::ostringstream out;
  out << "platform '" << name_ << "': " << devices_.size() << " devices, "
      << nodes_.size() << " memory nodes, " << links_.size() << " links\n";
  for (const MemoryNode& n : nodes_) {
    out << "  mem[" << n.id() << "] " << n.name() << " ("
        << util::human_bytes(static_cast<double>(n.capacity_bytes())) << ")\n";
  }
  for (const Device& d : devices_) {
    out << "  dev[" << d.id() << "] " << d.name() << " ("
        << to_string(d.type()) << ", " << d.peak_gflops() << " GFLOPS, mem "
        << d.memory_node() << ", " << d.dvfs_states().size()
        << " dvfs states)\n";
  }
  for (const Link& l : links_) {
    out << "  link[" << l.id() << "] " << l.src() << " -> " << l.dst() << " ("
        << l.bandwidth_gbps() << " GB/s, "
        << util::human_seconds(l.latency_s()) << ")\n";
  }
  return out.str();
}

void Platform::compute_routes() {
  const std::size_t n = nodes_.size();
  routes_.assign(n * n, {});
  fully_connected_ = true;
  // Dijkstra from each source over link latency (+ tiny per-hop epsilon so
  // fewer hops win at equal latency).
  for (MemoryNodeId src = 0; src < n; ++src) {
    std::vector<double> dist(n, std::numeric_limits<double>::infinity());
    std::vector<LinkId> via_link(n, 0);
    std::vector<MemoryNodeId> via_node(n, src);
    std::vector<bool> done(n, false);
    dist[src] = 0.0;
    using Entry = std::pair<double, MemoryNodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    heap.push({0.0, src});
    while (!heap.empty()) {
      const auto [d, node] = heap.top();
      heap.pop();
      if (done[node]) {
        continue;
      }
      done[node] = true;
      for (const Link& link : links_) {
        if (link.src() != node) {
          continue;
        }
        const double cand = d + link.latency_s() + 1e-12;
        if (cand < dist[link.dst()]) {
          dist[link.dst()] = cand;
          via_link[link.dst()] = link.id();
          via_node[link.dst()] = node;
          heap.push({cand, link.dst()});
        }
      }
    }
    for (MemoryNodeId dst = 0; dst < n; ++dst) {
      if (dst == src) {
        continue;
      }
      if (!done[dst]) {
        fully_connected_ = false;
        continue;
      }
      std::vector<LinkId>& route = routes_[src * n + dst];
      for (MemoryNodeId cur = dst; cur != src; cur = via_node[cur]) {
        route.push_back(via_link[cur]);
      }
      std::reverse(route.begin(), route.end());
    }
  }
}

PlatformBuilder::PlatformBuilder(std::string name) {
  platform_.name_ = std::move(name);
}

MemoryNodeId PlatformBuilder::add_memory_node(const std::string& name,
                                              std::uint64_t capacity_bytes) {
  HETFLOW_REQUIRE_MSG(!built_, "builder already consumed");
  const auto id = static_cast<MemoryNodeId>(platform_.nodes_.size());
  platform_.nodes_.emplace_back(id, name, capacity_bytes);
  return id;
}

DeviceId PlatformBuilder::add_device(const std::string& name, DeviceType type,
                                     double peak_gflops,
                                     MemoryNodeId memory_node,
                                     double launch_overhead_s) {
  HETFLOW_REQUIRE_MSG(!built_, "builder already consumed");
  HETFLOW_REQUIRE_MSG(memory_node < platform_.nodes_.size(),
                      "device references an unknown memory node");
  const auto id = static_cast<DeviceId>(platform_.devices_.size());
  platform_.devices_.emplace_back(id, name, type, peak_gflops, memory_node,
                                  launch_overhead_s);
  return id;
}

PlatformBuilder& PlatformBuilder::with_dvfs(std::vector<DvfsState> states,
                                            std::size_t nominal_index) {
  HETFLOW_REQUIRE_MSG(!platform_.devices_.empty(),
                      "with_dvfs requires a preceding add_device");
  platform_.devices_.back().set_dvfs_states(std::move(states), nominal_index);
  return *this;
}

PlatformBuilder& PlatformBuilder::add_link(MemoryNodeId a, MemoryNodeId b,
                                           double bandwidth_gbps,
                                           double latency_s,
                                           bool bidirectional) {
  HETFLOW_REQUIRE_MSG(!built_, "builder already consumed");
  HETFLOW_REQUIRE_MSG(a < platform_.nodes_.size() &&
                          b < platform_.nodes_.size(),
                      "link references an unknown memory node");
  const auto add_one = [&](MemoryNodeId src, MemoryNodeId dst) {
    HETFLOW_REQUIRE_MSG(
        platform_.link_index_.find({src, dst}) == platform_.link_index_.end(),
        "duplicate directed link");
    const auto id = static_cast<LinkId>(platform_.links_.size());
    platform_.links_.emplace_back(id, src, dst, bandwidth_gbps, latency_s);
    platform_.link_index_[{src, dst}] = id;
  };
  add_one(a, b);
  if (bidirectional) {
    add_one(b, a);
  }
  return *this;
}

Platform PlatformBuilder::build() {
  HETFLOW_REQUIRE_MSG(!built_, "builder already consumed");
  if (platform_.nodes_.empty()) {
    throw InvalidArgument("platform needs at least one memory node");
  }
  if (platform_.devices_.empty()) {
    throw InvalidArgument("platform needs at least one device");
  }
  platform_.compute_routes();
  built_ = true;
  return std::move(platform_);
}

}  // namespace hetflow::hw
