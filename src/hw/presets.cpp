#include "hw/presets.hpp"

#include "util/strings.hpp"

namespace hetflow::hw {

namespace {

constexpr std::uint64_t kGiB = 1024ULL * 1024ULL * 1024ULL;

/// Three-point CPU DVFS curve around a nominal 2.4 GHz core.
std::vector<DvfsState> cpu_dvfs() {
  return {DvfsState{1.2, 7.0, 2.0}, DvfsState{2.4, 15.0, 3.0},
          DvfsState{3.2, 28.0, 4.0}};
}

/// Two-point GPU curve: efficient cruise clock and boost clock.
std::vector<DvfsState> gpu_dvfs() {
  return {DvfsState{0.9, 150.0, 25.0}, DvfsState{1.4, 250.0, 30.0}};
}

std::vector<DvfsState> fpga_dvfs() {
  return {DvfsState{0.2, 18.0, 4.0}, DvfsState{0.3, 25.0, 5.0}};
}

std::vector<DvfsState> dsp_dvfs() {
  return {DvfsState{0.5, 1.5, 0.2}, DvfsState{0.8, 3.0, 0.3}};
}

void add_cpu_cores(PlatformBuilder& builder, MemoryNodeId host,
                   std::size_t cores, double gflops,
                   const std::string& prefix = "cpu") {
  for (std::size_t i = 0; i < cores; ++i) {
    builder.add_device(util::format("%s%zu", prefix.c_str(), i),
                       DeviceType::Cpu, gflops, host,
                       /*launch_overhead_s=*/1e-6);
    builder.with_dvfs(cpu_dvfs(), 1);
  }
}

}  // namespace

Platform make_cpu_only(std::size_t cores) {
  PlatformBuilder builder("cpu-only");
  const MemoryNodeId host = builder.add_memory_node("host-dram", 64 * kGiB);
  add_cpu_cores(builder, host, cores, 12.0);
  return builder.build();
}

Platform make_workstation() {
  PlatformBuilder builder("workstation");
  const MemoryNodeId host = builder.add_memory_node("host-dram", 64 * kGiB);
  add_cpu_cores(builder, host, 4, 10.0);
  const MemoryNodeId vram = builder.add_memory_node("gpu0-hbm", 16 * kGiB);
  builder.add_device("gpu0", DeviceType::Gpu, 400.0, vram,
                     /*launch_overhead_s=*/10e-6);
  builder.with_dvfs(gpu_dvfs(), 1);
  builder.add_link(host, vram, /*bandwidth_gbps=*/16.0, /*latency_s=*/5e-6);
  return builder.build();
}

Platform make_hpc_node(std::size_t cpus, std::size_t gpus,
                       std::size_t fpgas) {
  PlatformBuilder builder(util::format("hpc-node-%zuc%zug%zuf", cpus, gpus,
                                       fpgas));
  const MemoryNodeId host = builder.add_memory_node("host-dram", 256 * kGiB);
  add_cpu_cores(builder, host, cpus, 12.0);
  std::vector<MemoryNodeId> gpu_mems;
  for (std::size_t i = 0; i < gpus; ++i) {
    const MemoryNodeId vram =
        builder.add_memory_node(util::format("gpu%zu-hbm", i), 32 * kGiB);
    builder.add_device(util::format("gpu%zu", i), DeviceType::Gpu, 600.0,
                       vram, /*launch_overhead_s=*/8e-6);
    builder.with_dvfs(gpu_dvfs(), 1);
    builder.add_link(host, vram, /*bandwidth_gbps=*/25.0, /*latency_s=*/4e-6);
    gpu_mems.push_back(vram);
  }
  // NVLink-class all-to-all between GPU memories.
  for (std::size_t i = 0; i < gpu_mems.size(); ++i) {
    for (std::size_t j = i + 1; j < gpu_mems.size(); ++j) {
      builder.add_link(gpu_mems[i], gpu_mems[j], /*bandwidth_gbps=*/50.0,
                       /*latency_s=*/2e-6);
    }
  }
  for (std::size_t i = 0; i < fpgas; ++i) {
    const MemoryNodeId ddr =
        builder.add_memory_node(util::format("fpga%zu-ddr", i), 8 * kGiB);
    builder.add_device(util::format("fpga%zu", i), DeviceType::Fpga, 150.0,
                       ddr, /*launch_overhead_s=*/50e-6);
    builder.with_dvfs(fpga_dvfs(), 1);
    builder.add_link(host, ddr, /*bandwidth_gbps=*/12.0, /*latency_s=*/6e-6);
  }
  return builder.build();
}

Platform make_edge_node() {
  PlatformBuilder builder("edge-node");
  const MemoryNodeId host = builder.add_memory_node("lpddr", 4 * kGiB);
  add_cpu_cores(builder, host, 2, 2.0);
  const MemoryNodeId scratch =
      builder.add_memory_node("dsp-scratch", 512ULL * 1024ULL * 1024ULL);
  builder.add_device("dsp0", DeviceType::Dsp, 20.0, scratch,
                     /*launch_overhead_s=*/20e-6);
  builder.with_dvfs(dsp_dvfs(), 1);
  builder.add_link(host, scratch, /*bandwidth_gbps=*/3.0, /*latency_s=*/8e-6);
  return builder.build();
}

Platform make_cluster(std::size_t nodes, std::size_t cpus_per_node,
                      std::size_t gpus_per_node) {
  HETFLOW_REQUIRE_MSG(nodes >= 1, "cluster needs at least one node");
  PlatformBuilder builder(util::format("cluster-%zux", nodes));
  std::vector<MemoryNodeId> hosts;
  for (std::size_t n = 0; n < nodes; ++n) {
    const MemoryNodeId host = builder.add_memory_node(
        util::format("node%zu-dram", n), 128 * kGiB);
    hosts.push_back(host);
    add_cpu_cores(builder, host, cpus_per_node, 12.0,
                  util::format("n%zu-cpu", n));
    for (std::size_t g = 0; g < gpus_per_node; ++g) {
      const MemoryNodeId vram = builder.add_memory_node(
          util::format("node%zu-gpu%zu-hbm", n, g), 32 * kGiB);
      builder.add_device(util::format("n%zu-gpu%zu", n, g), DeviceType::Gpu,
                         600.0, vram, /*launch_overhead_s=*/8e-6);
      builder.with_dvfs(gpu_dvfs(), 1);
      builder.add_link(host, vram, 25.0, 4e-6);
    }
  }
  // 100 Gb-class fabric between hosts (all-to-all for small clusters).
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = i + 1; j < hosts.size(); ++j) {
      builder.add_link(hosts[i], hosts[j], /*bandwidth_gbps=*/12.5,
                       /*latency_s=*/50e-6);
    }
  }
  return builder.build();
}

}  // namespace hetflow::hw
