#include "hw/link.hpp"

#include "util/error.hpp"

namespace hetflow::hw {

Link::Link(LinkId id, MemoryNodeId src, MemoryNodeId dst,
           double bandwidth_gbps, double latency_s)
    : id_(id),
      src_(src),
      dst_(dst),
      bandwidth_gbps_(bandwidth_gbps),
      latency_s_(latency_s) {
  HETFLOW_REQUIRE_MSG(src != dst, "link endpoints must differ");
  HETFLOW_REQUIRE_MSG(bandwidth_gbps > 0.0, "link bandwidth must be positive");
  HETFLOW_REQUIRE_MSG(latency_s >= 0.0, "link latency cannot be negative");
}

}  // namespace hetflow::hw
