// Processing-element description.
//
// A Device is a *static* description of one processing element of the
// simulated heterogeneous platform (CPU core, GPU, FPGA, DSP). All dynamic
// execution state (busy intervals, current DVFS point) is owned by the
// runtime so a Platform can be shared by many concurrent simulations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace hetflow::hw {

using DeviceId = std::uint32_t;
using MemoryNodeId = std::uint32_t;

enum class DeviceType : std::uint8_t { Cpu = 0, Gpu, Fpga, Dsp };
inline constexpr std::size_t kDeviceTypeCount = 4;

const char* to_string(DeviceType type) noexcept;
/// Parses "cpu"/"gpu"/"fpga"/"dsp" (case-insensitive); throws ParseError.
DeviceType device_type_from_string(const std::string& name);

/// One dynamic-voltage/frequency operating point.
struct DvfsState {
  double frequency_ghz = 1.0;  ///< core clock at this point
  double busy_watts = 0.0;     ///< power while executing a task
  double idle_watts = 0.0;     ///< power while idle at this point
};

class Device {
 public:
  /// @param peak_gflops throughput at the *nominal* DVFS state; execution
  ///        time of a task scales as flops / (peak_gflops * efficiency).
  /// @param launch_overhead_s fixed per-task dispatch latency (kernel
  ///        launch on GPUs, reconfiguration-amortized dispatch on FPGAs).
  Device(DeviceId id, std::string name, DeviceType type, double peak_gflops,
         MemoryNodeId memory_node, double launch_overhead_s = 0.0);

  DeviceId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  DeviceType type() const noexcept { return type_; }
  double peak_gflops() const noexcept { return peak_gflops_; }
  MemoryNodeId memory_node() const noexcept { return memory_node_; }
  double launch_overhead_s() const noexcept { return launch_overhead_s_; }

  /// DVFS operating points, sorted by ascending frequency. Every device
  /// has at least one (the nominal point).
  const std::vector<DvfsState>& dvfs_states() const noexcept {
    return dvfs_states_;
  }
  std::size_t nominal_dvfs_index() const noexcept { return nominal_index_; }
  const DvfsState& nominal_dvfs() const {
    return dvfs_states_[nominal_index_];
  }
  const DvfsState& dvfs_state(std::size_t index) const {
    HETFLOW_REQUIRE_MSG(index < dvfs_states_.size(),
                        "DVFS state index out of range");
    return dvfs_states_[index];
  }

  /// Replaces the operating points. `nominal_index` selects the point at
  /// which `peak_gflops` holds. States must be sorted by frequency.
  void set_dvfs_states(std::vector<DvfsState> states,
                       std::size_t nominal_index);

  /// Time multiplier when running at state `index`: executing at half the
  /// nominal frequency doubles compute time (memory-bound effects are
  /// modeled by the codelet, not here).
  double time_scale(std::size_t index) const {
    return nominal_dvfs().frequency_ghz / dvfs_state(index).frequency_ghz;
  }

 private:
  DeviceId id_;
  std::string name_;
  DeviceType type_;
  double peak_gflops_;
  MemoryNodeId memory_node_;
  double launch_overhead_s_;
  std::vector<DvfsState> dvfs_states_;
  std::size_t nominal_index_ = 0;
};

}  // namespace hetflow::hw
