// Transient-fault injection.
//
// Shrinking transistor geometries make transient task failures a
// first-class concern for heterogeneous platforms; the runtime models them
// as a Poisson process per device: while a task executes on a device with
// failure rate lambda (failures/second of busy time), the task is killed
// at the sampled failure instant and must be retried.
#pragma once

#include <array>
#include <optional>

#include "hw/device.hpp"
#include "util/rng.hpp"

namespace hetflow::hw {

class FailureModel {
 public:
  /// No failures by default.
  FailureModel() = default;

  /// Uniform rate for all device types (failures per busy-second).
  static FailureModel uniform(double rate_per_second);

  /// Sets the Poisson failure rate for one device type.
  void set_rate(DeviceType type, double rate_per_second);
  double rate(DeviceType type) const noexcept;

  bool enabled() const noexcept;

  /// Samples the failure instant for a task of length `duration_s` on a
  /// device of `type`. Returns the offset from task start at which the
  /// task dies, or nullopt if it survives. Consumes RNG draws only when
  /// the type's rate is positive (keeps seeds comparable across runs
  /// with/without injection on other device types).
  std::optional<double> sample_failure(util::Rng& rng, DeviceType type,
                                       double duration_s) const;

 private:
  std::array<double, kDeviceTypeCount> rates_{};  // zero-initialized
};

}  // namespace hetflow::hw
