// Transient-fault injection.
//
// Shrinking transistor geometries make transient task failures a
// first-class concern for heterogeneous platforms; the runtime models them
// as a Poisson process per device: while a task executes on a device with
// failure rate lambda (failures/second of busy time), the task is killed
// at the sampled failure instant and must be retried.
#pragma once

#include <array>
#include <map>
#include <optional>

#include "hw/device.hpp"
#include "util/rng.hpp"

namespace hetflow::hw {

class FailureModel {
 public:
  /// No failures by default.
  FailureModel() = default;

  /// Uniform rate for all device types (failures per busy-second).
  static FailureModel uniform(double rate_per_second);

  /// Sets the Poisson failure rate for one device type.
  void set_rate(DeviceType type, double rate_per_second);
  double rate(DeviceType type) const noexcept;

  /// Per-device override: models a single flaky unit (one bad board in an
  /// otherwise healthy tier). Takes precedence over the type-level rate
  /// for that device only.
  void set_device_rate(DeviceId device, double rate_per_second);

  /// Effective rate for a concrete device: the per-device override if one
  /// was set, otherwise the type-level rate.
  double effective_rate(DeviceId device, DeviceType type) const noexcept;

  /// Fraction of failures that are fail-silent (the task hangs instead
  /// of crashing): no failure signal is ever delivered, so only a
  /// per-attempt timeout (RetryPolicy::timeout_s) can recover the
  /// attempt — the detection latency real fault-tolerant runtimes pay.
  /// The remainder stay fail-stop (detected at the failure instant).
  void set_hang_fraction(double fraction);
  double hang_fraction() const noexcept { return hang_fraction_; }

  bool enabled() const noexcept;

  /// Samples the failure instant for a task of length `duration_s` on a
  /// device of `type`. Returns the offset from task start at which the
  /// task dies, or nullopt if it survives. Consumes RNG draws only when
  /// the type's rate is positive (keeps seeds comparable across runs
  /// with/without injection on other device types).
  std::optional<double> sample_failure(util::Rng& rng, DeviceType type,
                                       double duration_s) const;

  /// Device-aware variant: honours a per-device rate override.
  std::optional<double> sample_failure(util::Rng& rng, DeviceId device,
                                       DeviceType type,
                                       double duration_s) const;

  /// Given that a failure was sampled, draws whether it is fail-silent.
  /// Consumes a draw only when the hang fraction is positive, so legacy
  /// fail-stop streams are byte-identical.
  bool sample_hang(util::Rng& rng) const;

 private:
  std::array<double, kDeviceTypeCount> rates_{};  // zero-initialized
  std::map<DeviceId, double> device_rates_;
  double hang_fraction_ = 0.0;
};

}  // namespace hetflow::hw
