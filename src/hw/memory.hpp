// Memory-node description: one addressable memory pool (host DRAM, one
// GPU's HBM, one FPGA's DDR bank). Data replicas live on memory nodes;
// devices execute out of exactly one node.
#pragma once

#include <cstdint>
#include <string>

#include "hw/device.hpp"

namespace hetflow::hw {

class MemoryNode {
 public:
  MemoryNode(MemoryNodeId id, std::string name, std::uint64_t capacity_bytes);

  MemoryNodeId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  std::uint64_t capacity_bytes() const noexcept { return capacity_bytes_; }

 private:
  MemoryNodeId id_;
  std::string name_;
  std::uint64_t capacity_bytes_;
};

}  // namespace hetflow::hw
