// Interconnect link description (PCIe lane, NVLink, network hop).
//
// A link is a unidirectional FIFO channel between two memory nodes with a
// fixed latency and bandwidth. Transfer serialization (queueing on a busy
// link) is simulated by the data::TransferEngine; this class only stores
// the physics.
#pragma once

#include <cstdint>
#include <string>

#include "hw/device.hpp"

namespace hetflow::hw {

using LinkId = std::uint32_t;

class Link {
 public:
  Link(LinkId id, MemoryNodeId src, MemoryNodeId dst, double bandwidth_gbps,
       double latency_s);

  LinkId id() const noexcept { return id_; }
  MemoryNodeId src() const noexcept { return src_; }
  MemoryNodeId dst() const noexcept { return dst_; }
  /// Bandwidth in GB/s (decimal: 1e9 bytes/s).
  double bandwidth_gbps() const noexcept { return bandwidth_gbps_; }
  double latency_s() const noexcept { return latency_s_; }

  /// Uncontended time to move `bytes` across this link.
  double transfer_time_s(std::uint64_t bytes) const noexcept {
    return latency_s_ +
           static_cast<double>(bytes) / (bandwidth_gbps_ * 1e9);
  }

 private:
  LinkId id_;
  MemoryNodeId src_;
  MemoryNodeId dst_;
  double bandwidth_gbps_;
  double latency_s_;
};

}  // namespace hetflow::hw
