// Canned platform descriptions used by examples, tests and benches.
//
// Throughputs, bandwidths and power envelopes are order-of-magnitude
// realistic for ca.-2021 hardware; experiments depend on their *ratios*
// (GPU ~30-50x a core on dense kernels, PCIe ~16-25 GB/s, FPGA efficient
// but slow to dispatch), not on absolute values.
#pragma once

#include <cstddef>

#include "hw/platform.hpp"

namespace hetflow::hw {

/// Homogeneous multicore: one host memory node, `cores` identical CPU
/// cores, no accelerators.
Platform make_cpu_only(std::size_t cores = 8);

/// Developer workstation: 4 CPU cores + 1 discrete GPU over PCIe 3.0.
Platform make_workstation();

/// HPC compute node: `cpus` cores, `gpus` discrete GPUs (PCIe 4.0 to host,
/// NVLink-class all-to-all between GPUs) and `fpgas` PCIe FPGA cards.
Platform make_hpc_node(std::size_t cpus = 16, std::size_t gpus = 4,
                       std::size_t fpgas = 0);

/// Battery-powered edge node: 2 weak cores + 1 DSP with private scratch.
Platform make_edge_node();

/// Small cluster: `nodes` HPC-like nodes joined by a 100 Gb-class network.
Platform make_cluster(std::size_t nodes, std::size_t cpus_per_node = 8,
                      std::size_t gpus_per_node = 2);

}  // namespace hetflow::hw
