#include "hw/device.hpp"

#include <algorithm>
#include <cctype>

namespace hetflow::hw {

const char* to_string(DeviceType type) noexcept {
  switch (type) {
    case DeviceType::Cpu:
      return "cpu";
    case DeviceType::Gpu:
      return "gpu";
    case DeviceType::Fpga:
      return "fpga";
    case DeviceType::Dsp:
      return "dsp";
  }
  return "?";
}

DeviceType device_type_from_string(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "cpu") {
    return DeviceType::Cpu;
  }
  if (lower == "gpu") {
    return DeviceType::Gpu;
  }
  if (lower == "fpga") {
    return DeviceType::Fpga;
  }
  if (lower == "dsp") {
    return DeviceType::Dsp;
  }
  throw ParseError("unknown device type '" + name + "'");
}

Device::Device(DeviceId id, std::string name, DeviceType type,
               double peak_gflops, MemoryNodeId memory_node,
               double launch_overhead_s)
    : id_(id),
      name_(std::move(name)),
      type_(type),
      peak_gflops_(peak_gflops),
      memory_node_(memory_node),
      launch_overhead_s_(launch_overhead_s) {
  HETFLOW_REQUIRE_MSG(peak_gflops > 0.0, "device throughput must be positive");
  HETFLOW_REQUIRE_MSG(launch_overhead_s >= 0.0,
                      "launch overhead cannot be negative");
  // Default single operating point: 1 GHz nominal with a generic
  // 10 W busy / 1 W idle envelope; presets override this.
  dvfs_states_ = {DvfsState{1.0, 10.0, 1.0}};
  nominal_index_ = 0;
}

void Device::set_dvfs_states(std::vector<DvfsState> states,
                             std::size_t nominal_index) {
  HETFLOW_REQUIRE_MSG(!states.empty(), "device needs at least one DVFS state");
  HETFLOW_REQUIRE_MSG(nominal_index < states.size(),
                      "nominal DVFS index out of range");
  for (std::size_t i = 0; i < states.size(); ++i) {
    HETFLOW_REQUIRE_MSG(states[i].frequency_ghz > 0.0,
                        "DVFS frequency must be positive");
    HETFLOW_REQUIRE_MSG(states[i].busy_watts >= states[i].idle_watts,
                        "busy power below idle power");
    if (i > 0) {
      HETFLOW_REQUIRE_MSG(
          states[i - 1].frequency_ghz < states[i].frequency_ghz,
          "DVFS states must be sorted by ascending frequency");
    }
  }
  dvfs_states_ = std::move(states);
  nominal_index_ = nominal_index;
}

}  // namespace hetflow::hw
