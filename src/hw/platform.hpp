// Platform = the complete static description of one heterogeneous machine
// (or small cluster): memory nodes, devices, interconnect links and the
// routing between nodes. Built once via PlatformBuilder, then shared
// read-only by any number of simulations.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hw/device.hpp"
#include "hw/link.hpp"
#include "hw/memory.hpp"

namespace hetflow::hw {

class Platform {
 public:
  const std::string& name() const noexcept { return name_; }

  const std::vector<Device>& devices() const noexcept { return devices_; }
  const Device& device(DeviceId id) const;
  std::size_t device_count() const noexcept { return devices_.size(); }

  const std::vector<MemoryNode>& memory_nodes() const noexcept {
    return nodes_;
  }
  const MemoryNode& memory_node(MemoryNodeId id) const;
  std::size_t memory_node_count() const noexcept { return nodes_.size(); }

  const std::vector<Link>& links() const noexcept { return links_; }
  const Link& link(LinkId id) const;

  /// Direct link from `src` to `dst`, if any.
  std::optional<LinkId> link_between(MemoryNodeId src, MemoryNodeId dst) const;

  /// Minimum-latency-sum route from `src` to `dst` as a sequence of link
  /// ids (empty when src == dst). Routes are precomputed with Dijkstra
  /// over link latency at build time. Throws InvalidArgument when the
  /// nodes are not connected.
  const std::vector<LinkId>& route(MemoryNodeId src, MemoryNodeId dst) const;

  /// True if every node can reach every other node.
  bool fully_connected() const noexcept { return fully_connected_; }

  /// Uncontended end-to-end transfer time over the route src -> dst.
  double transfer_time_s(MemoryNodeId src, MemoryNodeId dst,
                         std::uint64_t bytes) const;

  /// Devices of one type, in id order.
  std::vector<DeviceId> devices_of_type(DeviceType type) const;

  /// Devices executing out of a given memory node, in id order.
  std::vector<DeviceId> devices_on_node(MemoryNodeId node) const;

  /// Sum of peak_gflops over all devices (capacity upper bound used by
  /// area/throughput lower-bound computations).
  double total_gflops() const noexcept;

  /// Human-readable one-line-per-component description.
  std::string describe() const;

 private:
  friend class PlatformBuilder;
  Platform() = default;

  std::string name_;
  std::vector<Device> devices_;
  std::vector<MemoryNode> nodes_;
  std::vector<Link> links_;
  std::map<std::pair<MemoryNodeId, MemoryNodeId>, LinkId> link_index_;
  // routes_[src * node_count + dst]
  std::vector<std::vector<LinkId>> routes_;
  bool fully_connected_ = true;

  void compute_routes();
};

/// Fluent builder with validation at build().
class PlatformBuilder {
 public:
  explicit PlatformBuilder(std::string name);

  /// Adds a memory pool. Returns its id (dense, starting at 0).
  MemoryNodeId add_memory_node(const std::string& name,
                               std::uint64_t capacity_bytes);

  /// Adds a processing element executing out of `memory_node`.
  DeviceId add_device(const std::string& name, DeviceType type,
                      double peak_gflops, MemoryNodeId memory_node,
                      double launch_overhead_s = 0.0);

  /// Sets DVFS operating points of the most recently added device.
  PlatformBuilder& with_dvfs(std::vector<DvfsState> states,
                             std::size_t nominal_index);

  /// Adds a link; when `bidirectional`, also adds the reverse direction
  /// with identical parameters.
  PlatformBuilder& add_link(MemoryNodeId a, MemoryNodeId b,
                            double bandwidth_gbps, double latency_s,
                            bool bidirectional = true);

  /// Validates and finalizes. Requirements: >= 1 device, >= 1 memory
  /// node, every device's node exists, no duplicate directed link.
  Platform build();

 private:
  Platform platform_;
  bool built_ = false;
};

}  // namespace hetflow::hw
