#include "hw/serialize.hpp"

#include <fstream>
#include <sstream>

namespace hetflow::hw {

util::Json to_json(const Platform& platform) {
  util::Json doc = util::Json::object();
  doc["name"] = platform.name();

  util::Json nodes = util::Json::array();
  for (const MemoryNode& node : platform.memory_nodes()) {
    util::Json entry = util::Json::object();
    entry["name"] = node.name();
    entry["capacity_bytes"] = static_cast<double>(node.capacity_bytes());
    nodes.push_back(std::move(entry));
  }
  doc["memory_nodes"] = std::move(nodes);

  util::Json devices = util::Json::array();
  for (const Device& device : platform.devices()) {
    util::Json entry = util::Json::object();
    entry["name"] = device.name();
    entry["type"] = to_string(device.type());
    entry["peak_gflops"] = device.peak_gflops();
    entry["memory_node"] = static_cast<std::int64_t>(device.memory_node());
    entry["launch_overhead_s"] = device.launch_overhead_s();
    util::Json dvfs = util::Json::object();
    dvfs["nominal"] = static_cast<std::int64_t>(device.nominal_dvfs_index());
    util::Json states = util::Json::array();
    for (const DvfsState& state : device.dvfs_states()) {
      util::Json s = util::Json::object();
      s["frequency_ghz"] = state.frequency_ghz;
      s["busy_watts"] = state.busy_watts;
      s["idle_watts"] = state.idle_watts;
      states.push_back(std::move(s));
    }
    dvfs["states"] = std::move(states);
    entry["dvfs"] = std::move(dvfs);
    devices.push_back(std::move(entry));
  }
  doc["devices"] = std::move(devices);

  util::Json links = util::Json::array();
  for (const Link& link : platform.links()) {
    util::Json entry = util::Json::object();
    entry["src"] = static_cast<std::int64_t>(link.src());
    entry["dst"] = static_cast<std::int64_t>(link.dst());
    entry["bandwidth_gbps"] = link.bandwidth_gbps();
    entry["latency_s"] = link.latency_s();
    entry["bidirectional"] = false;  // emitted per direction
    links.push_back(std::move(entry));
  }
  doc["links"] = std::move(links);
  return doc;
}

Platform platform_from_json(const util::Json& doc) {
  PlatformBuilder builder(doc.contains("name") ? doc.at("name").as_string()
                                               : "unnamed");
  for (const util::Json& entry : doc.at("memory_nodes").as_array()) {
    builder.add_memory_node(
        entry.at("name").as_string(),
        static_cast<std::uint64_t>(entry.at("capacity_bytes").as_number()));
  }
  for (const util::Json& entry : doc.at("devices").as_array()) {
    builder.add_device(
        entry.at("name").as_string(),
        device_type_from_string(entry.at("type").as_string()),
        entry.at("peak_gflops").as_number(),
        static_cast<MemoryNodeId>(entry.at("memory_node").as_number()),
        entry.contains("launch_overhead_s")
            ? entry.at("launch_overhead_s").as_number()
            : 0.0);
    if (entry.contains("dvfs")) {
      const util::Json& dvfs = entry.at("dvfs");
      std::vector<DvfsState> states;
      for (const util::Json& s : dvfs.at("states").as_array()) {
        states.push_back(DvfsState{s.at("frequency_ghz").as_number(),
                                   s.at("busy_watts").as_number(),
                                   s.at("idle_watts").as_number()});
      }
      builder.with_dvfs(std::move(states),
                        static_cast<std::size_t>(
                            dvfs.at("nominal").as_number()));
    }
  }
  if (doc.contains("links")) {
    for (const util::Json& entry : doc.at("links").as_array()) {
      builder.add_link(
          static_cast<MemoryNodeId>(entry.at("src").as_number()),
          static_cast<MemoryNodeId>(entry.at("dst").as_number()),
          entry.at("bandwidth_gbps").as_number(),
          entry.at("latency_s").as_number(),
          entry.contains("bidirectional") &&
              entry.at("bidirectional").as_bool());
    }
  }
  return builder.build();
}

void save_platform(const Platform& platform, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw Error("cannot open '" + path + "' for writing");
  }
  out << to_json(platform).dump_pretty() << '\n';
}

Platform load_platform(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return platform_from_json(util::Json::parse(buffer.str()));
}

}  // namespace hetflow::hw
