#include "hw/failure.hpp"

namespace hetflow::hw {

FailureModel FailureModel::uniform(double rate_per_second) {
  FailureModel model;
  for (std::size_t i = 0; i < kDeviceTypeCount; ++i) {
    model.set_rate(static_cast<DeviceType>(i), rate_per_second);
  }
  return model;
}

void FailureModel::set_rate(DeviceType type, double rate_per_second) {
  HETFLOW_REQUIRE_MSG(rate_per_second >= 0.0,
                      "failure rate cannot be negative");
  rates_[static_cast<std::size_t>(type)] = rate_per_second;
}

double FailureModel::rate(DeviceType type) const noexcept {
  return rates_[static_cast<std::size_t>(type)];
}

bool FailureModel::enabled() const noexcept {
  for (double r : rates_) {
    if (r > 0.0) {
      return true;
    }
  }
  return false;
}

std::optional<double> FailureModel::sample_failure(util::Rng& rng,
                                                   DeviceType type,
                                                   double duration_s) const {
  const double lambda = rate(type);
  if (lambda <= 0.0 || duration_s <= 0.0) {
    return std::nullopt;
  }
  const double instant = rng.exponential(lambda);
  if (instant < duration_s) {
    return instant;
  }
  return std::nullopt;
}

}  // namespace hetflow::hw
