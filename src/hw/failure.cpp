#include "hw/failure.hpp"

namespace hetflow::hw {

FailureModel FailureModel::uniform(double rate_per_second) {
  FailureModel model;
  for (std::size_t i = 0; i < kDeviceTypeCount; ++i) {
    model.set_rate(static_cast<DeviceType>(i), rate_per_second);
  }
  return model;
}

void FailureModel::set_rate(DeviceType type, double rate_per_second) {
  HETFLOW_REQUIRE_MSG(rate_per_second >= 0.0,
                      "failure rate cannot be negative");
  rates_[static_cast<std::size_t>(type)] = rate_per_second;
}

double FailureModel::rate(DeviceType type) const noexcept {
  return rates_[static_cast<std::size_t>(type)];
}

void FailureModel::set_device_rate(DeviceId device, double rate_per_second) {
  HETFLOW_REQUIRE_MSG(rate_per_second >= 0.0,
                      "failure rate cannot be negative");
  device_rates_[device] = rate_per_second;
}

double FailureModel::effective_rate(DeviceId device,
                                    DeviceType type) const noexcept {
  const auto it = device_rates_.find(device);
  return it != device_rates_.end() ? it->second : rate(type);
}

void FailureModel::set_hang_fraction(double fraction) {
  HETFLOW_REQUIRE_MSG(fraction >= 0.0 && fraction <= 1.0,
                      "hang fraction must be in [0, 1]");
  hang_fraction_ = fraction;
}

bool FailureModel::sample_hang(util::Rng& rng) const {
  if (hang_fraction_ <= 0.0) {
    return false;
  }
  return rng.bernoulli(hang_fraction_);
}

bool FailureModel::enabled() const noexcept {
  for (double r : rates_) {
    if (r > 0.0) {
      return true;
    }
  }
  for (const auto& [device, r] : device_rates_) {
    if (r > 0.0) {
      return true;
    }
  }
  return false;
}

namespace {

std::optional<double> sample_with_rate(util::Rng& rng, double lambda,
                                       double duration_s) {
  if (lambda <= 0.0 || duration_s <= 0.0) {
    return std::nullopt;
  }
  const double instant = rng.exponential(lambda);
  if (instant < duration_s) {
    return instant;
  }
  return std::nullopt;
}

}  // namespace

std::optional<double> FailureModel::sample_failure(util::Rng& rng,
                                                   DeviceType type,
                                                   double duration_s) const {
  return sample_with_rate(rng, rate(type), duration_s);
}

std::optional<double> FailureModel::sample_failure(util::Rng& rng,
                                                   DeviceId device,
                                                   DeviceType type,
                                                   double duration_s) const {
  return sample_with_rate(rng, effective_rate(device, type), duration_s);
}

}  // namespace hetflow::hw
