// Platform description <-> JSON, so custom machines can be defined in
// files and loaded by the CLI tools:
//
// {
//   "name": "my-node",
//   "memory_nodes": [{"name": "host", "capacity_bytes": 68719476736}],
//   "devices": [{"name": "cpu0", "type": "cpu", "peak_gflops": 12,
//                "memory_node": 0, "launch_overhead_s": 1e-6,
//                "dvfs": {"nominal": 1, "states": [
//                    {"frequency_ghz": 1.2, "busy_watts": 7, "idle_watts": 2},
//                    {"frequency_ghz": 2.4, "busy_watts": 15, "idle_watts": 3}]}}],
//   "links": [{"src": 0, "dst": 1, "bandwidth_gbps": 16,
//              "latency_s": 5e-6, "bidirectional": true}]
// }
#pragma once

#include <string>

#include "hw/platform.hpp"
#include "util/json.hpp"

namespace hetflow::hw {

/// Serializes a platform (links are emitted directed, so round-trips are
/// exact regardless of how they were declared).
util::Json to_json(const Platform& platform);

/// Builds a platform from the JSON schema above; throws ParseError on
/// missing/malformed fields and InvalidArgument on semantic errors.
Platform platform_from_json(const util::Json& doc);

/// File convenience wrappers.
void save_platform(const Platform& platform, const std::string& path);
Platform load_platform(const std::string& path);

}  // namespace hetflow::hw
