// Parameterized generators for canonical scientific workflows.
//
// The four named pipelines reproduce the DAG topology and task/file-size
// ratios of the published Pegasus workflow benchmarks (Bharathi et al.,
// "Characterization of Scientific Workflows", WORKS'08): Montage
// (astronomy mosaics), Epigenomics (genome methylation), CyberShake
// (seismic hazard) and LIGO Inspiral (gravitational-wave search). The
// synthetic generators (layered-random, fork-join, wavefront, chain, bag)
// provide controlled-shape inputs for ablation experiments.
//
// `scale` multiplies every task's flop count and file size — use it to
// move a workflow between laptop-scale and HPC-scale without changing its
// shape.
#pragma once

#include <cstdint>

#include "workflow/workflow.hpp"

namespace hetflow::workflow {

/// Montage mosaic: `tiles` parallel reprojections feeding difference/fit,
/// background correction, and a final co-addition funnel.
Workflow make_montage(std::size_t tiles, double scale = 1.0);

/// Epigenomics: `lanes` independent sequencing lanes, each split into
/// `splits` chunks running the filter→convert→map chain, merged and
/// indexed globally.
Workflow make_epigenomics(std::size_t lanes, std::size_t splits,
                          double scale = 1.0);

/// CyberShake: per site, two SGT extractions feed `variations` seismogram
/// syntheses, each followed by a peak-value calculation; per-site zips
/// aggregate the results.
Workflow make_cybershake(std::size_t sites, std::size_t variations,
                         double scale = 1.0);

/// LIGO Inspiral: `templates` template banks feeding matched-filter
/// inspiral jobs, coincidence-tested in groups of `group`.
Workflow make_ligo(std::size_t templates, std::size_t group,
                   double scale = 1.0);

/// SIPHT (sRNA identification): per candidate region, a wide fan of
/// independent analysis jobs (Patser x `patsers`, BLAST family, RNA
/// folding) funneled through per-region concatenation into a single
/// final SRNA annotation — the classic "wide then point" shape.
Workflow make_sipht(std::size_t regions, std::size_t patsers = 8,
                    double scale = 1.0);

/// Layered random DAG with a controlled communication-to-computation
/// ratio: `layers` x `width` tasks, 1..3 parents each from the previous
/// layer; edge file sizes are sized so mean(transfer)/mean(exec) == ccr
/// on a 16 GB/s / 50 GFLOP/s reference.
Workflow make_random_layered(std::size_t layers, std::size_t width,
                             double ccr, std::uint64_t seed,
                             double mean_flops = 2e8);

/// `stages` sequential fork-joins of `width` parallel tasks whose costs
/// are lognormal with shape `cost_sigma` (0 = uniform costs).
Workflow make_fork_join(std::size_t width, std::size_t stages,
                        double cost_sigma, std::uint64_t seed,
                        double mean_flops = 5e8);

/// n x n wavefront (dependencies right and down) — the classic dynamic-
/// programming sweep.
Workflow make_wavefront(std::size_t n, double flops_per_task = 5e8,
                        std::uint64_t bytes = 4ull << 20);

/// Linear chain of `n` tasks (worst-case serialization; overhead bench).
Workflow make_chain(std::size_t n, double flops, std::uint64_t bytes);

/// `n` independent tasks (best-case parallelism; overhead bench).
Workflow make_bag(std::size_t n, double flops, std::uint64_t bytes);

}  // namespace hetflow::workflow
