#include "workflow/campaign.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <numbers>
#include <sstream>

#include "core/runtime.hpp"
#include "exec/thread_pool.hpp"
#include "sched/registry.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "workflow/codelets.hpp"

namespace hetflow::workflow {

// ---------------------------------------------------------------------------
// Response surfaces
// ---------------------------------------------------------------------------

ResponseSurface::ResponseSurface(Kind kind, double noise_sd)
    : kind_(kind), noise_sd_(noise_sd) {
  HETFLOW_REQUIRE_MSG(noise_sd >= 0.0, "noise sd cannot be negative");
}

double ResponseSurface::value(double x, double y) const {
  switch (kind_) {
    case Kind::Branin: {
      // Standard Branin over x1 in [-5, 10], x2 in [0, 15].
      const double x1 = -5.0 + 15.0 * x;
      const double x2 = 15.0 * y;
      constexpr double a = 1.0;
      const double b = 5.1 / (4.0 * std::numbers::pi * std::numbers::pi);
      const double c = 5.0 / std::numbers::pi;
      constexpr double r = 6.0;
      constexpr double s = 10.0;
      const double t = 1.0 / (8.0 * std::numbers::pi);
      const double term = x2 - b * x1 * x1 + c * x1 - r;
      return a * term * term + s * (1.0 - t) * std::cos(x1) + s;
    }
    case Kind::Rosenbrock: {
      // Scaled to [0,1]^2 with the valley inside the domain.
      const double x1 = -2.0 + 4.0 * x;
      const double x2 = -1.0 + 3.0 * y;
      const double term1 = x2 - x1 * x1;
      const double term2 = 1.0 - x1;
      return 100.0 * term1 * term1 + term2 * term2;
    }
    case Kind::Quadratic: {
      const double dx = x - 0.7;
      const double dy = y - 0.3;
      return 40.0 * dx * dx + 25.0 * dy * dy;
    }
  }
  return 0.0;
}

double ResponseSurface::observe(double x, double y, util::Rng& rng) const {
  double observation = value(x, y);
  if (noise_sd_ > 0.0) {
    observation += rng.normal(0.0, noise_sd_);
  }
  return observation;
}

double ResponseSurface::true_minimum() const noexcept {
  switch (kind_) {
    case Kind::Branin:
      return 0.397887;
    case Kind::Rosenbrock:
    case Kind::Quadratic:
      return 0.0;
  }
  return 0.0;
}

const char* ResponseSurface::name() const noexcept {
  switch (kind_) {
    case Kind::Branin:
      return "branin";
    case Kind::Rosenbrock:
      return "rosenbrock";
    case Kind::Quadratic:
      return "quadratic";
  }
  return "?";
}

const char* to_string(SearchStrategy strategy) noexcept {
  switch (strategy) {
    case SearchStrategy::Grid:
      return "grid";
    case SearchStrategy::Random:
      return "random";
    case SearchStrategy::Surrogate:
      return "surrogate";
  }
  return "?";
}

SearchStrategy strategy_from_name(const std::string& name) {
  if (name == "grid") {
    return SearchStrategy::Grid;
  }
  if (name == "random") {
    return SearchStrategy::Random;
  }
  if (name == "surrogate") {
    return SearchStrategy::Surrogate;
  }
  throw util::InvalidArgument(
      util::format("unknown search strategy '%s'", name.c_str()));
}

ResponseSurface::Kind ResponseSurface::kind_from_name(const std::string& name) {
  if (name == "branin") {
    return Kind::Branin;
  }
  if (name == "rosenbrock") {
    return Kind::Rosenbrock;
  }
  if (name == "quadratic") {
    return Kind::Quadratic;
  }
  throw util::InvalidArgument(
      util::format("unknown response surface '%s'", name.c_str()));
}

// ---------------------------------------------------------------------------
// Quadratic surrogate: least-squares fit of
//   z = c0 + c1 x + c2 y + c3 x^2 + c4 y^2 + c5 xy
// ---------------------------------------------------------------------------

namespace {

struct Observation {
  double x;
  double y;
  double z;
};

std::array<double, 6> features(double x, double y) {
  return {1.0, x, y, x * x, y * y, x * y};
}

/// Solves the 6x6 normal equations by Gaussian elimination with partial
/// pivoting; returns false when the system is (near-)singular.
bool fit_quadratic(const std::vector<Observation>& points,
                   std::array<double, 6>& coeffs) {
  if (points.size() < 6) {
    return false;
  }
  double a[6][7] = {};
  for (const Observation& p : points) {
    const std::array<double, 6> phi = features(p.x, p.y);
    for (int i = 0; i < 6; ++i) {
      for (int j = 0; j < 6; ++j) {
        a[i][j] += phi[static_cast<std::size_t>(i)] *
                   phi[static_cast<std::size_t>(j)];
      }
      a[i][6] += phi[static_cast<std::size_t>(i)] * p.z;
    }
  }
  // Tikhonov damping keeps the fit stable with clustered samples.
  for (int i = 0; i < 6; ++i) {
    a[i][i] += 1e-9 * static_cast<double>(points.size());
  }
  for (int col = 0; col < 6; ++col) {
    int pivot = col;
    for (int row = col + 1; row < 6; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) {
        pivot = row;
      }
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return false;
    }
    std::swap(a[pivot], a[col]);
    for (int row = 0; row < 6; ++row) {
      if (row == col) {
        continue;
      }
      const double factor = a[row][col] / a[col][col];
      for (int k = col; k < 7; ++k) {
        a[row][k] -= factor * a[col][k];
      }
    }
  }
  for (int i = 0; i < 6; ++i) {
    coeffs[static_cast<std::size_t>(i)] = a[i][6] / a[i][i];
  }
  return true;
}

double predict(const std::array<double, 6>& coeffs, double x, double y) {
  const std::array<double, 6> phi = features(x, y);
  double z = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    z += coeffs[i] * phi[i];
  }
  return z;
}

/// Runs one batch of simulations (prepare -> simulate -> analyze chains)
/// through the runtime; the campaign's figure-of-merit observation is
/// made once the batch's workflows have "executed".
void run_simulation_batch(core::Runtime& runtime,
                          const CodeletLibrary& library,
                          const CampaignConfig& config, std::size_t round,
                          std::size_t batch) {
  const core::CodeletPtr prepare = library.get("io");
  const core::CodeletPtr simulate = library.get("compute");
  const core::CodeletPtr analyze = library.get("reduce");
  for (std::size_t b = 0; b < batch; ++b) {
    const auto tag = util::format("r%zu_e%zu", round, b);
    const data::DataId input =
        runtime.register_data("in_" + tag, config.sim_bytes / 4);
    const data::DataId field =
        runtime.register_data("field_" + tag, config.sim_bytes);
    const data::DataId result =
        runtime.register_data("res_" + tag, config.sim_bytes / 16);
    runtime.submit("prepare_" + tag, prepare, config.sim_flops / 20.0,
                   {{input, data::AccessMode::Write}});
    runtime.submit("simulate_" + tag, simulate, config.sim_flops,
                   {{input, data::AccessMode::Read},
                    {field, data::AccessMode::Write}});
    runtime.submit("analyze_" + tag, analyze, config.sim_flops / 10.0,
                   {{field, data::AccessMode::Read},
                    {result, data::AccessMode::Write}});
  }
  runtime.wait_all();
}

/// Everything the campaign loop mutates between rounds — the unit of
/// checkpoint/restart. The Runtime itself is NOT serialized: its
/// simulated-time state is a deterministic function of (config, rounds
/// executed), so resume replays the simulation batches instead.
struct CampaignState {
  util::Rng rng{0};
  std::vector<Observation> observed;
  CampaignResult result;
  std::size_t grid_cursor = 0;
};

// --- checkpoint serialization ----------------------------------------------

/// uint64 values (rng words, seed) do not fit a JSON double losslessly;
/// they travel as decimal strings.
std::string u64_string(std::uint64_t value) { return std::to_string(value); }

std::uint64_t parse_u64(const util::Json& node) {
  return std::strtoull(node.as_string().c_str(), nullptr, 10);
}

void save_checkpoint(const std::string& path, const ResponseSurface& surface,
                     SearchStrategy strategy, const CampaignConfig& config,
                     const CampaignState& state) {
  util::Json doc = util::Json::object();
  doc["version"] = 1;
  doc["strategy"] = to_string(strategy);
  util::Json surf = util::Json::object();
  surf["kind"] = surface.name();
  surf["noise_sd"] = surface.noise_sd();
  doc["surface"] = std::move(surf);
  util::Json cfg = util::Json::object();
  cfg["max_evaluations"] = config.max_evaluations;
  cfg["batch_size"] = config.batch_size;
  cfg["target_excess"] = config.target_excess;
  cfg["sim_flops"] = config.sim_flops;
  cfg["sim_bytes"] = u64_string(config.sim_bytes);
  cfg["scheduler"] = config.scheduler;
  cfg["seed"] = u64_string(config.seed);
  cfg["jobs"] = config.jobs;
  cfg["metrics"] = config.metrics;
  doc["config"] = std::move(cfg);
  util::Json rng_state = util::Json::array();
  for (std::uint64_t word : state.rng.state()) {
    rng_state.push_back(u64_string(word));
  }
  doc["rng_state"] = std::move(rng_state);
  doc["grid_cursor"] = state.grid_cursor;
  util::Json observed = util::Json::array();
  for (const Observation& p : state.observed) {
    util::Json point = util::Json::array();
    point.push_back(p.x);
    point.push_back(p.y);
    point.push_back(p.z);
    observed.push_back(std::move(point));
  }
  doc["observed"] = std::move(observed);
  util::Json res = util::Json::object();
  res["evaluations"] = state.result.evaluations;
  res["rounds"] = state.result.rounds;
  res["reached_target"] = state.result.reached_target;
  res["best_value"] = state.result.best_value;
  res["best_x"] = state.result.best_x;
  res["best_y"] = state.result.best_y;
  util::Json trace = util::Json::array();
  for (double best : state.result.best_after_round) {
    trace.push_back(best);
  }
  res["best_after_round"] = std::move(trace);
  doc["result"] = std::move(res);

  // Write-then-rename so a kill mid-write leaves the previous checkpoint
  // intact rather than a truncated file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    HETFLOW_REQUIRE_MSG(out.good(), "cannot open checkpoint file for writing");
    out << doc.dump_pretty() << '\n';
    HETFLOW_REQUIRE_MSG(out.good(), "checkpoint write failed");
  }
  HETFLOW_REQUIRE_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                      "checkpoint rename failed");
}

CampaignState load_checkpoint(const std::string& path, CampaignConfig& config,
                              SearchStrategy& strategy,
                              ResponseSurface::Kind& surface_kind,
                              double& surface_noise_sd) {
  std::ifstream in(path);
  HETFLOW_REQUIRE_MSG(in.good(), "cannot open checkpoint file");
  std::ostringstream text;
  text << in.rdbuf();
  const util::Json doc = util::Json::parse(text.str());
  HETFLOW_REQUIRE_MSG(doc.at("version").as_number() == 1.0,
                      "unsupported checkpoint version");
  strategy = strategy_from_name(doc.at("strategy").as_string());
  surface_kind =
      ResponseSurface::kind_from_name(doc.at("surface").at("kind").as_string());
  surface_noise_sd = doc.at("surface").at("noise_sd").as_number();
  const util::Json& cfg = doc.at("config");
  config.max_evaluations =
      static_cast<std::size_t>(cfg.at("max_evaluations").as_number());
  config.batch_size = static_cast<std::size_t>(cfg.at("batch_size").as_number());
  config.target_excess = cfg.at("target_excess").as_number();
  config.sim_flops = cfg.at("sim_flops").as_number();
  config.sim_bytes = parse_u64(cfg.at("sim_bytes"));
  config.scheduler = cfg.at("scheduler").as_string();
  config.seed = parse_u64(cfg.at("seed"));
  config.jobs = static_cast<std::size_t>(cfg.at("jobs").as_number());
  // Absent in checkpoints written before the observability layer existed.
  config.metrics = cfg.contains("metrics") && cfg.at("metrics").as_bool();

  CampaignState state;
  const util::JsonArray& words = doc.at("rng_state").as_array();
  HETFLOW_REQUIRE_MSG(words.size() == 4, "malformed rng state");
  std::array<std::uint64_t, 4> rng_words{};
  for (std::size_t i = 0; i < 4; ++i) {
    rng_words[i] = parse_u64(words[i]);
  }
  state.rng.set_state(rng_words);
  state.grid_cursor =
      static_cast<std::size_t>(doc.at("grid_cursor").as_number());
  for (const util::Json& point : doc.at("observed").as_array()) {
    const util::JsonArray& xyz = point.as_array();
    HETFLOW_REQUIRE_MSG(xyz.size() == 3, "malformed observation");
    state.observed.push_back(
        {xyz[0].as_number(), xyz[1].as_number(), xyz[2].as_number()});
  }
  const util::Json& res = doc.at("result");
  state.result.evaluations =
      static_cast<std::size_t>(res.at("evaluations").as_number());
  state.result.rounds = static_cast<std::size_t>(res.at("rounds").as_number());
  state.result.reached_target = res.at("reached_target").as_bool();
  state.result.best_value = res.at("best_value").as_number();
  state.result.best_x = res.at("best_x").as_number();
  state.result.best_y = res.at("best_y").as_number();
  for (const util::Json& best : res.at("best_after_round").as_array()) {
    state.result.best_after_round.push_back(best.as_number());
  }
  HETFLOW_REQUIRE_MSG(
      state.result.best_after_round.size() == state.result.rounds,
      "checkpoint rounds disagree with best-so-far trace");
  return state;
}

// --- the loop ---------------------------------------------------------------

CampaignResult campaign_loop(const ResponseSurface& surface,
                             SearchStrategy strategy,
                             const CampaignConfig& config,
                             core::Runtime& runtime, CampaignState state) {
  const CodeletLibrary library = CodeletLibrary::standard();
  util::Rng& rng = state.rng;
  CampaignResult& result = state.result;
  std::vector<Observation>& observed = state.observed;
  std::size_t& grid_cursor = state.grid_cursor;
  const double target = surface.true_minimum() + config.target_excess;

  // Grid layout: smallest k x k covering the budget, swept in order.
  const auto grid_k = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(config.max_evaluations))));

  while (result.evaluations < config.max_evaluations &&
         !result.reached_target &&
         (config.max_rounds == 0 || result.rounds < config.max_rounds)) {
    const std::size_t batch = std::min(
        config.batch_size, config.max_evaluations - result.evaluations);
    // 1) choose the batch of parameter points
    std::vector<std::pair<double, double>> points;
    points.reserve(batch);
    switch (strategy) {
      case SearchStrategy::Grid:
        for (std::size_t b = 0; b < batch; ++b) {
          const std::size_t i = grid_cursor / grid_k;
          const std::size_t j = grid_cursor % grid_k;
          ++grid_cursor;
          const double denom = static_cast<double>(grid_k - 1);
          points.push_back({grid_k == 1 ? 0.5 : static_cast<double>(i) / denom,
                            grid_k == 1 ? 0.5 : static_cast<double>(j) / denom});
        }
        break;
      case SearchStrategy::Random:
        for (std::size_t b = 0; b < batch; ++b) {
          points.push_back({rng.uniform(), rng.uniform()});
        }
        break;
      case SearchStrategy::Surrogate: {
        // Adaptive zoom: once observations exist, most of the batch
        // samples a Gaussian around the incumbent with a per-round
        // shrinking radius; a fraction stays global for exploration; and
        // when the quadratic surrogate fits, its candidate-pool argmin
        // joins the batch (exact convergence on bowl-shaped surfaces).
        if (observed.empty()) {
          for (std::size_t b = 0; b < batch; ++b) {
            points.push_back({rng.uniform(), rng.uniform()});
          }
          break;
        }
        const double sigma = std::max(
            0.02, 0.3 * std::pow(0.8, static_cast<double>(result.rounds)));
        std::array<double, 6> coeffs{};
        if (fit_quadratic(observed, coeffs)) {
          // Per-generation candidate evaluation: the pool points are
          // drawn serially (one Rng stream), the pure surrogate
          // evaluations fan out over the pool workers, and the argmin
          // reduction walks in index order — so the chosen candidate is
          // identical for any `jobs`.
          constexpr std::size_t kPool = 256;
          std::vector<std::pair<double, double>> candidates;
          candidates.reserve(kPool);
          for (std::size_t c = 0; c < kPool; ++c) {
            candidates.push_back({rng.uniform(), rng.uniform()});
          }
          const std::size_t jobs =
              config.jobs > 0 ? config.jobs : exec::default_jobs();
          const std::vector<double> preds = exec::parallel_map<double>(
              kPool, jobs, [&](std::size_t c) {
                return predict(coeffs, candidates[c].first,
                               candidates[c].second);
              });
          double best_pred = std::numeric_limits<double>::infinity();
          std::pair<double, double> best_point{0.5, 0.5};
          for (std::size_t c = 0; c < kPool; ++c) {
            if (preds[c] < best_pred) {
              best_pred = preds[c];
              best_point = candidates[c];
            }
          }
          points.push_back(best_point);
        }
        while (points.size() < batch) {
          if (points.size() % 4 == 3) {
            points.push_back({rng.uniform(), rng.uniform()});  // explore
          } else {
            points.push_back(
                {std::clamp(result.best_x + rng.normal(0.0, sigma), 0.0, 1.0),
                 std::clamp(result.best_y + rng.normal(0.0, sigma), 0.0,
                            1.0)});
          }
        }
        break;
      }
    }
    // 2) run the batch through the heterogeneous runtime
    run_simulation_batch(runtime, library, config, result.rounds, batch);
    // 3) observe the figure of merit at each point
    for (const auto& [x, y] : points) {
      const double z = surface.observe(x, y, rng);
      observed.push_back({x, y, z});
      ++result.evaluations;
      if (z < result.best_value) {
        result.best_value = z;
        result.best_x = x;
        result.best_y = y;
      }
    }
    ++result.rounds;
    result.best_after_round.push_back(result.best_value);
    if (result.best_value <= target) {
      result.reached_target = true;
    }
    if (!config.checkpoint_path.empty()) {
      save_checkpoint(config.checkpoint_path, surface, strategy, config,
                      state);
    }
  }

  result.makespan_s = runtime.now();
  result.core_seconds = runtime.stats().total_busy_seconds();
  if (runtime.recorder() != nullptr) {
    result.metrics_json = runtime.recorder()->metrics().to_json_string();
    result.decision_log =
        runtime.recorder()->decisions_jsonl(runtime.platform());
  }
  return result;
}

/// Reconstructs the runtime's simulated-time state (clock, history-model
/// calibration, device stats) after `rounds` completed rounds by
/// re-running their simulation batches. The batches are a deterministic
/// function of (config, round index) — no campaign rng draws — so the
/// replayed runtime is identical to the one the killed campaign held.
void replay_batches(core::Runtime& runtime, const CampaignConfig& config,
                    std::size_t rounds, std::size_t evaluations) {
  const CodeletLibrary library = CodeletLibrary::standard();
  std::size_t replayed = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::size_t batch =
        std::min(config.batch_size, config.max_evaluations - replayed);
    run_simulation_batch(runtime, library, config, round, batch);
    replayed += batch;
  }
  HETFLOW_REQUIRE_MSG(replayed == evaluations,
                      "checkpoint evaluation count disagrees with its "
                      "round/batch schedule");
}

core::RuntimeOptions campaign_runtime_options(const CampaignConfig& config) {
  core::RuntimeOptions options;
  options.seed = config.seed;
  options.record_trace = false;
  options.metrics = config.metrics;
  return options;
}

}  // namespace

// ---------------------------------------------------------------------------
// Campaign loop
// ---------------------------------------------------------------------------

CampaignResult run_campaign(const hw::Platform& platform,
                            const ResponseSurface& surface,
                            SearchStrategy strategy,
                            const CampaignConfig& config) {
  HETFLOW_REQUIRE_MSG(config.batch_size >= 1, "batch size must be >= 1");
  HETFLOW_REQUIRE_MSG(config.max_evaluations >= config.batch_size,
                      "max_evaluations below one batch");
  core::Runtime runtime(platform, sched::make_scheduler(config.scheduler),
                        campaign_runtime_options(config));
  CampaignState state;
  state.rng.reseed(config.seed);
  state.result.best_value = std::numeric_limits<double>::infinity();
  return campaign_loop(surface, strategy, config, runtime, std::move(state));
}

CampaignResult resume_campaign(const hw::Platform& platform,
                               const std::string& checkpoint_path,
                               std::size_t max_rounds) {
  CampaignConfig config;
  SearchStrategy strategy = SearchStrategy::Grid;
  ResponseSurface::Kind kind = ResponseSurface::Kind::Branin;
  double noise_sd = 0.0;
  CampaignState state =
      load_checkpoint(checkpoint_path, config, strategy, kind, noise_sd);
  config.checkpoint_path = checkpoint_path;
  config.max_rounds = max_rounds;
  const ResponseSurface surface(kind, noise_sd);
  core::Runtime runtime(platform, sched::make_scheduler(config.scheduler),
                        campaign_runtime_options(config));
  replay_batches(runtime, config, state.result.rounds,
                 state.result.evaluations);
  return campaign_loop(surface, strategy, config, runtime, std::move(state));
}

}  // namespace hetflow::workflow
