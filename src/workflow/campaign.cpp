#include "workflow/campaign.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numbers>

#include "core/runtime.hpp"
#include "exec/thread_pool.hpp"
#include "sched/registry.hpp"
#include "util/strings.hpp"
#include "workflow/codelets.hpp"

namespace hetflow::workflow {

// ---------------------------------------------------------------------------
// Response surfaces
// ---------------------------------------------------------------------------

ResponseSurface::ResponseSurface(Kind kind, double noise_sd)
    : kind_(kind), noise_sd_(noise_sd) {
  HETFLOW_REQUIRE_MSG(noise_sd >= 0.0, "noise sd cannot be negative");
}

double ResponseSurface::value(double x, double y) const {
  switch (kind_) {
    case Kind::Branin: {
      // Standard Branin over x1 in [-5, 10], x2 in [0, 15].
      const double x1 = -5.0 + 15.0 * x;
      const double x2 = 15.0 * y;
      constexpr double a = 1.0;
      const double b = 5.1 / (4.0 * std::numbers::pi * std::numbers::pi);
      const double c = 5.0 / std::numbers::pi;
      constexpr double r = 6.0;
      constexpr double s = 10.0;
      const double t = 1.0 / (8.0 * std::numbers::pi);
      const double term = x2 - b * x1 * x1 + c * x1 - r;
      return a * term * term + s * (1.0 - t) * std::cos(x1) + s;
    }
    case Kind::Rosenbrock: {
      // Scaled to [0,1]^2 with the valley inside the domain.
      const double x1 = -2.0 + 4.0 * x;
      const double x2 = -1.0 + 3.0 * y;
      const double term1 = x2 - x1 * x1;
      const double term2 = 1.0 - x1;
      return 100.0 * term1 * term1 + term2 * term2;
    }
    case Kind::Quadratic: {
      const double dx = x - 0.7;
      const double dy = y - 0.3;
      return 40.0 * dx * dx + 25.0 * dy * dy;
    }
  }
  return 0.0;
}

double ResponseSurface::observe(double x, double y, util::Rng& rng) const {
  double observation = value(x, y);
  if (noise_sd_ > 0.0) {
    observation += rng.normal(0.0, noise_sd_);
  }
  return observation;
}

double ResponseSurface::true_minimum() const noexcept {
  switch (kind_) {
    case Kind::Branin:
      return 0.397887;
    case Kind::Rosenbrock:
    case Kind::Quadratic:
      return 0.0;
  }
  return 0.0;
}

const char* ResponseSurface::name() const noexcept {
  switch (kind_) {
    case Kind::Branin:
      return "branin";
    case Kind::Rosenbrock:
      return "rosenbrock";
    case Kind::Quadratic:
      return "quadratic";
  }
  return "?";
}

const char* to_string(SearchStrategy strategy) noexcept {
  switch (strategy) {
    case SearchStrategy::Grid:
      return "grid";
    case SearchStrategy::Random:
      return "random";
    case SearchStrategy::Surrogate:
      return "surrogate";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Quadratic surrogate: least-squares fit of
//   z = c0 + c1 x + c2 y + c3 x^2 + c4 y^2 + c5 xy
// ---------------------------------------------------------------------------

namespace {

struct Observation {
  double x;
  double y;
  double z;
};

std::array<double, 6> features(double x, double y) {
  return {1.0, x, y, x * x, y * y, x * y};
}

/// Solves the 6x6 normal equations by Gaussian elimination with partial
/// pivoting; returns false when the system is (near-)singular.
bool fit_quadratic(const std::vector<Observation>& points,
                   std::array<double, 6>& coeffs) {
  if (points.size() < 6) {
    return false;
  }
  double a[6][7] = {};
  for (const Observation& p : points) {
    const std::array<double, 6> phi = features(p.x, p.y);
    for (int i = 0; i < 6; ++i) {
      for (int j = 0; j < 6; ++j) {
        a[i][j] += phi[static_cast<std::size_t>(i)] *
                   phi[static_cast<std::size_t>(j)];
      }
      a[i][6] += phi[static_cast<std::size_t>(i)] * p.z;
    }
  }
  // Tikhonov damping keeps the fit stable with clustered samples.
  for (int i = 0; i < 6; ++i) {
    a[i][i] += 1e-9 * static_cast<double>(points.size());
  }
  for (int col = 0; col < 6; ++col) {
    int pivot = col;
    for (int row = col + 1; row < 6; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) {
        pivot = row;
      }
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return false;
    }
    std::swap(a[pivot], a[col]);
    for (int row = 0; row < 6; ++row) {
      if (row == col) {
        continue;
      }
      const double factor = a[row][col] / a[col][col];
      for (int k = col; k < 7; ++k) {
        a[row][k] -= factor * a[col][k];
      }
    }
  }
  for (int i = 0; i < 6; ++i) {
    coeffs[static_cast<std::size_t>(i)] = a[i][6] / a[i][i];
  }
  return true;
}

double predict(const std::array<double, 6>& coeffs, double x, double y) {
  const std::array<double, 6> phi = features(x, y);
  double z = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    z += coeffs[i] * phi[i];
  }
  return z;
}

/// Runs one batch of simulations (prepare -> simulate -> analyze chains)
/// through the runtime; the campaign's figure-of-merit observation is
/// made once the batch's workflows have "executed".
void run_simulation_batch(core::Runtime& runtime,
                          const CodeletLibrary& library,
                          const CampaignConfig& config, std::size_t round,
                          std::size_t batch) {
  const core::CodeletPtr prepare = library.get("io");
  const core::CodeletPtr simulate = library.get("compute");
  const core::CodeletPtr analyze = library.get("reduce");
  for (std::size_t b = 0; b < batch; ++b) {
    const auto tag = util::format("r%zu_e%zu", round, b);
    const data::DataId input =
        runtime.register_data("in_" + tag, config.sim_bytes / 4);
    const data::DataId field =
        runtime.register_data("field_" + tag, config.sim_bytes);
    const data::DataId result =
        runtime.register_data("res_" + tag, config.sim_bytes / 16);
    runtime.submit("prepare_" + tag, prepare, config.sim_flops / 20.0,
                   {{input, data::AccessMode::Write}});
    runtime.submit("simulate_" + tag, simulate, config.sim_flops,
                   {{input, data::AccessMode::Read},
                    {field, data::AccessMode::Write}});
    runtime.submit("analyze_" + tag, analyze, config.sim_flops / 10.0,
                   {{field, data::AccessMode::Read},
                    {result, data::AccessMode::Write}});
  }
  runtime.wait_all();
}

}  // namespace

// ---------------------------------------------------------------------------
// Campaign loop
// ---------------------------------------------------------------------------

CampaignResult run_campaign(const hw::Platform& platform,
                            const ResponseSurface& surface,
                            SearchStrategy strategy,
                            const CampaignConfig& config) {
  HETFLOW_REQUIRE_MSG(config.batch_size >= 1, "batch size must be >= 1");
  HETFLOW_REQUIRE_MSG(config.max_evaluations >= config.batch_size,
                      "max_evaluations below one batch");
  util::Rng rng(config.seed);
  const CodeletLibrary library = CodeletLibrary::standard();
  core::RuntimeOptions options;
  options.seed = config.seed;
  options.record_trace = false;
  core::Runtime runtime(platform, sched::make_scheduler(config.scheduler),
                        options);

  CampaignResult result;
  result.best_value = std::numeric_limits<double>::infinity();
  std::vector<Observation> observed;
  const double target = surface.true_minimum() + config.target_excess;

  // Grid layout: smallest k x k covering the budget, swept in order.
  const auto grid_k = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(config.max_evaluations))));
  std::size_t grid_cursor = 0;

  while (result.evaluations < config.max_evaluations &&
         !result.reached_target) {
    const std::size_t batch = std::min(
        config.batch_size, config.max_evaluations - result.evaluations);
    // 1) choose the batch of parameter points
    std::vector<std::pair<double, double>> points;
    points.reserve(batch);
    switch (strategy) {
      case SearchStrategy::Grid:
        for (std::size_t b = 0; b < batch; ++b) {
          const std::size_t i = grid_cursor / grid_k;
          const std::size_t j = grid_cursor % grid_k;
          ++grid_cursor;
          const double denom = static_cast<double>(grid_k - 1);
          points.push_back({grid_k == 1 ? 0.5 : static_cast<double>(i) / denom,
                            grid_k == 1 ? 0.5 : static_cast<double>(j) / denom});
        }
        break;
      case SearchStrategy::Random:
        for (std::size_t b = 0; b < batch; ++b) {
          points.push_back({rng.uniform(), rng.uniform()});
        }
        break;
      case SearchStrategy::Surrogate: {
        // Adaptive zoom: once observations exist, most of the batch
        // samples a Gaussian around the incumbent with a per-round
        // shrinking radius; a fraction stays global for exploration; and
        // when the quadratic surrogate fits, its candidate-pool argmin
        // joins the batch (exact convergence on bowl-shaped surfaces).
        if (observed.empty()) {
          for (std::size_t b = 0; b < batch; ++b) {
            points.push_back({rng.uniform(), rng.uniform()});
          }
          break;
        }
        const double sigma = std::max(
            0.02, 0.3 * std::pow(0.8, static_cast<double>(result.rounds)));
        std::array<double, 6> coeffs{};
        if (fit_quadratic(observed, coeffs)) {
          // Per-generation candidate evaluation: the pool points are
          // drawn serially (one Rng stream), the pure surrogate
          // evaluations fan out over the pool workers, and the argmin
          // reduction walks in index order — so the chosen candidate is
          // identical for any `jobs`.
          constexpr std::size_t kPool = 256;
          std::vector<std::pair<double, double>> candidates;
          candidates.reserve(kPool);
          for (std::size_t c = 0; c < kPool; ++c) {
            candidates.push_back({rng.uniform(), rng.uniform()});
          }
          const std::size_t jobs =
              config.jobs > 0 ? config.jobs : exec::default_jobs();
          const std::vector<double> preds = exec::parallel_map<double>(
              kPool, jobs, [&](std::size_t c) {
                return predict(coeffs, candidates[c].first,
                               candidates[c].second);
              });
          double best_pred = std::numeric_limits<double>::infinity();
          std::pair<double, double> best_point{0.5, 0.5};
          for (std::size_t c = 0; c < kPool; ++c) {
            if (preds[c] < best_pred) {
              best_pred = preds[c];
              best_point = candidates[c];
            }
          }
          points.push_back(best_point);
        }
        while (points.size() < batch) {
          if (points.size() % 4 == 3) {
            points.push_back({rng.uniform(), rng.uniform()});  // explore
          } else {
            points.push_back(
                {std::clamp(result.best_x + rng.normal(0.0, sigma), 0.0, 1.0),
                 std::clamp(result.best_y + rng.normal(0.0, sigma), 0.0,
                            1.0)});
          }
        }
        break;
      }
    }
    // 2) run the batch through the heterogeneous runtime
    run_simulation_batch(runtime, library, config, result.rounds, batch);
    // 3) observe the figure of merit at each point
    for (const auto& [x, y] : points) {
      const double z = surface.observe(x, y, rng);
      observed.push_back({x, y, z});
      ++result.evaluations;
      if (z < result.best_value) {
        result.best_value = z;
        result.best_x = x;
        result.best_y = y;
      }
    }
    ++result.rounds;
    result.best_after_round.push_back(result.best_value);
    if (result.best_value <= target) {
      result.reached_target = true;
    }
  }

  result.makespan_s = runtime.now();
  result.core_seconds = runtime.stats().total_busy_seconds();
  return result;
}

}  // namespace hetflow::workflow
