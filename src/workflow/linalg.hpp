// Tiled dense linear-algebra task graphs — the workloads that motivated
// StarPU-style runtimes. Two forms are provided:
//
//   * Workflow form (SSA file versioning) for uniform use in workflow-
//     level experiments;
//   * direct-submission form exercising the runtime's implicit
//     RAW/WAR/WAW dependency inference on in-place tile updates (the
//     realistic API a linear-algebra library would use).
//
// Task flop counts use the standard kernel costs for an n x n tile:
// potrf n^3/3, trsm n^3, syrk n^3, gemm 2 n^3 (and getrf n^3 * 2/3).
#pragma once

#include <cstddef>

#include "core/runtime.hpp"
#include "workflow/workflow.hpp"

namespace hetflow::workflow {

/// Tile-level Cholesky factorization of an nt x nt tile matrix with
/// tile_n x tile_n double tiles, as a Workflow.
Workflow make_cholesky(std::size_t nt, std::size_t tile_n = 2048);

/// Tile-level LU factorization (no pivoting) as a Workflow.
Workflow make_lu(std::size_t nt, std::size_t tile_n = 2048);

/// Submits Cholesky directly against `runtime` using in-place ReadWrite
/// tile handles (implicit dependency inference). Returns the number of
/// tasks submitted.
std::size_t submit_cholesky_inplace(core::Runtime& runtime, std::size_t nt,
                                    std::size_t tile_n,
                                    const CodeletLibrary& library);

/// Number of tasks a tiled Cholesky of nt x nt tiles contains:
/// nt potrf + nt(nt-1)/2 trsm + nt(nt-1)/2 syrk + nt(nt-1)(nt-2)/6 gemm.
std::size_t cholesky_task_count(std::size_t nt) noexcept;

}  // namespace hetflow::workflow
