// Plain-text workflow interchange format ("hetflow dag v1").
//
//   # comment
//   workflow montage-8
//   file raw_0.fits 4Mi
//   task mProjectPP_0 kind=mProjectPP flops=2G in=raw_0.fits out=proj_0.fits
//
// One record per line; fields are whitespace-separated; `in=`/`out=` take
// comma-separated file names (files may be declared implicitly by first
// mention, defaulting to 0 bytes — declare them with `file` to size them).
// Numbers accept K/M/G/T and Ki/Mi/Gi/Ti suffixes.
#pragma once

#include <iosfwd>
#include <string>

#include "workflow/workflow.hpp"

namespace hetflow::workflow {

/// Serializes a workflow to the v1 text format.
std::string to_dagfile(const Workflow& workflow);

/// Parses the v1 text format; throws ParseError with a line number on
/// malformed input. The result is validate()d before returning.
Workflow parse_dagfile(const std::string& text);

/// File-based convenience wrappers.
void save_dagfile(const Workflow& workflow, const std::string& path);
Workflow load_dagfile(const std::string& path);

}  // namespace hetflow::workflow
