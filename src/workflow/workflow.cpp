#include "workflow/workflow.hpp"

#include <algorithm>

#include "sched/registry.hpp"
#include "util/strings.hpp"

namespace hetflow::workflow {

std::size_t Workflow::add_file(std::string name, std::uint64_t bytes) {
  files_.push_back(WorkflowFile{std::move(name), bytes});
  return files_.size() - 1;
}

std::size_t Workflow::add_task(std::string name, std::string kind,
                               double flops, std::vector<std::size_t> inputs,
                               std::vector<std::size_t> outputs) {
  HETFLOW_REQUIRE_MSG(flops >= 0.0, "task flops cannot be negative");
  tasks_.push_back(WorkflowTask{std::move(name), std::move(kind), flops,
                                std::move(inputs), std::move(outputs)});
  return tasks_.size() - 1;
}

double Workflow::total_flops() const noexcept {
  double total = 0.0;
  for (const WorkflowTask& task : tasks_) {
    total += task.flops;
  }
  return total;
}

std::uint64_t Workflow::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const WorkflowFile& file : files_) {
    total += file.bytes;
  }
  return total;
}

std::size_t Workflow::producer_of(std::size_t file) const {
  HETFLOW_REQUIRE_MSG(file < files_.size(), "file index out of range");
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    for (std::size_t out : tasks_[t].outputs) {
      if (out == file) {
        return t;
      }
    }
  }
  return npos;
}

util::Digraph Workflow::task_graph() const {
  util::Digraph graph(tasks_.size());
  // producer[file] -> consumer edges.
  std::vector<std::size_t> producer(files_.size(), npos);
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    for (std::size_t out : tasks_[t].outputs) {
      HETFLOW_REQUIRE_MSG(out < files_.size(), "file index out of range");
      producer[out] = t;
    }
  }
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    for (std::size_t in : tasks_[t].inputs) {
      HETFLOW_REQUIRE_MSG(in < files_.size(), "file index out of range");
      const std::size_t p = producer[in];
      if (p != npos && p != t) {
        graph.add_edge(p, t);
      }
    }
  }
  return graph;
}

void Workflow::validate() const {
  std::vector<bool> produced(files_.size(), false);
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    const WorkflowTask& task = tasks_[t];
    for (std::size_t in : task.inputs) {
      if (in >= files_.size()) {
        throw InvalidArgument(util::format(
            "workflow '%s': task '%s' reads unknown file %zu", name_.c_str(),
            task.name.c_str(), in));
      }
    }
    for (std::size_t out : task.outputs) {
      if (out >= files_.size()) {
        throw InvalidArgument(util::format(
            "workflow '%s': task '%s' writes unknown file %zu", name_.c_str(),
            task.name.c_str(), out));
      }
      if (produced[out]) {
        throw InvalidArgument(util::format(
            "workflow '%s': file '%s' has multiple producers", name_.c_str(),
            files_[out].name.c_str()));
      }
      produced[out] = true;
    }
  }
  if (task_graph().has_cycle()) {
    throw InvalidArgument("workflow '" + name_ + "' has a dependency cycle");
  }
}

std::size_t Workflow::depth() const {
  if (tasks_.empty()) {
    return 0;
  }
  const std::vector<std::size_t> levels = task_graph().levels();
  return 1 + *std::max_element(levels.begin(), levels.end());
}

std::size_t Workflow::max_width() const {
  if (tasks_.empty()) {
    return 0;
  }
  const std::vector<std::size_t> levels = task_graph().levels();
  std::vector<std::size_t> count(depth(), 0);
  for (std::size_t level : levels) {
    ++count[level];
  }
  return *std::max_element(count.begin(), count.end());
}

std::string Workflow::describe() const {
  return util::format("%s: %zu tasks, %zu files, depth %zu, width %zu, "
                      "%.3g GFLOP, %s",
                      name_.c_str(), tasks_.size(), files_.size(), depth(),
                      max_width(), total_flops() / 1e9,
                      util::human_bytes(static_cast<double>(total_bytes()))
                          .c_str());
}

std::vector<core::TaskId> submit_workflow(core::Runtime& runtime,
                                          const Workflow& workflow,
                                          const CodeletLibrary& library,
                                          hw::MemoryNodeId home) {
  workflow.validate();
  std::vector<data::DataId> file_ids;
  file_ids.reserve(workflow.file_count());
  for (const WorkflowFile& file : workflow.files()) {
    file_ids.push_back(runtime.register_data(file.name, file.bytes, home));
  }
  // Submission must follow a topological order so dependency inference
  // (which is order-sensitive) sees producers before consumers.
  const std::vector<std::size_t> order =
      workflow.task_graph().topological_order();
  std::vector<core::TaskId> task_ids(workflow.task_count());
  for (std::size_t index : order) {
    const WorkflowTask& task = workflow.tasks()[index];
    std::vector<data::Access> accesses;
    accesses.reserve(task.inputs.size() + task.outputs.size());
    for (std::size_t in : task.inputs) {
      accesses.push_back({file_ids[in], data::AccessMode::Read});
    }
    for (std::size_t out : task.outputs) {
      accesses.push_back({file_ids[out], data::AccessMode::Write});
    }
    task_ids[index] = runtime.submit(task.name, library.get(task.kind),
                                     task.flops, std::move(accesses));
  }
  return task_ids;
}

core::RunStats run_workflow(const hw::Platform& platform,
                            const std::string& scheduler_name,
                            const Workflow& workflow,
                            const CodeletLibrary& library,
                            const core::RuntimeOptions& options) {
  core::Runtime runtime(platform, sched::make_scheduler(scheduler_name),
                        options);
  submit_workflow(runtime, workflow, library);
  runtime.wait_all();
  return runtime.stats();
}

}  // namespace hetflow::workflow
