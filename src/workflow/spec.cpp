#include "workflow/spec.hpp"

#include "hw/presets.hpp"
#include "hw/serialize.hpp"
#include "util/strings.hpp"
#include "workflow/dagfile.hpp"
#include "workflow/generators.hpp"
#include "workflow/linalg.hpp"

namespace hetflow::workflow {

namespace {

struct Spec {
  std::string kind;
  std::vector<double> args;

  double arg(std::size_t index, double fallback) const {
    return index < args.size() ? args[index] : fallback;
  }
  std::size_t arg_n(std::size_t index, std::size_t fallback) const {
    return index < args.size() ? static_cast<std::size_t>(args[index])
                               : fallback;
  }
};

Spec parse_spec(const std::string& text) {
  Spec spec;
  const std::size_t colon = text.find(':');
  spec.kind = text.substr(0, colon);
  if (colon != std::string::npos) {
    for (const std::string& field : util::split(text.substr(colon + 1), ',')) {
      if (field.empty()) {
        throw ParseError("empty argument in spec '" + text + "'");
      }
      spec.args.push_back(util::parse_scaled(field));
    }
  }
  return spec;
}

}  // namespace

Workflow make_workflow_from_spec(const std::string& text, double scale) {
  if (util::ends_with(text, ".dag")) {
    return load_dagfile(text);
  }
  const Spec spec = parse_spec(text);
  if (spec.kind == "montage") {
    return make_montage(spec.arg_n(0, 32), scale);
  }
  if (spec.kind == "epigenomics") {
    return make_epigenomics(spec.arg_n(0, 4), spec.arg_n(1, 8), scale);
  }
  if (spec.kind == "cybershake") {
    return make_cybershake(spec.arg_n(0, 4), spec.arg_n(1, 20), scale);
  }
  if (spec.kind == "ligo") {
    return make_ligo(spec.arg_n(0, 50), spec.arg_n(1, 8), scale);
  }
  if (spec.kind == "sipht") {
    return make_sipht(spec.arg_n(0, 20), spec.arg_n(1, 8), scale);
  }
  if (spec.kind == "cholesky") {
    return make_cholesky(spec.arg_n(0, 8), spec.arg_n(1, 2048));
  }
  if (spec.kind == "lu") {
    return make_lu(spec.arg_n(0, 8), spec.arg_n(1, 2048));
  }
  if (spec.kind == "layered") {
    return make_random_layered(spec.arg_n(0, 8), spec.arg_n(1, 6),
                               spec.arg(2, 1.0),
                               static_cast<std::uint64_t>(spec.arg(3, 1)));
  }
  if (spec.kind == "forkjoin") {
    return make_fork_join(spec.arg_n(0, 16), spec.arg_n(1, 4),
                          spec.arg(2, 0.5),
                          static_cast<std::uint64_t>(spec.arg(3, 1)));
  }
  if (spec.kind == "wavefront") {
    return make_wavefront(spec.arg_n(0, 8));
  }
  if (spec.kind == "chain") {
    return make_chain(spec.arg_n(0, 100), spec.arg(1, 1e8),
                      static_cast<std::uint64_t>(spec.arg(2, 1 << 20)));
  }
  if (spec.kind == "bag") {
    return make_bag(spec.arg_n(0, 100), spec.arg(1, 1e8),
                    static_cast<std::uint64_t>(spec.arg(2, 1 << 20)));
  }
  throw ParseError("unknown workflow spec '" + text + "'");
}

hw::Platform make_platform_from_spec(const std::string& text) {
  if (util::ends_with(text, ".json")) {
    return hw::load_platform(text);
  }
  const Spec spec = parse_spec(text);
  if (spec.kind == "workstation") {
    return hw::make_workstation();
  }
  if (spec.kind == "edge") {
    return hw::make_edge_node();
  }
  if (spec.kind == "cpu") {
    return hw::make_cpu_only(spec.arg_n(0, 8));
  }
  if (spec.kind == "hpc") {
    return hw::make_hpc_node(spec.arg_n(0, 16), spec.arg_n(1, 4),
                             spec.arg_n(2, 0));
  }
  if (spec.kind == "cluster") {
    return hw::make_cluster(spec.arg_n(0, 2), spec.arg_n(1, 8),
                            spec.arg_n(2, 2));
  }
  throw ParseError("unknown platform spec '" + text + "'");
}

}  // namespace hetflow::workflow
