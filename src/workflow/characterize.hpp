// Workflow characterization — the structural metrics workflow papers
// tabulate (Bharathi et al.): size, shape, parallelism profile and
// communication-to-computation balance. Platform-independent except for
// the reference rates used to express CCR.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workflow/workflow.hpp"

namespace hetflow::workflow {

struct Characterization {
  std::string name;
  std::size_t tasks = 0;
  std::size_t files = 0;
  std::size_t edges = 0;          ///< task-graph dependency edges
  std::size_t depth = 0;          ///< levels
  std::size_t max_width = 0;      ///< widest level
  double total_gflop = 0.0;
  std::uint64_t total_bytes = 0;
  /// total work / critical-path work: the average parallelism an
  /// infinite homogeneous machine could extract.
  double avg_parallelism = 0.0;
  /// Fraction of the total work on the (flop-weighted) critical path —
  /// 1.0 for a pure chain, → 0 for a flat bag.
  double serial_fraction = 0.0;
  /// Communication-to-computation ratio at the reference rates
  /// (16 GB/s interconnect, 50 GFLOP/s compute): total transfer time of
  /// every consumed file / total compute time.
  double ccr = 0.0;
};

/// Computes all metrics. O(V * E) dominated by the level/critical-path
/// passes; validates the workflow first.
Characterization characterize(const Workflow& workflow);

/// Renders a one-row-per-workflow ASCII table.
std::string characterization_table(
    const std::vector<Characterization>& rows);

}  // namespace hetflow::workflow
