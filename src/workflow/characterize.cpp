#include "workflow/characterize.hpp"

#include <algorithm>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace hetflow::workflow {

Characterization characterize(const Workflow& workflow) {
  workflow.validate();
  Characterization out;
  out.name = workflow.name();
  out.tasks = workflow.task_count();
  out.files = workflow.file_count();
  out.total_gflop = workflow.total_flops() / 1e9;
  out.total_bytes = workflow.total_bytes();
  if (workflow.task_count() == 0) {
    return out;
  }
  const util::Digraph graph = workflow.task_graph();
  out.edges = graph.edge_count();
  out.depth = workflow.depth();
  out.max_width = workflow.max_width();

  // Flop-weighted critical path.
  std::vector<double> work(workflow.task_count());
  for (std::size_t t = 0; t < workflow.task_count(); ++t) {
    work[t] = workflow.tasks()[t].flops;
  }
  const double critical_work = graph.critical_path(work);
  const double total_work = workflow.total_flops();
  out.avg_parallelism =
      critical_work > 0.0 ? total_work / critical_work
                          : static_cast<double>(workflow.task_count());
  out.serial_fraction = total_work > 0.0 ? critical_work / total_work : 0.0;

  // CCR at the reference rates: every consumed (read) file charges one
  // transfer of its size.
  constexpr double kRefBandwidth = 16e9;  // bytes/s
  constexpr double kRefRate = 50e9;       // flop/s
  double transfer_s = 0.0;
  for (const WorkflowTask& task : workflow.tasks()) {
    for (std::size_t in : task.inputs) {
      transfer_s += static_cast<double>(workflow.files()[in].bytes) /
                    kRefBandwidth;
    }
  }
  const double compute_s = total_work / kRefRate;
  out.ccr = compute_s > 0.0 ? transfer_s / compute_s : 0.0;
  return out;
}

std::string characterization_table(
    const std::vector<Characterization>& rows) {
  util::Table table({"workflow", "tasks", "files", "edges", "depth",
                     "width", "GFLOP", "data", "avg-par", "serial%",
                     "CCR"});
  for (const Characterization& c : rows) {
    table.add_row({c.name, std::to_string(c.tasks), std::to_string(c.files),
                   std::to_string(c.edges), std::to_string(c.depth),
                   std::to_string(c.max_width),
                   util::format("%.1f", c.total_gflop),
                   util::human_bytes(static_cast<double>(c.total_bytes)),
                   util::format("%.1f", c.avg_parallelism),
                   util::format("%.1f", c.serial_fraction * 100.0),
                   util::format("%.3f", c.ccr)});
  }
  return table.render();
}

}  // namespace hetflow::workflow
