#include "workflow/dagfile.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/strings.hpp"

namespace hetflow::workflow {

std::string to_dagfile(const Workflow& workflow) {
  std::ostringstream out;
  out << "# hetflow dag v1\n";
  out << "workflow " << workflow.name() << '\n';
  for (const WorkflowFile& file : workflow.files()) {
    out << "file " << file.name << ' ' << file.bytes << '\n';
  }
  const auto join_names = [&](const std::vector<std::size_t>& indices) {
    std::vector<std::string> names;
    names.reserve(indices.size());
    for (std::size_t index : indices) {
      names.push_back(workflow.files()[index].name);
    }
    return util::join(names, ",");
  };
  for (const WorkflowTask& task : workflow.tasks()) {
    out << "task " << task.name << " kind=" << task.kind
        << util::format(" flops=%.17g", task.flops);
    if (!task.inputs.empty()) {
      out << " in=" << join_names(task.inputs);
    }
    if (!task.outputs.empty()) {
      out << " out=" << join_names(task.outputs);
    }
    out << '\n';
  }
  return out.str();
}

Workflow parse_dagfile(const std::string& text) {
  Workflow workflow("unnamed");
  std::unordered_map<std::string, std::size_t> file_index;
  bool renamed = false;

  const auto file_id = [&](const std::string& name) {
    const auto it = file_index.find(name);
    if (it != file_index.end()) {
      return it->second;
    }
    const std::size_t id = workflow.add_file(name, 0);
    file_index[name] = id;
    return id;
  };

  std::size_t line_no = 0;
  std::istringstream stream(text);
  std::string raw_line;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    const std::string_view line = util::trim(raw_line);
    if (line.empty() || line.front() == '#') {
      continue;
    }
    const std::vector<std::string> fields = util::split_ws(line);
    const auto fail = [&](const std::string& why) -> void {
      throw ParseError(util::format("dagfile line %zu: %s", line_no,
                                    why.c_str()));
    };
    if (fields[0] == "workflow") {
      if (fields.size() != 2) {
        fail("expected: workflow <name>");
      }
      if (renamed) {
        fail("duplicate workflow record");
      }
      if (workflow.file_count() > 0 || workflow.task_count() > 0) {
        fail("workflow record must precede file/task records");
      }
      workflow = Workflow(fields[1]);
      renamed = true;
    } else if (fields[0] == "file") {
      if (fields.size() != 3) {
        fail("expected: file <name> <bytes>");
      }
      if (file_index.count(fields[1]) > 0) {
        fail("file '" + fields[1] + "' already declared");
      }
      const double bytes = util::parse_scaled(fields[2]);
      if (bytes < 0) {
        fail("file size cannot be negative");
      }
      file_index[fields[1]] =
          workflow.add_file(fields[1], static_cast<std::uint64_t>(bytes));
    } else if (fields[0] == "task") {
      if (fields.size() < 3) {
        fail("expected: task <name> kind=<kind> flops=<flops> [in=..] "
             "[out=..]");
      }
      std::string kind;
      double flops = -1.0;
      std::vector<std::size_t> inputs;
      std::vector<std::size_t> outputs;
      for (std::size_t f = 2; f < fields.size(); ++f) {
        const std::string& field = fields[f];
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos) {
          fail("malformed attribute '" + field + "'");
        }
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "kind") {
          kind = value;
        } else if (key == "flops") {
          flops = util::parse_scaled(value);
        } else if (key == "in" || key == "out") {
          for (const std::string& name : util::split(value, ',')) {
            if (name.empty()) {
              fail("empty file name in " + key + "=");
            }
            (key == "in" ? inputs : outputs).push_back(file_id(name));
          }
        } else {
          fail("unknown attribute '" + key + "'");
        }
      }
      if (kind.empty()) {
        fail("task is missing kind=");
      }
      if (flops < 0.0) {
        fail("task is missing flops= (or it is negative)");
      }
      workflow.add_task(fields[1], kind, flops, std::move(inputs),
                        std::move(outputs));
    } else {
      fail("unknown record '" + fields[0] + "'");
    }
  }
  workflow.validate();
  return workflow;
}

void save_dagfile(const Workflow& workflow, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw Error("cannot open '" + path + "' for writing");
  }
  out << to_dagfile(workflow);
}

Workflow load_dagfile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_dagfile(buffer.str());
}

}  // namespace hetflow::workflow
