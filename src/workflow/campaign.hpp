// Discovery-campaign driver: the "complex scientific discovery workflow"
// use case. A campaign iteratively chooses simulation parameters, runs a
// batch of simulation workflows on the heterogeneous runtime, observes a
// figure of merit from a (synthetic) response surface, and repeats until
// the optimum is found — comparing an adaptive surrogate-guided strategy
// against exhaustive grid and random sweeps (Fig 5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/platform.hpp"
#include "util/rng.hpp"

namespace hetflow::workflow {

/// Synthetic objective over the unit square, standing in for the figure
/// of merit a real simulation campaign would measure.
class ResponseSurface {
 public:
  enum class Kind {
    Branin,      ///< multi-modal classic; min 0.397887
    Rosenbrock,  ///< curved valley; min 0
    Quadratic,   ///< single bowl centered at (0.7, 0.3); min 0
  };

  explicit ResponseSurface(Kind kind, double noise_sd = 0.0);

  /// Noiseless objective at (x, y) in [0,1]^2.
  double value(double x, double y) const;
  /// Observation with measurement noise drawn from `rng`.
  double observe(double x, double y, util::Rng& rng) const;
  double true_minimum() const noexcept;
  const char* name() const noexcept;
  Kind kind() const noexcept { return kind_; }
  double noise_sd() const noexcept { return noise_sd_; }

  /// Inverse of name(); throws InvalidArgument on unknown names.
  static Kind kind_from_name(const std::string& name);

 private:
  Kind kind_;
  double noise_sd_;
};

enum class SearchStrategy { Grid, Random, Surrogate };
const char* to_string(SearchStrategy strategy) noexcept;
/// Inverse of to_string(); throws InvalidArgument on unknown names.
SearchStrategy strategy_from_name(const std::string& name);

struct CampaignConfig {
  std::size_t max_evaluations = 256;
  std::size_t batch_size = 8;      ///< simulations per round (run in parallel)
  /// Stop once best observed <= true_minimum + target_excess.
  double target_excess = 0.05;
  double sim_flops = 4e9;          ///< compute cost of one simulation
  std::uint64_t sim_bytes = 8ull << 20;  ///< result size of one simulation
  std::string scheduler = "dmda";
  std::uint64_t seed = 7;
  /// Worker threads for the per-generation candidate evaluation (the
  /// surrogate's candidate-pool scoring). 0 = take HETFLOW_JOBS (else
  /// serial). Any value yields byte-identical campaign trajectories: the
  /// candidate points are drawn serially from the campaign Rng and the
  /// argmin reduction is index-ordered; only the pure model evaluations
  /// fan out. The simulation batch itself stays on one Runtime so
  /// device contention in simulated time is preserved.
  std::size_t jobs = 0;
  /// When non-empty, the full campaign state (config, rng stream,
  /// observations, incumbent) is serialized here atomically after every
  /// batch; resume_campaign() continues a killed campaign from it to a
  /// byte-identical final result.
  std::string checkpoint_path;
  /// Stop after this many rounds even if neither budget nor target has
  /// been hit (0 = no limit). Simulates a mid-campaign kill for
  /// checkpoint/restart testing and lets long campaigns run in slices.
  std::size_t max_rounds = 0;
  /// Collect the observability layer (RuntimeOptions::metrics) across the
  /// campaign's runtime; the end-of-campaign snapshot and decision log
  /// land in CampaignResult. Persisted in checkpoints, so a resumed
  /// campaign reproduces the uninterrupted run's snapshot byte for byte.
  bool metrics = false;
};

struct CampaignResult {
  std::size_t evaluations = 0;
  std::size_t rounds = 0;
  bool reached_target = false;
  double best_value = 0.0;
  double best_x = 0.0;
  double best_y = 0.0;
  double makespan_s = 0.0;      ///< simulated wall time of the campaign
  double core_seconds = 0.0;    ///< summed device busy time
  std::vector<double> best_after_round;  ///< best-so-far trace
  /// End-of-campaign observability snapshots; empty unless
  /// CampaignConfig::metrics was set.
  std::string metrics_json;
  std::string decision_log;
};

/// Runs one campaign with the given strategy on `platform`. Every
/// evaluation is a 3-stage simulation workflow (prepare -> simulate ->
/// analyze) executed through the full runtime stack, so time-to-discovery
/// reflects scheduling quality as well as strategy quality.
CampaignResult run_campaign(const hw::Platform& platform,
                            const ResponseSurface& surface,
                            SearchStrategy strategy,
                            const CampaignConfig& config = {});

/// Continues a campaign from a checkpoint written by run_campaign (or by
/// an earlier resume). The surface, strategy, and config are restored
/// from the file; `platform` must match the original run for the
/// replayed simulation batches to line up. The finished campaign is
/// byte-identical to one that was never interrupted. `max_rounds`
/// overrides the stored config's slice limit (0 = run to completion);
/// further checkpoints are written back to `checkpoint_path`.
CampaignResult resume_campaign(const hw::Platform& platform,
                               const std::string& checkpoint_path,
                               std::size_t max_rounds = 0);

}  // namespace hetflow::workflow
