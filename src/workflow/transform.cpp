#include "workflow/transform.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace hetflow::workflow {

namespace {

/// Mutable task representation during clustering.
struct MutableTask {
  std::string name;
  std::string kind;
  double flops = 0.0;
  std::vector<std::size_t> inputs;
  std::vector<std::size_t> outputs;
  bool alive = true;
};

void dedupe(std::vector<std::size_t>& indices) {
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
}

}  // namespace

Workflow cluster_linear_chains(const Workflow& workflow, double max_flops,
                               ClusterStats* stats) {
  workflow.validate();
  std::vector<MutableTask> tasks;
  tasks.reserve(workflow.task_count());
  for (const WorkflowTask& task : workflow.tasks()) {
    tasks.push_back(MutableTask{task.name, task.kind, task.flops,
                                task.inputs, task.outputs, true});
  }

  // File usage maps, maintained during merging.
  const std::size_t file_count = workflow.file_count();
  std::vector<std::size_t> producer(file_count, Workflow::npos);
  std::vector<std::vector<std::size_t>> readers(file_count);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    for (std::size_t out : tasks[t].outputs) {
      producer[out] = t;
    }
    for (std::size_t in : tasks[t].inputs) {
      readers[in].push_back(t);
    }
  }

  std::size_t merges = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      MutableTask& up = tasks[t];
      if (!up.alive || up.outputs.size() != 1) {
        continue;
      }
      const std::size_t link = up.outputs[0];
      if (readers[link].size() != 1) {
        continue;  // intermediate is shared — not a private chain
      }
      const std::size_t consumer = readers[link][0];
      if (consumer == t || !tasks[consumer].alive) {
        continue;
      }
      MutableTask& down = tasks[consumer];
      if (up.flops + down.flops > max_flops) {
        continue;
      }
      // Merge `up` into `down`: down absorbs up's inputs, drops the link
      // file from its inputs; the link file becomes dead.
      down.inputs.erase(
          std::remove(down.inputs.begin(), down.inputs.end(), link),
          down.inputs.end());
      for (std::size_t in : up.inputs) {
        down.inputs.push_back(in);
        readers[in].push_back(consumer);
      }
      dedupe(down.inputs);
      // The merged task keeps the kind of the heavier half so device
      // eligibility follows the dominant cost.
      if (up.flops > down.flops) {
        down.kind = up.kind;
      }
      down.flops += up.flops;
      down.name = up.name + "+" + down.name;
      producer[link] = Workflow::npos;
      readers[link].clear();
      for (std::size_t in : up.inputs) {
        readers[in].erase(
            std::remove(readers[in].begin(), readers[in].end(), t),
            readers[in].end());
      }
      up.alive = false;
      ++merges;
      changed = true;
    }
  }

  // Rebuild: keep files that survive (referenced by a live task), keep
  // original indices stable via a remap.
  Workflow out(workflow.name() + "+clustered");
  std::vector<std::size_t> file_map(file_count, Workflow::npos);
  const auto map_file = [&](std::size_t file) {
    if (file_map[file] == Workflow::npos) {
      file_map[file] = out.add_file(workflow.files()[file].name,
                                    workflow.files()[file].bytes);
    }
    return file_map[file];
  };
  for (const MutableTask& task : tasks) {
    if (!task.alive) {
      continue;
    }
    std::vector<std::size_t> inputs;
    inputs.reserve(task.inputs.size());
    for (std::size_t in : task.inputs) {
      inputs.push_back(map_file(in));
    }
    std::vector<std::size_t> outputs;
    outputs.reserve(task.outputs.size());
    for (std::size_t o : task.outputs) {
      outputs.push_back(map_file(o));
    }
    out.add_task(task.name, task.kind, task.flops, std::move(inputs),
                 std::move(outputs));
  }
  out.validate();
  if (stats != nullptr) {
    stats->tasks_before = workflow.task_count();
    stats->tasks_after = out.task_count();
    stats->merges = merges;
  }
  return out;
}

Workflow prune_dead_files(const Workflow& workflow, std::size_t* removed) {
  std::vector<bool> used(workflow.file_count(), false);
  for (const WorkflowTask& task : workflow.tasks()) {
    for (std::size_t in : task.inputs) {
      used[in] = true;
    }
    for (std::size_t out : task.outputs) {
      used[out] = true;
    }
  }
  Workflow out(workflow.name());
  std::vector<std::size_t> file_map(workflow.file_count(), Workflow::npos);
  std::size_t dropped = 0;
  for (std::size_t f = 0; f < workflow.file_count(); ++f) {
    if (used[f]) {
      file_map[f] = out.add_file(workflow.files()[f].name,
                                 workflow.files()[f].bytes);
    } else {
      ++dropped;
    }
  }
  for (const WorkflowTask& task : workflow.tasks()) {
    std::vector<std::size_t> inputs;
    for (std::size_t in : task.inputs) {
      inputs.push_back(file_map[in]);
    }
    std::vector<std::size_t> outputs;
    for (std::size_t out_file : task.outputs) {
      outputs.push_back(file_map[out_file]);
    }
    out.add_task(task.name, task.kind, task.flops, std::move(inputs),
                 std::move(outputs));
  }
  if (removed != nullptr) {
    *removed = dropped;
  }
  return out;
}

}  // namespace hetflow::workflow
