// Workflow graph transformations (Pegasus-style planning optimizations).
//
// Fine-grained workflows pay per-task runtime overhead (dispatch, launch
// latency) that can exceed the useful work of tiny glue tasks. These
// passes restructure a Workflow before submission:
//
//   * cluster_linear_chains — merge a task into its sole consumer when
//     they form a private producer->consumer link (the intermediate file
//     has no other reader), repeatedly, as long as the merged task stays
//     under a flop budget. Classic "horizontal clustering" of chains.
//   * prune_dead_files — drop files that no task reads or writes.
//
// Merged tasks keep the downstream task's kind when the upstream one is
// lighter (and vice versa), so device eligibility follows the dominant
// cost.
#pragma once

#include <cstddef>

#include "workflow/workflow.hpp"

namespace hetflow::workflow {

struct ClusterStats {
  std::size_t tasks_before = 0;
  std::size_t tasks_after = 0;
  std::size_t merges = 0;

  std::size_t removed() const noexcept { return tasks_before - tasks_after; }
};

/// Merges private producer->consumer chains while the merged flop count
/// stays at or below `max_flops`. Returns the transformed workflow and
/// fills `stats` if non-null. The result validates and preserves all
/// workflow inputs/outputs (only private intermediates disappear).
Workflow cluster_linear_chains(const Workflow& workflow, double max_flops,
                               ClusterStats* stats = nullptr);

/// Removes files no task touches. Returns the number of files dropped.
Workflow prune_dead_files(const Workflow& workflow,
                          std::size_t* removed = nullptr);

}  // namespace hetflow::workflow
