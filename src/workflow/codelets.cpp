#include "workflow/codelets.hpp"

#include "util/error.hpp"

namespace hetflow::workflow {

namespace {
using hw::DeviceType;
}

CodeletLibrary CodeletLibrary::standard() {
  CodeletLibrary lib;
  const auto add = [&lib](const std::string& kind,
                          std::initializer_list<std::pair<DeviceType, double>>
                              impls) {
    lib.register_codelet(kind, core::Codelet::make(kind, impls));
  };

  // Generic kinds.
  add("generic", {{DeviceType::Cpu, 0.5}, {DeviceType::Gpu, 0.5}});
  add("cpu-serial", {{DeviceType::Cpu, 0.5}});
  add("io", {{DeviceType::Cpu, 0.3}});
  add("compute", {{DeviceType::Cpu, 0.55},
                  {DeviceType::Gpu, 0.8},
                  {DeviceType::Fpga, 0.5}});
  add("reduce", {{DeviceType::Cpu, 0.5}, {DeviceType::Gpu, 0.6}});
  add("fft", {{DeviceType::Cpu, 0.35},
              {DeviceType::Gpu, 0.6},
              {DeviceType::Fpga, 0.75},
              {DeviceType::Dsp, 0.8}});
  add("stencil", {{DeviceType::Cpu, 0.5},
                  {DeviceType::Gpu, 0.8},
                  {DeviceType::Fpga, 0.55}});
  add("filter", {{DeviceType::Cpu, 0.45},
                 {DeviceType::Gpu, 0.65},
                 {DeviceType::Dsp, 0.7}});

  // Tiled dense linear algebra.
  add("potrf", {{DeviceType::Cpu, 0.55}, {DeviceType::Gpu, 0.55}});
  add("trsm", {{DeviceType::Cpu, 0.6}, {DeviceType::Gpu, 0.8}});
  add("syrk", {{DeviceType::Cpu, 0.6}, {DeviceType::Gpu, 0.85}});
  add("gemm", {{DeviceType::Cpu, 0.6}, {DeviceType::Gpu, 0.9}});
  add("getrf", {{DeviceType::Cpu, 0.55}, {DeviceType::Gpu, 0.55}});

  // Montage (astronomy mosaic) stages.
  add("mProjectPP", {{DeviceType::Cpu, 0.5}, {DeviceType::Gpu, 0.7}});
  add("mDiffFit", {{DeviceType::Cpu, 0.5}, {DeviceType::Gpu, 0.6}});
  add("mConcatFit", {{DeviceType::Cpu, 0.5}});
  add("mBgModel", {{DeviceType::Cpu, 0.5}});
  add("mBackground", {{DeviceType::Cpu, 0.5}, {DeviceType::Gpu, 0.7}});
  add("mImgtbl", {{DeviceType::Cpu, 0.4}});
  add("mAdd", {{DeviceType::Cpu, 0.5}, {DeviceType::Gpu, 0.6}});
  add("mShrink", {{DeviceType::Cpu, 0.5}, {DeviceType::Gpu, 0.6}});
  add("mJPEG", {{DeviceType::Cpu, 0.5}});

  // Epigenomics (genome methylation pipeline) stages.
  add("fastqSplit", {{DeviceType::Cpu, 0.4}});
  add("filterContams", {{DeviceType::Cpu, 0.5}});
  add("sol2sanger", {{DeviceType::Cpu, 0.45}});
  add("fastq2bfq", {{DeviceType::Cpu, 0.45}});
  add("map", {{DeviceType::Cpu, 0.5}, {DeviceType::Gpu, 0.6}});
  add("mapMerge", {{DeviceType::Cpu, 0.5}});
  add("maqIndex", {{DeviceType::Cpu, 0.5}});
  add("pileup", {{DeviceType::Cpu, 0.5}});

  // CyberShake (seismic hazard) stages.
  add("ExtractSGT", {{DeviceType::Cpu, 0.45}});
  add("SeismogramSynthesis",
      {{DeviceType::Cpu, 0.5}, {DeviceType::Gpu, 0.7}});
  add("ZipSeis", {{DeviceType::Cpu, 0.4}});
  add("PeakValCalcOkaya", {{DeviceType::Cpu, 0.5}, {DeviceType::Gpu, 0.6}});
  add("ZipPSA", {{DeviceType::Cpu, 0.4}});

  // LIGO inspiral (gravitational-wave search) stages.
  add("TmpltBank", {{DeviceType::Cpu, 0.5}, {DeviceType::Gpu, 0.7}});
  add("Inspiral", {{DeviceType::Cpu, 0.5},
                   {DeviceType::Gpu, 0.75},
                   {DeviceType::Fpga, 0.6}});
  add("Thinca", {{DeviceType::Cpu, 0.5}});
  add("TrigBank", {{DeviceType::Cpu, 0.45}});
  add("Sire", {{DeviceType::Cpu, 0.45}});

  return lib;
}

void CodeletLibrary::register_codelet(const std::string& kind,
                                      core::CodeletPtr codelet) {
  HETFLOW_REQUIRE_MSG(codelet != nullptr, "null codelet");
  codelets_[kind] = std::move(codelet);
}

core::CodeletPtr CodeletLibrary::get(const std::string& kind) const {
  const auto it = codelets_.find(kind);
  if (it == codelets_.end()) {
    throw InvalidArgument("no codelet registered for kind '" + kind + "'");
  }
  return it->second;
}

core::CodeletPtr CodeletLibrary::get_or_generic(const std::string& kind) const {
  const auto it = codelets_.find(kind);
  if (it != codelets_.end()) {
    return it->second;
  }
  return get("generic");
}

}  // namespace hetflow::workflow
