// Abstract scientific workflow: tasks exchanging files (Pegasus/DAX-like
// model). A Workflow is platform-independent; submit_workflow() lowers it
// onto a Runtime by registering each file as a data handle and each task
// as a codelet instance reading its inputs and writing its outputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "util/graph.hpp"
#include "workflow/codelets.hpp"

namespace hetflow::workflow {

struct WorkflowFile {
  std::string name;
  std::uint64_t bytes = 0;
};

struct WorkflowTask {
  std::string name;
  std::string kind;     ///< codelet key in the CodeletLibrary
  double flops = 0.0;
  std::vector<std::size_t> inputs;   ///< file indices read
  std::vector<std::size_t> outputs;  ///< file indices written (1 producer/file)
};

class Workflow {
 public:
  explicit Workflow(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  std::size_t add_file(std::string name, std::uint64_t bytes);
  std::size_t add_task(std::string name, std::string kind, double flops,
                       std::vector<std::size_t> inputs,
                       std::vector<std::size_t> outputs);

  const std::vector<WorkflowFile>& files() const noexcept { return files_; }
  const std::vector<WorkflowTask>& tasks() const noexcept { return tasks_; }
  std::size_t file_count() const noexcept { return files_.size(); }
  std::size_t task_count() const noexcept { return tasks_.size(); }

  double total_flops() const noexcept;
  std::uint64_t total_bytes() const noexcept;

  /// Producer task index of a file, or npos when it is a workflow input.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t producer_of(std::size_t file) const;

  /// Task-level dependency graph (producer -> consumer).
  util::Digraph task_graph() const;

  /// Checks structural invariants: file/task indices in range, at most
  /// one producer per file, acyclic task graph. Throws InvalidArgument.
  void validate() const;

  /// Number of levels of the task graph (1 for a flat bag of tasks).
  std::size_t depth() const;
  /// Maximum number of tasks on one level.
  std::size_t max_width() const;

  /// One-line shape summary ("montage: 143 tasks, 127 files, depth 7").
  std::string describe() const;

 private:
  std::string name_;
  std::vector<WorkflowFile> files_;
  std::vector<WorkflowTask> tasks_;
};

/// Lowers `workflow` onto `runtime`: registers every file (home node
/// `home`) and submits every task via the codelet library. Returns the
/// runtime TaskId of each workflow task, index-aligned with
/// workflow.tasks().
std::vector<core::TaskId> submit_workflow(core::Runtime& runtime,
                                          const Workflow& workflow,
                                          const CodeletLibrary& library,
                                          hw::MemoryNodeId home = 0);

/// Convenience: build a runtime over `platform` with scheduler `name`,
/// run `workflow` to completion, and return the stats. Used everywhere in
/// benches.
core::RunStats run_workflow(const hw::Platform& platform,
                            const std::string& scheduler_name,
                            const Workflow& workflow,
                            const CodeletLibrary& library,
                            const core::RuntimeOptions& options = {});

}  // namespace hetflow::workflow
