#include "workflow/generators.hpp"

#include <algorithm>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace hetflow::workflow {

namespace {

constexpr std::uint64_t kMB = 1024ull * 1024ull;

std::uint64_t scaled(double scale, double bytes) {
  return static_cast<std::uint64_t>(scale * bytes);
}

}  // namespace

Workflow make_montage(std::size_t tiles, double scale) {
  HETFLOW_REQUIRE_MSG(tiles >= 2, "montage needs at least 2 tiles");
  Workflow w(util::format("montage-%zu", tiles));

  std::vector<std::size_t> raw(tiles), projected(tiles);
  for (std::size_t i = 0; i < tiles; ++i) {
    raw[i] = w.add_file(util::format("raw_%zu.fits", i),
                        scaled(scale, 4.0 * kMB));
    projected[i] = w.add_file(util::format("proj_%zu.fits", i),
                              scaled(scale, 4.2 * kMB));
    w.add_task(util::format("mProjectPP_%zu", i), "mProjectPP",
               scale * 2.0e9, {raw[i]}, {projected[i]});
  }

  // Difference/fit over overlapping tile pairs: ring neighbours plus a
  // second-neighbour diagonal, matching Montage's overlap density.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i + 1 < tiles; ++i) {
    pairs.push_back({i, i + 1});
  }
  for (std::size_t i = 0; i + 2 < tiles; ++i) {
    pairs.push_back({i, i + 2});
  }
  std::vector<std::size_t> fits;
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const std::size_t fit = w.add_file(util::format("fit_%zu.tbl", p),
                                       scaled(scale, 0.05 * kMB));
    fits.push_back(fit);
    w.add_task(util::format("mDiffFit_%zu", p), "mDiffFit", scale * 8.0e8,
               {projected[pairs[p].first], projected[pairs[p].second]},
               {fit});
  }

  const std::size_t concat = w.add_file("fits.tbl", scaled(scale, 0.2 * kMB));
  w.add_task("mConcatFit", "mConcatFit",
             scale * (5.0e8 + 1.0e7 * static_cast<double>(pairs.size())),
             fits, {concat});

  const std::size_t corrections =
      w.add_file("corrections.tbl", scaled(scale, 0.1 * kMB));
  w.add_task("mBgModel", "mBgModel",
             scale * (1.0e9 + 5.0e7 * static_cast<double>(tiles)), {concat},
             {corrections});

  std::vector<std::size_t> corrected(tiles);
  for (std::size_t i = 0; i < tiles; ++i) {
    corrected[i] = w.add_file(util::format("corr_%zu.fits", i),
                              scaled(scale, 4.2 * kMB));
    w.add_task(util::format("mBackground_%zu", i), "mBackground",
               scale * 8.0e8, {projected[i], corrections}, {corrected[i]});
  }

  const std::size_t table = w.add_file("images.tbl", scaled(scale, 0.1 * kMB));
  w.add_task("mImgtbl", "mImgtbl",
             scale * (2.0e8 + 1.0e7 * static_cast<double>(tiles)), corrected,
             {table});

  std::vector<std::size_t> add_inputs = corrected;
  add_inputs.push_back(table);
  const std::size_t mosaic =
      w.add_file("mosaic.fits", scaled(scale, 3.0 * kMB * static_cast<double>(tiles)));
  w.add_task("mAdd", "mAdd",
             scale * (1.0e9 + 2.0e8 * static_cast<double>(tiles)), add_inputs,
             {mosaic});

  const std::size_t shrunk =
      w.add_file("mosaic_small.fits", scaled(scale, 8.0 * kMB));
  w.add_task("mShrink", "mShrink", scale * 8.0e8, {mosaic}, {shrunk});
  const std::size_t jpeg = w.add_file("mosaic.jpg", scaled(scale, 2.0 * kMB));
  w.add_task("mJPEG", "mJPEG", scale * 5.0e8, {shrunk}, {jpeg});
  return w;
}

Workflow make_epigenomics(std::size_t lanes, std::size_t splits,
                          double scale) {
  HETFLOW_REQUIRE_MSG(lanes >= 1 && splits >= 1,
                      "epigenomics needs lanes >= 1 and splits >= 1");
  Workflow w(util::format("epigenomics-%zux%zu", lanes, splits));
  std::vector<std::size_t> lane_merges;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const std::size_t fastq = w.add_file(
        util::format("lane%zu.fastq", lane), scaled(scale, 16.0 * kMB));
    std::vector<std::size_t> chunks(splits);
    for (std::size_t c = 0; c < splits; ++c) {
      chunks[c] = w.add_file(util::format("l%zu_chunk%zu.fastq", lane, c),
                             scaled(scale, 16.0 * kMB / static_cast<double>(splits)));
    }
    w.add_task(util::format("fastqSplit_%zu", lane), "fastqSplit",
               scale * 4.0e8, {fastq}, chunks);
    std::vector<std::size_t> mapped(splits);
    for (std::size_t c = 0; c < splits; ++c) {
      const auto tag = util::format("l%zu_c%zu", lane, c);
      const std::size_t filtered = w.add_file("filt_" + tag,
                                              scaled(scale, 12.0 * kMB / static_cast<double>(splits)));
      w.add_task("filterContams_" + tag, "filterContams", scale * 4.0e8,
                 {chunks[c]}, {filtered});
      const std::size_t sanger = w.add_file("sanger_" + tag,
                                            scaled(scale, 12.0 * kMB / static_cast<double>(splits)));
      w.add_task("sol2sanger_" + tag, "sol2sanger", scale * 3.0e8,
                 {filtered}, {sanger});
      const std::size_t bfq = w.add_file("bfq_" + tag,
                                         scaled(scale, 8.0 * kMB / static_cast<double>(splits)));
      w.add_task("fastq2bfq_" + tag, "fastq2bfq", scale * 3.0e8, {sanger},
                 {bfq});
      mapped[c] = w.add_file("map_" + tag,
                             scaled(scale, 10.0 * kMB / static_cast<double>(splits)));
      w.add_task("map_" + tag, "map", scale * 6.0e9, {bfq}, {mapped[c]});
    }
    const std::size_t merged = w.add_file(
        util::format("lane%zu.map", lane), scaled(scale, 10.0 * kMB));
    w.add_task(util::format("mapMerge_%zu", lane), "mapMerge", scale * 1.0e9,
               mapped, {merged});
    lane_merges.push_back(merged);
  }
  const std::size_t global = w.add_file("all.map", scaled(scale, 10.0 * kMB *
                                                          static_cast<double>(lanes)));
  w.add_task("mapMergeGlobal", "mapMerge", scale * 2.0e9, lane_merges,
             {global});
  const std::size_t index = w.add_file("all.bfa", scaled(scale, 6.0 * kMB));
  w.add_task("maqIndex", "maqIndex", scale * 1.5e9, {global}, {index});
  const std::size_t pile = w.add_file("pileup.txt", scaled(scale, 4.0 * kMB));
  w.add_task("pileup", "pileup", scale * 2.0e9, {index}, {pile});
  return w;
}

Workflow make_cybershake(std::size_t sites, std::size_t variations,
                         double scale) {
  HETFLOW_REQUIRE_MSG(sites >= 1 && variations >= 1,
                      "cybershake needs sites >= 1 and variations >= 1");
  Workflow w(util::format("cybershake-%zux%zu", sites, variations));
  for (std::size_t s = 0; s < sites; ++s) {
    const std::size_t sgt_x = w.add_file(util::format("sgt%zu_x", s),
                                         scaled(scale, 40.0 * kMB));
    const std::size_t sgt_y = w.add_file(util::format("sgt%zu_y", s),
                                         scaled(scale, 40.0 * kMB));
    const std::size_t ext_x = w.add_file(util::format("ext%zu_x", s),
                                         scaled(scale, 10.0 * kMB));
    const std::size_t ext_y = w.add_file(util::format("ext%zu_y", s),
                                         scaled(scale, 10.0 * kMB));
    w.add_task(util::format("ExtractSGT_x_%zu", s), "ExtractSGT",
               scale * 1.5e9, {sgt_x}, {ext_x});
    w.add_task(util::format("ExtractSGT_y_%zu", s), "ExtractSGT",
               scale * 1.5e9, {sgt_y}, {ext_y});
    std::vector<std::size_t> seis(variations), peaks(variations);
    for (std::size_t v = 0; v < variations; ++v) {
      const auto tag = util::format("s%zu_v%zu", s, v);
      seis[v] = w.add_file("seis_" + tag, scaled(scale, 0.3 * kMB));
      w.add_task("SeismogramSynthesis_" + tag, "SeismogramSynthesis",
                 scale * 3.0e9, {ext_x, ext_y}, {seis[v]});
      peaks[v] = w.add_file("peak_" + tag, scaled(scale, 0.05 * kMB));
      w.add_task("PeakValCalcOkaya_" + tag, "PeakValCalcOkaya",
                 scale * 4.0e8, {seis[v]}, {peaks[v]});
    }
    const std::size_t zipseis = w.add_file(util::format("seis%zu.zip", s),
                                           scaled(scale, 0.3 * kMB *
                                                  static_cast<double>(variations)));
    w.add_task(util::format("ZipSeis_%zu", s), "ZipSeis",
               scale * (2.0e8 + 2.0e7 * static_cast<double>(variations)),
               seis, {zipseis});
    const std::size_t zippsa = w.add_file(util::format("psa%zu.zip", s),
                                          scaled(scale, 0.1 * kMB *
                                                 static_cast<double>(variations)));
    w.add_task(util::format("ZipPSA_%zu", s), "ZipPSA",
               scale * (2.0e8 + 1.0e7 * static_cast<double>(variations)),
               peaks, {zippsa});
  }
  return w;
}

Workflow make_ligo(std::size_t templates, std::size_t group, double scale) {
  HETFLOW_REQUIRE_MSG(templates >= 1 && group >= 1,
                      "ligo needs templates >= 1 and group >= 1");
  Workflow w(util::format("ligo-%zu", templates));
  std::vector<std::size_t> inspiral_out(templates);
  for (std::size_t t = 0; t < templates; ++t) {
    const std::size_t frame = w.add_file(util::format("frame_%zu.gwf", t),
                                         scaled(scale, 6.0 * kMB));
    const std::size_t bank = w.add_file(util::format("bank_%zu.xml", t),
                                        scaled(scale, 0.5 * kMB));
    w.add_task(util::format("TmpltBank_%zu", t), "TmpltBank", scale * 1.5e9,
               {frame}, {bank});
    inspiral_out[t] = w.add_file(util::format("insp_%zu.xml", t),
                                 scaled(scale, 0.8 * kMB));
    w.add_task(util::format("Inspiral_%zu", t), "Inspiral", scale * 8.0e9,
               {frame, bank}, {inspiral_out[t]});
  }
  // Coincidence analysis in groups, then a second matched-filter pass.
  std::vector<std::size_t> sire_inputs;
  for (std::size_t g = 0; g * group < templates; ++g) {
    const std::size_t lo = g * group;
    const std::size_t hi = std::min(lo + group, templates);
    std::vector<std::size_t> members(inspiral_out.begin() +
                                         static_cast<std::ptrdiff_t>(lo),
                                     inspiral_out.begin() +
                                         static_cast<std::ptrdiff_t>(hi));
    const std::size_t thinca = w.add_file(util::format("thinca_%zu.xml", g),
                                          scaled(scale, 0.4 * kMB));
    w.add_task(util::format("Thinca_%zu", g), "Thinca",
               scale * (6.0e8 + 1.0e8 * static_cast<double>(members.size())),
               members, {thinca});
    const std::size_t trig = w.add_file(util::format("trig_%zu.xml", g),
                                        scaled(scale, 0.3 * kMB));
    w.add_task(util::format("TrigBank_%zu", g), "TrigBank", scale * 4.0e8,
               {thinca}, {trig});
    sire_inputs.push_back(trig);
  }
  const std::size_t summary = w.add_file("events.xml",
                                         scaled(scale, 0.2 * kMB));
  w.add_task("Sire", "Sire",
             scale * (4.0e8 + 5.0e7 * static_cast<double>(sire_inputs.size())),
             sire_inputs, {summary});
  return w;
}

Workflow make_sipht(std::size_t regions, std::size_t patsers, double scale) {
  HETFLOW_REQUIRE_MSG(regions >= 1 && patsers >= 1,
                      "sipht needs regions >= 1 and patsers >= 1");
  Workflow w(util::format("sipht-%zu", regions));
  std::vector<std::size_t> region_outputs;
  for (std::size_t r = 0; r < regions; ++r) {
    const std::size_t genome = w.add_file(
        util::format("region%zu.fasta", r), scaled(scale, 2.0 * kMB));
    // Patser fan: independent motif scans over the same region.
    std::vector<std::size_t> patser_outs(patsers);
    for (std::size_t p = 0; p < patsers; ++p) {
      patser_outs[p] = w.add_file(util::format("patser_%zu_%zu", r, p),
                                  scaled(scale, 0.05 * kMB));
      w.add_task(util::format("Patser_%zu_%zu", r, p), "filter",
                 scale * 5.0e8, {genome}, {patser_outs[p]});
    }
    const std::size_t patser_concat = w.add_file(
        util::format("patser_concat_%zu", r), scaled(scale, 0.3 * kMB));
    w.add_task(util::format("PatserConcat_%zu", r), "cpu-serial",
               scale * (1.0e8 + 2.0e7 * static_cast<double>(patsers)),
               patser_outs, {patser_concat});
    // BLAST family + folding, all reading the region.
    std::vector<std::size_t> analyses;
    for (const char* stage :
         {"Blast", "BlastSynteny", "BlastParalogues", "TransTerm",
          "FindTerm", "RNAMotif"}) {
      const std::size_t out = w.add_file(
          util::format("%s_%zu", stage, r), scaled(scale, 0.2 * kMB));
      // BLAST variants are heavy and accelerator-friendly; the rest are
      // CPU glue.
      const bool heavy = util::starts_with(stage, "Blast");
      w.add_task(util::format("%s_%zu", stage, r),
                 heavy ? "compute" : "cpu-serial",
                 scale * (heavy ? 4.0e9 : 6.0e8), {genome}, {out});
      analyses.push_back(out);
    }
    analyses.push_back(patser_concat);
    const std::size_t srna = w.add_file(util::format("srna_%zu", r),
                                        scaled(scale, 0.1 * kMB));
    w.add_task(util::format("SRNA_%zu", r), "cpu-serial", scale * 8.0e8,
               analyses, {srna});
    region_outputs.push_back(srna);
  }
  const std::size_t annotation =
      w.add_file("srna_annotation", scaled(scale, 0.2 * kMB));
  w.add_task("SRNAAnnotate", "cpu-serial",
             scale * (5.0e8 + 1.0e8 * static_cast<double>(regions)),
             region_outputs, {annotation});
  return w;
}

Workflow make_random_layered(std::size_t layers, std::size_t width,
                             double ccr, std::uint64_t seed,
                             double mean_flops) {
  HETFLOW_REQUIRE_MSG(layers >= 1 && width >= 1,
                      "layered DAG needs layers >= 1 and width >= 1");
  HETFLOW_REQUIRE_MSG(ccr >= 0.0, "ccr cannot be negative");
  util::Rng rng(seed);
  Workflow w(util::format("layered-%zux%zu-ccr%.2g", layers, width, ccr));
  // Reference machine for the CCR calibration: 50 GFLOP/s compute,
  // 16 GB/s interconnect.
  constexpr double kRefFlops = 50e9;
  constexpr double kRefBandwidth = 16e9;

  std::vector<std::vector<std::size_t>> out_files(layers);
  std::vector<std::vector<std::size_t>> task_of(layers);
  for (std::size_t layer = 0; layer < layers; ++layer) {
    for (std::size_t i = 0; i < width; ++i) {
      const double flops = mean_flops * rng.lognormal(-0.125, 0.5);
      const double exec_ref = flops / kRefFlops;
      const auto bytes = static_cast<std::uint64_t>(
          std::max(1.0, ccr * exec_ref * kRefBandwidth));
      const std::size_t out = w.add_file(
          util::format("d_%zu_%zu", layer, i), bytes);
      std::vector<std::size_t> inputs;
      if (layer > 0) {
        const std::size_t fan =
            1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
        for (std::size_t f = 0; f < fan; ++f) {
          inputs.push_back(
              out_files[layer - 1][rng.index(out_files[layer - 1].size())]);
        }
        std::sort(inputs.begin(), inputs.end());
        inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
      }
      w.add_task(util::format("t_%zu_%zu", layer, i), "compute", flops,
                 inputs, {out});
      out_files[layer].push_back(out);
    }
  }
  return w;
}

Workflow make_fork_join(std::size_t width, std::size_t stages,
                        double cost_sigma, std::uint64_t seed,
                        double mean_flops) {
  HETFLOW_REQUIRE_MSG(width >= 1 && stages >= 1,
                      "fork-join needs width >= 1 and stages >= 1");
  util::Rng rng(seed);
  Workflow w(util::format("forkjoin-%zux%zu", width, stages));
  std::size_t carry = w.add_file("input", 2 * kMB);
  for (std::size_t stage = 0; stage < stages; ++stage) {
    std::vector<std::size_t> branch_files(width);
    for (std::size_t b = 0; b < width; ++b) {
      // Unit-mean lognormal skew: mu = -sigma^2 / 2.
      const double skew =
          cost_sigma > 0.0
              ? rng.lognormal(-cost_sigma * cost_sigma / 2.0, cost_sigma)
              : 1.0;
      branch_files[b] =
          w.add_file(util::format("s%zu_b%zu", stage, b), 1 * kMB);
      w.add_task(util::format("work_%zu_%zu", stage, b), "compute",
                 mean_flops * skew, {carry}, {branch_files[b]});
    }
    carry = w.add_file(util::format("join_%zu", stage), 2 * kMB);
    w.add_task(util::format("join_%zu", stage), "reduce",
               mean_flops / 4.0 +
                   1e7 * static_cast<double>(width),
               branch_files, {carry});
  }
  return w;
}

Workflow make_wavefront(std::size_t n, double flops_per_task,
                        std::uint64_t bytes) {
  HETFLOW_REQUIRE_MSG(n >= 1, "wavefront needs n >= 1");
  Workflow w(util::format("wavefront-%zu", n));
  std::vector<std::vector<std::size_t>> cell(n, std::vector<std::size_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      cell[i][j] = w.add_file(util::format("c_%zu_%zu", i, j), bytes);
      std::vector<std::size_t> inputs;
      if (i > 0) {
        inputs.push_back(cell[i - 1][j]);
      }
      if (j > 0) {
        inputs.push_back(cell[i][j - 1]);
      }
      w.add_task(util::format("w_%zu_%zu", i, j), "stencil", flops_per_task,
                 inputs, {cell[i][j]});
    }
  }
  return w;
}

Workflow make_chain(std::size_t n, double flops, std::uint64_t bytes) {
  HETFLOW_REQUIRE_MSG(n >= 1, "chain needs n >= 1");
  Workflow w(util::format("chain-%zu", n));
  std::size_t prev = w.add_file("input", bytes);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t next = w.add_file(util::format("d_%zu", i), bytes);
    w.add_task(util::format("t_%zu", i), "compute", flops, {prev}, {next});
    prev = next;
  }
  return w;
}

Workflow make_bag(std::size_t n, double flops, std::uint64_t bytes) {
  HETFLOW_REQUIRE_MSG(n >= 1, "bag needs n >= 1");
  Workflow w(util::format("bag-%zu", n));
  const std::size_t input = w.add_file("input", bytes);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t out = w.add_file(util::format("d_%zu", i), bytes);
    w.add_task(util::format("t_%zu", i), "compute", flops, {input}, {out});
  }
  return w;
}

}  // namespace hetflow::workflow
