// Text specs for workflows and platforms, used by the CLI tools:
//
//   workflow: "montage:64", "epigenomics:4,8", "cybershake:4,20",
//             "ligo:50,8", "cholesky:12,2048", "lu:8,1024",
//             "layered:8,6,1.0[,seed]", "forkjoin:16,4,1.0[,seed]",
//             "wavefront:8", "chain:100", "bag:100", or a path to a
//             .dag file.
//   platform: "workstation", "edge", "cpu:8", "hpc:8,2,1",
//             "cluster:2,8,2", or a path to a .json platform file.
#pragma once

#include <string>

#include "hw/platform.hpp"
#include "workflow/workflow.hpp"

namespace hetflow::workflow {

/// Builds a workflow from a generator spec or loads a .dag file. `scale`
/// multiplies generator task sizes (ignored for .dag files). Throws
/// ParseError for malformed specs.
Workflow make_workflow_from_spec(const std::string& spec, double scale = 1.0);

/// Builds a platform from a preset spec or loads a .json platform file.
hw::Platform make_platform_from_spec(const std::string& spec);

}  // namespace hetflow::workflow
