#include "workflow/streaming.hpp"

#include <algorithm>

#include "sched/registry.hpp"
#include "util/strings.hpp"

namespace hetflow::workflow {

std::size_t StreamingResult::total_instances() const noexcept {
  std::size_t total = 0;
  for (const PipelineStats& p : pipelines) {
    total += p.instances;
  }
  return total;
}

std::size_t StreamingResult::total_misses() const noexcept {
  std::size_t total = 0;
  for (const PipelineStats& p : pipelines) {
    total += p.deadline_misses;
  }
  return total;
}

double StreamingResult::overall_miss_rate() const noexcept {
  const std::size_t instances = total_instances();
  return instances == 0 ? 0.0
                        : static_cast<double>(total_misses()) /
                              static_cast<double>(instances);
}

StreamingResult run_streaming(const hw::Platform& platform,
                              const std::string& scheduler_name,
                              const std::vector<PeriodicPipeline>& pipelines,
                              double horizon_s,
                              const CodeletLibrary& library,
                              const core::RuntimeOptions& options) {
  HETFLOW_REQUIRE_MSG(horizon_s > 0.0, "streaming horizon must be positive");
  for (const PeriodicPipeline& pipeline : pipelines) {
    HETFLOW_REQUIRE_MSG(pipeline.period_s > 0.0,
                        "pipeline period must be positive");
    HETFLOW_REQUIRE_MSG(!pipeline.stages.empty(),
                        "pipeline needs at least one stage");
  }

  core::Runtime runtime(platform, sched::make_scheduler(scheduler_name),
                        options);

  struct InstanceRecord {
    std::size_t pipeline;
    double release;
    core::TaskId final_task;
  };
  std::vector<InstanceRecord> instances;

  for (std::size_t p = 0; p < pipelines.size(); ++p) {
    const PeriodicPipeline& pipeline = pipelines[p];
    for (std::size_t k = 0;; ++k) {
      const double release = static_cast<double>(k) * pipeline.period_s;
      if (release >= horizon_s) {
        break;
      }
      // Fresh handles per instance: a streaming window, not shared state.
      data::DataId carry = runtime.register_data(
          util::format("%s_i%zu_in", pipeline.name.c_str(), k),
          pipeline.stages.front().out_bytes);
      core::TaskId last = 0;
      for (std::size_t s = 0; s < pipeline.stages.size(); ++s) {
        const StageSpec& stage = pipeline.stages[s];
        const data::DataId out = runtime.register_data(
            util::format("%s_i%zu_s%zu", pipeline.name.c_str(), k, s),
            stage.out_bytes);
        std::vector<data::Access> accesses;
        if (s == 0) {
          accesses = {{carry, data::AccessMode::Write},
                      {out, data::AccessMode::Write}};
        } else {
          accesses = {{carry, data::AccessMode::Read},
                      {out, data::AccessMode::Write}};
        }
        last = runtime.submit(
            util::format("%s_i%zu_%s", pipeline.name.c_str(), k,
                         stage.kind.c_str()),
            library.get(stage.kind), stage.flops, std::move(accesses),
            /*priority=*/-release);  // earlier instances more urgent
        if (s == 0) {
          runtime.task(last).set_release_time(release);
        }
        carry = out;
      }
      instances.push_back(InstanceRecord{p, release, last});
    }
  }

  runtime.wait_all();

  StreamingResult result;
  result.horizon_s = horizon_s;
  result.makespan_s = runtime.now();
  result.pipelines.resize(pipelines.size());
  for (std::size_t p = 0; p < pipelines.size(); ++p) {
    result.pipelines[p].name = pipelines[p].name;
  }
  for (const InstanceRecord& instance : instances) {
    PipelineStats& stats = result.pipelines[instance.pipeline];
    const double latency =
        runtime.task(instance.final_task).times().completed -
        instance.release;
    ++stats.instances;
    stats.mean_latency_s += latency;
    stats.max_latency_s = std::max(stats.max_latency_s, latency);
    if (latency > pipelines[instance.pipeline].deadline() + 1e-12) {
      ++stats.deadline_misses;
    }
  }
  for (PipelineStats& stats : result.pipelines) {
    if (stats.instances > 0) {
      stats.mean_latency_s /= static_cast<double>(stats.instances);
    }
  }
  return result;
}

}  // namespace hetflow::workflow
