// Standard codelet library for scientific workflow task kinds.
//
// Every generator emits tasks with a string `kind`; the library maps the
// kind to a Codelet declaring which device types implement it and at what
// efficiency. Efficiencies encode the usual folklore: dense linear
// algebra and signal processing map well onto GPUs, FFT-like kernels are
// FPGA-friendly, glue/IO stages are CPU-only.
#pragma once

#include <map>
#include <string>

#include "core/codelet.hpp"

namespace hetflow::workflow {

class CodeletLibrary {
 public:
  /// Empty library; register kinds manually.
  CodeletLibrary() = default;

  /// Library pre-populated with every kind the built-in generators emit
  /// (montage/epigenomics/cybershake/ligo stages, linalg tiles, generic
  /// compute/io/...).
  static CodeletLibrary standard();

  /// Registers (or replaces) the codelet for `kind`.
  void register_codelet(const std::string& kind, core::CodeletPtr codelet);

  bool contains(const std::string& kind) const {
    return codelets_.count(kind) > 0;
  }

  /// Codelet for `kind`; throws InvalidArgument when missing.
  core::CodeletPtr get(const std::string& kind) const;

  /// Codelet for `kind`, falling back to the "generic" CPU+GPU codelet.
  core::CodeletPtr get_or_generic(const std::string& kind) const;

  std::size_t size() const noexcept { return codelets_.size(); }
  const std::map<std::string, core::CodeletPtr>& all() const noexcept {
    return codelets_;
  }

 private:
  std::map<std::string, core::CodeletPtr> codelets_;
};

}  // namespace hetflow::workflow
