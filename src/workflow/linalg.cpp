#include "workflow/linalg.hpp"

#include <unordered_map>
#include <vector>

#include "util/strings.hpp"

namespace hetflow::workflow {

namespace {

double tile_flops(const char* kind, std::size_t tile_n) {
  const double n3 = static_cast<double>(tile_n) * static_cast<double>(tile_n) *
                    static_cast<double>(tile_n);
  const std::string k(kind);
  if (k == "potrf") {
    return n3 / 3.0;
  }
  if (k == "trsm" || k == "syrk") {
    return n3;
  }
  if (k == "gemm") {
    return 2.0 * n3;
  }
  if (k == "getrf") {
    return 2.0 * n3 / 3.0;
  }
  throw InvalidArgument("unknown tile kernel kind");
}

std::uint64_t tile_bytes(std::size_t tile_n) {
  return static_cast<std::uint64_t>(tile_n) * tile_n * sizeof(double);
}

/// SSA helper: one logical tile with versioned Workflow files.
class TileSsa {
 public:
  TileSsa(Workflow& w, std::size_t nt, std::size_t tile_n)
      : w_(&w), nt_(nt), bytes_(tile_bytes(tile_n)) {}

  /// Current version of tile (i, j), creating the initial input file on
  /// first use.
  std::size_t read(std::size_t i, std::size_t j) {
    const auto it = current_.find(key(i, j));
    if (it != current_.end()) {
      return it->second;
    }
    const std::size_t file =
        w_->add_file(util::format("A_%zu_%zu_v0", i, j), bytes_);
    current_[key(i, j)] = file;
    version_[key(i, j)] = 0;
    return file;
  }

  /// New version of tile (i, j) to be written by the caller's task.
  std::size_t write(std::size_t i, std::size_t j) {
    read(i, j);  // ensure v0 exists so versions stay dense
    const std::size_t v = ++version_[key(i, j)];
    const std::size_t file =
        w_->add_file(util::format("A_%zu_%zu_v%zu", i, j, v), bytes_);
    current_[key(i, j)] = file;
    return file;
  }

 private:
  std::size_t key(std::size_t i, std::size_t j) const { return i * nt_ + j; }
  Workflow* w_;
  std::size_t nt_;
  std::uint64_t bytes_;
  std::unordered_map<std::size_t, std::size_t> current_;
  std::unordered_map<std::size_t, std::size_t> version_;
};

}  // namespace

std::size_t cholesky_task_count(std::size_t nt) noexcept {
  return nt + nt * (nt - 1) / 2 + nt * (nt - 1) / 2 +
         nt * (nt - 1) * (nt - 2) / 6;
}

Workflow make_cholesky(std::size_t nt, std::size_t tile_n) {
  HETFLOW_REQUIRE_MSG(nt >= 1, "cholesky needs nt >= 1");
  Workflow w(util::format("cholesky-%zux%zu", nt, nt));
  TileSsa tiles(w, nt, tile_n);
  for (std::size_t k = 0; k < nt; ++k) {
    {
      const std::size_t in = tiles.read(k, k);
      const std::size_t out = tiles.write(k, k);
      w.add_task(util::format("potrf_%zu", k), "potrf",
                 tile_flops("potrf", tile_n), {in}, {out});
    }
    for (std::size_t i = k + 1; i < nt; ++i) {
      const std::size_t akk = tiles.read(k, k);
      const std::size_t in = tiles.read(i, k);
      const std::size_t out = tiles.write(i, k);
      w.add_task(util::format("trsm_%zu_%zu", i, k), "trsm",
                 tile_flops("trsm", tile_n), {akk, in}, {out});
    }
    for (std::size_t i = k + 1; i < nt; ++i) {
      {
        const std::size_t aik = tiles.read(i, k);
        const std::size_t in = tiles.read(i, i);
        const std::size_t out = tiles.write(i, i);
        w.add_task(util::format("syrk_%zu_%zu", i, k), "syrk",
                   tile_flops("syrk", tile_n), {aik, in}, {out});
      }
      for (std::size_t j = k + 1; j < i; ++j) {
        const std::size_t aik = tiles.read(i, k);
        const std::size_t ajk = tiles.read(j, k);
        const std::size_t in = tiles.read(i, j);
        const std::size_t out = tiles.write(i, j);
        w.add_task(util::format("gemm_%zu_%zu_%zu", i, j, k), "gemm",
                   tile_flops("gemm", tile_n), {aik, ajk, in}, {out});
      }
    }
  }
  return w;
}

Workflow make_lu(std::size_t nt, std::size_t tile_n) {
  HETFLOW_REQUIRE_MSG(nt >= 1, "lu needs nt >= 1");
  Workflow w(util::format("lu-%zux%zu", nt, nt));
  TileSsa tiles(w, nt, tile_n);
  for (std::size_t k = 0; k < nt; ++k) {
    {
      const std::size_t in = tiles.read(k, k);
      const std::size_t out = tiles.write(k, k);
      w.add_task(util::format("getrf_%zu", k), "getrf",
                 tile_flops("getrf", tile_n), {in}, {out});
    }
    for (std::size_t j = k + 1; j < nt; ++j) {
      const std::size_t akk = tiles.read(k, k);
      const std::size_t in = tiles.read(k, j);
      const std::size_t out = tiles.write(k, j);
      w.add_task(util::format("trsm_r_%zu_%zu", k, j), "trsm",
                 tile_flops("trsm", tile_n), {akk, in}, {out});
    }
    for (std::size_t i = k + 1; i < nt; ++i) {
      const std::size_t akk = tiles.read(k, k);
      const std::size_t in = tiles.read(i, k);
      const std::size_t out = tiles.write(i, k);
      w.add_task(util::format("trsm_c_%zu_%zu", i, k), "trsm",
                 tile_flops("trsm", tile_n), {akk, in}, {out});
    }
    for (std::size_t i = k + 1; i < nt; ++i) {
      for (std::size_t j = k + 1; j < nt; ++j) {
        const std::size_t aik = tiles.read(i, k);
        const std::size_t akj = tiles.read(k, j);
        const std::size_t in = tiles.read(i, j);
        const std::size_t out = tiles.write(i, j);
        w.add_task(util::format("gemm_%zu_%zu_%zu", i, j, k), "gemm",
                   tile_flops("gemm", tile_n), {aik, akj, in}, {out});
      }
    }
  }
  return w;
}

std::size_t submit_cholesky_inplace(core::Runtime& runtime, std::size_t nt,
                                    std::size_t tile_n,
                                    const CodeletLibrary& library) {
  HETFLOW_REQUIRE_MSG(nt >= 1, "cholesky needs nt >= 1");
  using data::AccessMode;
  const std::uint64_t bytes = tile_bytes(tile_n);
  std::vector<std::vector<data::DataId>> tile(nt,
                                              std::vector<data::DataId>(nt));
  for (std::size_t i = 0; i < nt; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      tile[i][j] = runtime.register_data(util::format("A_%zu_%zu", i, j),
                                         bytes);
    }
  }
  std::size_t submitted = 0;
  const core::CodeletPtr potrf = library.get("potrf");
  const core::CodeletPtr trsm = library.get("trsm");
  const core::CodeletPtr syrk = library.get("syrk");
  const core::CodeletPtr gemm = library.get("gemm");
  for (std::size_t k = 0; k < nt; ++k) {
    runtime.submit(util::format("potrf_%zu", k), potrf,
                   tile_flops("potrf", tile_n),
                   {{tile[k][k], AccessMode::ReadWrite}});
    ++submitted;
    for (std::size_t i = k + 1; i < nt; ++i) {
      runtime.submit(util::format("trsm_%zu_%zu", i, k), trsm,
                     tile_flops("trsm", tile_n),
                     {{tile[k][k], AccessMode::Read},
                      {tile[i][k], AccessMode::ReadWrite}});
      ++submitted;
    }
    for (std::size_t i = k + 1; i < nt; ++i) {
      runtime.submit(util::format("syrk_%zu_%zu", i, k), syrk,
                     tile_flops("syrk", tile_n),
                     {{tile[i][k], AccessMode::Read},
                      {tile[i][i], AccessMode::ReadWrite}});
      ++submitted;
      for (std::size_t j = k + 1; j < i; ++j) {
        runtime.submit(util::format("gemm_%zu_%zu_%zu", i, j, k), gemm,
                       tile_flops("gemm", tile_n),
                       {{tile[i][k], AccessMode::Read},
                        {tile[j][k], AccessMode::Read},
                        {tile[i][j], AccessMode::ReadWrite}});
        ++submitted;
      }
    }
  }
  return submitted;
}

}  // namespace hetflow::workflow
