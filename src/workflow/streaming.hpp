// Periodic/streaming execution — the "always-on" side of scientific
// discovery (instrument ingest, online monitoring). A StreamingScenario
// is a set of periodic pipelines: every `period_s`, each pipeline
// releases a fresh instance (a chain of stages through new data handles)
// that should finish within its relative deadline. The runner submits
// all instances up to a horizon with timed releases (Task::release_time)
// and reports latency and deadline-miss statistics per pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "hw/platform.hpp"
#include "workflow/codelets.hpp"

namespace hetflow::workflow {

/// One stage of a periodic pipeline (stages form a chain).
struct StageSpec {
  std::string kind;           ///< codelet key in the library
  double flops = 0.0;
  std::uint64_t out_bytes = 0;  ///< size of the stage's output handle
};

struct PeriodicPipeline {
  std::string name;
  double period_s = 1.0;
  /// Relative deadline; 0 means "equal to the period" (implicit).
  double relative_deadline_s = 0.0;
  std::vector<StageSpec> stages;

  double deadline() const noexcept {
    return relative_deadline_s > 0.0 ? relative_deadline_s : period_s;
  }
};

struct PipelineStats {
  std::string name;
  std::size_t instances = 0;
  std::size_t deadline_misses = 0;
  double mean_latency_s = 0.0;
  double max_latency_s = 0.0;

  double miss_rate() const noexcept {
    return instances == 0
               ? 0.0
               : static_cast<double>(deadline_misses) /
                     static_cast<double>(instances);
  }
};

struct StreamingResult {
  std::vector<PipelineStats> pipelines;
  double horizon_s = 0.0;
  double makespan_s = 0.0;  ///< when the last instance actually finished

  std::size_t total_instances() const noexcept;
  std::size_t total_misses() const noexcept;
  double overall_miss_rate() const noexcept;
};

/// Releases every instance with arrival time k * period (k = 0, 1, ...)
/// strictly below `horizon_s`, executes to completion, and reports
/// per-pipeline latency/deadline statistics.
StreamingResult run_streaming(const hw::Platform& platform,
                              const std::string& scheduler_name,
                              const std::vector<PeriodicPipeline>& pipelines,
                              double horizon_s,
                              const CodeletLibrary& library,
                              const core::RuntimeOptions& options = {});

}  // namespace hetflow::workflow
