#include "obs/recorder.hpp"

namespace hetflow::obs {

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::Transfer:
      return "transfer";
    case EventKind::Prefetch:
      return "prefetch";
    case EventKind::Retry:
      return "retry";
    case EventKind::Timeout:
      return "timeout";
    case EventKind::Blacklist:
      return "blacklist";
    case EventKind::Probation:
      return "probation";
    case EventKind::Decision:
      return "decision";
    case EventKind::Abandon:
      return "abandon";
  }
  return "?";
}

void Recorder::record(Event event) {
  if (!enabled_) {
    return;
  }
  events_.push_back(std::move(event));
}

void Recorder::add_decision(SchedDecision decision) {
  if (!enabled_) {
    return;
  }
  Event event;
  event.kind = EventKind::Decision;
  event.time = decision.time;
  event.device = static_cast<std::int64_t>(decision.winner);
  event.task = decision.task;
  event.name = decision.task_name;
  events_.push_back(std::move(event));
  decisions_.push_back(std::move(decision));
}

}  // namespace hetflow::obs
