#include "obs/decision_log.hpp"

#include "util/json.hpp"

namespace hetflow::obs {

std::string decisions_to_jsonl(const std::vector<SchedDecision>& decisions,
                               const hw::Platform& platform) {
  std::string out;
  for (const SchedDecision& d : decisions) {
    util::Json line = util::Json::object();
    line["task"] = d.task;
    line["name"] = d.task_name;
    line["t"] = d.time;
    line["sched"] = d.scheduler;
    util::Json candidates = util::Json::array();
    for (const DecisionCandidate& c : d.candidates) {
      util::Json cand = util::Json::object();
      cand["device"] = platform.device(c.device).name();
      cand["finish_s"] = c.predicted_finish_s;
      cand["energy_j"] = c.predicted_energy_j;
      if (c.blacklisted) {
        cand["blacklisted"] = true;
      }
      candidates.push_back(std::move(cand));
    }
    line["candidates"] = std::move(candidates);
    line["winner"] = platform.device(d.winner).name();
    line["reason"] = d.reason;
    out += line.dump();
    out += '\n';
  }
  return out;
}

}  // namespace hetflow::obs
