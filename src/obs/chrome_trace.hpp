// Merged Chrome-trace-event exporter: the trace::Tracer's execution
// spans plus the Recorder's instant/flow events (transfers, prefetches,
// retries, scheduler decisions) in one document that loads in
// chrome://tracing and Perfetto.
//
// Track layout (all under pid 1):
//   tid 0..D-1              one row per device (exec/failed spans,
//                           retry/decision/blacklist instants)
//   tid 1000 + s*N + d      one row per (src, dst) memory-node pair that
//                           actually moved data ("xfer node->node")
//
// Scheduler decisions additionally emit flow arrows (ph "s"/"f", id =
// task id) from the decision instant to the start of the task's
// successful execution span, so Perfetto draws "decided here -> ran
// there" across tracks.
#pragma once

#include <string>

#include "hw/platform.hpp"
#include "obs/recorder.hpp"
#include "trace/tracer.hpp"

namespace hetflow::obs {

/// Serializes the merged trace. `recorder` may be null — the output then
/// degrades to the legacy span-only document (plus process metadata).
std::string chrome_trace_json(const trace::Tracer& tracer,
                              const hw::Platform& platform,
                              const Recorder* recorder);

}  // namespace hetflow::obs
