// Scheduler decision log: one record per placement decision, capturing
// what the policy saw (candidate devices with predicted finish/energy),
// what it chose, and why. Serialized as JSONL (one compact JSON object
// per line) so logs stream and diff cleanly.
//
// Pull-mode policies (work stealing) log a record at enqueue time and
// another when the task is actually handed to a device, so the LAST
// record for a task names the device it ran on — the invariant the
// obs property suite cross-checks against the hetflow-verify audit.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hw/platform.hpp"
#include "sim/event_queue.hpp"

namespace hetflow::obs {

struct DecisionCandidate {
  hw::DeviceId device = 0;
  /// Predicted absolute completion time (scheduler's own estimate).
  double predicted_finish_s = 0.0;
  /// Predicted Joules on this candidate.
  double predicted_energy_j = 0.0;
  /// Candidate was quarantined by the health tracker when considered.
  bool blacklisted = false;
};

struct SchedDecision {
  std::uint64_t task = 0;
  /// Borrowed view of the interned task name (stable for the runtime's
  /// lifetime — decisions are resolved lazily at serialization time).
  std::string_view task_name;
  sim::SimTime time = 0.0;
  /// Owning: Scheduler::name() returns by value, a view would dangle.
  std::string scheduler;
  std::vector<DecisionCandidate> candidates;
  hw::DeviceId winner = 0;
  std::string reason;
};

/// One compact JSON object per decision, device ids resolved to names.
std::string decisions_to_jsonl(const std::vector<SchedDecision>& decisions,
                               const hw::Platform& platform);

}  // namespace hetflow::obs
