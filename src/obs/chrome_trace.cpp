#include "obs/chrome_trace.hpp"

#include <map>
#include <unordered_map>

#include "util/json.hpp"

namespace hetflow::obs {

namespace {

constexpr std::int64_t kTransferTidBase = 1000;

const char* span_kind_name(trace::SpanKind kind) noexcept {
  switch (kind) {
    case trace::SpanKind::Exec:
      return "exec";
    case trace::SpanKind::FailedExec:
      return "failed";
    case trace::SpanKind::Overhead:
      return "overhead";
  }
  return "?";
}

util::Json thread_name_meta(std::int64_t tid, const std::string& name) {
  util::Json meta = util::Json::object();
  meta["ph"] = "M";
  meta["name"] = "thread_name";
  meta["pid"] = 1;
  meta["tid"] = tid;
  util::Json args = util::Json::object();
  args["name"] = name;
  meta["args"] = std::move(args);
  return meta;
}

}  // namespace

std::string chrome_trace_json(const trace::Tracer& tracer,
                              const hw::Platform& platform,
                              const Recorder* recorder) {
  util::Json events = util::Json::array();

  // Process + device metadata rows.
  {
    util::Json meta = util::Json::object();
    meta["ph"] = "M";
    meta["name"] = "process_name";
    meta["pid"] = 1;
    util::Json args = util::Json::object();
    args["name"] = "hetflow: " + platform.name();
    meta["args"] = std::move(args);
    events.push_back(std::move(meta));
  }
  for (const hw::Device& device : platform.devices()) {
    events.push_back(thread_name_meta(
        static_cast<std::int64_t>(device.id()), device.name()));
  }
  // Transfer-track metadata, only for node pairs that moved data, in
  // (src, dst) order regardless of event order.
  const std::int64_t nodes =
      static_cast<std::int64_t>(platform.memory_node_count());
  if (recorder != nullptr) {
    std::map<std::int64_t, std::string> transfer_tracks;
    for (const Event& event : recorder->events()) {
      if (event.kind != EventKind::Transfer &&
          event.kind != EventKind::Prefetch) {
        continue;
      }
      if (event.src < 0 || event.dst < 0) {
        continue;
      }
      const std::int64_t tid = kTransferTidBase + event.src * nodes +
                               event.dst;
      transfer_tracks.emplace(
          tid,
          "xfer " +
              platform.memory_node(static_cast<hw::MemoryNodeId>(event.src))
                  .name() +
              " -> " +
              platform.memory_node(static_cast<hw::MemoryNodeId>(event.dst))
                  .name());
    }
    for (const auto& [tid, name] : transfer_tracks) {
      events.push_back(thread_name_meta(tid, name));
    }
  }

  // Execution spans (identical shape to the legacy exporter).
  // Remember each task's first successful span for decision flows.
  std::unordered_map<std::uint64_t, const trace::Span*> first_exec;
  for (const trace::Span& span : tracer.spans()) {
    if (span.kind == trace::SpanKind::Exec &&
        first_exec.count(span.task_id) == 0) {
      first_exec.emplace(span.task_id, &span);
    }
    util::Json event = util::Json::object();
    event["ph"] = "X";
    event["name"] = span.name;
    event["pid"] = 1;
    event["tid"] = static_cast<std::int64_t>(span.device);
    event["ts"] = span.start * 1e6;  // microseconds
    event["dur"] = span.duration() * 1e6;
    util::Json args = util::Json::object();
    args["task"] = static_cast<std::int64_t>(span.task_id);
    args["kind"] = span_kind_name(span.kind);
    event["args"] = std::move(args);
    events.push_back(std::move(event));
  }

  // Structured runtime events, in record order.
  if (recorder != nullptr) {
    for (const Event& ev : recorder->events()) {
      util::Json event = util::Json::object();
      event["name"] = to_string(ev.kind);
      event["pid"] = 1;
      event["ts"] = ev.time * 1e6;
      util::Json args = util::Json::object();
      if (ev.task != kNoTask) {
        args["task"] = ev.task;
      }
      if (!ev.name.empty()) {
        args["detail"] = ev.name;
      }
      switch (ev.kind) {
        case EventKind::Transfer: {
          event["ph"] = "X";
          event["tid"] = kTransferTidBase + ev.src * nodes + ev.dst;
          event["dur"] = ev.duration * 1e6;
          args["bytes"] = ev.bytes;
          args["src"] = ev.src;
          args["dst"] = ev.dst;
          break;
        }
        case EventKind::Prefetch: {
          event["ph"] = "i";
          event["s"] = "t";
          event["tid"] = kTransferTidBase + ev.src * nodes + ev.dst;
          args["bytes"] = ev.bytes;
          break;
        }
        case EventKind::Retry:
        case EventKind::Timeout:
          event["ph"] = "i";
          event["s"] = "t";
          event["tid"] = ev.device;
          args["attempt"] = ev.aux;
          break;
        case EventKind::Blacklist:
        case EventKind::Probation:
        case EventKind::Abandon:
        case EventKind::Decision:
          event["ph"] = "i";
          event["s"] = "t";
          event["tid"] = ev.device >= 0 ? ev.device : 0;
          break;
      }
      event["args"] = std::move(args);
      events.push_back(std::move(event));

      // Decision -> execution flow arrow, when the task eventually ran.
      if (ev.kind == EventKind::Decision) {
        const auto it = first_exec.find(ev.task);
        if (it == first_exec.end()) {
          continue;
        }
        util::Json flow_start = util::Json::object();
        flow_start["ph"] = "s";
        flow_start["cat"] = "sched";
        flow_start["name"] = "decision";
        flow_start["id"] = ev.task;
        flow_start["pid"] = 1;
        flow_start["tid"] = ev.device >= 0 ? ev.device : 0;
        flow_start["ts"] = ev.time * 1e6;
        events.push_back(std::move(flow_start));
        util::Json flow_end = util::Json::object();
        flow_end["ph"] = "f";
        flow_end["bp"] = "e";
        flow_end["cat"] = "sched";
        flow_end["name"] = "decision";
        flow_end["id"] = ev.task;
        flow_end["pid"] = 1;
        flow_end["tid"] = static_cast<std::int64_t>(it->second->device);
        flow_end["ts"] = it->second->start * 1e6;
        events.push_back(std::move(flow_end));
      }
    }
  }

  util::Json doc = util::Json::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return doc.dump();
}

}  // namespace hetflow::obs
