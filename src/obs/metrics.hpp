// Typed metrics registry — the numeric half of the observability layer.
//
// Three metric kinds cover everything the runtime emits:
//
//   * Counter       — monotonically increasing sum (tasks_scheduled,
//                     bytes_transferred, retry_attempts, ...). Stored as a
//                     double so second-valued counters accumulate in
//                     exactly the same order and precision as the RunStats
//                     fields they mirror (snapshots reconcile bitwise).
//   * Gauge         — last-written value (makespan_s, events_executed).
//   * TimeWeighted  — a piecewise-constant signal sampled at update()
//                     instants (queue_depth, event_queue_depth); the
//                     snapshot reports last/min/max and the time-weighted
//                     mean over the observed window.
//
// Metrics are addressed by (name, labels). Snapshots serialize to JSON
// and CSV with entries in lexicographic key order, so two runs that
// touch the same metrics in any order produce byte-identical snapshots —
// the property the golden-trace and determinism suites lock down.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/json.hpp"

namespace hetflow::obs {

/// Ordered label set, e.g. {{"device", "gpu0"}, {"scheduler", "dmda"}}.
/// Call sites pass labels in a fixed order; the key is built from that
/// order verbatim (no sorting), so a given call site always addresses the
/// same entry.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(double delta = 1.0) { value_ += delta; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Piecewise-constant signal: update(t, v) means "the value is v from t
/// until the next update". Integrates value·dt for the time-weighted
/// mean; update times must be non-decreasing (simulated time is).
class TimeWeighted {
 public:
  void update(sim::SimTime t, double value);

  bool observed() const noexcept { return updates_ > 0; }
  double last() const noexcept { return current_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  /// Integral / elapsed over [first update, last update]; the last value
  /// when no time has elapsed.
  double mean() const noexcept;
  std::uint64_t updates() const noexcept { return updates_; }

 private:
  sim::SimTime first_t_ = 0.0;
  sim::SimTime last_t_ = 0.0;
  double current_ = 0.0;
  double integral_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t updates_ = 0;
};

enum class MetricKind : std::uint8_t { Counter, Gauge, TimeWeighted };
const char* to_string(MetricKind kind) noexcept;

class MetricsRegistry {
 public:
  /// Lookup-or-create. The returned reference is stable for the life of
  /// the registry (entries live in std::map nodes). Re-registering a name
  /// with a different kind throws InvalidArgument.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  TimeWeighted& time_weighted(const std::string& name,
                              const Labels& labels = {});

  std::size_t size() const noexcept { return entries_.size(); }

  /// Sum of a counter across every label combination (0 when absent) —
  /// the reconciliation hook for RunStats cross-checks.
  double counter_sum(const std::string& name) const;
  /// Value of one specific counter (0 when absent).
  double counter_value(const std::string& name, const Labels& labels) const;

  /// Deterministic snapshots: entries in lexicographic key order.
  util::Json to_json() const;
  std::string to_json_string() const;  ///< pretty-printed, trailing newline
  std::string to_csv() const;

  /// "name{k=v,k2=v2}" (just "name" for label-free metrics).
  static std::string key(const std::string& name, const Labels& labels);

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::Counter;
    Counter counter;
    Gauge gauge;
    TimeWeighted tw;
  };

  std::map<std::string, Entry> entries_;

  Entry& entry(const std::string& name, const Labels& labels,
               MetricKind kind);
};

}  // namespace hetflow::obs
