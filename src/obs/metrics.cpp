#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace hetflow::obs {

void TimeWeighted::update(sim::SimTime t, double value) {
  if (updates_ == 0) {
    first_t_ = t;
    last_t_ = t;
    current_ = value;
    min_ = value;
    max_ = value;
  } else {
    HETFLOW_REQUIRE_MSG(t >= last_t_,
                        "time-weighted metric updated backwards in time");
    integral_ += current_ * (t - last_t_);
    last_t_ = t;
    current_ = value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++updates_;
}

double TimeWeighted::mean() const noexcept {
  if (last_t_ > first_t_) {
    return integral_ / (last_t_ - first_t_);
  }
  return current_;
}

const char* to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::Counter:
      return "counter";
    case MetricKind::Gauge:
      return "gauge";
    case MetricKind::TimeWeighted:
      return "time_weighted";
  }
  return "?";
}

std::string MetricsRegistry::key(const std::string& name,
                                 const Labels& labels) {
  if (labels.empty()) {
    return name;
  }
  std::string out = name;
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += labels[i].first;
    out += '=';
    out += labels[i].second;
  }
  out += '}';
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::entry(const std::string& name,
                                               const Labels& labels,
                                               MetricKind kind) {
  const std::string k = key(name, labels);
  auto [it, inserted] = entries_.try_emplace(k);
  if (inserted) {
    it->second.name = name;
    it->second.labels = labels;
    it->second.kind = kind;
  } else if (it->second.kind != kind) {
    throw InvalidArgument(util::format(
        "metric '%s' already registered as %s, requested as %s", k.c_str(),
        to_string(it->second.kind), to_string(kind)));
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  return entry(name, labels, MetricKind::Counter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  return entry(name, labels, MetricKind::Gauge).gauge;
}

TimeWeighted& MetricsRegistry::time_weighted(const std::string& name,
                                             const Labels& labels) {
  return entry(name, labels, MetricKind::TimeWeighted).tw;
}

double MetricsRegistry::counter_sum(const std::string& name) const {
  double sum = 0.0;
  for (const auto& [k, e] : entries_) {
    if (e.name == name && e.kind == MetricKind::Counter) {
      sum += e.counter.value();
    }
  }
  return sum;
}

double MetricsRegistry::counter_value(const std::string& name,
                                      const Labels& labels) const {
  const auto it = entries_.find(key(name, labels));
  if (it == entries_.end() || it->second.kind != MetricKind::Counter) {
    return 0.0;
  }
  return it->second.counter.value();
}

util::Json MetricsRegistry::to_json() const {
  util::Json metrics = util::Json::array();
  for (const auto& [k, e] : entries_) {
    util::Json m = util::Json::object();
    m["name"] = e.name;
    util::Json labels = util::Json::object();
    for (const auto& [lk, lv] : e.labels) {
      labels[lk] = lv;
    }
    m["labels"] = std::move(labels);
    m["kind"] = to_string(e.kind);
    switch (e.kind) {
      case MetricKind::Counter:
        m["value"] = e.counter.value();
        break;
      case MetricKind::Gauge:
        m["value"] = e.gauge.value();
        break;
      case MetricKind::TimeWeighted:
        m["value"] = e.tw.last();
        m["min"] = e.tw.min();
        m["max"] = e.tw.max();
        m["mean"] = e.tw.mean();
        m["updates"] = e.tw.updates();
        break;
    }
    metrics.push_back(std::move(m));
  }
  util::Json doc = util::Json::object();
  doc["metrics"] = std::move(metrics);
  return doc;
}

std::string MetricsRegistry::to_json_string() const {
  return to_json().dump_pretty() + "\n";
}

std::string MetricsRegistry::to_csv() const {
  std::ostringstream out;
  util::CsvWriter csv(out);
  csv.header({"name", "labels", "kind", "value", "min", "max", "mean",
              "updates"});
  const auto num = [](double v) { return util::format("%.17g", v); };
  for (const auto& [k, e] : entries_) {
    std::string labels;
    for (std::size_t i = 0; i < e.labels.size(); ++i) {
      if (i > 0) {
        labels += ';';
      }
      labels += e.labels[i].first + "=" + e.labels[i].second;
    }
    switch (e.kind) {
      case MetricKind::Counter:
        csv.row({e.name, labels, "counter", num(e.counter.value()), "", "",
                 "", ""});
        break;
      case MetricKind::Gauge:
        csv.row({e.name, labels, "gauge", num(e.gauge.value()), "", "", "",
                 ""});
        break;
      case MetricKind::TimeWeighted:
        csv.row({e.name, labels, "time_weighted", num(e.tw.last()),
                 num(e.tw.min()), num(e.tw.max()), num(e.tw.mean()),
                 std::to_string(e.tw.updates())});
        break;
    }
  }
  return out.str();
}

}  // namespace hetflow::obs
