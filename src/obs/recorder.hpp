// Recorder — the single sink the instrumented runtime writes into:
// a typed metrics registry, a structured event log (transfers,
// prefetches, retries, timeouts, blacklists, decisions), and the
// scheduler decision log.
//
// Created by the Runtime when RuntimeOptions::metrics is set and handed
// (as a raw pointer) to the data layer and, through SchedContext, to the
// scheduling policies. A null/disabled recorder costs one branch per
// instrumentation point — the default-off path leaves every legacy
// output stream byte-identical.
//
// Everything is appended from the single-threaded simulation loop in
// event order, so logs and snapshots are deterministic for a given seed.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "obs/decision_log.hpp"
#include "obs/metrics.hpp"

namespace hetflow::obs {

enum class EventKind : std::uint8_t {
  Transfer = 0,  ///< one booked data movement (span: start..arrival)
  Prefetch,      ///< ahead-of-execution fetch issued (instant)
  Retry,         ///< failed attempt re-queued (instant)
  Timeout,       ///< watchdog cancelled an attempt (instant)
  Blacklist,     ///< device quarantined (instant)
  Probation,     ///< quarantine lifted, device on probation (instant)
  Decision,      ///< scheduler placement decision (instant)
  Abandon,       ///< task dropped, attempt budget exhausted (instant)
};
const char* to_string(EventKind kind) noexcept;

constexpr std::uint64_t kNoTask = std::numeric_limits<std::uint64_t>::max();

struct Event {
  EventKind kind = EventKind::Transfer;
  sim::SimTime time = 0.0;
  double duration = 0.0;  ///< 0 for instant events
  std::int64_t device = -1;          ///< device track (-1 = none)
  std::int64_t src = -1;             ///< source memory node (transfers)
  std::int64_t dst = -1;             ///< destination memory node
  std::uint64_t task = kNoTask;
  std::uint64_t bytes = 0;
  std::uint64_t aux = 0;  ///< attempt number for Retry/Timeout
  /// Task/datum name or free-form detail. Borrowed view into a source
  /// stable for the runtime's lifetime (interned task/handle names,
  /// Device::name()) — recording an event copies no string.
  std::string_view name;
};

class Recorder {
 public:
  explicit Recorder(bool enabled = true) : enabled_(enabled) {}

  bool enabled() const noexcept { return enabled_; }

  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }

  void record(Event event);
  const std::vector<Event>& events() const noexcept { return events_; }

  /// Appends the decision and mirrors it as a Decision instant event on
  /// the winner's track.
  void add_decision(SchedDecision decision);
  const std::vector<SchedDecision>& decisions() const noexcept {
    return decisions_;
  }
  std::string decisions_jsonl(const hw::Platform& platform) const {
    return decisions_to_jsonl(decisions_, platform);
  }

 private:
  bool enabled_;
  MetricsRegistry metrics_;
  std::vector<Event> events_;
  std::vector<SchedDecision> decisions_;
};

}  // namespace hetflow::obs
