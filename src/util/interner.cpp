#include "util/interner.hpp"

#include <algorithm>
#include <cstring>

namespace hetflow::util {

NameId StringInterner::intern_slow(std::string_view text) {
  if (const auto it = ids_.find(text); it != ids_.end()) {
    mru_view_ = it->first;
    mru_id_ = it->second;
    return it->second;
  }
  const std::string_view stable = append_to_arena(text);
  const NameId id = static_cast<NameId>(views_.size());
  views_.push_back(stable);
  ids_.emplace(stable, id);
  mru_view_ = stable;
  mru_id_ = id;
  return id;
}

std::string_view StringInterner::append_to_arena(std::string_view text) {
  if (text.size() > chunk_capacity_ - chunk_used_ || chunks_.empty()) {
    const std::size_t chunk_size = std::max(kChunkBytes, text.size());
    chunks_.push_back(std::make_unique<char[]>(chunk_size));
    chunk_used_ = 0;
    chunk_capacity_ = chunk_size;
    arena_bytes_ += chunk_size;
  }
  char* dest = chunks_.back().get() + chunk_used_;
  if (!text.empty()) {
    std::memcpy(dest, text.data(), text.size());
  }
  chunk_used_ += text.size();
  return {dest, text.size()};
}

}  // namespace hetflow::util
