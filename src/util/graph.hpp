// Directed-graph algorithms shared by the task graph, the HEFT scheduler
// and the workflow generators: topological order, cycle detection, level
// assignment, weighted critical path, transitive reduction, reachability.
//
// Nodes are dense indices 0..n-1; the caller owns any payload mapping.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace hetflow::util {

/// Adjacency-list digraph over dense node ids.
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t node_count) { resize(node_count); }

  void resize(std::size_t node_count);
  /// Appends one node, returning its id.
  std::size_t add_node();
  /// Adds edge src -> dst. Duplicate edges are allowed (and meaningful for
  /// multiplicity-sensitive algorithms); self-loops are rejected.
  void add_edge(std::size_t src, std::size_t dst);

  std::size_t node_count() const noexcept { return succ_.size(); }
  std::size_t edge_count() const noexcept { return edges_; }
  const std::vector<std::size_t>& successors(std::size_t node) const;
  const std::vector<std::size_t>& predecessors(std::size_t node) const;
  std::size_t in_degree(std::size_t node) const;
  std::size_t out_degree(std::size_t node) const;

  /// Nodes with no predecessors / successors.
  std::vector<std::size_t> sources() const;
  std::vector<std::size_t> sinks() const;

  bool has_cycle() const;

  /// Kahn topological order (deterministic: smallest id first).
  /// Throws InvalidArgument if the graph has a cycle.
  std::vector<std::size_t> topological_order() const;

  /// Level of each node = longest path (in edges) from any source.
  std::vector<std::size_t> levels() const;

  /// Longest path where each node contributes node_weight[node] and each
  /// edge src->dst contributes edge_weight(src, dst). Returns total weight
  /// and writes the path if `path` is non-null. DAG only.
  template <typename EdgeWeightFn>
  double critical_path(const std::vector<double>& node_weight,
                       EdgeWeightFn edge_weight,
                       std::vector<std::size_t>* path = nullptr) const;

  /// Critical path with zero edge weights.
  double critical_path(const std::vector<double>& node_weight,
                       std::vector<std::size_t>* path = nullptr) const;

  /// Set of nodes reachable from `node` (excluding itself unless cyclic).
  std::vector<bool> reachable_from(std::size_t node) const;

  /// Removes edges implied by longer paths. DAG only. Returns the number
  /// of edges removed. Duplicate edges collapse to one.
  std::size_t transitive_reduction();

  /// Upward rank per node: rank(n) = node_weight[n] + max over successors s
  /// of (edge_weight(n, s) + rank(s)). The classic HEFT priority. DAG only.
  template <typename EdgeWeightFn>
  std::vector<double> upward_ranks(const std::vector<double>& node_weight,
                                   EdgeWeightFn edge_weight) const;

  /// Downward rank: rank(n) = max over predecessors p of
  /// (rank(p) + node_weight[p] + edge_weight(p, n)). DAG only.
  template <typename EdgeWeightFn>
  std::vector<double> downward_ranks(const std::vector<double>& node_weight,
                                     EdgeWeightFn edge_weight) const;

 private:
  std::vector<std::vector<std::size_t>> succ_;
  std::vector<std::vector<std::size_t>> pred_;
  std::size_t edges_ = 0;

  void check_node(std::size_t node) const;
};

// --- template implementations -------------------------------------------

template <typename EdgeWeightFn>
double Digraph::critical_path(const std::vector<double>& node_weight,
                              EdgeWeightFn edge_weight,
                              std::vector<std::size_t>* path) const {
  const std::vector<std::size_t> order = topological_order();
  std::vector<double> dist(node_count(), 0.0);
  std::vector<std::size_t> best_pred(node_count(), node_count());
  double best = 0.0;
  std::size_t best_node = node_count();
  for (std::size_t node : order) {
    dist[node] += node_weight[node];
    if (dist[node] > best) {
      best = dist[node];
      best_node = node;
    }
    for (std::size_t succ : successors(node)) {
      const double cand = dist[node] + edge_weight(node, succ);
      if (cand > dist[succ]) {
        dist[succ] = cand;
        best_pred[succ] = node;
      }
    }
  }
  if (path != nullptr) {
    path->clear();
    for (std::size_t node = best_node; node != node_count();
         node = best_pred[node]) {
      path->push_back(node);
    }
    std::reverse(path->begin(), path->end());
  }
  return best;
}

template <typename EdgeWeightFn>
std::vector<double> Digraph::upward_ranks(
    const std::vector<double>& node_weight, EdgeWeightFn edge_weight) const {
  const std::vector<std::size_t> order = topological_order();
  std::vector<double> rank(node_count(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t node = *it;
    double best = 0.0;
    for (std::size_t succ : successors(node)) {
      best = std::max(best, edge_weight(node, succ) + rank[succ]);
    }
    rank[node] = node_weight[node] + best;
  }
  return rank;
}

template <typename EdgeWeightFn>
std::vector<double> Digraph::downward_ranks(
    const std::vector<double>& node_weight, EdgeWeightFn edge_weight) const {
  const std::vector<std::size_t> order = topological_order();
  std::vector<double> rank(node_count(), 0.0);
  for (std::size_t node : order) {
    for (std::size_t succ : successors(node)) {
      rank[succ] = std::max(
          rank[succ], rank[node] + node_weight[node] + edge_weight(node, succ));
    }
  }
  return rank;
}

}  // namespace hetflow::util
