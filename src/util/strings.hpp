// Small string helpers (GCC 12 lacks <format>, so hetflow carries its own
// snprintf-based formatting and human-readable unit rendering).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hetflow::util {

/// Splits on a single character; empty fields are kept.
std::vector<std::string> split(std::string_view text, char sep);

/// Splits on runs of whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view text);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

bool starts_with(std::string_view text, std::string_view prefix) noexcept;
bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// Joins items with `sep` between them.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "1.50 GB", "12.0 KB", ... (binary units, 1024 base).
std::string human_bytes(double bytes);

/// "1.234 s", "12.3 ms", "456 us", "789 ns".
std::string human_seconds(double seconds);

/// "1.2 G", "3.4 M" — SI magnitude for counts/rates.
std::string human_count(double count);

/// Parses a double allowing unit suffixes: K/M/G/T (SI, 1000-base) and
/// Ki/Mi/Gi/Ti (binary). Throws ParseError on malformed input.
double parse_scaled(std::string_view text);

/// True if `text` parses fully as a decimal number.
bool is_number(std::string_view text) noexcept;

}  // namespace hetflow::util
