// Best-effort cache-prefetch hints for the million-task hot paths. A
// hint, never a semantic effect: wrong or late prefetches only cost a
// few cycles, so callers may speculate freely (e.g. on the next entry
// of a work queue that might not be consumed).
#pragma once

#include <cstddef>

namespace hetflow::util {

/// Prefetches the cache line containing `addr` for reading. No-op on
/// compilers without the builtin.
inline void prefetch_read(const void* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, 0, 3);
#else
  (void)addr;
#endif
}

/// Prefetches the cache line containing `addr` with intent to write.
inline void prefetch_write(const void* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, 1, 3);
#else
  (void)addr;
#endif
}

/// Prefetches every line of [addr, addr + bytes) for reading.
inline void prefetch_range_read(const void* addr, std::size_t bytes) noexcept {
  const char* p = static_cast<const char*>(addr);
  for (std::size_t off = 0; off < bytes; off += 64) {
    prefetch_read(p + off);
  }
}

/// Prefetches every line of [addr, addr + bytes) with intent to write.
inline void prefetch_range_write(const void* addr, std::size_t bytes) noexcept {
  const char* p = static_cast<const char*>(addr);
  for (std::size_t off = 0; off < bytes; off += 64) {
    prefetch_write(p + off);
  }
}

}  // namespace hetflow::util
