// Streaming statistics used by performance models, reports and benches.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace hetflow::util {

/// Welford's online mean/variance accumulator. O(1) space, numerically
/// stable; suitable for per-(codelet, device) execution-time histories.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  std::size_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact quantiles over a retained sample vector. Not for unbounded
/// streams; fine for per-run task latencies (10^5 entries at most).
class Sample {
 public:
  void add(double x) { values_.push_back(x); }
  std::size_t count() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }
  double mean() const noexcept;
  double min() const;
  double max() const;
  /// Linear-interpolated quantile, q in [0, 1]. Requires a non-empty sample.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  const std::vector<double>& values() const noexcept { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t bucket(std::size_t i) const { return counts_.at(i); }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  std::size_t total() const noexcept { return total_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  /// Multi-line ASCII rendering (one row per bucket with a bar).
  std::string to_ascii(std::size_t max_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

/// Jain's fairness index of a load vector: 1.0 = perfectly balanced,
/// 1/n = all load on one element. Returns 1.0 for empty/zero input.
double jain_fairness(const std::vector<double>& loads) noexcept;

/// Coefficient of variation (stddev/mean); 0 if mean is 0.
double coefficient_of_variation(const std::vector<double>& xs) noexcept;

}  // namespace hetflow::util
