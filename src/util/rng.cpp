#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace hetflow::util {

double Rng::uniform(double lo, double hi) {
  HETFLOW_REQUIRE_MSG(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  HETFLOW_REQUIRE_MSG(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = (*this)();
  while (draw >= limit) {
    draw = (*this)();
  }
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() noexcept {
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  HETFLOW_REQUIRE_MSG(rate > 0.0, "exponential rate must be positive");
  double u = uniform();
  while (u <= 0.0) {
    u = uniform();
  }
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) {
  HETFLOW_REQUIRE_MSG(p >= 0.0 && p <= 1.0, "bernoulli p must be in [0, 1]");
  return uniform() < p;
}

std::size_t Rng::index(std::size_t n) {
  HETFLOW_REQUIRE_MSG(n > 0, "index(n) requires n > 0");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    HETFLOW_REQUIRE_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  HETFLOW_REQUIRE_MSG(total > 0.0, "at least one weight must be positive");
  double cut = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cut -= weights[i];
    if (cut < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;  // floating-point slack lands on the last item
}

}  // namespace hetflow::util
