#include "util/table.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace hetflow::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  HETFLOW_REQUIRE_MSG(!columns_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> fields) {
  HETFLOW_REQUIRE_MSG(fields.size() == columns_.size(),
                      "table row width differs from header");
  rows_.push_back(std::move(fields));
}

void Table::add_row_mixed(const std::string& label,
                          const std::vector<double>& values,
                          const char* spec) {
  HETFLOW_REQUIRE_MSG(values.size() + 1 == columns_.size(),
                      "table row width differs from header");
  std::vector<std::string> fields;
  fields.reserve(columns_.size());
  fields.push_back(label);
  for (double v : values) {
    fields.push_back(format(spec, v));
  }
  rows_.push_back(std::move(fields));
}

std::string Table::render() const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : width) {
      line += std::string(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  };
  const auto emit_row = [&](const std::vector<std::string>& fields) {
    std::string line = "|";
    for (std::size_t c = 0; c < fields.size(); ++c) {
      line += ' ';
      line += fields[c];
      line += std::string(width[c] - fields[c].size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };
  std::string out = rule();
  out += emit_row(columns_);
  out += rule();
  for (const auto& row : rows_) {
    out += emit_row(row);
  }
  out += rule();
  return out;
}

void Table::print(std::ostream& out) const { out << render(); }

}  // namespace hetflow::util
