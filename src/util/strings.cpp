#include "util/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace hetflow::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) {
      out.emplace_back(text.substr(start, i - start));
    }
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += items[i];
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    throw InternalError("vsnprintf failed");
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string human_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  double value = bytes;
  std::size_t unit = 0;
  while (std::fabs(value) >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  return format(unit == 0 ? "%.0f %s" : "%.2f %s", value, kUnits[unit]);
}

std::string human_seconds(double seconds) {
  const double abs = std::fabs(seconds);
  if (abs >= 1.0 || abs == 0.0) {
    return format("%.3f s", seconds);
  }
  if (abs >= 1e-3) {
    return format("%.3f ms", seconds * 1e3);
  }
  if (abs >= 1e-6) {
    return format("%.3f us", seconds * 1e6);
  }
  return format("%.0f ns", seconds * 1e9);
}

std::string human_count(double count) {
  static constexpr const char* kUnits[] = {"", "K", "M", "G", "T"};
  double value = count;
  std::size_t unit = 0;
  while (std::fabs(value) >= 1000.0 && unit + 1 < std::size(kUnits)) {
    value /= 1000.0;
    ++unit;
  }
  return format(unit == 0 ? "%.0f%s" : "%.2f%s", value, kUnits[unit]);
}

double parse_scaled(std::string_view text) {
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) {
    throw ParseError("parse_scaled: empty input");
  }
  std::string buf(trimmed);
  char* end = nullptr;
  const double base = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str()) {
    throw ParseError("parse_scaled: not a number: '" + buf + "'");
  }
  std::string_view suffix = trim(std::string_view(end));
  if (suffix.empty()) {
    return base;
  }
  double scale = 1.0;
  if (suffix == "K" || suffix == "k") {
    scale = 1e3;
  } else if (suffix == "M") {
    scale = 1e6;
  } else if (suffix == "G" || suffix == "g") {
    scale = 1e9;
  } else if (suffix == "T") {
    scale = 1e12;
  } else if (suffix == "Ki") {
    scale = 1024.0;
  } else if (suffix == "Mi") {
    scale = 1024.0 * 1024.0;
  } else if (suffix == "Gi") {
    scale = 1024.0 * 1024.0 * 1024.0;
  } else if (suffix == "Ti") {
    scale = 1024.0 * 1024.0 * 1024.0 * 1024.0;
  } else {
    throw ParseError("parse_scaled: unknown suffix '" + std::string(suffix) +
                     "'");
  }
  return base * scale;
}

bool is_number(std::string_view text) noexcept {
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) {
    return false;
  }
  std::string buf(trimmed);
  char* end = nullptr;
  std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

}  // namespace hetflow::util
