#include "util/csv.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace hetflow::util {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  HETFLOW_REQUIRE_MSG(rows_ == 0 && columns_ == 0,
                      "CSV header must be written first and once");
  HETFLOW_REQUIRE_MSG(!columns.empty(), "CSV header needs at least one column");
  columns_ = columns.size();
  row(columns);
  rows_ = 0;  // header does not count as a data row
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (columns_ != 0) {
    HETFLOW_REQUIRE_MSG(fields.size() == columns_,
                        "CSV row width differs from header");
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      *out_ << ',';
    }
    *out_ << escape(fields[i]);
  }
  *out_ << '\n';
  ++rows_;
}

void CsvWriter::row_values(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) {
    fields.push_back(format("%.6g", v));
  }
  row(fields);
}

}  // namespace hetflow::util
