// Minimal leveled logger.
//
// hetflow is a library, so by default it stays quiet (Warn level). The
// sink is replaceable for tests. Logging is not on any hot path — the
// runtime's per-task bookkeeping never logs unless Debug is enabled.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace hetflow::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Returns the human-readable name of a level ("debug", "info", ...).
const char* to_string(LogLevel level) noexcept;

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Replaces the sink (default writes to stderr). Pass nullptr to restore
/// the default. The sink receives the already-formatted line.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

/// Emits one log line through the current sink if `level` is enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_message(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace hetflow::util

#define HETFLOW_LOG(level)                                       \
  if (static_cast<int>(level) <                                  \
      static_cast<int>(::hetflow::util::log_level())) {          \
  } else                                                         \
    ::hetflow::util::detail::LogStream(level)

#define HETFLOW_DEBUG HETFLOW_LOG(::hetflow::util::LogLevel::Debug)
#define HETFLOW_INFO HETFLOW_LOG(::hetflow::util::LogLevel::Info)
#define HETFLOW_WARN HETFLOW_LOG(::hetflow::util::LogLevel::Warn)
#define HETFLOW_ERROR HETFLOW_LOG(::hetflow::util::LogLevel::Error)
