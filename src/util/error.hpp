// Error types shared across hetflow.
//
// hetflow reports unrecoverable API misuse and invariant violations via
// exceptions derived from hetflow::Error (Core Guidelines E.2/E.14). Each
// subsystem throws the subclass naming the layer at fault so callers can
// discriminate without string matching.
#pragma once

#include <stdexcept>
#include <string>

namespace hetflow {

/// Base class of every exception thrown by hetflow.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid argument / API misuse detected at a public boundary.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Internal invariant violated — indicates a bug in hetflow itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Malformed input while parsing an external artifact (DAG file, JSON).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Simulated resource exhausted (e.g. device memory cannot fit a replica).
class ResourceExhausted : public Error {
 public:
  explicit ResourceExhausted(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw InternalError(std::string("requirement failed: ") + expr + " at " +
                      file + ":" + std::to_string(line) +
                      (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

namespace util {
// The error types predate the nested namespaces; both hetflow::Error and
// hetflow::util::Error are supported spellings.
using hetflow::Error;
using hetflow::InternalError;
using hetflow::InvalidArgument;
using hetflow::ParseError;
using hetflow::ResourceExhausted;
}  // namespace util

}  // namespace hetflow

/// Always-on invariant check (unlike assert, active in release builds).
#define HETFLOW_REQUIRE(expr)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::hetflow::detail::require_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                      \
  } while (false)

#define HETFLOW_REQUIRE_MSG(expr, msg)                                     \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::hetflow::detail::require_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                      \
  } while (false)
