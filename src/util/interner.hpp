// StringInterner — append-only string deduplication with stable views.
//
// The million-task hot path names every task and datum, and copying those
// names into Task/DataHandle/Span objects (one std::string each) is a
// measurable per-task cost and a 32-byte-per-object footprint. The
// interner stores each distinct string once in a chunked character arena
// and hands out (a) a dense NameId and (b) a std::string_view into the
// arena. Views stay valid for the interner's lifetime: chunks are never
// reallocated or freed, so holders (Task, DataHandle, trace::Span,
// obs::Event) carry a 16-byte view instead of an owning string.
//
// Lifetime contract: the interner must outlive every object holding one
// of its views — in practice it is the first-declared member of the
// owning Runtime/DataRegistry, destroyed last. Not thread-safe; each
// runtime owns its own interner (the sweep engine's thread-confinement
// rule covers it).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace hetflow::util {

/// Dense id of an interned string (index into the interner's table).
using NameId = std::uint32_t;

class StringInterner {
 public:
  static constexpr NameId kInvalidName = 0xffffffffU;

  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Returns the id of `text`, copying it into the arena on first sight.
  /// Hot loops intern the same name millions of times in a row (every
  /// task of a workflow stage shares one label), so the last hit is
  /// answered from a one-entry MRU slot before touching the hash table.
  NameId intern(std::string_view text) {
    if (mru_id_ != kInvalidName && text == mru_view_) {
      return mru_id_;
    }
    return intern_slow(text);
  }

  /// Convenience: intern and return the stable arena view in one call.
  std::string_view intern_view(std::string_view text) {
    return views_[intern(text)];
  }

  /// The stable view for an id produced by intern().
  std::string_view view(NameId id) const {
    // Bounds guard without dragging util/error.hpp into this leaf header.
    if (id >= views_.size()) {
      __builtin_trap();
    }
    return views_[id];
  }

  /// Number of distinct strings interned.
  std::size_t size() const noexcept { return views_.size(); }
  /// Arena bytes currently reserved (observability for memory audits).
  std::size_t arena_bytes() const noexcept { return arena_bytes_; }

 private:
  /// Hash-table lookup/insert behind the MRU fast path.
  NameId intern_slow(std::string_view text);
  /// Copies `text` into the arena and returns the stable view.
  std::string_view append_to_arena(std::string_view text);

  static constexpr std::size_t kChunkBytes = 64 * 1024;

  std::vector<std::unique_ptr<char[]>> chunks_;
  std::size_t chunk_used_ = 0;      ///< bytes used in the last chunk
  std::size_t chunk_capacity_ = 0;  ///< size of the last chunk
  std::size_t arena_bytes_ = 0;
  /// Keys are views into the arena (stable), so lookup of a caller's
  /// transient string_view needs no temporary std::string.
  std::unordered_map<std::string_view, NameId> ids_;
  std::vector<std::string_view> views_;
  /// One-entry MRU: the arena view and id of the last intern() answer.
  std::string_view mru_view_;
  NameId mru_id_ = kInvalidName;
};

}  // namespace hetflow::util
