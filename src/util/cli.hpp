// Tiny declarative command-line parser for the hetflow tools.
//
//   util::Cli cli("hetflow_run", "Run a workflow on a simulated platform");
//   cli.add_option("workflow", "montage:64", "generator spec or .dag path");
//   cli.add_flag("gantt", "print an ASCII Gantt chart");
//   cli.parse(argc, argv);                 // throws ParseError on misuse
//   if (cli.flag("gantt")) ...
//   double seed = cli.number("seed");
//
// Accepted syntax: --name value, --name=value, --flag. "--help" prints
// usage and sets help_requested().
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace hetflow::util {

class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Declares a string option with a default value.
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// Declares a boolean flag (defaults to false).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv; throws ParseError for unknown options, missing values
  /// or stray positionals. Recognizes --help.
  void parse(int argc, const char* const* argv);

  bool help_requested() const noexcept { return help_requested_; }
  std::string usage() const;

  /// Value accessors (throw ParseError for undeclared names).
  const std::string& value(const std::string& name) const;
  bool flag(const std::string& name) const;
  /// Parses the option as a number with K/M/G/T (and Ki/...) suffixes.
  double number(const std::string& name) const;
  /// True when the user supplied the option explicitly.
  bool provided(const std::string& name) const;

 private:
  struct Entry {
    std::string default_value;
    std::string value;
    std::string help;
    bool is_flag = false;
    bool provided = false;
  };
  std::string program_;
  std::string description_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> declaration_order_;
  bool help_requested_ = false;

  Entry& lookup(const std::string& name);
  const Entry& lookup(const std::string& name) const;
};

}  // namespace hetflow::util
