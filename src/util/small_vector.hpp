// SmallVector — a vector with inline storage for the first N elements.
//
// Most tasks in a workflow DAG have a handful of edges (Montage medians:
// 2 dependencies, 3 dependents, ≤4 data accesses), so storing those lists
// in std::vector costs one heap allocation per list per task — the
// dominant allocation at 10^6-task scale. SmallVector keeps up to N
// elements inside the object and only touches the heap when a list
// spills; iteration stays contiguous either way.
//
// Supported surface is the subset the runtime needs (push_back/
// emplace_back, reserve, clear, random access, iteration, copy/move);
// grow policy is 2x, spill never shrinks back to inline.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace hetflow::util {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(N > 0, "inline capacity must be at least 1");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;
  using size_type = std::size_t;

  SmallVector() noexcept : data_(inline_data()) {}

  // Implicit, like every initializer_list constructor in the standard
  // library (vector, array...).  hetflow-lint: allow(hyg-explicit-ctor)
  SmallVector(std::initializer_list<T> init) : SmallVector() {
    reserve(init.size());
    for (const T& value : init) {
      emplace_back(value);
    }
  }

  template <typename InputIt>
  SmallVector(InputIt first, InputIt last) : SmallVector() {
    if constexpr (std::is_base_of_v<
                      std::random_access_iterator_tag,
                      typename std::iterator_traits<InputIt>::
                          iterator_category>) {
      reserve(static_cast<size_type>(last - first));
    }
    for (; first != last; ++first) {
      emplace_back(*first);
    }
  }

  SmallVector(const SmallVector& other) : SmallVector() {
    reserve(other.size_);
    for (const T& value : other) {
      emplace_back(value);
    }
  }

  SmallVector(SmallVector&& other) noexcept : SmallVector() {
    steal(std::move(other));
  }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (const T& value : other) {
        emplace_back(value);
      }
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      release();
      data_ = inline_data();
      capacity_ = N;
      size_ = 0;
      steal(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { release(); }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  size_type size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  size_type capacity() const noexcept { return capacity_; }
  static constexpr size_type inline_capacity() noexcept { return N; }
  bool is_inline() const noexcept { return data_ == inline_data(); }

  iterator begin() noexcept { return data_; }
  iterator end() noexcept { return data_ + size_; }
  const_iterator begin() const noexcept { return data_; }
  const_iterator end() const noexcept { return data_ + size_; }

  T& operator[](size_type i) noexcept { return data_[i]; }
  const T& operator[](size_type i) const noexcept { return data_[i]; }
  T& front() noexcept { return data_[0]; }
  const T& front() const noexcept { return data_[0]; }
  T& back() noexcept { return data_[size_ - 1]; }
  const T& back() const noexcept { return data_[size_ - 1]; }

  void reserve(size_type wanted) {
    if (wanted > capacity_) {
      grow(wanted);
    }
  }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) {
      grow(capacity_ * 2);
    }
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() noexcept {
    --size_;
    data_[size_].~T();
  }

  void clear() noexcept {
    for (size_type i = 0; i < size_; ++i) {
      data_[i].~T();
    }
    size_ = 0;
  }

 private:
  T* inline_data() noexcept {
    return std::launder(reinterpret_cast<T*>(inline_storage_));
  }
  const T* inline_data() const noexcept {
    return std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  void grow(size_type wanted) {
    const size_type next = wanted > capacity_ * 2 ? wanted : capacity_ * 2;
    T* fresh = std::allocator<T>().allocate(next);
    for (size_type i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (!is_inline()) {
      std::allocator<T>().deallocate(data_, capacity_);
    }
    data_ = fresh;
    capacity_ = next;
  }

  /// Moves `other`'s contents into this (which must be empty + inline):
  /// steals the heap buffer when spilled, moves element-wise when inline.
  void steal(SmallVector&& other) noexcept {
    if (other.is_inline()) {
      for (size_type i = 0; i < other.size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
      }
      size_ = other.size_;
      other.clear();
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
      other.size_ = 0;
    }
  }

  /// Destroys elements and frees any heap buffer (leaves members stale).
  void release() noexcept {
    clear();
    if (!is_inline()) {
      std::allocator<T>().deallocate(data_, capacity_);
    }
  }

  T* data_;
  size_type size_ = 0;
  size_type capacity_ = N;
  alignas(T) std::byte inline_storage_[N * sizeof(T)];
};

template <typename T, std::size_t N>
bool operator==(const SmallVector<T, N>& a, const SmallVector<T, N>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) {
      return false;
    }
  }
  return true;
}

// Element-wise comparison against std::vector (tests state expectations
// as vectors; edge lists migrated to SmallVector without churning them).
template <typename T, std::size_t N>
bool operator==(const SmallVector<T, N>& a, const std::vector<T>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) {
      return false;
    }
  }
  return true;
}

template <typename T, std::size_t N>
bool operator==(const std::vector<T>& a, const SmallVector<T, N>& b) {
  return b == a;
}

}  // namespace hetflow::util
