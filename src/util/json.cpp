#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace hetflow::util {

namespace {

[[noreturn]] void kind_error(const char* wanted) {
  throw InternalError(std::string("Json: value is not a ") + wanted);
}

}  // namespace

bool Json::as_bool() const {
  if (const bool* b = std::get_if<bool>(&value_)) {
    return *b;
  }
  kind_error("bool");
}

double Json::as_number() const {
  if (const double* d = std::get_if<double>(&value_)) {
    return *d;
  }
  kind_error("number");
}

const std::string& Json::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) {
    return *s;
  }
  kind_error("string");
}

const JsonArray& Json::as_array() const {
  if (const JsonArray* a = std::get_if<JsonArray>(&value_)) {
    return *a;
  }
  kind_error("array");
}

JsonArray& Json::as_array() {
  if (JsonArray* a = std::get_if<JsonArray>(&value_)) {
    return *a;
  }
  kind_error("array");
}

const JsonObject& Json::as_object() const {
  if (const JsonObject* o = std::get_if<JsonObject>(&value_)) {
    return *o;
  }
  kind_error("object");
}

JsonObject& Json::as_object() {
  if (JsonObject* o = std::get_if<JsonObject>(&value_)) {
    return *o;
  }
  kind_error("object");
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) {
    value_ = JsonObject{};
  }
  return as_object()[key];
}

const Json& Json::at(const std::string& key) const {
  const JsonObject& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) {
    throw ParseError("Json: missing key '" + key + "'");
  }
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

void Json::push_back(Json value) {
  if (is_null()) {
    value_ = JsonArray{};
  }
  as_array().push_back(std::move(value));
}

std::size_t Json::size() const {
  if (is_array()) {
    return as_array().size();
  }
  if (is_object()) {
    return as_object().size();
  }
  kind_error("container");
}

void Json::write_string(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline = [&] {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * depth), ' ');
    }
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    const double d = as_number();
    if (!std::isfinite(d)) {
      // JSON has no Inf/NaN; serialize as null (standard-compatible).
      out += "null";
      return;
    }
    if (d == std::floor(d) && std::fabs(d) < 1e15) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.0f", d);
      out += buf;
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      out += buf;
    }
  } else if (is_string()) {
    write_string(out, as_string());
  } else if (is_array()) {
    const JsonArray& arr = as_array();
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      ++depth;
      newline();
      --depth;
      arr[i].write(out, indent, depth + 1);
    }
    if (!arr.empty()) {
      newline();
    }
    out += ']';
  } else {
    const JsonObject& obj = as_object();
    out += '{';
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) {
        out += ',';
      }
      first = false;
      ++depth;
      newline();
      --depth;
      write_string(out, key);
      out += ':';
      if (indent > 0) {
        out += ' ';
      }
      value.write(out, indent, depth + 1);
    }
    if (!obj.empty()) {
      newline();
    }
    out += '}';
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string Json::dump_pretty() const {
  std::string out;
  write(out, 2, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing content after JSON document");
    }
    return value;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& why) {
    throw ParseError("JSON parse error at byte " + std::to_string(pos_) +
                     ": " + why);
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (advance() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) {
          return Json(true);
        }
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) {
          return Json(false);
        }
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) {
          return Json(nullptr);
        }
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = advance();
      if (c == '}') {
        return Json(std::move(obj));
      }
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = advance();
      if (c == ']') {
        return Json(std::move(arr));
      }
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = advance();
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = advance();
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = advance();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // Encode the BMP code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape sequence");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a value");
    }
    const std::string buf(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size()) {
      pos_ = start;
      fail("malformed number '" + buf + "'");
    }
    return Json(value);
  }
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace hetflow::util
