#include "util/graph.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace hetflow::util {

void Digraph::resize(std::size_t node_count) {
  HETFLOW_REQUIRE_MSG(node_count >= succ_.size(),
                      "Digraph::resize cannot shrink");
  succ_.resize(node_count);
  pred_.resize(node_count);
}

std::size_t Digraph::add_node() {
  succ_.emplace_back();
  pred_.emplace_back();
  return succ_.size() - 1;
}

void Digraph::check_node(std::size_t node) const {
  HETFLOW_REQUIRE_MSG(node < succ_.size(), "node id out of range");
}

void Digraph::add_edge(std::size_t src, std::size_t dst) {
  check_node(src);
  check_node(dst);
  HETFLOW_REQUIRE_MSG(src != dst, "self-loops are not allowed");
  succ_[src].push_back(dst);
  pred_[dst].push_back(src);
  ++edges_;
}

const std::vector<std::size_t>& Digraph::successors(std::size_t node) const {
  check_node(node);
  return succ_[node];
}

const std::vector<std::size_t>& Digraph::predecessors(std::size_t node) const {
  check_node(node);
  return pred_[node];
}

std::size_t Digraph::in_degree(std::size_t node) const {
  check_node(node);
  return pred_[node].size();
}

std::size_t Digraph::out_degree(std::size_t node) const {
  check_node(node);
  return succ_[node].size();
}

std::vector<std::size_t> Digraph::sources() const {
  std::vector<std::size_t> out;
  for (std::size_t n = 0; n < node_count(); ++n) {
    if (pred_[n].empty()) {
      out.push_back(n);
    }
  }
  return out;
}

std::vector<std::size_t> Digraph::sinks() const {
  std::vector<std::size_t> out;
  for (std::size_t n = 0; n < node_count(); ++n) {
    if (succ_[n].empty()) {
      out.push_back(n);
    }
  }
  return out;
}

bool Digraph::has_cycle() const {
  // Kahn's algorithm: a cycle exists iff not all nodes get popped.
  std::vector<std::size_t> degree(node_count());
  for (std::size_t n = 0; n < node_count(); ++n) {
    degree[n] = pred_[n].size();
  }
  std::vector<std::size_t> stack;
  for (std::size_t n = 0; n < node_count(); ++n) {
    if (degree[n] == 0) {
      stack.push_back(n);
    }
  }
  std::size_t popped = 0;
  while (!stack.empty()) {
    const std::size_t node = stack.back();
    stack.pop_back();
    ++popped;
    for (std::size_t succ : succ_[node]) {
      if (--degree[succ] == 0) {
        stack.push_back(succ);
      }
    }
  }
  return popped != node_count();
}

std::vector<std::size_t> Digraph::topological_order() const {
  std::vector<std::size_t> degree(node_count());
  for (std::size_t n = 0; n < node_count(); ++n) {
    degree[n] = pred_[n].size();
  }
  // Min-heap for deterministic order independent of insertion history.
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<>>
      ready;
  for (std::size_t n = 0; n < node_count(); ++n) {
    if (degree[n] == 0) {
      ready.push(n);
    }
  }
  std::vector<std::size_t> order;
  order.reserve(node_count());
  while (!ready.empty()) {
    const std::size_t node = ready.top();
    ready.pop();
    order.push_back(node);
    for (std::size_t succ : succ_[node]) {
      if (--degree[succ] == 0) {
        ready.push(succ);
      }
    }
  }
  if (order.size() != node_count()) {
    throw InvalidArgument("topological_order: graph has a cycle");
  }
  return order;
}

std::vector<std::size_t> Digraph::levels() const {
  const std::vector<std::size_t> order = topological_order();
  std::vector<std::size_t> level(node_count(), 0);
  for (std::size_t node : order) {
    for (std::size_t succ : succ_[node]) {
      level[succ] = std::max(level[succ], level[node] + 1);
    }
  }
  return level;
}

double Digraph::critical_path(const std::vector<double>& node_weight,
                              std::vector<std::size_t>* path) const {
  return critical_path(
      node_weight, [](std::size_t, std::size_t) { return 0.0; }, path);
}

std::vector<bool> Digraph::reachable_from(std::size_t node) const {
  check_node(node);
  std::vector<bool> seen(node_count(), false);
  std::vector<std::size_t> stack = {node};
  while (!stack.empty()) {
    const std::size_t cur = stack.back();
    stack.pop_back();
    for (std::size_t succ : succ_[cur]) {
      if (!seen[succ]) {
        seen[succ] = true;
        stack.push_back(succ);
      }
    }
  }
  return seen;
}

std::size_t Digraph::transitive_reduction() {
  // For each node, drop an edge n->s if s is reachable from another
  // successor of n. O(V * E) via per-node DFS — fine for workflow-sized
  // graphs (10^4 nodes).
  const std::vector<std::size_t> order = topological_order();  // validates DAG
  (void)order;
  std::size_t removed = 0;
  for (std::size_t n = 0; n < node_count(); ++n) {
    // Deduplicate successors first.
    std::vector<std::size_t>& succs = succ_[n];
    std::sort(succs.begin(), succs.end());
    const auto last = std::unique(succs.begin(), succs.end());
    removed += static_cast<std::size_t>(std::distance(last, succs.end()));
    succs.erase(last, succs.end());

    std::vector<bool> covered(node_count(), false);
    for (std::size_t direct : succs) {
      if (covered[direct]) {
        continue;
      }
      const std::vector<bool> reach = reachable_from(direct);
      for (std::size_t m = 0; m < node_count(); ++m) {
        if (reach[m]) {
          covered[m] = true;
        }
      }
    }
    const auto keep_end = std::remove_if(
        succs.begin(), succs.end(),
        [&](std::size_t s) { return covered[s]; });
    removed += static_cast<std::size_t>(std::distance(keep_end, succs.end()));
    succs.erase(keep_end, succs.end());
  }
  // Rebuild predecessor lists and edge count.
  for (auto& preds : pred_) {
    preds.clear();
  }
  edges_ = 0;
  for (std::size_t n = 0; n < node_count(); ++n) {
    for (std::size_t s : succ_[n]) {
      pred_[s].push_back(n);
      ++edges_;
    }
  }
  return removed;
}

}  // namespace hetflow::util
