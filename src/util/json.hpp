// Minimal JSON document model, serializer and recursive-descent parser.
//
// Used for Chrome-trace export and for structured experiment manifests.
// Supports the full JSON grammar except \u surrogate pairs beyond the BMP
// (escapes are decoded to UTF-8).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace hetflow::util {

class Json;

using JsonArray = std::vector<Json>;
/// std::map keeps key order deterministic for golden-output tests.
using JsonObject = std::map<std::string, Json>;

/// One JSON value. Value-semantic; cheap to move.
///
/// The single-argument constructors are implicit BY DESIGN: JSON literals
/// like `doc["seed"] = 42` and `row.push_back("name")` are the whole API.
// hetflow-lint: allow-file(hyg-explicit-ctor)
class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
  bool is_number() const noexcept { return std::holds_alternative<double>(value_); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(value_); }
  bool is_array() const noexcept { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const noexcept { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw InternalError on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  JsonArray& as_array();
  const JsonObject& as_object() const;
  JsonObject& as_object();

  /// Object field access; `at` throws ParseError if missing.
  Json& operator[](const std::string& key);
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Array append.
  void push_back(Json value);

  std::size_t size() const;

  /// Compact serialization (no whitespace).
  std::string dump() const;
  /// Pretty serialization with 2-space indentation.
  std::string dump_pretty() const;

  /// Parses a complete JSON document; throws ParseError with a byte
  /// offset on malformed input.
  static Json parse(std::string_view text);

  bool operator==(const Json& other) const = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;

  void write(std::string& out, int indent, int depth) const;
  static void write_string(std::string& out, const std::string& s);
};

}  // namespace hetflow::util
