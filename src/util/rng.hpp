// Deterministic, splittable pseudo-random number generation.
//
// Simulation results must be reproducible bit-for-bit from a seed, across
// platforms and standard-library versions — so hetflow ships its own
// xoshiro256** generator and its own distribution transforms instead of
// relying on <random>'s unspecified distribution algorithms.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace hetflow::util {

/// SplitMix64 — used for seeding and cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes two 64-bit values into one (order-sensitive).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds deterministically via SplitMix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x1234abcdULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
  }

  /// Derives an independent child stream; children with different tags
  /// from the same parent are statistically independent.
  [[nodiscard]] Rng split(std::uint64_t tag) const noexcept {
    Rng child(0);
    std::uint64_t sm = hash_combine(state_[0] ^ state_[3], tag);
    for (auto& word : child.state_) {
      word = splitmix64(sm);
    }
    return child;
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Raw 256-bit generator state, for checkpointing a stream mid-run.
  const std::array<std::uint64_t, 4>& state() const noexcept { return state_; }

  /// Restores a state captured with state(). The all-zero state is the
  /// one fixed point of xoshiro256** (the stream would stay zero forever)
  /// and is rejected.
  void set_state(const std::array<std::uint64_t, 4>& state) {
    HETFLOW_REQUIRE_MSG(
        state[0] != 0 || state[1] != 0 || state[2] != 0 || state[3] != 0,
        "refusing to restore the degenerate all-zero rng state");
    state_ = state;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  /// Bernoulli trial with probability p in [0, 1].
  bool bernoulli(double p);

  /// Uniformly chosen index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Picks an index with probability proportional to `weights` (all >= 0,
  /// at least one > 0).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = index(i);
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hetflow::util
