#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/error.hpp"

namespace hetflow::util {

void RunningStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void Sample::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Sample::mean() const noexcept {
  if (values_.empty()) {
    return 0.0;
  }
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double Sample::min() const {
  HETFLOW_REQUIRE(!values_.empty());
  ensure_sorted();
  return values_.front();
}

double Sample::max() const {
  HETFLOW_REQUIRE(!values_.empty());
  ensure_sorted();
  return values_.back();
}

double Sample::quantile(double q) const {
  HETFLOW_REQUIRE_MSG(!values_.empty(), "quantile of empty sample");
  HETFLOW_REQUIRE_MSG(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  ensure_sorted();
  if (values_.size() == 1) {
    return values_.front();
  }
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) {
    return values_.back();
  }
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  HETFLOW_REQUIRE_MSG(hi > lo, "histogram range must be non-empty");
  HETFLOW_REQUIRE_MSG(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const {
  HETFLOW_REQUIRE(i < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t i) const {
  HETFLOW_REQUIRE(i < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::to_ascii(std::size_t max_width) const {
  const std::size_t peak =
      counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * max_width / peak;
    out << '[' << bucket_lo(i) << ", " << bucket_hi(i) << ") "
        << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return out.str();
}

double jain_fairness(const std::vector<double>& loads) noexcept {
  if (loads.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : loads) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) {
    return 1.0;
  }
  return sum * sum / (static_cast<double>(loads.size()) * sum_sq);
}

double coefficient_of_variation(const std::vector<double>& xs) noexcept {
  RunningStats stats;
  for (double x : xs) {
    stats.add(x);
  }
  if (stats.mean() == 0.0) {
    return 0.0;
  }
  return stats.stddev() / stats.mean();
}

}  // namespace hetflow::util
