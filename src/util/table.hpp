// ASCII table renderer used by every bench binary to print paper-style
// tables with aligned columns.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hetflow::util {

/// Collects rows and renders a fixed-width ASCII table:
///
///   +----------+-------+
///   | workflow | HEFT  |
///   +----------+-------+
///   | montage  | 123.4 |
///   +----------+-------+
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Appends one row; width must match the header.
  void add_row(std::vector<std::string> fields);

  /// Numeric convenience — formats with the given printf spec.
  void add_row_mixed(const std::string& label,
                     const std::vector<double>& values,
                     const char* spec = "%.3g");

  std::size_t row_count() const noexcept { return rows_.size(); }

  std::string render() const;
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hetflow::util
