#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace hetflow::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_sink_mutex;
LogSink g_sink;  // empty => default stderr sink

void default_sink(LogLevel level, const std::string& message) {
  std::cerr << "[hetflow:" << to_string(level) << "] " << message << '\n';
}

}  // namespace

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug:
      return "debug";
    case LogLevel::Info:
      return "info";
    case LogLevel::Warn:
      return "warn";
    case LogLevel::Error:
      return "error";
    case LogLevel::Off:
      return "off";
  }
  return "?";
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_sink(LogSink sink) {
  std::lock_guard lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) {
    return;
  }
  // Copy the sink out and invoke it unlocked: a sink that logs (or swaps
  // the sink) from inside its own invocation must not self-deadlock on
  // the non-recursive g_sink_mutex.
  LogSink sink;
  {
    std::lock_guard lock(g_sink_mutex);
    sink = g_sink;
  }
  if (sink) {
    sink(level, message);
  } else {
    default_sink(level, message);
  }
}

}  // namespace hetflow::util
