// CSV emission for benchmark/report output.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hetflow::util {

/// Writes RFC-4180-style CSV: fields containing comma, quote or newline
/// are quoted and inner quotes doubled. The writer enforces a constant
/// column count once the header is set.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes the header row and fixes the column count.
  void header(const std::vector<std::string>& columns);

  /// Writes one data row; must match the header width when one was set.
  void row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with %.6g.
  void row_values(const std::vector<double>& values);

  std::size_t rows_written() const noexcept { return rows_; }

  static std::string escape(const std::string& field);

 private:
  std::ostream* out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace hetflow::util
