// StableVector — a chunked pool with stable element addresses.
//
// The runtime hands out raw Task* pointers (handle-use chains, device
// queues, scheduler state), so task storage must never relocate; the seed
// used one unique_ptr per task — 10^6 individual heap objects with no
// locality. StableVector allocates fixed-size chunks and
// placement-constructs elements into them: one allocation per ChunkElems
// elements, contiguous within a chunk, addresses stable forever, O(1)
// index access. Elements live until clear()/destruction (no per-element
// free — matches the runtime's task lifetime, which is the whole run).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace hetflow::util {

template <typename T, std::size_t ChunkElems = 256>
class StableVector {
  static_assert(ChunkElems > 0, "chunk must hold at least one element");

 public:
  StableVector() = default;
  StableVector(const StableVector&) = delete;
  StableVector& operator=(const StableVector&) = delete;

  StableVector(StableVector&& other) noexcept
      : chunks_(std::move(other.chunks_)), size_(other.size_) {
    other.chunks_.clear();
    other.size_ = 0;
  }

  StableVector& operator=(StableVector&& other) noexcept {
    if (this != &other) {
      clear();
      chunks_ = std::move(other.chunks_);
      size_ = other.size_;
      other.chunks_.clear();
      other.size_ = 0;
    }
    return *this;
  }

  ~StableVector() { clear(); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return *slot(i); }
  const T& operator[](std::size_t i) const noexcept { return *slot(i); }
  T& back() noexcept { return *slot(size_ - 1); }
  const T& back() const noexcept { return *slot(size_ - 1); }

  /// Pre-allocates (and pre-faults) enough chunks for `n` elements.
  /// Callers with a known workload size reserve before a timed region
  /// precisely to move chunk allocation and first-touch page faults out
  /// of it; the memset is the pre-fault (chunk storage is raw bytes —
  /// elements are placement-constructed over it later as usual).
  void reserve(std::size_t n) {
    const std::size_t want = (n + ChunkElems - 1) / ChunkElems;
    while (chunks_.size() < want) {
      chunks_.push_back(make_chunk());
      std::memset(chunks_.back()->storage, 0, ChunkElems * sizeof(T));
    }
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == chunks_.size() * ChunkElems) {
      chunks_.push_back(make_chunk());
    }
    T* fresh = slot(size_);
    ::new (static_cast<void*>(fresh)) T(std::forward<Args>(args)...);
    ++size_;
    return *fresh;
  }

  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) {
      slot(i)->~T();
    }
    size_ = 0;
    chunks_.clear();
  }

  template <typename Self, typename Ref>
  class Iterator {
   public:
    Iterator(Self* owner, std::size_t index) : owner_(owner), index_(index) {}
    Ref operator*() const { return (*owner_)[index_]; }
    Iterator& operator++() {
      ++index_;
      return *this;
    }
    bool operator!=(const Iterator& other) const {
      return index_ != other.index_;
    }
    bool operator==(const Iterator& other) const {
      return index_ == other.index_;
    }

   private:
    Self* owner_;
    std::size_t index_;
  };

  using iterator = Iterator<StableVector, T&>;
  using const_iterator = Iterator<const StableVector, const T&>;

  iterator begin() noexcept { return iterator(this, 0); }
  iterator end() noexcept { return iterator(this, size_); }
  const_iterator begin() const noexcept { return const_iterator(this, 0); }
  const_iterator end() const noexcept { return const_iterator(this, size_); }

 private:
  struct Chunk {
    alignas(T) std::byte storage[ChunkElems * sizeof(T)];
  };

  // Chunks of 2 MiB and up are allocated 2 MiB-aligned and advised to
  // transparent huge pages (Linux, best-effort). A million-element pool
  // walked in completion order touches its pages in an order chosen by
  // the DAG, so the difference between 4 KiB and 2 MiB pages is tens of
  // thousands of first-touch faults plus a dTLB working set the
  // hardware cannot hold — measurable on the 10^6-task bench. Callers
  // opt in simply by sizing ChunkElems past the threshold.
  static constexpr std::size_t kHugeAlign = std::size_t{2} << 20;
  static constexpr bool kHugeChunks =
#if defined(__linux__)
      sizeof(Chunk) >= kHugeAlign;
#else
      false;
#endif

  struct ChunkDeleter {
    void operator()(Chunk* chunk) const noexcept {
      if constexpr (kHugeChunks) {
        std::free(chunk);
      } else {
        delete chunk;
      }
    }
  };
  using ChunkPtr = std::unique_ptr<Chunk, ChunkDeleter>;

  static ChunkPtr make_chunk() {
    if constexpr (kHugeChunks) {
      const std::size_t bytes =
          (sizeof(Chunk) + kHugeAlign - 1) / kHugeAlign * kHugeAlign;
      void* raw = std::aligned_alloc(kHugeAlign, bytes);
      if (raw == nullptr) {
        throw std::bad_alloc();
      }
#if defined(__linux__)
      (void)madvise(raw, bytes, MADV_HUGEPAGE);  // hint; failure is fine
#endif
      return ChunkPtr(::new (raw) Chunk);
    } else {
      return ChunkPtr(new Chunk);
    }
  }

  T* slot(std::size_t i) noexcept {
    return std::launder(reinterpret_cast<T*>(
        chunks_[i / ChunkElems]->storage + (i % ChunkElems) * sizeof(T)));
  }
  const T* slot(std::size_t i) const noexcept {
    return std::launder(reinterpret_cast<const T*>(
        chunks_[i / ChunkElems]->storage + (i % ChunkElems) * sizeof(T)));
  }

  std::vector<ChunkPtr> chunks_;
  std::size_t size_ = 0;
};

}  // namespace hetflow::util
