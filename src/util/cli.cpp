#include "util/cli.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace hetflow::util {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Cli::add_option(const std::string& name,
                     const std::string& default_value,
                     const std::string& help) {
  HETFLOW_REQUIRE_MSG(entries_.count(name) == 0, "duplicate option");
  entries_[name] = Entry{default_value, default_value, help, false, false};
  declaration_order_.push_back(name);
}

void Cli::add_flag(const std::string& name, const std::string& help) {
  HETFLOW_REQUIRE_MSG(entries_.count(name) == 0, "duplicate flag");
  entries_[name] = Entry{"false", "false", help, true, false};
  declaration_order_.push_back(name);
}

Cli::Entry& Cli::lookup(const std::string& name) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw ParseError("unknown option '--" + name + "'");
  }
  return it->second;
}

const Cli::Entry& Cli::lookup(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw ParseError("unknown option '--" + name + "'");
  }
  return it->second;
}

void Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!starts_with(arg, "--")) {
      throw ParseError("unexpected positional argument '" + arg + "'");
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    Entry& entry = lookup(arg);
    if (entry.is_flag) {
      if (has_value) {
        throw ParseError("flag '--" + arg + "' does not take a value");
      }
      entry.value = "true";
    } else {
      if (!has_value) {
        if (i + 1 >= argc) {
          throw ParseError("option '--" + arg + "' expects a value");
        }
        value = argv[++i];
      }
      entry.value = value;
    }
    entry.provided = true;
  }
}

std::string Cli::usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const std::string& name : declaration_order_) {
    const Entry& entry = entries_.at(name);
    out << "  --" << name;
    if (!entry.is_flag) {
      out << " <value>  (default: " << entry.default_value << ")";
    }
    out << "\n      " << entry.help << '\n';
  }
  out << "  --help\n      print this message\n";
  return out.str();
}

const std::string& Cli::value(const std::string& name) const {
  return lookup(name).value;
}

bool Cli::flag(const std::string& name) const {
  const Entry& entry = lookup(name);
  HETFLOW_REQUIRE_MSG(entry.is_flag, "not a flag");
  return entry.value == "true";
}

double Cli::number(const std::string& name) const {
  return parse_scaled(lookup(name).value);
}

bool Cli::provided(const std::string& name) const {
  return lookup(name).provided;
}

}  // namespace hetflow::util
