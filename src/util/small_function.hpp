// SmallFunction — a move-only callable wrapper with guaranteed inline
// storage for small captures.
//
// std::function's small-buffer optimization (16 bytes on libstdc++) is
// smaller than a typical simulator callback capture (`this` + task
// pointer + device id + a couple of doubles ≈ 48 bytes), so every
// EventQueue::schedule_at paid a heap allocation per event. SmallFunction
// inlines captures up to `Capacity` bytes into the object — which the
// event queue's slab then recycles — and falls back to the heap only for
// oversized or throwing-move captures.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace hetflow::util {

template <typename Signature, std::size_t Capacity = 64>
class SmallFunction;

template <typename R, typename... Args, std::size_t Capacity>
class SmallFunction<R(Args...), Capacity> {
 public:
  SmallFunction() noexcept = default;
  // hetflow-lint: allow(hyg-explicit-ctor) — std::function-style nullptr
  SmallFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  // Implicit by design, mirroring std::function — callers hand lambdas
  // straight to schedule_at().  hetflow-lint: allow(hyg-explicit-ctor)
  SmallFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace<std::decay_t<F>>(std::forward<F>(fn));
  }

  SmallFunction(SmallFunction&& other) noexcept { take(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  SmallFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }
  friend bool operator==(const SmallFunction& f, std::nullptr_t) noexcept {
    return f.ops_ == nullptr;
  }
  friend bool operator!=(const SmallFunction& f, std::nullptr_t) noexcept {
    return f.ops_ != nullptr;
  }

  R operator()(Args... args) {
    return ops_->invoke(&storage_, std::forward<Args>(args)...);
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  /// True when the held callable lives inside the object (no heap).
  bool is_inline() const noexcept { return ops_ != nullptr && ops_->inline_; }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src) noexcept;  ///< move + destroy src
    void (*destroy)(void*) noexcept;
    bool inline_;
  };

  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  void emplace(F fn) {
    if constexpr (fits_inline<F>) {
      ::new (static_cast<void*>(&storage_)) F(std::move(fn));
      static constexpr Ops ops = {
          [](void* s, Args&&... args) -> R {
            return (*std::launder(static_cast<F*>(s)))(
                std::forward<Args>(args)...);
          },
          [](void* dst, void* src) noexcept {
            F* from = std::launder(static_cast<F*>(src));
            ::new (dst) F(std::move(*from));
            from->~F();
          },
          [](void* s) noexcept { std::launder(static_cast<F*>(s))->~F(); },
          true};
      ops_ = &ops;
    } else {
      ::new (static_cast<void*>(&storage_)) F*(new F(std::move(fn)));
      static constexpr Ops ops = {
          [](void* s, Args&&... args) -> R {
            return (**std::launder(static_cast<F**>(s)))(
                std::forward<Args>(args)...);
          },
          [](void* dst, void* src) noexcept {
            // The stored F* is trivially destructible; relocation is a copy.
            ::new (dst) F*(*std::launder(static_cast<F**>(src)));
          },
          [](void* s) noexcept { delete *std::launder(static_cast<F**>(s)); },
          false};
      ops_ = &ops;
    }
  }

  /// Moves `other`'s callable into this empty object.
  void take(SmallFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(&storage_, &other.storage_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[Capacity];
};

}  // namespace hetflow::util
