// Determinism rules: byte-identical replay is the repo's core contract
// (jobs-1 vs jobs-8, checkpoint/resume, metrics-off golden paths), so any
// source of run-to-run variation — wall clocks, libc/std randomness,
// hash-order iteration, address-dependent ordering — must go through the
// seeded util/ wrappers or carry an explicit, justified annotation.
#include <set>

#include "lint/project.hpp"
#include "lint/rule.hpp"
#include "lint/scan.hpp"
#include "util/strings.hpp"

namespace hetflow::lint {

namespace {

using scan::after_member_access;
using scan::is_ident;
using scan::is_punct;
using scan::qualified_by_non_std;
using scan::skip_template_args;

/// Files the determinism family never scans: util/ holds the approved
/// wrappers (Rng, seeded distributions) and is the one place allowed to
/// touch primitive sources of entropy.
bool determinism_exempt(const SourceFile& file) {
  return file.subsystem == "util";
}

/// rand()/srand()/time(nullptr)/std::random_device and friends.
class BannedApiRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "det-banned-api"; }
  std::string_view family() const noexcept override { return "determinism"; }
  std::string_view description() const noexcept override {
    return "libc/std randomness and time-of-day APIs are banned outside "
           "util/ (use util::Rng and simulated time)";
  }

  void run(const Project& project,
           std::vector<Finding>& findings) const override {
    // Any use of these identifiers is nondeterministic, call or type.
    static const std::set<std::string, std::less<>> banned_names = {
        "random_device",  "mt19937",
        "mt19937_64",     "minstd_rand",
        "minstd_rand0",   "default_random_engine",
        "ranlux24",       "ranlux48",
        "knuth_b",        "uniform_int_distribution",
        "uniform_real_distribution", "normal_distribution",
        "bernoulli_distribution",    "discrete_distribution",
        "exponential_distribution",  "poisson_distribution"};
    // These only count when invoked as a free function.
    static const std::set<std::string, std::less<>> banned_calls = {
        "rand",     "srand",        "drand48",      "lrand48",
        "srand48",  "gettimeofday", "clock_gettime", "localtime",
        "gmtime",   "strftime",     "mktime"};

    for (const SourceFile& file : project.files) {
      if (determinism_exempt(file)) {
        continue;
      }
      for (const IncludeDirective& inc : file.lex.includes) {
        if (inc.angled && (inc.target == "random" || inc.target == "ctime")) {
          findings.push_back(Finding{
              std::string(id()), Severity::Error, file.path, inc.line,
              "#include <" + inc.target +
                  "> pulls in nondeterministic primitives; use "
                  "util/rng.hpp and simulated time instead"});
        }
      }
      const std::vector<Token>& tokens = file.lex.tokens;
      for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& token = tokens[i];
        if (token.kind != TokenKind::Identifier) {
          continue;
        }
        if (banned_names.count(token.text) != 0 &&
            !qualified_by_non_std(tokens, i) &&
            !after_member_access(tokens, i)) {
          findings.push_back(Finding{
              std::string(id()), Severity::Error, file.path, token.line,
              "std::" + token.text +
                  " is nondeterministic / unspecified across stdlibs; use "
                  "util::Rng"});
          continue;
        }
        const bool call = i + 1 < tokens.size() && is_punct(tokens[i + 1], "(");
        if (call && banned_calls.count(token.text) != 0 &&
            !after_member_access(tokens, i) &&
            !qualified_by_non_std(tokens, i)) {
          findings.push_back(Finding{
              std::string(id()), Severity::Error, file.path, token.line,
              token.text + "() is banned: results must replay bit-for-bit "
                           "from a seed"});
          continue;
        }
        // time(nullptr)/time(0)/time(NULL): `time` alone is too common a
        // member name to ban, so require the literal-argument call shape.
        if (call && token.text == "time" && i + 2 < tokens.size() &&
            !after_member_access(tokens, i) &&
            !qualified_by_non_std(tokens, i)) {
          const Token& arg = tokens[i + 2];
          if (is_ident(arg, "nullptr") || is_ident(arg, "NULL") ||
              (arg.kind == TokenKind::Number && arg.text == "0")) {
            findings.push_back(Finding{
                std::string(id()), Severity::Error, file.path, token.line,
                "time(...) reads the wall clock; simulation timestamps must "
                "come from the event queue"});
          }
        }
      }
    }
  }
};

/// std::chrono wall/monotonic clocks outside util/.
class WallClockRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "det-wallclock"; }
  std::string_view family() const noexcept override { return "determinism"; }
  std::string_view description() const noexcept override {
    return "chrono clocks (system/steady/high_resolution) are banned "
           "outside util/; simulated time is the only clock";
  }

  void run(const Project& project,
           std::vector<Finding>& findings) const override {
    static const std::set<std::string, std::less<>> clocks = {
        "system_clock", "steady_clock", "high_resolution_clock"};
    for (const SourceFile& file : project.files) {
      if (determinism_exempt(file)) {
        continue;
      }
      for (const Token& token : file.lex.tokens) {
        if (token.kind == TokenKind::Identifier &&
            clocks.count(token.text) != 0) {
          findings.push_back(Finding{
              std::string(id()), Severity::Error, file.path, token.line,
              "std::chrono::" + token.text +
                  " reads host time; results would differ across runs "
                  "(annotate only host-side throughput measurements)"});
        }
      }
    }
  }
};

/// Iterating unordered_{map,set} feeds hash order into downstream state.
class UnorderedIterRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "det-unordered-iter";
  }
  std::string_view family() const noexcept override { return "determinism"; }
  std::string_view description() const noexcept override {
    return "iteration over unordered_map/unordered_set in non-test code "
           "(hash order is implementation-defined; use std::map or sort)";
  }

  void run(const Project& project,
           std::vector<Finding>& findings) const override {
    for (const SourceFile& file : project.files) {
      if (determinism_exempt(file) || file.is_test) {
        continue;
      }
      const std::vector<Token>& tokens = file.lex.tokens;

      // Pass 1: names declared with an unordered container type in this
      // file (members, locals, params, and functions returning one).
      std::set<std::string> unordered_names;
      for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (!is_ident(tokens[i], "unordered_map") &&
            !is_ident(tokens[i], "unordered_set") &&
            !is_ident(tokens[i], "unordered_multimap") &&
            !is_ident(tokens[i], "unordered_multiset")) {
          continue;
        }
        std::size_t j = skip_template_args(tokens, i + 1);
        while (j < tokens.size() &&
               (is_punct(tokens[j], "&") || is_punct(tokens[j], "*") ||
                is_ident(tokens[j], "const"))) {
          ++j;
        }
        if (j < tokens.size() && tokens[j].kind == TokenKind::Identifier) {
          unordered_names.insert(tokens[j].text);
        }
      }
      if (unordered_names.empty()) {
        continue;
      }

      for (std::size_t i = 0; i < tokens.size(); ++i) {
        // Range-for whose range expression names an unordered container.
        if (is_ident(tokens[i], "for") && i + 1 < tokens.size() &&
            is_punct(tokens[i + 1], "(")) {
          int depth = 0;
          std::size_t colon = 0;
          std::size_t close = 0;
          for (std::size_t j = i + 1; j < tokens.size(); ++j) {
            if (is_punct(tokens[j], "(")) {
              ++depth;
            } else if (is_punct(tokens[j], ")")) {
              if (--depth == 0) {
                close = j;
                break;
              }
            } else if (depth == 1 && colon == 0 && is_punct(tokens[j], ":")) {
              colon = j;
            } else if (depth == 1 && is_punct(tokens[j], ";")) {
              break;  // classic for loop, not range-for
            }
          }
          if (colon != 0 && close != 0) {
            for (std::size_t j = colon + 1; j < close; ++j) {
              if (tokens[j].kind == TokenKind::Identifier &&
                  unordered_names.count(tokens[j].text) != 0 &&
                  !after_member_access(tokens, j)) {
                findings.push_back(unordered_finding(file, tokens[i].line,
                                                     tokens[j].text));
                break;
              }
            }
          }
          continue;
        }
        // name.begin()/cbegin(): explicit iterator walks and algorithms.
        if (tokens[i].kind == TokenKind::Identifier &&
            unordered_names.count(tokens[i].text) != 0 &&
            !after_member_access(tokens, i) && i + 2 < tokens.size() &&
            is_punct(tokens[i + 1], ".") &&
            (is_ident(tokens[i + 2], "begin") ||
             is_ident(tokens[i + 2], "cbegin"))) {
          findings.push_back(
              unordered_finding(file, tokens[i].line, tokens[i].text));
        }
      }
    }
  }

 private:
  Finding unordered_finding(const SourceFile& file, int line,
                            const std::string& name) const {
    return Finding{std::string(id()), Severity::Error, file.path, line,
                   "iteration over unordered container '" + name +
                       "' feeds hash order into program state; iterate a "
                       "sorted copy or switch to std::map"};
  }
};

/// Pointer values must never order or format output.
class PointerOrderRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "det-pointer-order";
  }
  std::string_view family() const noexcept override { return "determinism"; }
  std::string_view description() const noexcept override {
    return "pointer-keyed ordered containers and pointer formatting leak "
           "address-space layout into output";
  }

  void run(const Project& project,
           std::vector<Finding>& findings) const override {
    for (const SourceFile& file : project.files) {
      if (determinism_exempt(file)) {
        continue;
      }
      const std::vector<Token>& tokens = file.lex.tokens;
      for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& token = tokens[i];
        // The rule's own pattern and message literals mention the banned
        // "%p" conversion, hence the self-suppressions below.
        if (token.kind == TokenKind::String &&
            // hetflow-lint: allow(det-pointer-order)
            token.text.find("%p") != std::string::npos) {
          findings.push_back(Finding{
              std::string(id()), Severity::Error, file.path, token.line,
              // hetflow-lint: allow(det-pointer-order)
              "\"%p\" formats a raw address; pointer values differ every "
              "run under ASLR"});
          continue;
        }
        // std::map<T*, ...> / std::set<T*>: iteration order is the
        // addresses themselves.
        if (token.kind == TokenKind::Identifier &&
            (token.text == "map" || token.text == "set" ||
             token.text == "multimap" || token.text == "multiset") &&
            !qualified_by_non_std(tokens, i) && i + 1 < tokens.size() &&
            is_punct(tokens[i + 1], "<")) {
          int depth = 0;
          for (std::size_t j = i + 1; j < tokens.size(); ++j) {
            if (is_punct(tokens[j], "<")) {
              ++depth;
            } else if (is_punct(tokens[j], ">") ||
                       is_punct(tokens[j], ">>")) {
              break;  // end of first (or only) template argument list
            } else if (depth == 1 && is_punct(tokens[j], ",")) {
              break;  // end of the key type
            } else if (depth == 1 && is_punct(tokens[j], "*")) {
              findings.push_back(Finding{
                  std::string(id()), Severity::Error, file.path, token.line,
                  "std::" + token.text +
                      " keyed by a pointer orders elements by address; key "
                      "by a stable id instead"});
              break;
            }
          }
        }
      }
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> make_determinism_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<BannedApiRule>());
  rules.push_back(std::make_unique<WallClockRule>());
  rules.push_back(std::make_unique<UnorderedIterRule>());
  rules.push_back(std::make_unique<PointerOrderRule>());
  return rules;
}

}  // namespace hetflow::lint
