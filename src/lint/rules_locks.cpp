// Lock-discipline rules. The thread-confinement contract
// (docs/parallelism.md) keeps simulation state single-threaded; the few
// places that do lock (thread pool, log sink) must never deadlock. Two
// rules enforce that statically:
//
//   lock-order-cycle — a global acquisition-order graph over every
//     lock_guard/unique_lock/scoped_lock/.lock() site; any cycle (including
//     re-acquiring a held mutex) is a potential deadlock.
//   lock-callback    — invoking a user-supplied callable (std::function
//     members, sinks, handlers) while holding a lock hands the callee a
//     chance to re-enter and self-deadlock.
//
// Mutexes are keyed "<path-sans-extension>::<expression>" so a class's
// .hpp/.cpp share identity; cross-file aliasing of one mutex object is
// out of scope for a token-level analyzer (documented limitation).
#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "lint/project.hpp"
#include "lint/rule.hpp"
#include "lint/scan.hpp"
#include "util/strings.hpp"

namespace hetflow::lint {

namespace {

using scan::after_member_access;
using scan::is_ident;
using scan::is_punct;
using scan::skip_template_args;

struct Acquisition {
  std::string mutex_key;
  int brace_depth = 0;  ///< scope the RAII guard lives in
  int line = 0;
  bool released = false;  ///< via .unlock() on the guard/mutex
  std::string guard_name;  ///< RAII variable, for .unlock() matching
};

struct LockSite {
  std::string file;
  int line = 0;
};

/// Per-project accumulation shared by both lock rules: edges of the
/// acquisition-order graph and every callback-under-lock site.
struct LockModel {
  /// held-mutex -> then-acquired-mutex, first site that created the edge.
  std::map<std::pair<std::string, std::string>, LockSite> edges;
  struct CallbackSite {
    std::string file;
    int line = 0;
    std::string callee;
    std::string held;  ///< comma-joined held mutex keys
  };
  std::vector<CallbackSite> callbacks;
};

bool is_guard_type(const Token& token) {
  return is_ident(token, "lock_guard") || is_ident(token, "unique_lock") ||
         is_ident(token, "scoped_lock") || is_ident(token, "shared_lock");
}

/// Heuristic: identifiers that name user-supplied callables.
bool callback_name(const std::string& name) {
  static const std::set<std::string, std::less<>> exact = {
      "callback", "cb",   "fn",           "func",    "functor",
      "handler",  "job",  "sink",         "hook",    "continuation",
      "on_done",  "cont", "on_complete",  "visitor", "action"};
  return exact.count(name) != 0 || util::ends_with(name, "_callback") ||
         util::ends_with(name, "_cb") || util::ends_with(name, "_fn") ||
         util::ends_with(name, "_sink") || util::ends_with(name, "_handler") ||
         util::ends_with(name, "_hook") || util::starts_with(name, "on_");
}

/// File-stem key so thread_pool.hpp and thread_pool.cpp agree.
std::string stem_of(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(0, dot);
}

/// Splits the parenthesized argument list starting at tokens[open] == "("
/// into top-level argument expressions ("this->mutex_" -> "mutex_").
std::vector<std::string> argument_exprs(const std::vector<Token>& tokens,
                                        std::size_t open) {
  std::vector<std::string> args;
  std::string expr;
  const auto flush = [&args, &expr]() {
    if (util::starts_with(expr, "this->")) {
      expr.erase(0, 6);
    }
    if (!expr.empty()) {
      args.push_back(expr);
    }
    expr.clear();
  };
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (is_punct(tokens[i], "(")) {
      if (depth++ > 0) {
        expr += "(";
      }
    } else if (is_punct(tokens[i], ")")) {
      if (--depth == 0) {
        flush();
        break;
      }
      expr += ")";
    } else if (depth == 1 && is_punct(tokens[i], ",")) {
      flush();
    } else {
      expr += tokens[i].text;
    }
  }
  return args;
}

void scan_file(const SourceFile& file, LockModel& model) {
  const std::vector<Token>& tokens = file.lex.tokens;
  const std::string stem = stem_of(file.path);
  std::vector<Acquisition> active;
  int depth = 0;

  const auto held_keys = [&active]() {
    std::vector<std::string> keys;
    for (const Acquisition& acq : active) {
      if (!acq.released) {
        keys.push_back(acq.mutex_key);
      }
    }
    return keys;
  };

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (is_punct(token, "{")) {
      ++depth;
      continue;
    }
    if (is_punct(token, "}")) {
      --depth;
      while (!active.empty() && active.back().brace_depth > depth) {
        active.pop_back();
      }
      if (depth <= 0) {
        active.clear();  // end of any function body
        depth = std::max(depth, 0);
      }
      continue;
    }

    // RAII guard declaration: lock_guard[<...>] name(mutex[, ...]);
    if (is_guard_type(token) && !after_member_access(tokens, i)) {
      std::size_t j = skip_template_args(tokens, i + 1);
      if (j >= tokens.size() || tokens[j].kind != TokenKind::Identifier) {
        continue;
      }
      const std::string guard = tokens[j].text;
      if (j + 1 >= tokens.size() || !is_punct(tokens[j + 1], "(")) {
        continue;  // e.g. a type mention, not a declaration
      }
      // Collect every mutex argument (scoped_lock may take several);
      // tag arguments (defer_lock & co.) mean "no acquisition here".
      std::vector<std::string> mutexes;
      bool tagged = false;  // defer/try/adopt: no *new* acquisition here
      for (const std::string& expr : argument_exprs(tokens, j + 1)) {
        if (expr == "std::defer_lock" || expr == "defer_lock" ||
            expr == "std::try_to_lock" || expr == "try_to_lock" ||
            expr == "std::adopt_lock" || expr == "adopt_lock") {
          tagged = true;
        } else {
          mutexes.push_back(expr);
        }
      }
      if (tagged) {
        mutexes.clear();
      }
      const std::vector<std::string> held = held_keys();
      for (const std::string& mutex : mutexes) {
        const std::string key = stem + "::" + mutex;
        for (const std::string& prior : held) {
          if (model.edges.count({prior, key}) == 0) {
            model.edges[{prior, key}] = LockSite{file.path, token.line};
          }
        }
        active.push_back(
            Acquisition{key, depth, token.line, false, guard});
      }
      i = j + 1;
      continue;
    }

    // Direct mutex_.lock() / guard.unlock() / cv.wait(lock) handling.
    if (token.kind == TokenKind::Identifier && i + 2 < tokens.size() &&
        is_punct(tokens[i + 1], ".") &&
        tokens[i + 2].kind == TokenKind::Identifier) {
      const std::string& object = token.text;
      const std::string& method = tokens[i + 2].text;
      if (method == "unlock") {
        for (Acquisition& acq : active) {
          if (acq.guard_name == object ||
              acq.mutex_key == stem + "::" + object) {
            acq.released = true;
          }
        }
      } else if (method == "lock" && i + 3 < tokens.size() &&
                 is_punct(tokens[i + 3], "(")) {
        // Re-lock of a released guard, or a bare mutex.lock().
        bool relocked = false;
        for (Acquisition& acq : active) {
          if (acq.guard_name == object && acq.released) {
            acq.released = false;
            relocked = true;
          }
        }
        if (!relocked) {
          const std::string key = stem + "::" + object;
          for (const std::string& prior : held_keys()) {
            if (model.edges.count({prior, key}) == 0) {
              model.edges[{prior, key}] = LockSite{file.path, token.line};
            }
          }
          active.push_back(Acquisition{key, depth, token.line, false, ""});
        }
      }
    }

    // Callback invocation while a lock is held.
    if (token.kind == TokenKind::Identifier && i + 1 < tokens.size() &&
        is_punct(tokens[i + 1], "(") && callback_name(token.text) &&
        !scan::qualified_by_non_std(tokens, i) &&
        (i == 0 || !is_punct(tokens[i - 1], "::"))) {
      const std::vector<std::string> held = held_keys();
      if (!held.empty()) {
        model.callbacks.push_back(LockModel::CallbackSite{
            file.path, token.line, token.text, util::join(held, ", ")});
      }
    }
    // std::invoke(fn, ...) under a lock counts too.
    if (is_ident(token, "invoke") && i + 1 < tokens.size() &&
        is_punct(tokens[i + 1], "(")) {
      const std::vector<std::string> held = held_keys();
      if (!held.empty()) {
        model.callbacks.push_back(LockModel::CallbackSite{
            file.path, token.line, "std::invoke", util::join(held, ", ")});
      }
    }
  }
}

LockModel build_model(const Project& project) {
  LockModel model;
  for (const SourceFile& file : project.files) {
    scan_file(file, model);
  }
  return model;
}

class LockOrderCycleRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "lock-order-cycle"; }
  std::string_view family() const noexcept override { return "locks"; }
  std::string_view description() const noexcept override {
    return "the global lock acquisition-order graph must stay acyclic "
           "(a cycle is a potential deadlock)";
  }

  void run(const Project& project,
           std::vector<Finding>& findings) const override {
    const LockModel model = build_model(project);
    // Self-edges first: re-acquiring a held (non-recursive) mutex.
    std::map<std::string, std::set<std::string>> graph;
    for (const auto& [edge, site] : model.edges) {
      if (edge.first == edge.second) {
        findings.push_back(Finding{
            std::string(id()), Severity::Error, site.file, site.line,
            "mutex '" + edge.first +
                "' re-acquired while already held — immediate deadlock on "
                "a non-recursive mutex"});
        continue;
      }
      graph[edge.first].insert(edge.second);
    }
    // DFS cycle detection over the remaining order graph.
    std::map<std::string, int> state;
    std::vector<std::string> stack;
    std::set<std::string> reported;
    const std::function<void(const std::string&)> visit =
        [&](const std::string& node) {
          state[node] = 1;
          stack.push_back(node);
          for (const std::string& next : graph[node]) {
            if (state[next] == 0) {
              visit(next);
            } else if (state[next] == 1) {
              std::vector<std::string> cycle(
                  std::find(stack.begin(), stack.end(), next), stack.end());
              std::vector<std::string> key = cycle;
              std::sort(key.begin(), key.end());
              if (reported.insert(util::join(key, "|")).second) {
                cycle.push_back(next);
                const LockSite& site =
                    model.edges.at({node, next});
                findings.push_back(Finding{
                    std::string(id()), Severity::Error, site.file, site.line,
                    "lock-order cycle: " + util::join(cycle, " -> ")});
              }
            }
          }
          stack.pop_back();
          state[node] = 2;
        };
    for (const auto& [node, _] : graph) {
      if (state[node] == 0) {
        visit(node);
      }
    }
  }
};

class LockCallbackRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "lock-callback"; }
  std::string_view family() const noexcept override { return "locks"; }
  std::string_view description() const noexcept override {
    return "user-supplied callables must not be invoked while a lock is "
           "held (re-entrant callees self-deadlock)";
  }

  void run(const Project& project,
           std::vector<Finding>& findings) const override {
    const LockModel model = build_model(project);
    for (const LockModel::CallbackSite& site : model.callbacks) {
      findings.push_back(Finding{
          std::string(id()), Severity::Error, site.file, site.line,
          "callback '" + site.callee + "' invoked while holding {" +
              site.held +
              "}; copy it out and invoke after releasing the lock"});
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> make_lock_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<LockOrderCycleRule>());
  rules.push_back(std::make_unique<LockCallbackRule>());
  return rules;
}

}  // namespace hetflow::lint
