// hetflow_lint analyzer: runs the rule registry over a Project, applies
// inline `hetflow-lint: allow(...)` suppressions and the checked-in
// baseline, and renders text/JSON reports.
//
// Static complement to the dynamic `hetflow_check`: hetflow_check proves a
// *run* obeyed the invariants; hetflow_lint proves the *source* cannot
// reintroduce whole classes of violations (see docs/static_analysis.md).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lint/project.hpp"
#include "lint/rule.hpp"

namespace hetflow::lint {

/// Findings accepted as pre-existing. Entries are line-number-free
/// ("rule|path|hash-of-source-line") so unrelated edits do not invalidate
/// them; lines starting with '#' are comments.
class Baseline {
 public:
  static Baseline parse(const std::string& text);

  /// Serializes `findings` as baseline entries (sorted, deduplicated).
  static std::string render(const std::vector<Finding>& findings,
                            const Project& project);

  bool contains(const Finding& finding, const Project& project) const;
  std::size_t size() const noexcept { return entries_.size(); }

 private:
  static std::string key_for(const Finding& finding, const Project& project);
  std::set<std::string> entries_;
};

struct AnalysisResult {
  std::vector<Finding> findings;  ///< sorted; includes suppressed ones
  std::size_t files_scanned = 0;
  std::size_t rules_run = 0;

  std::size_t unsuppressed() const noexcept;
};

/// Runs every rule (or only those named in `rule_filter`) and applies
/// suppressions. Throws InvalidArgument for unknown rule ids in the filter.
AnalysisResult analyze(const Project& project,
                       const std::vector<std::string>& rule_filter,
                       const Baseline& baseline);

/// One line per unsuppressed finding plus a summary footer.
std::string render_text(const AnalysisResult& result);

/// Machine-readable report: schema documented in docs/static_analysis.md.
std::string render_json(const AnalysisResult& result);

/// "id  family  description" catalog of every registered rule.
std::string render_rule_list();

}  // namespace hetflow::lint
