#include "lint/rule.hpp"

#include "util/strings.hpp"

namespace hetflow::lint {

const char* to_string(Severity severity) noexcept {
  return severity == Severity::Error ? "error" : "warning";
}

std::string Finding::describe() const {
  return util::format("%s:%d: %s: [%s] %s", file.c_str(), line,
                      to_string(severity), rule.c_str(), message.c_str());
}

std::vector<std::unique_ptr<Rule>> make_all_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  for (auto maker : {make_determinism_rules, make_layering_rules,
                     make_lock_rules, make_hygiene_rules}) {
    for (auto& rule : maker()) {
      rules.push_back(std::move(rule));
    }
  }
  return rules;
}

}  // namespace hetflow::lint
