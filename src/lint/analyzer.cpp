#include "lint/analyzer.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace hetflow::lint {

namespace {

/// Stable 16-hex-digit hash of a source line (whitespace-trimmed), used
/// for line-number-free baseline entries.
std::string line_hash(const std::string& line) {
  const std::string_view trimmed = util::trim(line);
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const char c : trimmed) {
    h = util::hash_combine(h, static_cast<std::uint64_t>(
                                  static_cast<unsigned char>(c)));
  }
  return util::format("%016llx", static_cast<unsigned long long>(h));
}

const std::string& source_line(const Project& project,
                               const Finding& finding) {
  static const std::string empty;
  const SourceFile* file = project.find(finding.file);
  if (file == nullptr || finding.line < 1 ||
      static_cast<std::size_t>(finding.line) > file->lines.size()) {
    return empty;
  }
  return file->lines[static_cast<std::size_t>(finding.line) - 1];
}

bool allows_cover(const std::vector<std::string>& allows,
                  const std::string& rule) {
  return std::any_of(allows.begin(), allows.end(),
                     [&rule](const std::string& allowed) {
                       return allowed == "*" || allowed == rule;
                     });
}

/// Inline annotation on the finding's line, the line above, or file-wide.
bool annotation_suppresses(const Finding& finding, const Project& project) {
  const SourceFile* file = project.find(finding.file);
  if (file == nullptr) {
    return false;
  }
  if (allows_cover(file->lex.allows_file, finding.rule)) {
    return true;
  }
  for (const int line : {finding.line, finding.line - 1}) {
    const auto hit = file->lex.allows.find(line);
    if (hit != file->lex.allows.end() &&
        allows_cover(hit->second, finding.rule)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::string Baseline::key_for(const Finding& finding,
                              const Project& project) {
  return finding.rule + "|" + finding.file + "|" +
         line_hash(source_line(project, finding));
}

Baseline Baseline::parse(const std::string& text) {
  Baseline baseline;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') {
      continue;
    }
    baseline.entries_.insert(std::string(trimmed));
  }
  return baseline;
}

std::string Baseline::render(const std::vector<Finding>& findings,
                             const Project& project) {
  std::set<std::string> keys;
  for (const Finding& finding : findings) {
    if (!finding.suppressed) {
      keys.insert(key_for(finding, project));
    }
  }
  std::string out =
      "# hetflow_lint baseline — accepted pre-existing findings.\n"
      "# Entries are rule|file|hash-of-source-line; regenerate with\n"
      "#   hetflow_lint --write-baseline <file> <paths...>\n";
  for (const std::string& key : keys) {
    out += key + "\n";
  }
  return out;
}

bool Baseline::contains(const Finding& finding,
                        const Project& project) const {
  return entries_.count(key_for(finding, project)) != 0;
}

std::size_t AnalysisResult::unsuppressed() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [](const Finding& f) { return !f.suppressed; }));
}

AnalysisResult analyze(const Project& project,
                       const std::vector<std::string>& rule_filter,
                       const Baseline& baseline) {
  const std::vector<std::unique_ptr<Rule>> rules = make_all_rules();
  for (const std::string& wanted : rule_filter) {
    const bool known =
        std::any_of(rules.begin(), rules.end(),
                    [&wanted](const std::unique_ptr<Rule>& rule) {
                      return rule->id() == wanted ||
                             rule->family() == wanted;
                    });
    if (!known) {
      throw InvalidArgument("hetflow_lint: unknown rule or family '" +
                            wanted + "' (see --list-rules)");
    }
  }

  AnalysisResult result;
  result.files_scanned = project.files.size();
  for (const std::unique_ptr<Rule>& rule : rules) {
    if (!rule_filter.empty() &&
        std::none_of(rule_filter.begin(), rule_filter.end(),
                     [&rule](const std::string& wanted) {
                       return rule->id() == wanted ||
                              rule->family() == wanted;
                     })) {
      continue;
    }
    ++result.rules_run;
    rule->run(project, result.findings);
  }

  for (Finding& finding : result.findings) {
    finding.suppressed = annotation_suppresses(finding, project) ||
                         baseline.contains(finding, project);
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return result;
}

std::string render_text(const AnalysisResult& result) {
  std::string out;
  for (const Finding& finding : result.findings) {
    if (!finding.suppressed) {
      out += finding.describe() + "\n";
    }
  }
  const std::size_t suppressed =
      result.findings.size() - result.unsuppressed();
  out += util::format(
      "hetflow_lint: %zu finding(s) (%zu suppressed) — %zu file(s), "
      "%zu rule(s)\n",
      result.unsuppressed(), suppressed, result.files_scanned,
      result.rules_run);
  return out;
}

std::string render_json(const AnalysisResult& result) {
  util::Json findings = util::Json::array();
  for (const Finding& finding : result.findings) {
    util::Json entry = util::Json::object();
    entry["rule"] = finding.rule;
    entry["severity"] = to_string(finding.severity);
    entry["file"] = finding.file;
    entry["line"] = finding.line;
    entry["message"] = finding.message;
    entry["suppressed"] = finding.suppressed;
    findings.push_back(std::move(entry));
  }
  util::Json doc = util::Json::object();
  doc["findings"] = std::move(findings);
  doc["files_scanned"] = result.files_scanned;
  doc["rules_run"] = result.rules_run;
  doc["total"] = result.findings.size();
  doc["unsuppressed"] = result.unsuppressed();
  return doc.dump_pretty() + "\n";
}

std::string render_rule_list() {
  std::string out;
  for (const std::unique_ptr<Rule>& rule : make_all_rules()) {
    out += util::format("%-22s %-12s %s\n",
                        std::string(rule->id()).c_str(),
                        std::string(rule->family()).c_str(),
                        std::string(rule->description()).c_str());
  }
  return out;
}

}  // namespace hetflow::lint
