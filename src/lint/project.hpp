// hetflow_lint project model: the loaded file set plus the resolved
// project-local include graph that the layering rules traverse.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lint/source.hpp"

namespace hetflow::lint {

struct ProjectOptions {
  /// Run the header self-containment probe (spawns the compiler once per
  /// header — opt-in because it dominates runtime).
  bool probe_headers = false;
  std::string compiler = "c++";
  /// Include roots handed to the probe compiler (-I each).
  std::vector<std::string> include_dirs = {"src", "tests", "bench", "tools"};
};

/// One resolved project-internal include edge.
struct IncludeEdge {
  std::string target;  ///< repo-relative path of the included file
  int line = 0;
};

struct Project {
  std::vector<SourceFile> files;
  /// file path -> its resolved project-internal includes. Unresolvable
  /// (system or out-of-set) includes are not edges.
  std::map<std::string, std::vector<IncludeEdge>> includes;
  ProjectOptions options;

  const SourceFile* find(const std::string& path) const;
};

/// Resolves `#include "..."` targets against the includer's directory and
/// the standard roots (src/, tests/, bench/, tools/) over the loaded set.
Project build_project(std::vector<SourceFile> files, ProjectOptions options);

}  // namespace hetflow::lint
