// Hygiene rules: include guards, `using namespace` in headers, and
// implicit single-argument constructors in src/.
#include <set>

#include "lint/project.hpp"
#include "lint/rule.hpp"
#include "lint/scan.hpp"
#include "util/strings.hpp"

namespace hetflow::lint {

namespace {

using scan::is_ident;
using scan::is_punct;
using scan::skip_template_args;

class IncludeGuardRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "hyg-include-guard"; }
  std::string_view family() const noexcept override { return "hygiene"; }
  std::string_view description() const noexcept override {
    return "headers need #pragma once or a classic include guard";
  }

  void run(const Project& project,
           std::vector<Finding>& findings) const override {
    for (const SourceFile& file : project.files) {
      if (file.is_header && !file.lex.has_pragma_once &&
          !file.lex.has_include_guard) {
        findings.push_back(Finding{
            std::string(id()), Severity::Warning, file.path, 1,
            "header has neither #pragma once nor an include guard"});
      }
    }
  }
};

class UsingNamespaceRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "hyg-using-namespace";
  }
  std::string_view family() const noexcept override { return "hygiene"; }
  std::string_view description() const noexcept override {
    return "`using namespace` in a header leaks into every includer";
  }

  void run(const Project& project,
           std::vector<Finding>& findings) const override {
    for (const SourceFile& file : project.files) {
      if (!file.is_header) {
        continue;
      }
      const std::vector<Token>& tokens = file.lex.tokens;
      for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (is_ident(tokens[i], "using") &&
            is_ident(tokens[i + 1], "namespace")) {
          findings.push_back(Finding{
              std::string(id()), Severity::Warning, file.path,
              tokens[i].line,
              "`using namespace` in a header pollutes every translation "
              "unit that includes it"});
        }
      }
    }
  }
};

/// Single-argument constructors in src/ must be `explicit` (or annotated
/// where implicit conversion is the intended API, e.g. util::Json).
class ExplicitCtorRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "hyg-explicit-ctor"; }
  std::string_view family() const noexcept override { return "hygiene"; }
  std::string_view description() const noexcept override {
    return "single-argument constructors in src/ must be explicit";
  }

  void run(const Project& project,
           std::vector<Finding>& findings) const override {
    for (const SourceFile& file : project.files) {
      if (!util::starts_with(file.path, "src/")) {
        continue;
      }
      scan_file(file, findings);
    }
  }

 private:
  struct ClassScope {
    std::string name;
    int open_depth = 0;  ///< brace depth of the class's own '{'
  };

  void scan_file(const SourceFile& file,
                 std::vector<Finding>& findings) const {
    const std::vector<Token>& tokens = file.lex.tokens;
    std::vector<ClassScope> classes;
    int depth = 0;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& token = tokens[i];
      if (is_punct(token, "{")) {
        ++depth;
        continue;
      }
      if (is_punct(token, "}")) {
        --depth;
        while (!classes.empty() && classes.back().open_depth > depth) {
          classes.pop_back();
        }
        continue;
      }
      // Class definition head: class/struct Name ... {  (skip forward
      // declarations, `enum class`, and template parameter lists).
      if ((is_ident(token, "class") || is_ident(token, "struct")) &&
          (i == 0 || !is_ident(tokens[i - 1], "enum")) &&
          i + 1 < tokens.size() &&
          tokens[i + 1].kind == TokenKind::Identifier) {
        const std::string name = tokens[i + 1].text;
        std::size_t j = i + 2;
        bool is_definition = false;
        while (j < tokens.size()) {
          if (is_punct(tokens[j], "<")) {
            j = skip_template_args(tokens, j);
            continue;
          }
          if (is_punct(tokens[j], "{")) {
            is_definition = true;
            break;
          }
          if (is_punct(tokens[j], ";") || is_punct(tokens[j], ">") ||
              is_punct(tokens[j], ")") || is_punct(tokens[j], ",")) {
            break;  // fwd decl or template/function parameter
          }
          ++j;
        }
        if (is_definition) {
          classes.push_back(ClassScope{name, depth + 1});
          // fall through: '{' is consumed on the next iteration
        }
        continue;
      }
      // Constructor of the innermost class at member depth.
      if (!classes.empty() && token.kind == TokenKind::Identifier &&
          token.text == classes.back().name &&
          depth == classes.back().open_depth && i + 1 < tokens.size() &&
          is_punct(tokens[i + 1], "(") && is_plain_ctor_decl(tokens, i)) {
        check_constructor(file, tokens, i, classes.back().name, findings);
      }
    }
  }

  /// A plain (non-explicit) constructor *declaration* starts a member
  /// declaration: after skipping constexpr/inline, the preceding token is
  /// a statement boundary. Anything else (`explicit`, `~Name`, a ctor
  /// *call* after '=' or 'return', a delegating `: Name(...)`) is not a
  /// finding site.
  static bool is_plain_ctor_decl(const std::vector<Token>& tokens,
                                 std::size_t i) {
    while (i > 0 && (is_ident(tokens[i - 1], "constexpr") ||
                     is_ident(tokens[i - 1], "inline"))) {
      --i;
    }
    if (i == 0) {
      return true;
    }
    const Token& prev = tokens[i - 1];
    if (is_punct(prev, ";") || is_punct(prev, "{") || is_punct(prev, "}")) {
      return true;
    }
    // Access-specifier colon ("public:") — but not a ctor-init-list or
    // delegating constructor, whose ':' follows the parameter list's ')'.
    if (is_punct(prev, ":") && i >= 2 && !is_punct(tokens[i - 2], ")")) {
      return true;
    }
    return false;
  }

  void check_constructor(const SourceFile& file,
                         const std::vector<Token>& tokens, std::size_t name_at,
                         const std::string& class_name,
                         std::vector<Finding>& findings) const {
    // Split parameters at top level.
    std::vector<std::vector<const Token*>> params;
    std::vector<const Token*> current;
    int depth = 0;
    std::size_t i = name_at + 1;
    for (; i < tokens.size(); ++i) {
      const Token& token = tokens[i];
      if (is_punct(token, "(")) {
        if (depth++ > 0) {
          current.push_back(&token);
        }
        continue;
      }
      if (is_punct(token, ")")) {
        if (--depth == 0) {
          break;
        }
        current.push_back(&token);
        continue;
      }
      if (depth == 1 && is_punct(token, ",")) {
        params.push_back(current);
        current.clear();
        continue;
      }
      current.push_back(&token);
    }
    if (!current.empty()) {
      params.push_back(current);
    }
    if (params.empty()) {
      return;  // default ctor
    }
    // Copy/move ctor or a parameter pack: not a conversion hazard we can
    // reason about at token level.
    for (const Token* t : params.front()) {
      if (t->kind == TokenKind::Identifier && t->text == class_name) {
        return;
      }
    }
    for (const auto& param : params) {
      for (const Token* t : param) {
        if (t->kind == TokenKind::Punct && t->text == ".") {
          return;  // "..." pack (lexed as '.' '.' '.')
        }
      }
    }
    // Callable with one argument: first param mandatory, rest defaulted.
    bool single_arg = params.size() == 1;
    if (!single_arg) {
      single_arg = true;
      for (std::size_t p = 1; p < params.size(); ++p) {
        bool has_default = false;
        int d = 0;
        for (const Token* t : params[p]) {
          if (t->kind == TokenKind::Punct &&
              (t->text == "<" || t->text == "(" || t->text == "{")) {
            ++d;
          } else if (t->kind == TokenKind::Punct &&
                     (t->text == ">" || t->text == ")" || t->text == "}")) {
            --d;
          } else if (d == 0 && t->kind == TokenKind::Punct &&
                     t->text == "=") {
            has_default = true;
            break;
          }
        }
        if (!has_default) {
          single_arg = false;
          break;
        }
      }
    }
    if (single_arg) {
      findings.push_back(Finding{
          std::string(id()), Severity::Warning, file.path,
          tokens[name_at].line,
          "constructor '" + class_name +
              "' is callable with one argument but not explicit — it "
              "defines an implicit conversion"});
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> make_hygiene_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<IncludeGuardRule>());
  rules.push_back(std::make_unique<UsingNamespaceRule>());
  rules.push_back(std::make_unique<ExplicitCtorRule>());
  return rules;
}

}  // namespace hetflow::lint
