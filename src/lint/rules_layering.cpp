// Layering rules: the subsystem include DAG mirrors src/CMakeLists.txt.
// Each module may include itself and the modules below it; split files
// (check/audit.*, check/dag.*, exec/sweep.*) are judged as the library
// they actually compile into. Cycles in the header include graph and
// headers that do not parse standalone are separate findings.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>

#include "lint/project.hpp"
#include "lint/rule.hpp"
#include "util/strings.hpp"

namespace hetflow::lint {

namespace {

/// module -> modules it may include. Top-level trees (tools, bench,
/// tests, examples) may include anything and are absent from the table.
const std::map<std::string, std::set<std::string>>& allowed_deps() {
  static const std::map<std::string, std::set<std::string>> table = {
      {"util", {"util"}},
      {"sim", {"sim", "util"}},
      {"hw", {"hw", "sim", "util"}},
      {"trace", {"trace", "hw", "sim", "util"}},
      {"obs", {"obs", "trace", "hw", "sim", "util"}},
      {"data", {"data", "obs", "trace", "hw", "sim", "util"}},
      {"perf", {"perf", "hw", "sim", "util"}},
      {"check",
       {"check", "data", "obs", "trace", "perf", "hw", "sim", "util"}},
      {"core",
       {"core", "check", "data", "obs", "perf", "trace", "hw", "sim",
        "util"}},
      {"sched",
       {"sched", "core", "check", "data", "obs", "perf", "trace", "hw",
        "sim", "util"}},
      {"exec", {"exec", "util"}},
      {"lint", {"lint", "util"}},
      {"workflow",
       {"workflow", "sched", "exec", "core", "check", "data", "obs", "perf",
        "trace", "hw", "sim", "util"}},
      // serve sits beside workflow at the top of the DAG: it may use the
      // scheduling/execution stack, and nothing in src/ may include it —
      // only tools, benches and tests (absent from this table) link it.
      {"serve",
       {"serve", "sched", "exec", "core", "check", "data", "obs", "perf",
        "trace", "hw", "sim", "util"}},
  };
  return table;
}

/// Forbidden cross-layer includes, judged module-against-subsystem.
class LayerDagRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "layer-dag"; }
  std::string_view family() const noexcept override { return "layering"; }
  std::string_view description() const noexcept override {
    return "src/ subsystems may only include the layers below them "
           "(DAG mirrors src/CMakeLists.txt)";
  }

  void run(const Project& project,
           std::vector<Finding>& findings) const override {
    for (const SourceFile& file : project.files) {
      const auto allowed = allowed_deps().find(file.module_name);
      if (allowed == allowed_deps().end()) {
        continue;  // tools/bench/tests/examples may include anything
      }
      const auto edges = project.includes.find(file.path);
      if (edges == project.includes.end()) {
        continue;
      }
      for (const IncludeEdge& edge : edges->second) {
        const std::string target_subsystem = subsystem_of(edge.target);
        if (allowed->second.count(target_subsystem) == 0) {
          findings.push_back(Finding{
              std::string(id()), Severity::Error, file.path, edge.line,
              "include of '" + edge.target + "' crosses the layering DAG: " +
                  file.module_name + " may not depend on " +
                  target_subsystem});
        }
      }
    }
  }
};

/// Cycles in the project header include graph.
class LayerCycleRule final : public Rule {
 public:
  std::string_view id() const noexcept override { return "layer-cycle"; }
  std::string_view family() const noexcept override { return "layering"; }
  std::string_view description() const noexcept override {
    return "the header include graph must stay acyclic";
  }

  void run(const Project& project,
           std::vector<Finding>& findings) const override {
    // DFS over headers only (a .cpp cannot be included back into).
    std::map<std::string, int> state;  // 0 new / 1 on stack / 2 done
    std::vector<std::string> stack;
    std::set<std::string> reported;  // cycle key = sorted joined members

    const std::function<void(const std::string&)> visit =
        [&](const std::string& path) {
          state[path] = 1;
          stack.push_back(path);
          const auto edges = project.includes.find(path);
          if (edges != project.includes.end()) {
            for (const IncludeEdge& edge : edges->second) {
              const SourceFile* target = project.find(edge.target);
              if (target == nullptr || !target->is_header) {
                continue;
              }
              const int s = state[edge.target];
              if (s == 0) {
                visit(edge.target);
              } else if (s == 1) {
                report_cycle(edge, stack, reported, findings);
              }
            }
          }
          stack.pop_back();
          state[path] = 2;
        };

    for (const SourceFile& file : project.files) {
      if (file.is_header && state[file.path] == 0) {
        visit(file.path);
      }
    }
  }

 private:
  void report_cycle(const IncludeEdge& edge,
                    const std::vector<std::string>& stack,
                    std::set<std::string>& reported,
                    std::vector<Finding>& findings) const {
    const auto begin =
        std::find(stack.begin(), stack.end(), edge.target);
    std::vector<std::string> members(begin, stack.end());
    std::vector<std::string> key = members;
    std::sort(key.begin(), key.end());
    if (!reported.insert(util::join(key, "|")).second) {
      return;
    }
    members.push_back(edge.target);  // close the loop for the message
    findings.push_back(Finding{
        std::string(id()), Severity::Error, stack.back(), edge.line,
        "include cycle: " + util::join(members, " -> ")});
  }
};

/// Standalone-parse probe: every header must compile on its own
/// (include-what-you-use-lite). Opt-in via --probe-headers because it
/// spawns the compiler once per header.
class SelfContainedRule final : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "layer-self-contained";
  }
  std::string_view family() const noexcept override { return "layering"; }
  std::string_view description() const noexcept override {
    return "every header must parse standalone (probe: compiler "
           "-fsyntax-only on a TU that includes only the header)";
  }

  void run(const Project& project,
           std::vector<Finding>& findings) const override {
    if (!project.options.probe_headers) {
      return;
    }
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "hetflow_lint_probe";
    fs::create_directories(dir);
    const fs::path tu = dir / "probe.cpp";
    const fs::path err = dir / "probe.err";

    std::string include_flags;
    for (const std::string& inc : project.options.include_dirs) {
      include_flags += " -I" + inc;
    }
    for (const SourceFile& file : project.files) {
      if (!file.is_header) {
        continue;
      }
      // The include spelling the build uses: path relative to its root.
      std::string spelled = file.path;
      for (const std::string& root : project.options.include_dirs) {
        if (util::starts_with(spelled, root + "/")) {
          spelled.erase(0, root.size() + 1);
          break;
        }
      }
      {
        std::ofstream out(tu);
        out << "#include \"" << spelled << "\"\n";
      }
      const std::string command = project.options.compiler +
                                  " -std=c++20 -fsyntax-only" +
                                  include_flags + " " + tu.string() + " 2> " +
                                  err.string();
      if (std::system(command.c_str()) != 0) {
        std::ifstream in(err);
        std::string first_error;
        std::getline(in, first_error);
        findings.push_back(Finding{
            std::string(id()), Severity::Error, file.path, 1,
            "header does not parse standalone: " +
                (first_error.empty() ? "compiler probe failed"
                                     : first_error)});
      }
    }
    fs::remove_all(dir);
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> make_layering_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<LayerDagRule>());
  rules.push_back(std::make_unique<LayerCycleRule>());
  rules.push_back(std::make_unique<SelfContainedRule>());
  return rules;
}

}  // namespace hetflow::lint
