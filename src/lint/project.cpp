#include "lint/project.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace hetflow::lint {

const SourceFile* Project::find(const std::string& path) const {
  for (const SourceFile& file : files) {
    if (file.path == path) {
      return &file;
    }
  }
  return nullptr;
}

Project build_project(std::vector<SourceFile> files, ProjectOptions options) {
  Project project;
  project.files = std::move(files);
  project.options = std::move(options);

  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& file : project.files) {
    by_path[file.path] = &file;
  }

  for (const SourceFile& file : project.files) {
    std::vector<IncludeEdge>& edges = project.includes[file.path];
    const std::string dir =
        file.path.find('/') == std::string::npos
            ? ""
            : file.path.substr(0, file.path.rfind('/') + 1);
    for (const IncludeDirective& inc : file.lex.includes) {
      if (inc.angled) {
        continue;
      }
      // Same-directory first (tests/helpers.hpp, bench/bench_common.hpp),
      // then the project roots the build's -I flags expose.
      std::vector<std::string> candidates = {dir + inc.target,
                                             "src/" + inc.target,
                                             "tests/" + inc.target,
                                             "bench/" + inc.target,
                                             "tools/" + inc.target};
      for (const std::string& candidate : candidates) {
        const auto hit = by_path.find(candidate);
        if (hit != by_path.end()) {
          edges.push_back(IncludeEdge{candidate, inc.line});
          break;
        }
      }
    }
  }
  return project;
}

}  // namespace hetflow::lint
