// hetflow_lint lexer: comment/string-stripping tokenizer for C++ sources.
//
// The analyzer works on a per-file token stream, not an AST — rules match
// token shapes (identifiers, balanced template args, brace depth), which
// keeps the whole linter dependency-free and fast enough to run on every
// CI invocation. Comments never become tokens, but `hetflow-lint:`
// suppression annotations inside them are collected, as are preprocessor
// include directives and include-guard/pragma-once structure.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hetflow::lint {

enum class TokenKind : std::uint8_t {
  Identifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  Number,      ///< numeric literal (pp-number, kept verbatim)
  String,      ///< string literal content without quotes ("" / R"()" )
  CharLit,     ///< character literal content without quotes
  Punct,       ///< one operator/punctuator; "::", "->", "<<", ">>" merged
};

struct Token {
  TokenKind kind = TokenKind::Punct;
  std::string text;
  int line = 0;
};

/// One `#include` directive. `target` is the path between the delimiters.
struct IncludeDirective {
  std::string target;
  bool angled = false;  ///< <system> vs "project"
  int line = 0;
};

/// Result of lexing one file.
struct LexedFile {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  /// line -> rule ids allowed on that line and the next ("*" = all).
  std::map<int, std::vector<std::string>> allows;
  /// rule ids allowed for the whole file via allow-file(...).
  std::vector<std::string> allows_file;
  bool has_pragma_once = false;
  bool has_include_guard = false;  ///< leading #ifndef X / #define X pair
};

/// Tokenizes `text`. Never throws on malformed input — unterminated
/// comments/strings lex to end-of-file so the linter degrades gracefully.
LexedFile lex(std::string_view text);

}  // namespace hetflow::lint
