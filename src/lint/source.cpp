#include "lint/source.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace hetflow::lint {

namespace fs = std::filesystem;

namespace {

bool is_source_ext(const std::string& path) {
  return util::ends_with(path, ".cpp") || util::ends_with(path, ".hpp") ||
         util::ends_with(path, ".h") || util::ends_with(path, ".cc");
}

std::string normalize(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  while (util::starts_with(path, "./")) {
    path.erase(0, 2);
  }
  return path;
}

}  // namespace

std::string subsystem_of(const std::string& path) {
  const std::vector<std::string> parts = util::split(normalize(path), '/');
  if (parts.empty()) {
    return "";
  }
  if (parts.front() == "src" && parts.size() >= 2) {
    return parts[1];
  }
  return parts.front();  // tools, bench, tests, examples, loose files
}

std::string module_of(const std::string& path) {
  const std::string norm = normalize(path);
  // Split files that compile into a higher-layer library than their
  // directory suggests (see src/CMakeLists.txt): their includes are judged
  // against the library they actually land in.
  if (norm == "src/check/audit.hpp" || norm == "src/check/audit.cpp") {
    return "core";
  }
  if (norm == "src/check/dag.hpp" || norm == "src/check/dag.cpp" ||
      norm == "src/exec/sweep.hpp" || norm == "src/exec/sweep.cpp") {
    return "workflow";
  }
  return subsystem_of(norm);
}

SourceFile make_source(std::string path, std::string_view text) {
  SourceFile file;
  file.path = normalize(std::move(path));
  file.subsystem = subsystem_of(file.path);
  file.module_name = module_of(file.path);
  file.is_header =
      util::ends_with(file.path, ".hpp") || util::ends_with(file.path, ".h");
  file.is_test = util::starts_with(file.path, "tests/");
  std::string line;
  std::istringstream stream{std::string(text)};
  while (std::getline(stream, line)) {
    file.lines.push_back(line);
  }
  file.lex = lex(text);
  return file;
}

std::vector<SourceFile> load_sources(
    const std::vector<std::string>& paths, const std::string& root,
    const std::vector<std::string>& skip_dirs) {
  std::vector<std::string> files;
  const auto relativize = [&root](const fs::path& p) {
    std::string text = normalize(p.string());
    const std::string prefix = normalize(root) + "/";
    if (util::starts_with(text, prefix)) {
      text.erase(0, prefix.size());
    }
    return text;
  };
  for (const std::string& path : paths) {
    fs::path p(path);
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (!entry.is_regular_file()) {
          continue;
        }
        const std::string rel = relativize(entry.path());
        if (!is_source_ext(rel)) {
          continue;
        }
        const bool skipped =
            std::any_of(skip_dirs.begin(), skip_dirs.end(),
                        [&rel](const std::string& dir) {
                          return util::starts_with(rel, dir + "/");
                        });
        if (!skipped) {
          files.push_back(rel);
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(relativize(p));
    } else {
      throw InvalidArgument("hetflow_lint: no such file or directory: '" +
                            path + "'");
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const std::string& rel : files) {
    const fs::path full = fs::path(root) / rel;
    std::ifstream in(fs::exists(full) ? full : fs::path(rel));
    if (!in) {
      throw InvalidArgument("hetflow_lint: cannot read '" + rel + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    sources.push_back(make_source(rel, buffer.str()));
  }
  return sources;
}

}  // namespace hetflow::lint
