// hetflow_lint source model: one lexed file plus its place in the project.
//
// `subsystem` is the directory a file lives in (src/<subsystem>/..., or the
// top-level tree name for tools/bench/tests/examples). `module_name` is the
// layering identity used by the DAG rules — usually the subsystem, except
// for the deliberate split files that compile into a higher library
// (check/audit.* -> core, check/dag.* and exec/sweep.* -> workflow, matching
// src/CMakeLists.txt).
#pragma once

#include <string>
#include <vector>

#include "lint/token.hpp"

namespace hetflow::lint {

struct SourceFile {
  std::string path;         ///< repo-relative, '/'-separated
  std::string subsystem;    ///< "util", "core", ..., "tools", "bench", "tests"
  std::string module_name;  ///< layering module after split-file overrides
  bool is_header = false;
  bool is_test = false;  ///< under tests/
  std::vector<std::string> lines;  ///< raw text, 1-indexed via lines[i-1]
  LexedFile lex;
};

/// Classifies a repo-relative path into its subsystem and layering module.
std::string subsystem_of(const std::string& path);
std::string module_of(const std::string& path);

/// Lexes one file's contents into a SourceFile.
SourceFile make_source(std::string path, std::string_view text);

/// Loads every .cpp/.hpp/.h under the given files/directories (recursing,
/// sorted for determinism). Paths are made relative to `root` when they
/// fall under it. Directories named in `skip_dirs` (repo-relative prefixes,
/// e.g. "tests/lint") are excluded from directory walks but not from
/// explicitly listed files — the linter's own known-bad fixtures live there.
std::vector<SourceFile> load_sources(const std::vector<std::string>& paths,
                                     const std::string& root,
                                     const std::vector<std::string>& skip_dirs);

}  // namespace hetflow::lint
