// hetflow_lint token-scanning helpers shared by the rule families.
#pragma once

#include <string_view>
#include <vector>

#include "lint/token.hpp"

namespace hetflow::lint::scan {

inline bool is_ident(const Token& token, std::string_view text) {
  return token.kind == TokenKind::Identifier && token.text == text;
}

inline bool is_punct(const Token& token, std::string_view text) {
  return token.kind == TokenKind::Punct && token.text == text;
}

/// If tokens[at] is "<", returns the index just past its matching ">".
/// Understands the merged ">>"/"<<" tokens. Returns `at` unchanged when
/// tokens[at] is not "<"; returns tokens.size() on unbalanced input.
inline std::size_t skip_template_args(const std::vector<Token>& tokens,
                                      std::size_t at) {
  if (at >= tokens.size() || !is_punct(tokens[at], "<")) {
    return at;
  }
  int depth = 0;
  for (std::size_t i = at; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::Punct) {
      continue;
    }
    if (tokens[i].text == "<") {
      ++depth;
    } else if (tokens[i].text == "<<") {
      depth += 2;
    } else if (tokens[i].text == ">") {
      if (--depth == 0) {
        return i + 1;
      }
    } else if (tokens[i].text == ">>") {
      depth -= 2;
      if (depth <= 0) {
        return i + 1;
      }
    }
  }
  return tokens.size();
}

/// True when tokens[i] is reached via member access (".", "->").
inline bool after_member_access(const std::vector<Token>& tokens,
                                std::size_t i) {
  return i > 0 && (is_punct(tokens[i - 1], ".") ||
                   is_punct(tokens[i - 1], "->"));
}

/// True when tokens[i] is qualified by "X::" for some X other than std
/// and its nested namespaces (std::chrono::...), i.e. a project-defined
/// name that merely shares a banned identifier's spelling.
inline bool qualified_by_non_std(const std::vector<Token>& tokens,
                                 std::size_t i) {
  if (i < 2 || !is_punct(tokens[i - 1], "::")) {
    return false;
  }
  const Token& qualifier = tokens[i - 2];
  return qualifier.kind == TokenKind::Identifier &&
         qualifier.text != "std" && qualifier.text != "chrono";
}

}  // namespace hetflow::lint::scan
