#include "lint/token.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace hetflow::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Parses `hetflow-lint: allow(a, b)` / `allow-file(a)` occurrences out of
/// one comment's text and records them against `line`.
void scan_annotations(std::string_view comment, int line, LexedFile& out) {
  const std::string_view marker = "hetflow-lint:";
  std::size_t at = comment.find(marker);
  while (at != std::string_view::npos) {
    const std::string_view rest = comment.substr(at + marker.size());
    const std::size_t file_at = rest.find("allow-file(");
    const std::size_t line_at = rest.find("allow(");
    const bool file_wide = file_at != std::string_view::npos;
    if (!file_wide && line_at == std::string_view::npos) {
      return;
    }
    const std::size_t open = file_wide ? file_at + 10 : line_at + 5;
    const std::size_t close = rest.find(')', open);
    if (close == std::string_view::npos) {
      return;
    }
    for (const std::string& rule :
         util::split(rest.substr(open + 1, close - open - 1), ',')) {
      const std::string trimmed{util::trim(rule)};
      if (trimmed.empty()) {
        continue;
      }
      if (file_wide) {
        out.allows_file.push_back(trimmed);
      } else {
        out.allows[line].push_back(trimmed);
      }
    }
    at = comment.find(marker, at + marker.size() + close);
  }
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  LexedFile run() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        lex_directive();
        continue;
      }
      at_line_start_ = false;
      if (ident_start(c)) {
        lex_identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        lex_number();
        continue;
      }
      if (c == '"') {
        lex_string();
        continue;
      }
      if (c == '\'') {
        lex_char();
        continue;
      }
      lex_punct();
    }
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void push(TokenKind kind, std::string text) {
    out_.tokens.push_back(Token{kind, std::move(text), line_});
  }

  void lex_line_comment() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '\n') {
      ++pos_;
    }
    scan_annotations(text_.substr(start, pos_ - start), line_, out_);
  }

  void lex_block_comment() {
    const std::size_t start = pos_;
    const int start_line = line_;
    pos_ += 2;
    while (pos_ < text_.size() &&
           !(text_[pos_] == '*' && peek(1) == '/')) {
      if (text_[pos_] == '\n') {
        ++line_;
      }
      ++pos_;
    }
    pos_ = pos_ < text_.size() ? pos_ + 2 : text_.size();
    scan_annotations(text_.substr(start, pos_ - start), start_line, out_);
  }

  /// Consumes a whole preprocessor directive line (plus continuations),
  /// recording includes, pragma once and the leading include-guard pair.
  void lex_directive() {
    ++pos_;  // '#'
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
    std::string name;
    while (pos_ < text_.size() && ident_char(text_[pos_])) {
      name += text_[pos_++];
    }
    ++directive_count_;
    if (name == "include") {
      lex_include_target();
    } else if (name == "pragma") {
      const std::string rest = directive_rest();
      if (util::trim(rest) == "once") {
        out_.has_pragma_once = true;
      }
      return;  // directive_rest consumed the line
    } else if (name == "ifndef" && directive_count_ == 1) {
      guard_macro_ = std::string(util::trim(directive_rest()));
      guard_candidate_ = !guard_macro_.empty();
      return;
    } else if (name == "define" && directive_count_ == 2 && guard_candidate_) {
      if (util::trim(directive_rest()) == guard_macro_) {
        out_.has_include_guard = true;
      }
      return;
    } else if (name == "define") {
      return;  // macro bodies stay out of the token stream
    }
    skip_to_eol();
  }

  /// Text after the directive name up to end of line (no continuations —
  /// guards and pragma once never use them).
  std::string directive_rest() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '\n') {
      ++pos_;
    }
    std::string rest(text_.substr(start, pos_ - start));
    const std::size_t comment = rest.find("//");
    if (comment != std::string::npos) {
      rest.resize(comment);
    }
    return rest;
  }

  void lex_include_target() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
    const char open = peek();
    if (open != '"' && open != '<') {
      return;
    }
    const char close = open == '<' ? '>' : '"';
    ++pos_;
    std::string target;
    while (pos_ < text_.size() && text_[pos_] != close &&
           text_[pos_] != '\n') {
      target += text_[pos_++];
    }
    out_.includes.push_back(IncludeDirective{target, open == '<', line_});
  }

  void skip_to_eol() {
    // Honours backslash continuations so multi-line macros stay opaque.
    while (pos_ < text_.size()) {
      if (text_[pos_] == '\\' && peek(1) == '\n') {
        pos_ += 2;
        ++line_;
        continue;
      }
      if (text_[pos_] == '\n') {
        break;
      }
      ++pos_;
    }
  }

  void lex_identifier() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && ident_char(text_[pos_])) {
      ++pos_;
    }
    std::string word(text_.substr(start, pos_ - start));
    // Raw string literal prefix? (R"delim( ... )delim")
    if (peek() == '"' &&
        (word == "R" || word == "u8R" || word == "uR" || word == "UR" ||
         word == "LR")) {
      lex_raw_string();
      return;
    }
    push(TokenKind::Identifier, std::move(word));
  }

  void lex_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (ident_char(text_[pos_]) || text_[pos_] == '.' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E' ||
              text_[pos_ - 1] == 'p' || text_[pos_ - 1] == 'P')))) {
      ++pos_;
    }
    push(TokenKind::Number, std::string(text_.substr(start, pos_ - start)));
  }

  void lex_string() {
    ++pos_;  // opening quote
    std::string content;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        content += text_[pos_];
        content += text_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (text_[pos_] == '\n') {
        break;  // unterminated; degrade gracefully
      }
      content += text_[pos_++];
    }
    if (pos_ < text_.size() && text_[pos_] == '"') {
      ++pos_;
    }
    push(TokenKind::String, std::move(content));
  }

  void lex_raw_string() {
    const int start_line = line_;
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < text_.size() && text_[pos_] != '(') {
      delim += text_[pos_++];
    }
    ++pos_;  // '('
    const std::string closer = ")" + delim + "\"";
    const std::size_t end = text_.find(closer, pos_);
    const std::size_t stop = end == std::string_view::npos ? text_.size() : end;
    std::string content(text_.substr(pos_, stop - pos_));
    for (char c : content) {
      if (c == '\n') {
        ++line_;
      }
    }
    pos_ = stop == text_.size() ? stop : stop + closer.size();
    out_.tokens.push_back(
        Token{TokenKind::String, std::move(content), start_line});
  }

  void lex_char() {
    ++pos_;
    std::string content;
    while (pos_ < text_.size() && text_[pos_] != '\'') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        content += text_[pos_];
        content += text_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (text_[pos_] == '\n') {
        break;
      }
      content += text_[pos_++];
    }
    if (pos_ < text_.size() && text_[pos_] == '\'') {
      ++pos_;
    }
    push(TokenKind::CharLit, std::move(content));
  }

  void lex_punct() {
    const char c = text_[pos_];
    // Merge the two-char operators rules care about; everything else is
    // one char per token (rules never need e.g. "+=" as a unit).
    if ((c == ':' && peek(1) == ':') || (c == '-' && peek(1) == '>') ||
        (c == '<' && peek(1) == '<') || (c == '>' && peek(1) == '>')) {
      push(TokenKind::Punct, std::string(text_.substr(pos_, 2)));
      pos_ += 2;
      return;
    }
    push(TokenKind::Punct, std::string(1, c));
    ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  int directive_count_ = 0;
  bool guard_candidate_ = false;
  std::string guard_macro_;
  LexedFile out_;
};

}  // namespace

LexedFile lex(std::string_view text) { return Lexer(text).run(); }

}  // namespace hetflow::lint
