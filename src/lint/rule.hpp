// hetflow_lint rule registry: findings, severities, and the Rule interface.
//
// A rule scans the whole Project (cross-file rules like the lock-order
// graph need global state) and appends Findings. Suppression — inline
// `// hetflow-lint: allow(rule)` annotations and the checked-in baseline —
// is applied uniformly by the analyzer, never inside rules.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hetflow::lint {

struct Project;

enum class Severity : std::uint8_t { Warning, Error };

const char* to_string(Severity severity) noexcept;

/// One diagnostic. `suppressed` is filled in by the analyzer.
struct Finding {
  std::string rule;
  Severity severity = Severity::Error;
  std::string file;
  int line = 0;
  std::string message;
  bool suppressed = false;

  /// "path:line: error: [rule] message" — the rendering used everywhere.
  std::string describe() const;
};

class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string_view id() const noexcept = 0;
  /// determinism | layering | locks | hygiene
  virtual std::string_view family() const noexcept = 0;
  virtual std::string_view description() const noexcept = 0;
  virtual void run(const Project& project,
                   std::vector<Finding>& findings) const = 0;
};

/// The four checker families, in catalog order.
std::vector<std::unique_ptr<Rule>> make_determinism_rules();
std::vector<std::unique_ptr<Rule>> make_layering_rules();
std::vector<std::unique_ptr<Rule>> make_lock_rules();
std::vector<std::unique_ptr<Rule>> make_hygiene_rules();

/// Every rule the analyzer knows, catalog order.
std::vector<std::unique_ptr<Rule>> make_all_rules();

}  // namespace hetflow::lint
