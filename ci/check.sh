#!/usr/bin/env bash
# hetflow CI gate — the one command a PR must survive.
#
#   1. configure + build with -DHETFLOW_WERROR=ON (warnings are errors)
#   2. run the full ctest suite plain
#   3. core-overhead bench smoke: every synthetic DAG shape at 10^4
#      tasks through bench_core_overhead --smoke (throughput sanity,
#      exact completion counts, HEFT plan-time bound)
#   4. serve front-end smoke: bench_serve_load --smoke (closed-loop
#      multi-tenant load with bounded-queue/bounded-p99 assertions), the
#      fairness/starvation checkers via hetflow_check --selftest, and
#      bench_diff.py --selftest
#   5. rebuild with HETFLOW_SANITIZE=address,undefined and run the full
#      suite again under the sanitizers (including the serve smoke)
#   6. rebuild with HETFLOW_SANITIZE=thread and run the parallel-sweep,
#      retry/timeout, campaign-checkpoint and observability golden/
#      determinism tests plus a --jobs 4 hetflow_bench smoke sweep under
#      TSan — proves the thread-confinement contract
#      (docs/parallelism.md), not just asserts it
#   7. checkpoint/resume smoke: a campaign killed after two rounds and
#      resumed from its checkpoint must report the same result as the
#      uninterrupted run (docs/fault_tolerance.md)
#   8. coverage floor: rebuild with HETFLOW_COVERAGE=ON, run the obs
#      suites, and require >= 90% line coverage on src/obs/ (gcovr when
#      installed, plain gcov otherwise)
#   9. lint: clang-tidy over files changed vs the merge base (all
#      first-party files when git history is unavailable); fails on any
#      diagnostic. Without clang-tidy installed, tools/lint.sh falls back
#      to a strict GCC pass.
#  10. hetflow_lint: the project-specific static analyzer
#      (docs/static_analysis.md) over the whole tree in --json mode;
#      fails on any unsuppressed finding against lint_baseline.txt.
#
# Usage: ci/check.sh [jobs]
set -eu -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${1:-$(nproc)}"
cd "$repo_root"

echo "=== [1/10] build (WERROR) ==="
cmake -B build-ci -S . -DHETFLOW_WERROR=ON
cmake --build build-ci -j "$jobs"

echo "=== [2/10] ctest (plain) ==="
ctest --test-dir build-ci --output-on-failure -j "$jobs"

echo "=== [3/10] core-overhead bench smoke (10^4 tasks) ==="
# Catches hot-path regressions that unit tests miss: the smoke mode runs
# every DAG shape at 10^4 tasks plus the HEFT plan sanity, and exits
# non-zero on zero throughput, a failed count cross-check, or a blown
# HEFT time bound. --validate + --metrics run the exact bench workloads
# through the end-of-run audit and the observability layer, so the
# batched completion drain and the cost-model cache are exercised with
# every checker watching. Run from build-ci/bench: the bench writes
# BENCH_core.json into its cwd and the committed copy at the repo root
# (full 10^5/10^6 runs on an idle machine) must not be clobbered by
# smoke numbers.
(cd build-ci/bench && ./bench_core_overhead --smoke --validate --metrics)
# Advisory throughput diff against the committed baseline. No threshold:
# CI machines are noisy and smoke sizes do not overlap the committed
# full-run rows anyway — the table is for the reviewer's eyes.
python3 tools/bench_diff.py BENCH_core.json build-ci/bench/BENCH_core.json || true

echo "=== [4/10] serve front-end smoke ==="
# The serve smoke drives the closed-loop multi-tenant load generator at
# two scale points and fails on any bounded-queue or bounded-p99
# violation; the fairness/starvation detectors prove themselves live in
# the hetflow_check selftest (also a ctest, repeated here so this stage
# stands alone); bench_diff validates its own matching/threshold logic.
(cd build-ci/bench && ./bench_serve_load --smoke)
build-ci/tools/hetflow_check --selftest > /dev/null
python3 tools/bench_diff.py --selftest > /dev/null

echo "=== [5/10] ctest (ASan + UBSan) ==="
# The full suite runs sanitized, which covers the retry/timeout/blacklist
# tests (core_failure_test), the kill-and-resume checkpoint property
# tests (workflow_campaign_test) and the rng state round-trip
# (util_rng_test) introduced with the fault-tolerance subsystem.
cmake -B build-asan -S . -DHETFLOW_WERROR=ON \
      -DHETFLOW_SANITIZE=address,undefined
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"
(cd build-asan/bench && ./bench_core_overhead --smoke --validate --metrics)
(cd build-asan/bench && ./bench_serve_load --smoke)

echo "=== [6/10] parallel sweep + obs determinism under TSan ==="
cmake -B build-tsan -S . -DHETFLOW_WERROR=ON -DHETFLOW_SANITIZE=thread
cmake --build build-tsan -j "$jobs" \
      --target exec_pool_test exec_parallel_test core_failure_test \
               workflow_campaign_test obs_golden_test obs_determinism_test \
               hetflow_bench
ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
      -R 'exec_pool_test|exec_parallel_test|core_failure_test|workflow_campaign_test|obs_golden_test|obs_determinism_test'
build-tsan/tools/hetflow_bench \
    --workflows "montage:16;cholesky:6,512" --platforms hpc:4,2,0 \
    --scheds eager,dmda,heft --seeds 2 --noise 0.2 --jobs 4 \
    > build-tsan/sweep_jobs4.csv
build-tsan/tools/hetflow_bench \
    --workflows "montage:16;cholesky:6,512" --platforms hpc:4,2,0 \
    --scheds eager,dmda,heft --seeds 2 --noise 0.2 --jobs 1 \
    > build-tsan/sweep_jobs1.csv
cmp build-tsan/sweep_jobs4.csv build-tsan/sweep_jobs1.csv

echo "=== [7/10] checkpoint/resume round-trip smoke ==="
run="build-ci/tools/hetflow_run"
campaign_args=(--campaign surrogate --surface branin --evals 24 --batch 6)
"$run" "${campaign_args[@]}" > build-ci/campaign_straight.txt
"$run" "${campaign_args[@]}" --max-rounds 2 \
    --checkpoint build-ci/campaign_ckpt.json > /dev/null
"$run" --resume build-ci/campaign_ckpt.json > build-ci/campaign_resumed.txt
# The resumed run must land on the exact same result as the
# uninterrupted one (byte-identical "best ..." report line).
cmp <(grep best build-ci/campaign_straight.txt) \
    <(grep best build-ci/campaign_resumed.txt)

echo "=== [8/10] observability line-coverage floor ==="
# The obs layer is the serialization boundary the golden suites pin
# down; unexecuted code there is unpinned code. Floor: 90% of the lines
# in src/obs/ must run under the obs + trace test binaries.
cmake -B build-cov -S . -DHETFLOW_COVERAGE=ON
cmake --build build-cov -j "$jobs" \
      --target obs_metrics_test obs_golden_test obs_determinism_test \
               obs_property_test trace_test
ctest --test-dir build-cov --output-on-failure -j "$jobs" \
      -R 'obs_metrics_test|obs_golden_test|obs_determinism_test|obs_property_test|trace_test'
if command -v gcovr > /dev/null; then
  gcovr --root . --filter 'src/obs/' --fail-under-line 90 \
        --print-summary build-cov
else
  # gcov fallback: aggregate "Lines executed" over the hf_obs objects.
  obs_obj_dir="build-cov/src/CMakeFiles/hf_obs.dir/obs"
  gcov --no-output --object-directory "$obs_obj_dir" \
       "$obs_obj_dir"/*.gcda 2> /dev/null |
  awk '
    /^File /      { keep = ($0 ~ /src\/obs\//) }
    keep && /^Lines executed:/ {
      split($0, parts, /[:%]/)        # "Lines executed" | pct | " of N"
      pct = parts[2] + 0
      sub(/^[^0-9]*/, "", parts[3]); n = parts[3] + 0
      covered += pct / 100.0 * n; total += n
      keep = 0
    }
    END {
      if (total == 0) { print "coverage: no gcov data for src/obs"; exit 1 }
      pct = 100.0 * covered / total
      printf "src/obs line coverage: %.1f%% (floor 90%%)\n", pct
      exit (pct >= 90.0) ? 0 : 1
    }'
fi

echo "=== [9/10] lint (changed files) ==="
changed=()
if base="$(git merge-base HEAD origin/main 2>/dev/null ||
           git rev-parse HEAD~1 2>/dev/null)"; then
  while IFS= read -r f; do
    case "$f" in
      src/*.cpp|tools/*.cpp|bench/*.cpp) [ -f "$f" ] && changed+=("$f") ;;
    esac
  done < <(git diff --name-only "$base" HEAD)
fi
if [ "${#changed[@]}" -gt 0 ]; then
  tools/lint.sh build-ci "${changed[@]}"
else
  tools/lint.sh build-ci
fi

echo "=== [10/10] hetflow_lint (whole tree) ==="
# Stage 7's lint.sh already runs the text gate; this stage pins the JSON
# contract (docs/static_analysis.md) and the baseline workflow the way
# downstream tooling consumes them.
report="build-ci/hetflow_lint.json"
build-ci/tools/hetflow_lint --json --root "$repo_root" \
    --baseline lint_baseline.txt src tools bench tests > "$report" || {
  echo "ci/check.sh: unsuppressed hetflow_lint findings:" >&2
  build-ci/tools/hetflow_lint --root "$repo_root" \
      --baseline lint_baseline.txt src tools bench tests >&2 || true
  exit 1
}
grep -q '"unsuppressed": 0' "$report"

echo "ci/check.sh: all gates passed"
