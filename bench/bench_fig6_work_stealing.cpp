// Fig 6 — Load balancing under cost skew: fork-join stages whose branch
// costs are lognormal with shape sigma (0 = uniform .. 2 = heavy tail);
// work stealing vs eager vs mct on makespan and load balance (Jain
// fairness of per-device busy time). Expected shape: at sigma 0 all
// policies tie; as skew grows, blind static spreading (round-robin)
// degrades sharply while stealing and cost-model policies hold fairness
// near 1 and makespan near the balanced optimum.
#include "bench_common.hpp"

#include "util/stats.hpp"

int main() {
  using namespace hetflow;
  bench::print_experiment_header(
      "Fig 6", "fork-join: makespan & fairness vs branch-cost skew sigma");

  const hw::Platform platform = hw::make_cpu_only(8);
  const auto library = workflow::CodeletLibrary::standard();
  const std::vector<std::string> policies = {"round-robin", "eager",
                                             "work-stealing", "mct"};

  std::vector<std::string> columns = {"sigma"};
  for (const std::string& policy : policies) {
    columns.push_back(policy + " s");
    columns.push_back(policy + " fair");
  }
  util::Table table(columns);

  for (double sigma : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    std::vector<std::string> row = {util::format("%.1f", sigma)};
    for (const std::string& policy : policies) {
      constexpr int kSeeds = 3;
      double makespan = 0.0;
      double fairness = 0.0;
      for (int seed = 0; seed < kSeeds; ++seed) {
        const workflow::Workflow wf = workflow::make_fork_join(
            32, 4, sigma, 100 + static_cast<std::uint64_t>(seed));
        const core::RunStats stats =
            workflow::run_workflow(platform, policy, wf, library,
                                   bench::bench_options());
        makespan += stats.makespan_s / kSeeds;
        std::vector<double> busy;
        for (const auto& device : stats.devices) {
          busy.push_back(device.busy_seconds);
        }
        fairness += util::jain_fairness(busy) / kSeeds;
      }
      row.push_back(util::format("%.3f", makespan));
      row.push_back(util::format("%.3f", fairness));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(fair = Jain fairness of per-core busy time; 1.0 = "
               "perfectly balanced)\n";
  return 0;
}
