// Fig 8 (extension) — Runtime-API ablations: what the advanced access
// modes buy on a bandwidth-balanced HPC node.
//   (a) Redux vs ReadWrite accumulation: N tasks accumulate into one
//       handle; RW serializes them, Redux runs them in parallel.
//       Expected shape: Redux speedup ~ min(N, cores), flat for RW.
//   (b) Partitioned vs monolithic block update: one large matrix updated
//       by B block tasks; monolithic RW serializes, partitioning scales.
#include "bench_common.hpp"

#include "core/runtime.hpp"
#include "sched/registry.hpp"

namespace {

using namespace hetflow;

core::CodeletPtr accum_codelet() {
  return core::Codelet::make(
      "accum", {{hw::DeviceType::Cpu, 0.5}, {hw::DeviceType::Gpu, 0.6}});
}

}  // namespace

int main() {
  bench::print_experiment_header(
      "Fig 8", "API ablations: Redux and partitioning vs naive RW");

  const hw::Platform platform = hw::make_cpu_only(8);

  std::cout << "(a) parallel reduction into one handle (8 cores)\n";
  util::Table redux_table({"contributors", "RW s", "Redux s", "speedup"});
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    double rw = 0.0;
    double redux = 0.0;
    for (const bool use_redux : {false, true}) {
      core::Runtime rt(platform, sched::make_scheduler("mct"),
                       bench::bench_options());
      const auto acc = rt.register_data("acc", 8 << 10);
      for (std::size_t i = 0; i < n; ++i) {
        rt.submit(util::format("p%zu", i), accum_codelet(), 3e9,
                  {{acc, use_redux ? data::AccessMode::Redux
                                   : data::AccessMode::ReadWrite}});
      }
      rt.wait_all();
      (use_redux ? redux : rw) = rt.stats().makespan_s;
    }
    redux_table.add_row({std::to_string(n), util::format("%.3f", rw),
                         util::format("%.3f", redux),
                         util::format("%.2fx", rw / redux)});
  }
  redux_table.print(std::cout);

  std::cout << "\n(b) blocked in-place update of one 256 MiB matrix\n";
  util::Table part_table({"blocks", "monolithic s", "partitioned s",
                          "speedup"});
  for (std::size_t blocks : {1u, 2u, 4u, 8u, 16u}) {
    double mono = 0.0;
    double part = 0.0;
    for (const bool use_partition : {false, true}) {
      core::Runtime rt(platform, sched::make_scheduler("mct"),
                       bench::bench_options());
      const auto matrix = rt.register_data("matrix", 256ull << 20);
      if (use_partition) {
        const auto children = rt.partition_data(matrix, blocks);
        for (std::size_t b = 0; b < blocks; ++b) {
          rt.submit(util::format("blk%zu", b), accum_codelet(), 24e9 / blocks,
                    {{children[b], data::AccessMode::ReadWrite}});
        }
        rt.unpartition_data(matrix);
      } else {
        for (std::size_t b = 0; b < blocks; ++b) {
          rt.submit(util::format("blk%zu", b), accum_codelet(), 24e9 / blocks,
                    {{matrix, data::AccessMode::ReadWrite}});
        }
      }
      rt.wait_all();
      (use_partition ? part : mono) = rt.stats().makespan_s;
    }
    part_table.add_row({std::to_string(blocks), util::format("%.3f", mono),
                        util::format("%.3f", part),
                        util::format("%.2fx", mono / part)});
  }
  part_table.print(std::cout);
  std::cout << "\n(total work constant per row: speedup is pure "
               "parallelism unlocked by the access mode)\n";
  return 0;
}
