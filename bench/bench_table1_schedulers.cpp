// Table 1 — Scheduler comparison: makespan (seconds) of every policy on
// the five evaluation workflows, hpc-node platform (8 CPU + 2 GPU).
// Expected shape: cost-model policies (mct/dmda/heft/min-min) cluster
// well below the blind baselines (random/round-robin), with HEFT/dmda
// best overall; random is the worst by ~2-6x.
#include "bench_common.hpp"

int main() {
  using namespace hetflow;
  bench::print_experiment_header(
      "Table 1", "makespan by scheduler x workflow (hpc node, 8c+2g)");

  const hw::Platform platform = hw::make_hpc_node(8, 2, 0);
  const auto library = workflow::CodeletLibrary::standard();
  const std::vector<workflow::Workflow> workflows =
      bench::evaluation_workflows();
  const std::vector<std::string> policies = {
      "random", "round-robin", "eager", "work-stealing", "mct",
      "min-min", "dmda",       "dmdas", "heft",          "cpop"};

  std::vector<std::string> columns = {"workflow (tasks)"};
  for (const std::string& policy : policies) {
    columns.push_back(policy);
  }
  util::Table table(columns);

  for (const workflow::Workflow& wf : workflows) {
    std::vector<std::string> row = {util::format(
        "%s (%zu)", wf.name().c_str(), wf.task_count())};
    for (const std::string& policy : policies) {
      const core::RunStats stats =
          workflow::run_workflow(platform, policy, wf, library,
                                 bench::bench_options());
      row.push_back(util::format("%.3f", stats.makespan_s));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(makespan in simulated seconds; lower is better)\n";
  return 0;
}
