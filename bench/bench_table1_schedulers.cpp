// Table 1 — Scheduler comparison: makespan (seconds) of every policy on
// the five evaluation workflows, hpc-node platform (8 CPU + 2 GPU).
// Expected shape: cost-model policies (mct/dmda/heft/min-min) cluster
// well below the blind baselines (random/round-robin), with HEFT/dmda
// best overall; random is the worst by ~2-6x.
#include "bench_common.hpp"

int main() {
  using namespace hetflow;
  bench::print_experiment_header(
      "Table 1", "makespan by scheduler x workflow (hpc node, 8c+2g)");

  const hw::Platform platform = hw::make_hpc_node(8, 2, 0);
  const auto library = workflow::CodeletLibrary::standard();
  const std::vector<workflow::Workflow> workflows =
      bench::evaluation_workflows();
  const std::vector<std::string> policies = {
      "random", "round-robin", "eager", "work-stealing", "mct",
      "min-min", "dmda",       "dmdas", "heft",          "cpop"};

  std::vector<std::string> columns = {"workflow (tasks)"};
  for (const std::string& policy : policies) {
    columns.push_back(policy);
  }
  util::Table table(columns);

  // Flattened (workflow x policy) grid: each cell is an independent
  // simulation, so they fan out over HETFLOW_JOBS workers; the table is
  // assembled from the index-ordered results afterwards.
  const std::vector<core::RunStats> stats =
      exec::parallel_map<core::RunStats>(
          workflows.size() * policies.size(), bench::jobs(),
          [&](std::size_t i) {
            return workflow::run_workflow(
                platform, policies[i % policies.size()],
                workflows[i / policies.size()], library,
                bench::bench_options());
          });

  for (std::size_t w = 0; w < workflows.size(); ++w) {
    const workflow::Workflow& wf = workflows[w];
    std::vector<std::string> row = {util::format(
        "%s (%zu)", wf.name().c_str(), wf.task_count())};
    for (std::size_t p = 0; p < policies.size(); ++p) {
      row.push_back(util::format(
          "%.3f", stats[w * policies.size() + p].makespan_s));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(makespan in simulated seconds; lower is better)\n";
  return 0;
}
