// Fig 9 (extension) — Prefetch ablation: makespan of a GPU-offloaded bag
// of tasks (each with its own host-resident input) as the input size
// grows, with and without input prefetching. Expected shape: identical
// at tiny inputs; as transfer time approaches execution time the
// no-prefetch makespan grows like sum(transfer + exec) while prefetch
// holds near max(sum exec, first transfer + sum exec) — up to ~1.6x at
// transfer ~= exec on PCIe 3.0.
#include "bench_common.hpp"

#include "core/runtime.hpp"
#include "sched/registry.hpp"

int main() {
  using namespace hetflow;
  bench::print_experiment_header(
      "Fig 9", "prefetch: GPU bag makespan vs input size (on/off)");

  const hw::Platform platform = hw::make_workstation();  // 16 GB/s PCIe
  const auto gpu_only = core::Codelet::make(
      "gpu-kernel", {{hw::DeviceType::Gpu, 0.8}});
  constexpr std::size_t kTasks = 12;
  constexpr double kFlops = 32e9;  // 0.1 s on the 400-GFLOPS GPU

  util::Table table({"input MiB", "xfer/exec", "no-prefetch s",
                     "prefetch s", "speedup", "prefetches"});
  for (const std::uint64_t mib : {16ull, 64ull, 256ull, 1024ull, 2048ull}) {
    double makespan[2] = {0.0, 0.0};
    std::uint64_t prefetches = 0;
    for (const bool enable : {false, true}) {
      core::RuntimeOptions options = bench::bench_options();
      options.enable_prefetch = enable;
      options.record_trace = false;
      core::Runtime rt(platform, sched::make_scheduler("mct"), options);
      for (std::size_t i = 0; i < kTasks; ++i) {
        const auto input = rt.register_data(util::format("in%zu", i),
                                            mib << 20);
        rt.submit(util::format("t%zu", i), gpu_only, kFlops,
                  {{input, data::AccessMode::Read}});
      }
      rt.wait_all();
      makespan[enable ? 1 : 0] = rt.stats().makespan_s;
      if (enable) {
        prefetches = rt.stats().data.prefetches;
      }
    }
    const double exec = kFlops / (400e9 * 0.8);
    const double xfer = static_cast<double>(mib << 20) / 16e9;
    table.add_row({std::to_string(mib), util::format("%.2f", xfer / exec),
                   util::format("%.3f", makespan[0]),
                   util::format("%.3f", makespan[1]),
                   util::format("%.2fx", makespan[0] / makespan[1]),
                   std::to_string(prefetches)});
  }
  table.print(std::cout);
  std::cout << "\n(12 tasks, 0.1 s GPU execution each; one private input "
               "per task homed in host DRAM)\n";
  return 0;
}
