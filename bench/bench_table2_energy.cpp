// Table 2 — Energy-aware scheduling: total energy, makespan and EDP of
// the three energy-objective policies (plus dmda as the performance
// reference) on the evaluation workflows, DVFS-capable hpc node.
// Expected shape: energy-energy saves 20-50% busy energy versus
// energy-performance at some makespan cost; energy-edp sits between.
#include "bench_common.hpp"

int main() {
  using namespace hetflow;
  bench::print_experiment_header(
      "Table 2", "energy/EDP by policy x workflow (DVFS hpc node)");

  const hw::Platform platform = hw::make_hpc_node(8, 2, 0);
  const auto library = workflow::CodeletLibrary::standard();
  const std::vector<std::string> policies = {
      "energy-performance", "energy-edp", "energy-energy", "dmda"};

  util::Table table({"workflow", "policy", "makespan s", "busy J", "total J",
                     "EDP J*s"});
  for (const workflow::Workflow& wf : bench::evaluation_workflows()) {
    for (const std::string& policy : policies) {
      const core::RunStats stats =
          workflow::run_workflow(platform, policy, wf, library,
                                 bench::bench_options());
      table.add_row({wf.name(), policy,
                     util::format("%.3f", stats.makespan_s),
                     util::format("%.1f", stats.busy_energy_j()),
                     util::format("%.1f", stats.total_energy_j()),
                     util::format("%.1f", stats.edp())});
    }
  }
  table.print(std::cout);
  std::cout << "\n(energy-energy minimizes Joules within a 2x completion "
               "slack; energy-edp balances both)\n";
  return 0;
}
