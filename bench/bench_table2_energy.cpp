// Table 2 — Energy-aware scheduling: total energy, makespan and EDP of
// the three energy-objective policies (plus dmda as the performance
// reference) on the evaluation workflows, DVFS-capable hpc node.
// Expected shape: energy-energy saves 20-50% busy energy versus
// energy-performance at some makespan cost; energy-edp sits between.
#include "bench_common.hpp"

int main() {
  using namespace hetflow;
  bench::print_experiment_header(
      "Table 2", "energy/EDP by policy x workflow (DVFS hpc node)");

  const hw::Platform platform = hw::make_hpc_node(8, 2, 0);
  const auto library = workflow::CodeletLibrary::standard();
  const std::vector<std::string> policies = {
      "energy-performance", "energy-edp", "energy-energy", "dmda"};

  util::Table table({"workflow", "policy", "makespan s", "busy J", "total J",
                     "EDP J*s"});
  const std::vector<workflow::Workflow> workflows =
      bench::evaluation_workflows();
  // Independent (workflow x policy) cells fan out over HETFLOW_JOBS
  // workers; rows are emitted from the index-ordered results.
  const std::vector<core::RunStats> stats =
      exec::parallel_map<core::RunStats>(
          workflows.size() * policies.size(), bench::jobs(),
          [&](std::size_t i) {
            return workflow::run_workflow(
                platform, policies[i % policies.size()],
                workflows[i / policies.size()], library,
                bench::bench_options());
          });
  for (std::size_t w = 0; w < workflows.size(); ++w) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const core::RunStats& s = stats[w * policies.size() + p];
      table.add_row({workflows[w].name(), policies[p],
                     util::format("%.3f", s.makespan_s),
                     util::format("%.1f", s.busy_energy_j()),
                     util::format("%.1f", s.total_energy_j()),
                     util::format("%.1f", s.edp())});
    }
  }
  table.print(std::cout);
  std::cout << "\n(energy-energy minimizes Joules within a 2x completion "
               "slack; energy-edp balances both)\n";
  return 0;
}
