// Table 3 — Platform ablation: the same workflows on CPU-only, +GPUs and
// +GPUs+FPGA nodes (dmda scheduler). Expected shape: accelerators help
// GPU-friendly workloads (Cholesky ~4-8x, Montage ~1.5-3x) and the FPGA
// adds a further margin for kernels with FPGA implementations; total
// energy per workflow drops when execution time collapses.
#include "bench_common.hpp"

int main() {
  using namespace hetflow;
  bench::print_experiment_header(
      "Table 3", "platform ablation: cpu-only vs +gpu vs +gpu+fpga (dmda)");

  struct Config {
    const char* label;
    hw::Platform platform;
  };
  std::vector<Config> configs;
  configs.push_back({"8 cpu", hw::make_cpu_only(8)});
  configs.push_back({"8 cpu + 2 gpu", hw::make_hpc_node(8, 2, 0)});
  configs.push_back({"8 cpu + 2 gpu + 1 fpga", hw::make_hpc_node(8, 2, 1)});

  const auto library = workflow::CodeletLibrary::standard();
  util::Table table({"workflow", "platform", "makespan s", "speedup",
                     "total J", "moved"});
  const std::vector<workflow::Workflow> workflows =
      bench::evaluation_workflows();
  // Independent (workflow x config) cells fan out over HETFLOW_JOBS
  // workers; the cpu-only baseline for the speedup column is derived
  // after collection, from the index-ordered results.
  const std::vector<core::RunStats> stats =
      exec::parallel_map<core::RunStats>(
          workflows.size() * configs.size(), bench::jobs(),
          [&](std::size_t i) {
            return workflow::run_workflow(
                configs[i % configs.size()].platform, "dmda",
                workflows[i / configs.size()], library,
                bench::bench_options());
          });
  for (std::size_t w = 0; w < workflows.size(); ++w) {
    const double baseline = stats[w * configs.size()].makespan_s;
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const core::RunStats& s = stats[w * configs.size() + c];
      table.add_row({workflows[w].name(), configs[c].label,
                     util::format("%.3f", s.makespan_s),
                     util::format("%.2fx", baseline / s.makespan_s),
                     util::format("%.1f", s.total_energy_j()),
                     util::human_bytes(static_cast<double>(
                         s.transfers.bytes_moved))});
    }
  }
  table.print(std::cout);
  return 0;
}
