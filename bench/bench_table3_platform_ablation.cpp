// Table 3 — Platform ablation: the same workflows on CPU-only, +GPUs and
// +GPUs+FPGA nodes (dmda scheduler). Expected shape: accelerators help
// GPU-friendly workloads (Cholesky ~4-8x, Montage ~1.5-3x) and the FPGA
// adds a further margin for kernels with FPGA implementations; total
// energy per workflow drops when execution time collapses.
#include "bench_common.hpp"

int main() {
  using namespace hetflow;
  bench::print_experiment_header(
      "Table 3", "platform ablation: cpu-only vs +gpu vs +gpu+fpga (dmda)");

  struct Config {
    const char* label;
    hw::Platform platform;
  };
  std::vector<Config> configs;
  configs.push_back({"8 cpu", hw::make_cpu_only(8)});
  configs.push_back({"8 cpu + 2 gpu", hw::make_hpc_node(8, 2, 0)});
  configs.push_back({"8 cpu + 2 gpu + 1 fpga", hw::make_hpc_node(8, 2, 1)});

  const auto library = workflow::CodeletLibrary::standard();
  util::Table table({"workflow", "platform", "makespan s", "speedup",
                     "total J", "moved"});
  for (const workflow::Workflow& wf : bench::evaluation_workflows()) {
    double baseline = 0.0;
    for (const Config& config : configs) {
      const core::RunStats stats =
          workflow::run_workflow(config.platform, "dmda", wf, library,
                                 bench::bench_options());
      if (baseline == 0.0) {
        baseline = stats.makespan_s;
      }
      table.add_row({wf.name(), config.label,
                     util::format("%.3f", stats.makespan_s),
                     util::format("%.2fx", baseline / stats.makespan_s),
                     util::format("%.1f", stats.total_energy_j()),
                     util::human_bytes(static_cast<double>(
                         stats.transfers.bytes_moved))});
    }
  }
  table.print(std::cout);
  return 0;
}
