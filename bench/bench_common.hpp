// Shared helpers for the experiment-reproduction benches.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "exec/thread_pool.hpp"
#include "hw/presets.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workflow/generators.hpp"
#include "workflow/linalg.hpp"
#include "workflow/workflow.hpp"

namespace hetflow::bench {

/// hetflow-verify hook: export HETFLOW_BENCH_VALIDATE=1 to run every
/// bench workload with the end-of-run audit enabled (race detector,
/// coherence/trace invariants). Off by default — validation adds an
/// O(pairs) pass per run and the tables measure the runtime, not the
/// checker.
inline bool validate_requested() {
  const char* value = std::getenv("HETFLOW_BENCH_VALIDATE");
  return value != nullptr && *value != '\0' &&
         std::string(value) != "0";
}

/// Observability hook: export HETFLOW_BENCH_METRICS=1 to run every bench
/// workload with RuntimeOptions::metrics on. Off by default — the tables
/// measure the runtime, and the default-off path keeps bench CSV output
/// byte-identical to pre-observability builds.
inline bool metrics_requested() {
  const char* value = std::getenv("HETFLOW_BENCH_METRICS");
  return value != nullptr && *value != '\0' &&
         std::string(value) != "0";
}

/// Bench-wide RuntimeOptions: pass through (or start from) the given
/// options, turning validation on when HETFLOW_BENCH_VALIDATE is set and
/// the observability layer on when HETFLOW_BENCH_METRICS is set.
inline core::RuntimeOptions bench_options(core::RuntimeOptions options = {}) {
  if (validate_requested()) {
    options.validate = true;
  }
  if (metrics_requested()) {
    options.metrics = true;
  }
  return options;
}

/// Worker threads for the bench grids: HETFLOW_JOBS ("0" = all cores),
/// else serial. Each grid cell is an independent simulation; tables are
/// assembled from results in grid order, so the printed output is
/// identical for any value.
inline std::size_t jobs() { return exec::default_jobs(); }

/// The six evaluation workflows used throughout the tables.
inline std::vector<workflow::Workflow> evaluation_workflows() {
  std::vector<workflow::Workflow> out;
  out.push_back(workflow::make_montage(96));        // ~500 tasks
  out.push_back(workflow::make_epigenomics(8, 12)); // ~400 tasks
  out.push_back(workflow::make_cybershake(6, 30));  // ~430 tasks
  out.push_back(workflow::make_ligo(130, 10));      // ~400 tasks
  out.push_back(workflow::make_sipht(28, 8));       // ~450 tasks
  out.push_back(workflow::make_cholesky(12, 2048)); // 364 tasks
  return out;
}

inline void print_experiment_header(const std::string& id,
                                    const std::string& question) {
  std::cout << "\n=== " << id << " — " << question << " ===\n\n";
}

}  // namespace hetflow::bench
