// Table 4 (extension) — Workflow characterization: the structural metrics
// of every evaluation workload (cf. Bharathi et al., WORKS'08). Expected
// shape: Montage/CyberShake wide and shallow with moderate CCR;
// Epigenomics pipeline-deep; LIGO compute-heavy with low CCR; SIPHT
// "wide then point"; Cholesky deep with high average parallelism that
// shrinks toward the end of the factorization.
#include "bench_common.hpp"

#include "workflow/characterize.hpp"

int main() {
  using namespace hetflow;
  bench::print_experiment_header(
      "Table 4", "structural characterization of the evaluation workloads");
  std::vector<workflow::Characterization> rows;
  for (const workflow::Workflow& wf : bench::evaluation_workflows()) {
    rows.push_back(workflow::characterize(wf));
  }
  for (const workflow::Workflow& wf :
       {workflow::make_wavefront(16), workflow::make_fork_join(32, 4, 1.0, 1),
        workflow::make_random_layered(10, 8, 1.0, 42)}) {
    rows.push_back(workflow::characterize(wf));
  }
  std::cout << workflow::characterization_table(rows);
  std::cout << "\n(avg-par = total work / critical-path work; serial% = "
               "critical-path share of total work;\n CCR at 16 GB/s / 50 "
               "GFLOP/s reference rates)\n";
  return 0;
}
