// Fig 5 — Time-to-discovery: evaluations and simulated campaign time to
// reach the optimum region of the response surface, adaptive surrogate
// strategy vs grid and random sweeps, averaged over seeds. Expected
// shape: the adaptive strategy reaches the target in a small fraction
// (typically 3-10x fewer evaluations) of the sweeps' budgets and almost
// always succeeds, while grid/random frequently exhaust the budget.
#include "bench_common.hpp"

#include "workflow/campaign.hpp"

int main() {
  using namespace hetflow;
  using workflow::SearchStrategy;
  bench::print_experiment_header(
      "Fig 5",
      "time-to-discovery: adaptive vs grid vs random (mean over 5 seeds)");

  const hw::Platform platform = hw::make_hpc_node(8, 2, 0);
  const std::uint64_t seeds[] = {1, 7, 13, 29, 71};

  for (const auto kind : {workflow::ResponseSurface::Kind::Branin,
                          workflow::ResponseSurface::Kind::Quadratic}) {
    const workflow::ResponseSurface surface(kind, 0.05);
    std::cout << "objective: " << surface.name() << "\n";
    util::Table table({"strategy", "success", "mean evals", "mean sim time s",
                       "mean best"});
    for (SearchStrategy strategy :
         {SearchStrategy::Grid, SearchStrategy::Random,
          SearchStrategy::Surrogate}) {
      std::size_t successes = 0;
      double mean_evals = 0.0;
      double mean_time = 0.0;
      double mean_best = 0.0;
      for (std::uint64_t seed : seeds) {
        workflow::CampaignConfig config;
        config.max_evaluations = 256;
        config.target_excess = 0.1;
        config.seed = seed;
        const workflow::CampaignResult result =
            workflow::run_campaign(platform, surface, strategy, config);
        successes += result.reached_target ? 1 : 0;
        mean_evals += static_cast<double>(result.evaluations);
        mean_time += result.makespan_s;
        mean_best += result.best_value;
      }
      const double n = static_cast<double>(std::size(seeds));
      table.add_row({to_string(strategy),
                     util::format("%zu/%zu", successes, std::size(seeds)),
                     util::format("%.1f", mean_evals / n),
                     util::format("%.3f", mean_time / n),
                     util::format("%.4f", mean_best / n)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
