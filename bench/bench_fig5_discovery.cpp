// Fig 5 — Time-to-discovery: evaluations and simulated campaign time to
// reach the optimum region of the response surface, adaptive surrogate
// strategy vs grid and random sweeps, averaged over seeds. Expected
// shape: the adaptive strategy reaches the target in a small fraction
// (typically 3-10x fewer evaluations) of the sweeps' budgets and almost
// always succeeds, while grid/random frequently exhaust the budget.
#include "bench_common.hpp"

#include "workflow/campaign.hpp"

int main() {
  using namespace hetflow;
  using workflow::SearchStrategy;
  bench::print_experiment_header(
      "Fig 5",
      "time-to-discovery: adaptive vs grid vs random (mean over 5 seeds)");

  const hw::Platform platform = hw::make_hpc_node(8, 2, 0);
  const std::uint64_t seeds[] = {1, 7, 13, 29, 71};

  for (const auto kind : {workflow::ResponseSurface::Kind::Branin,
                          workflow::ResponseSurface::Kind::Quadratic}) {
    const workflow::ResponseSurface surface(kind, 0.05);
    std::cout << "objective: " << surface.name() << "\n";
    util::Table table({"strategy", "success", "mean evals", "mean sim time s",
                       "mean best"});
    const std::vector<SearchStrategy> strategies = {
        SearchStrategy::Grid, SearchStrategy::Random,
        SearchStrategy::Surrogate};
    // Whole campaigns are the unit of parallelism here: each
    // (strategy x seed) cell owns its Runtime/Rng, fanned out over
    // HETFLOW_JOBS workers; inside a cell the candidate scoring stays
    // serial (config.jobs = 1) so workers do not spawn nested pools.
    const std::size_t n_seeds = std::size(seeds);
    const std::vector<workflow::CampaignResult> results =
        exec::parallel_map<workflow::CampaignResult>(
            strategies.size() * n_seeds, bench::jobs(), [&](std::size_t i) {
              workflow::CampaignConfig config;
              config.max_evaluations = 256;
              config.target_excess = 0.1;
              config.seed = seeds[i % n_seeds];
              config.jobs = 1;
              return workflow::run_campaign(platform, surface,
                                            strategies[i / n_seeds], config);
            });
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      std::size_t successes = 0;
      double mean_evals = 0.0;
      double mean_time = 0.0;
      double mean_best = 0.0;
      for (std::size_t k = 0; k < n_seeds; ++k) {
        const workflow::CampaignResult& result = results[s * n_seeds + k];
        successes += result.reached_target ? 1 : 0;
        mean_evals += static_cast<double>(result.evaluations);
        mean_time += result.makespan_s;
        mean_best += result.best_value;
      }
      const double n = static_cast<double>(n_seeds);
      table.add_row({to_string(strategies[s]),
                     util::format("%zu/%zu", successes, n_seeds),
                     util::format("%.1f", mean_evals / n),
                     util::format("%.3f", mean_time / n),
                     util::format("%.4f", mean_best / n)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
