// Fig 1 — Offload scaling: Cholesky 16x16 makespan vs number of GPUs
// (1..8) for HEFT, dmda and eager. Expected shape: near-linear speedup
// to ~4 GPUs for the cost-aware policies, then a plateau as the critical
// path and PCIe contention dominate; eager scales worst because it
// ignores transfer costs and execution-time asymmetry.
#include "bench_common.hpp"

#include "core/runtime.hpp"
#include "sched/registry.hpp"

int main() {
  using namespace hetflow;
  bench::print_experiment_header(
      "Fig 1", "Cholesky 16x16: makespan vs #GPUs (series per scheduler)");

  const auto library = workflow::CodeletLibrary::standard();
  const std::vector<std::string> policies = {"eager", "dmda", "heft"};

  util::Table table({"#gpus", "eager s", "dmda s", "heft s",
                     "dmda speedup vs 1 gpu"});
  double dmda_one_gpu = 0.0;
  for (std::size_t gpus = 1; gpus <= 8; ++gpus) {
    const hw::Platform platform = hw::make_hpc_node(8, gpus, 0);
    std::vector<std::string> row = {std::to_string(gpus)};
    double dmda_makespan = 0.0;
    for (const std::string& policy : policies) {
      core::Runtime runtime(platform, sched::make_scheduler(policy),
                            bench::bench_options());
      workflow::submit_cholesky_inplace(runtime, 16, 2048, library);
      runtime.wait_all();
      row.push_back(util::format("%.3f", runtime.stats().makespan_s));
      if (policy == "dmda") {
        dmda_makespan = runtime.stats().makespan_s;
      }
    }
    if (gpus == 1) {
      dmda_one_gpu = dmda_makespan;
    }
    row.push_back(util::format("%.2fx", dmda_one_gpu / dmda_makespan));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(series: one column per scheduler; plot #gpus on x, "
               "makespan on y)\n";
  return 0;
}
