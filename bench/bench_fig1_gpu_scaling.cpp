// Fig 1 — Offload scaling: Cholesky 16x16 makespan vs number of GPUs
// (1..8) for HEFT, dmda and eager. Expected shape: near-linear speedup
// to ~4 GPUs for the cost-aware policies, then a plateau as the critical
// path and PCIe contention dominate; eager scales worst because it
// ignores transfer costs and execution-time asymmetry.
#include "bench_common.hpp"

#include "core/runtime.hpp"
#include "sched/registry.hpp"

int main() {
  using namespace hetflow;
  bench::print_experiment_header(
      "Fig 1", "Cholesky 16x16: makespan vs #GPUs (series per scheduler)");

  const auto library = workflow::CodeletLibrary::standard();
  const std::vector<std::string> policies = {"eager", "dmda", "heft"};

  util::Table table({"#gpus", "eager s", "dmda s", "heft s",
                     "dmda speedup vs 1 gpu"});
  // Flattened (gpus x policy) grid over HETFLOW_JOBS workers; the
  // dmda-at-1-gpu speedup baseline is read off the collected results.
  constexpr std::size_t kMaxGpus = 8;
  const std::vector<double> makespans = exec::parallel_map<double>(
      kMaxGpus * policies.size(), bench::jobs(), [&](std::size_t i) {
        const std::size_t gpus = 1 + i / policies.size();
        const hw::Platform platform = hw::make_hpc_node(8, gpus, 0);
        core::Runtime runtime(platform,
                              sched::make_scheduler(policies[i % policies.size()]),
                              bench::bench_options());
        workflow::submit_cholesky_inplace(runtime, 16, 2048, library);
        runtime.wait_all();
        return runtime.stats().makespan_s;
      });
  const double dmda_one_gpu = makespans[1];  // policies[1] == "dmda"
  for (std::size_t g = 0; g < kMaxGpus; ++g) {
    std::vector<std::string> row = {std::to_string(g + 1)};
    for (std::size_t p = 0; p < policies.size(); ++p) {
      row.push_back(
          util::format("%.3f", makespans[g * policies.size() + p]));
    }
    row.push_back(util::format(
        "%.2fx", dmda_one_gpu / makespans[g * policies.size() + 1]));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(series: one column per scheduler; plot #gpus on x, "
               "makespan on y)\n";
  return 0;
}
