// Sweep scaling — wall-clock speedup of the thread-pooled sweep engine
// over the serial baseline on the Table-1 workload grid (6 workflows x
// 10 policies, hpc node), with the determinism contract checked on every
// point: the CSV emitted at every thread count must be byte-identical to
// the serial run. Expected shape: near-linear speedup to ~4 workers
// (the grid's 60 cells are embarrassingly parallel; the longest single
// cell bounds the tail), then a plateau set by core count and the
// largest workflow. Emits BENCH_sweep.json for the plotting pipeline.
#include "bench_common.hpp"

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "exec/sweep.hpp"
#include "util/json.hpp"

int main() {
  using namespace hetflow;
  bench::print_experiment_header(
      "Sweep scaling",
      "parallel sweep wall-clock vs --jobs on the Table-1 grid");

  exec::SweepSpec spec;
  spec.workflows = {"montage:96", "epigenomics:8,12", "cybershake:6,30",
                    "ligo:130,10", "sipht:28,8", "cholesky:12,2048"};
  spec.platforms = {"hpc:8,2,0"};
  spec.schedulers = {"random", "round-robin", "eager", "work-stealing",
                     "mct",    "min-min",     "dmda",  "dmdas",
                     "heft",   "cpop"};
  spec.seeds = 1;
  spec.validate = bench::validate_requested();

  const auto csv_of = [](const std::vector<exec::SweepRow>& rows) {
    std::ostringstream out;
    exec::write_sweep_header(out);
    exec::write_sweep_rows(out, rows);
    return out.str();
  };
  const auto timed_run = [&](std::size_t jobs, std::string& csv) {
    spec.jobs = jobs;
    // This bench measures *host-side* sweep-engine throughput, so wall
    // time is the measurand; the simulated results it checks for byte
    // drift never depend on it.
    // hetflow-lint: allow(det-wallclock)
    const auto begin = std::chrono::steady_clock::now();
    const std::vector<exec::SweepRow> rows = exec::run_sweep(spec);
    // hetflow-lint: allow(det-wallclock)
    const auto end = std::chrono::steady_clock::now();
    csv = csv_of(rows);
    return std::chrono::duration<double>(end - begin).count();
  };

  // Untimed warmup so the serial baseline doesn't absorb one-time costs
  // (first-touch page faults, allocator arena growth) that later runs
  // inherit for free — on few-core machines that alone fakes a speedup.
  {
    std::string ignored;
    (void)timed_run(1, ignored);
  }

  std::string serial_csv;
  const double serial_s = timed_run(1, serial_csv);
  const std::size_t cells = spec.workflows.size() * spec.schedulers.size();
  const unsigned cores = std::thread::hardware_concurrency();
  std::cout << "grid: " << cells << " cells, " << cores
            << " hardware threads, serial "
            << util::format("%.2f s\n\n", serial_s);

  util::Table table({"jobs", "wall s", "speedup", "csv identical"});
  table.add_row({"1", util::format("%.2f", serial_s), "1.00x", "yes"});

  util::Json runs = util::Json::array();
  util::Json serial_run = util::Json::object();
  serial_run["jobs"] = 1;
  serial_run["wall_s"] = serial_s;
  serial_run["speedup"] = 1.0;
  serial_run["csv_identical"] = true;
  runs.push_back(serial_run);

  bool all_identical = true;
  for (std::size_t jobs : {2, 4, 8}) {
    std::string csv;
    const double wall_s = timed_run(jobs, csv);
    const bool identical = csv == serial_csv;
    all_identical &= identical;
    const double speedup = serial_s / wall_s;
    table.add_row({std::to_string(jobs), util::format("%.2f", wall_s),
                   util::format("%.2fx", speedup), identical ? "yes" : "NO"});
    util::Json run = util::Json::object();
    run["jobs"] = jobs;
    run["wall_s"] = wall_s;
    run["speedup"] = speedup;
    run["csv_identical"] = identical;
    runs.push_back(run);
  }
  table.print(std::cout);
  std::cout << "\n(wall-clock host seconds for the whole grid; every row "
               "set is collected in cell order, so the CSV must not "
               "depend on the thread count; speedup is bounded by the "
               "hardware thread count above)\n";

  util::Json doc = util::Json::object();
  doc["bench"] = "sweep_scaling";
  doc["hardware_threads"] = static_cast<std::size_t>(cores);
  doc["cells"] = cells;
  doc["workflows"] = spec.workflows.size();
  doc["schedulers"] = spec.schedulers.size();
  doc["serial_wall_s"] = serial_s;
  doc["runs"] = runs;
  std::ofstream out("BENCH_sweep.json");
  out << doc.dump_pretty() << '\n';
  std::cout << "\nwrote BENCH_sweep.json\n";

  return all_identical ? 0 : 1;
}
