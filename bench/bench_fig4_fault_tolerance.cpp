// Fig 4 — Fault tolerance: makespan inflation vs transient task-failure
// rate (failures per busy-second) for the two recovery policies on the
// Montage workflow. Expected shape: inflation grows roughly like
// 1/(1 - p_fail-per-task); rescheduling beats retry-same at high rates
// because a rescheduled attempt can land on an idle (or less exposed)
// device instead of queueing behind the same one.
#include "bench_common.hpp"

#include "core/runtime.hpp"
#include "sched/registry.hpp"

int main() {
  using namespace hetflow;
  bench::print_experiment_header(
      "Fig 4", "montage: makespan inflation vs failure rate per policy");

  const hw::Platform platform = hw::make_hpc_node(8, 2, 0);
  const auto library = workflow::CodeletLibrary::standard();
  const workflow::Workflow wf = workflow::make_montage(96);

  const double clean =
      workflow::run_workflow(platform, "dmda", wf, library, bench::bench_options())
          .makespan_s;
  std::cout << "failure-free makespan: " << util::format("%.3f s\n\n", clean);

  util::Table table({"rate 1/s", "retry-same s", "inflation", "attempts",
                     "reschedule s", "inflation", "attempts"});
  const std::vector<double> rates = {0.0, 0.2, 0.5, 1.0, 2.0, 4.0};
  const std::vector<core::FailurePolicy> recovery = {
      core::FailurePolicy::RetrySameDevice, core::FailurePolicy::Reschedule};
  // Flattened (rate x policy) grid over HETFLOW_JOBS workers; rows are
  // assembled from the index-ordered results against the clean baseline.
  const std::vector<core::RunStats> stats =
      exec::parallel_map<core::RunStats>(
          rates.size() * recovery.size(), bench::jobs(),
          [&](std::size_t i) {
            core::RuntimeOptions options = bench::bench_options();
            options.failure_model =
                hw::FailureModel::uniform(rates[i / recovery.size()]);
            options.failure_policy = recovery[i % recovery.size()];
            options.max_attempts = 200;
            return workflow::run_workflow(platform, "dmda", wf, library,
                                          options);
          });
  for (std::size_t r = 0; r < rates.size(); ++r) {
    std::vector<std::string> row = {util::format("%.1f", rates[r])};
    for (std::size_t p = 0; p < recovery.size(); ++p) {
      const core::RunStats& s = stats[r * recovery.size() + p];
      row.push_back(util::format("%.3f", s.makespan_s));
      row.push_back(util::format("%.2fx", s.makespan_s / clean));
      row.push_back(std::to_string(s.failed_attempts));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
