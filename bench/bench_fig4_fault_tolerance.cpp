// Fig 4 — Fault tolerance: makespan inflation vs transient task-failure
// rate (failures per busy-second) for the two recovery policies on the
// Montage workflow. Expected shape: inflation grows roughly like
// 1/(1 - p_fail-per-task); rescheduling beats retry-same at high rates
// because a rescheduled attempt can land on an idle (or less exposed)
// device instead of queueing behind the same one.
#include "bench_common.hpp"

#include "core/runtime.hpp"
#include "sched/registry.hpp"

int main() {
  using namespace hetflow;
  bench::print_experiment_header(
      "Fig 4", "montage: makespan inflation vs failure rate per policy");

  const hw::Platform platform = hw::make_hpc_node(8, 2, 0);
  const auto library = workflow::CodeletLibrary::standard();
  const workflow::Workflow wf = workflow::make_montage(96);

  const double clean =
      workflow::run_workflow(platform, "dmda", wf, library, bench::bench_options())
          .makespan_s;
  std::cout << "failure-free makespan: " << util::format("%.3f s\n\n", clean);

  util::Table table({"rate 1/s", "retry-same s", "inflation", "attempts",
                     "reschedule s", "inflation", "attempts"});
  for (double rate : {0.0, 0.2, 0.5, 1.0, 2.0, 4.0}) {
    std::vector<std::string> row = {util::format("%.1f", rate)};
    for (core::FailurePolicy policy :
         {core::FailurePolicy::RetrySameDevice,
          core::FailurePolicy::Reschedule}) {
      core::RuntimeOptions options = bench::bench_options();
      options.failure_model = hw::FailureModel::uniform(rate);
      options.failure_policy = policy;
      options.max_attempts = 200;
      const core::RunStats stats =
          workflow::run_workflow(platform, "dmda", wf, library, options);
      row.push_back(util::format("%.3f", stats.makespan_s));
      row.push_back(util::format("%.2fx", stats.makespan_s / clean));
      row.push_back(std::to_string(stats.failed_attempts));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
