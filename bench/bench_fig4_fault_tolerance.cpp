// Fig 4 — Fault tolerance: makespan inflation and work lost vs transient
// task-failure rate for four recovery policies on the Montage workflow.
//
// The injected fault is a single flaky GPU (per-device rate override on
// one of the two boards; the rest of the platform is healthy) and 40% of
// its failures are fail-silent hangs, recovered only by the per-attempt
// timeout watchdog — the detection-latency regime the paper's resilience
// discussion targets. Every policy gets the same per-task attempt budget
// with ExhaustionPolicy::Drop, so a policy that keeps hammering the bad
// board risks exhausting the budget and losing the task's whole
// dependent subtree, while a policy that routes around it keeps the DAG
// alive. Expected shape: retry-same degrades fastest (every recovery
// re-queues behind the same flaky GPU, paying the 1.5 s hang timeout
// over and over); rescheduling helps; exponential backoff + device
// blacklisting wins at high rates — lower makespan than retry-same and
// zero lost tasks — because the quarantined board stops eating attempts
// entirely and work flows to the healthy GPU and CPUs.
//
// Emits BENCH_fault.json for the plotting pipeline.
#include "bench_common.hpp"

#include <fstream>

#include "core/runtime.hpp"
#include "sched/registry.hpp"
#include "util/json.hpp"

namespace {

struct PolicyConfig {
  const char* name;
  hetflow::core::FailurePolicy failure_policy;
  double backoff_base_s;
  std::size_t blacklist_after;
};

}  // namespace

int main() {
  using namespace hetflow;
  bench::print_experiment_header(
      "Fig 4",
      "montage: makespan inflation and tasks lost vs failure rate per "
      "recovery policy");

  const hw::Platform platform = hw::make_hpc_node(8, 2, 0);
  const auto library = workflow::CodeletLibrary::standard();
  const workflow::Workflow wf = workflow::make_montage(96);

  // The flaky board: the first GPU on the node.
  hw::DeviceId flaky_gpu = 0;
  for (const hw::Device& device : platform.devices()) {
    if (device.type() == hw::DeviceType::Gpu) {
      flaky_gpu = device.id();
      break;
    }
  }

  const double clean =
      workflow::run_workflow(platform, "dmda", wf, library,
                             bench::bench_options())
          .makespan_s;
  std::cout << "failure-free makespan: " << util::format("%.3f s\n\n", clean);

  const std::vector<PolicyConfig> policies = {
      {"retry-same", core::FailurePolicy::RetrySameDevice, 0.0, 0},
      {"reschedule", core::FailurePolicy::Reschedule, 0.0, 0},
      {"backoff", core::FailurePolicy::Reschedule, 0.01, 0},
      {"backoff+blacklist", core::FailurePolicy::Reschedule, 0.01, 3},
  };
  const std::vector<double> rates = {0.0, 2.0, 5.0, 10.0, 20.0, 40.0};

  // Flattened (rate x policy) grid over HETFLOW_JOBS workers; rows are
  // assembled from the index-ordered results against the clean baseline.
  const std::vector<core::RunStats> stats =
      exec::parallel_map<core::RunStats>(
          rates.size() * policies.size(), bench::jobs(), [&](std::size_t i) {
            const double rate = rates[i / policies.size()];
            const PolicyConfig& policy = policies[i % policies.size()];
            core::RuntimeOptions options = bench::bench_options();
            options.failure_model.set_device_rate(flaky_gpu, rate);
            options.failure_model.set_hang_fraction(0.4);
            options.failure_policy = policy.failure_policy;
            // Longest failure-free attempt on this platform is ~0.97 s;
            // 1.5 s detects hangs without ever killing legitimate work.
            options.retry.timeout_s = 1.5;
            options.retry.max_attempts = 30;
            options.retry.on_exhausted = core::ExhaustionPolicy::Drop;
            options.retry.backoff_base_s = policy.backoff_base_s;
            options.retry.backoff_jitter = 0.25;
            options.retry.backoff_max_s = 0.1;
            options.retry.blacklist_after = policy.blacklist_after;
            options.retry.probation_s = 2.0;
            return workflow::run_workflow(platform, "dmda", wf, library,
                                          options);
          });

  util::Json runs = util::Json::array();
  for (const PolicyConfig& policy : policies) {
    std::cout << "policy: " << policy.name << '\n';
    util::Table table({"rate 1/s", "makespan s", "inflation", "attempts",
                       "lost", "blacklists"});
    for (std::size_t r = 0; r < rates.size(); ++r) {
      const std::size_t p = static_cast<std::size_t>(
          &policy - policies.data());
      const core::RunStats& s = stats[r * policies.size() + p];
      table.add_row({util::format("%.1f", rates[r]),
                     util::format("%.3f", s.makespan_s),
                     util::format("%.2fx", s.makespan_s / clean),
                     std::to_string(s.failed_attempts),
                     std::to_string(s.tasks_lost),
                     std::to_string(s.blacklist_events)});
      util::Json run = util::Json::object();
      run["policy"] = policy.name;
      run["flaky_gpu_rate_per_s"] = rates[r];
      run["makespan_s"] = s.makespan_s;
      run["inflation"] = s.makespan_s / clean;
      run["failed_attempts"] = s.failed_attempts;
      run["timeouts"] = s.timeouts;
      run["tasks_lost"] = s.tasks_lost;
      run["blacklist_events"] = s.blacklist_events;
      runs.push_back(std::move(run));
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  util::Json doc = util::Json::object();
  doc["experiment"] = "fig4_fault_tolerance";
  doc["workflow"] = wf.name();
  doc["platform"] = platform.name();
  doc["scheduler"] = "dmda";
  doc["max_attempts"] = 30;
  doc["clean_makespan_s"] = clean;
  doc["runs"] = std::move(runs);
  std::ofstream out("BENCH_fault.json");
  out << doc.dump_pretty() << '\n';
  std::cout << "wrote BENCH_fault.json\n";
  return 0;
}
