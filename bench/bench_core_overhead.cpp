// Core hot-path overhead — tasks/second through the full
// submit → dependency release → schedule → complete path on synthetic
// DAGs of 10^5–10^6 near-zero-cost tasks (the paper's "runtime overhead
// stays negligible as workflows grow" claim, measured instead of
// assumed). Three shapes stress different parts of the bookkeeping:
//
//   chain    — 1 handle, every task RW: pure sequential release, the
//              event queue and completion path dominate;
//   fanout   — one producer, N-2 readers, one RW sink: huge dependent
//              lists and a WAR fan-in with N-2 parents;
//   layered  — W-wide layers, each task writes its own handle and reads
//              K=3 handles of the previous layer: the realistic regime
//              (registration, dependency inference, coherence directory
//              all at full tilt);
//   burst    — repeated barrier + wide fan-out on one handle: with 8
//              identical CPUs and identical task costs, completions land
//              8-at-a-time on identical timestamps, the stress case for
//              the batched completion drain (EventQueue::drain_ready).
//
// Host wall-clock is the measurand (simulated results stay seed-exact;
// checked by the determinism suites, not here). Emits BENCH_core.json so
// the throughput trajectory is tracked across PRs (tools/bench_diff.py
// compares two such files).
//
// Usage: bench_core_overhead [--smoke] [--tasks N[,N...]]
//                            [--validate] [--metrics]
//   --smoke     CI mode: one 10^4-task size per shape + the HEFT sanity
//               run at 10^4 (exit non-zero on zero throughput, a failed
//               count cross-check, or a blown HEFT time bound).
//   --validate  run every workload with the end-of-run audit enabled
//               (also via HETFLOW_BENCH_VALIDATE=1).
//   --metrics   run with the observability layer on (also via
//               HETFLOW_BENCH_METRICS=1). Both skew throughput; the
//               recorded BENCH_core.json runs keep them off.
//
// hetflow-lint: allow-file(det-wallclock)  — wall time is the measurand
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/runtime.hpp"
#include "hw/presets.hpp"
#include "sched/registry.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace hetflow;

/// Set by --validate / --metrics (or the HETFLOW_BENCH_* env hooks).
bool g_validate = false;
bool g_metrics = false;

core::RuntimeOptions lean_options(std::size_t expected_tasks = 0,
                                  std::size_t expected_data = 0) {
  core::RuntimeOptions options;
  options.record_trace = false;      // measuring the runtime, not the tracer
  options.use_history_model = false; // static cost model only
  // The throughput configuration this bench exists to track: one
  // scheduler probe per completion batch instead of per event.
  options.batch_completions = true;
  // Capacity hints: generators know their exact task/handle counts, so
  // the pools are pre-faulted in the (untimed) constructor — the timed
  // region measures steady-state per-task cost, not one-time allocation.
  options.expected_tasks = expected_tasks;
  options.expected_data = expected_data;
  options.validate = g_validate;
  options.metrics = g_metrics;
  return options;
}

core::CodeletPtr noop_codelet() {
  // ~1 us per task on a preset CPU core: the codelet cost is negligible
  // next to per-task bookkeeping, which is what this bench isolates.
  static const core::CodeletPtr codelet =
      core::Codelet::make("noop", {{hw::DeviceType::Cpu, 1.0}});
  return codelet;
}

constexpr double kNoopFlops = 1e3;

struct ShapeResult {
  std::string shape;
  std::size_t tasks = 0;
  double submit_s = 0.0;  ///< wall seconds in the submit loop
  double run_s = 0.0;     ///< wall seconds in wait_all()
  std::uint64_t events = 0;
  std::size_t peak_pending = 0;
  std::uint64_t completed = 0;

  double total_s() const { return submit_s + run_s; }
  double tasks_per_s() const {
    return total_s() > 0.0 ? static_cast<double>(tasks) / total_s() : 0.0;
  }
};

double wall_since(std::chrono::steady_clock::time_point begin) {
  // Host-side throughput bench: wall time is the measurand.
  // hetflow-lint: allow(det-wallclock)
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - begin).count();
}

// --- synthetic DAG generators ---------------------------------------------

/// chain: task i RW-accesses the single handle -> depends on task i-1.
ShapeResult run_chain(const hw::Platform& platform, std::size_t n) {
  core::Runtime rt(platform, sched::make_scheduler("eager"),
                   lean_options(n, 1));
  const data::DataId h = rt.register_data("h", 1024);
  // hetflow-lint: allow(det-wallclock)
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    rt.submit("c", noop_codelet(), kNoopFlops,
              {{h, data::AccessMode::ReadWrite}});
  }
  ShapeResult out{"chain", n};
  out.submit_s = wall_since(t0);
  // hetflow-lint: allow(det-wallclock)
  const auto t1 = std::chrono::steady_clock::now();
  rt.wait_all();
  out.run_s = wall_since(t1);
  out.events = rt.event_queue().executed();
  out.peak_pending = rt.event_queue().peak_pending();
  out.completed = rt.stats().tasks_completed;
  return out;
}

/// fanout: one writer, n-2 parallel readers, one RW sink (WAR fan-in).
ShapeResult run_fanout(const hw::Platform& platform, std::size_t n) {
  core::Runtime rt(platform, sched::make_scheduler("eager"),
                   lean_options(n, 1));
  const data::DataId h = rt.register_data("h", 1024);
  // hetflow-lint: allow(det-wallclock)
  const auto t0 = std::chrono::steady_clock::now();
  rt.submit("root", noop_codelet(), kNoopFlops,
            {{h, data::AccessMode::Write}});
  for (std::size_t i = 0; i + 2 < n; ++i) {
    rt.submit("r", noop_codelet(), kNoopFlops, {{h, data::AccessMode::Read}});
  }
  rt.submit("sink", noop_codelet(), kNoopFlops,
            {{h, data::AccessMode::ReadWrite}});
  ShapeResult out{"fanout", n};
  out.submit_s = wall_since(t0);
  // hetflow-lint: allow(det-wallclock)
  const auto t1 = std::chrono::steady_clock::now();
  rt.wait_all();
  out.run_s = wall_since(t1);
  out.events = rt.event_queue().executed();
  out.peak_pending = rt.event_queue().peak_pending();
  out.completed = rt.stats().tasks_completed;
  return out;
}

/// layered: width-W layers; each task writes its own handle and reads 3
/// deterministic-random handles from the previous layer.
ShapeResult run_layered(const hw::Platform& platform, std::size_t n,
                        const std::string& scheduler = "eager",
                        std::size_t width = 1024) {
  core::Runtime rt(platform, sched::make_scheduler(scheduler),
                   lean_options(n, n));
  util::Rng rng(7);
  std::vector<data::DataId> prev;
  std::vector<data::DataId> current;
  // hetflow-lint: allow(det-wallclock)
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t made = 0;
  while (made < n) {
    const std::size_t w = std::min(width, n - made);
    current.clear();
    for (std::size_t i = 0; i < w; ++i) {
      const data::DataId own = rt.register_data("d", 1024);
      // Stack-built access list: submit() takes a span, so the hot loop
      // allocates nothing per task.
      data::Access accesses[4];
      std::size_t count = 0;
      for (std::size_t k = 0; k < 3 && !prev.empty(); ++k) {
        const auto pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(prev.size()) - 1));
        // Same rng stream, but a repeated pick is dropped: an access list
        // must not name a handle twice (hetflow-verify access-mode rule).
        bool seen = false;
        for (std::size_t j = 0; j < count; ++j) {
          seen = seen || accesses[j].data == prev[pick];
        }
        if (!seen) {
          accesses[count++] = {prev[pick], data::AccessMode::Read};
        }
      }
      accesses[count++] = {own, data::AccessMode::Write};
      rt.submit("l", noop_codelet(), kNoopFlops,
                std::span<const data::Access>(accesses, count));
      current.push_back(own);
      ++made;
    }
    prev.swap(current);
  }
  ShapeResult out{"layered", n};
  out.submit_s = wall_since(t0);
  // hetflow-lint: allow(det-wallclock)
  const auto t1 = std::chrono::steady_clock::now();
  rt.wait_all();
  out.run_s = wall_since(t1);
  out.events = rt.event_queue().executed();
  out.peak_pending = rt.event_queue().peak_pending();
  out.completed = rt.stats().tasks_completed;
  return out;
}

/// burst: repeated (barrier RW, W readers) rounds on a single handle.
/// Every reader in a round has identical cost and the preset CPUs are
/// identical, so one completion event fires per device at the exact same
/// timestamp — the event queue spends the whole run in same-time batches
/// and the batched drain (drain_ready + one scheduler probe per batch)
/// is what separates it from the per-event path.
ShapeResult run_burst(const hw::Platform& platform, std::size_t n,
                      std::size_t width = 512) {
  core::Runtime rt(platform, sched::make_scheduler("eager"),
                   lean_options(n, 1));
  const data::DataId h = rt.register_data("h", 1024);
  // hetflow-lint: allow(det-wallclock)
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t made = 0;
  while (made < n) {
    rt.submit("b", noop_codelet(), kNoopFlops,
              {{h, data::AccessMode::ReadWrite}});
    ++made;
    const std::size_t w = std::min(width, n - made);
    for (std::size_t i = 0; i < w; ++i) {
      rt.submit("w", noop_codelet(), kNoopFlops,
                {{h, data::AccessMode::Read}});
      ++made;
    }
  }
  ShapeResult out{"burst", n};
  out.submit_s = wall_since(t0);
  // hetflow-lint: allow(det-wallclock)
  const auto t1 = std::chrono::steady_clock::now();
  rt.wait_all();
  out.run_s = wall_since(t1);
  out.events = rt.event_queue().executed();
  out.peak_pending = rt.event_queue().peak_pending();
  out.completed = rt.stats().tasks_completed;
  return out;
}

util::Json to_json(const ShapeResult& r) {
  util::Json row = util::Json::object();
  row["shape"] = r.shape;
  row["tasks"] = r.tasks;
  row["submit_s"] = r.submit_s;
  row["run_s"] = r.run_s;
  row["total_s"] = r.total_s();
  row["tasks_per_s"] = r.tasks_per_s();
  row["events_executed"] = static_cast<std::size_t>(r.events);
  row["event_peak_pending"] = r.peak_pending;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetflow;
  bool smoke = false;
  std::string shape_filter;
  std::vector<std::size_t> sizes = {100000, 1000000};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      sizes = {10000};
    } else if (std::strcmp(argv[i], "--tasks") == 0 && i + 1 < argc) {
      sizes.clear();
      for (const std::string& part : util::split(argv[++i], ',')) {
        sizes.push_back(static_cast<std::size_t>(std::stoull(part)));
      }
    } else if (std::strcmp(argv[i], "--validate") == 0) {
      g_validate = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      g_metrics = true;
    } else if (std::strcmp(argv[i], "--shape") == 0 && i + 1 < argc) {
      shape_filter = argv[++i];  // profiling aid: run one shape only
    } else {
      std::cerr << "usage: bench_core_overhead [--smoke] [--tasks N[,N...]]"
                   " [--shape NAME] [--validate] [--metrics]\n";
      return 2;
    }
  }
  g_validate = g_validate || bench::validate_requested();
  g_metrics = g_metrics || bench::metrics_requested();

  std::cout << "\n=== Core overhead — tasks/second through "
               "submit -> release -> schedule -> complete ===\n\n";

  const hw::Platform platform = hw::make_cpu_only(8);
  util::Table table({"shape", "tasks", "submit s", "run s", "total s",
                     "tasks/s", "events"});
  util::Json runs = util::Json::array();
  bool ok = true;

  std::vector<ShapeResult> results;
  const auto wanted = [&](const char* name) {
    return shape_filter.empty() || shape_filter == name;
  };
  for (std::size_t n : sizes) {
    if (wanted("chain")) results.push_back(run_chain(platform, n));
    if (wanted("fanout")) results.push_back(run_fanout(platform, n));
    if (wanted("layered")) results.push_back(run_layered(platform, n));
    if (wanted("burst")) results.push_back(run_burst(platform, n));
  }
  for (const ShapeResult& r : results) {
    // Every submitted task must have completed: a silent loss at scale is
    // exactly the class of bug this bench exists to flush out.
    if (r.completed != r.tasks || r.tasks_per_s() <= 0.0) {
      std::cerr << "FAIL: " << r.shape << " at " << r.tasks << " tasks: "
                << r.completed << " completed, " << r.tasks_per_s()
                << " tasks/s\n";
      ok = false;
    }
    table.add_row({r.shape, std::to_string(r.tasks),
                   util::format("%.3f", r.submit_s),
                   util::format("%.3f", r.run_s),
                   util::format("%.3f", r.total_s()),
                   util::format("%.0f", r.tasks_per_s()),
                   std::to_string(r.events)});
    runs.push_back(to_json(r));
  }
  table.print(std::cout);

  // A --shape run is a profiling aid: no HEFT sanity, no JSON (a partial
  // file must never masquerade as a full BENCH_core.json).
  if (!shape_filter.empty()) {
    return ok ? 0 : 1;
  }

  // HEFT static-planning sanity bound: a 10^5-task layered DAG must plan
  // and run without quadratic blowup. The bound is deliberately loose —
  // it catches complexity regressions (minutes), not jitter.
  const std::size_t heft_tasks = smoke ? 10000 : 100000;
  const double heft_bound_s = smoke ? 60.0 : 120.0;
  // hetflow-lint: allow(det-wallclock)
  const auto heft_begin = std::chrono::steady_clock::now();
  const ShapeResult heft = run_layered(platform, heft_tasks, "heft");
  const double heft_wall_s = wall_since(heft_begin);
  const bool heft_ok =
      heft.completed == heft.tasks && heft_wall_s <= heft_bound_s;
  std::cout << "\nheft plan+run, layered " << heft_tasks << " tasks: "
            << util::format("%.2f s", heft_wall_s) << " (bound "
            << util::format("%.0f s", heft_bound_s) << ") — "
            << (heft_ok ? "ok" : "FAIL") << "\n";
  ok = ok && heft_ok;

  util::Json doc = util::Json::object();
  doc["bench"] = "core_overhead";
  doc["smoke"] = smoke;
  doc["runs"] = runs;
  util::Json heft_doc = util::Json::object();
  heft_doc["tasks"] = heft_tasks;
  heft_doc["wall_s"] = heft_wall_s;
  heft_doc["bound_s"] = heft_bound_s;
  heft_doc["ok"] = heft_ok;
  doc["heft_sanity"] = heft_doc;
  std::ofstream out("BENCH_core.json");
  out << doc.dump_pretty() << '\n';
  std::cout << "\nwrote BENCH_core.json\n";
  return ok ? 0 : 1;
}
