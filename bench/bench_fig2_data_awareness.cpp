// Fig 2 — Data-awareness ablation: makespan and bytes moved vs the
// workflow's communication-to-computation ratio (CCR 0.1 .. 10) for
// dmda (transfer-aware), mct (transfer-blind) and eager. Expected shape:
// all policies tie at low CCR; as CCR grows, mct's blind placement moves
// increasingly more data and its makespan diverges from dmda's — the
// crossover where data-awareness starts paying is around CCR ~ 1.
#include "bench_common.hpp"

int main() {
  using namespace hetflow;
  bench::print_experiment_header(
      "Fig 2",
      "layered DAG: makespan & traffic vs CCR (dmda vs mct vs eager)");

  const hw::Platform platform = hw::make_hpc_node(4, 2, 0);
  const auto library = workflow::CodeletLibrary::standard();

  util::Table table({"CCR", "dmda s", "mct s", "eager s", "dmda moved",
                     "mct moved", "mct/dmda makespan"});
  for (double ccr : {0.1, 0.3, 1.0, 3.0, 10.0}) {
    // Average over a few seeds to smooth generator randomness.
    double makespan[3] = {0, 0, 0};
    double moved[3] = {0, 0, 0};
    constexpr int kSeeds = 3;
    for (int seed = 0; seed < kSeeds; ++seed) {
      const workflow::Workflow wf = workflow::make_random_layered(
          10, 8, ccr, 1000 + static_cast<std::uint64_t>(seed));
      int p = 0;
      for (const char* policy : {"dmda", "mct", "eager"}) {
        const core::RunStats stats =
            workflow::run_workflow(platform, policy, wf, library,
                                   bench::bench_options());
        makespan[p] += stats.makespan_s / kSeeds;
        moved[p] += static_cast<double>(stats.transfers.bytes_moved) / kSeeds;
        ++p;
      }
    }
    table.add_row({util::format("%.1f", ccr),
                   util::format("%.3f", makespan[0]),
                   util::format("%.3f", makespan[1]),
                   util::format("%.3f", makespan[2]),
                   util::human_bytes(moved[0]), util::human_bytes(moved[1]),
                   util::format("%.2fx", makespan[1] / makespan[0])});
  }
  table.print(std::cout);
  return 0;
}
