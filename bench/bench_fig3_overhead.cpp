// Fig 3 — Runtime overhead: real (host) time per simulated task for
// submission + dependency inference + scheduling + execution across
// graph sizes and shapes. Expected shape: throughput in the
// 10^5-10^6 tasks/second range, roughly flat in graph size (near-linear
// scaling) with chains slightly cheaper than bags (single ready queue
// entry at a time).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/runtime.hpp"
#include "hw/presets.hpp"
#include "sched/registry.hpp"
#include "workflow/generators.hpp"
#include "workflow/linalg.hpp"
#include "workflow/workflow.hpp"

namespace {

using namespace hetflow;

void run_shape(benchmark::State& state, const workflow::Workflow& wf,
               const char* policy) {
  const hw::Platform platform = hw::make_cpu_only(8);
  const auto library = workflow::CodeletLibrary::standard();
  for (auto _ : state) {
    core::RuntimeOptions options = bench::bench_options();
    options.record_trace = false;  // measure engine, not trace allocation
    core::Runtime runtime(platform, sched::make_scheduler(policy), options);
    workflow::submit_workflow(runtime, wf, library);
    runtime.wait_all();
    benchmark::DoNotOptimize(runtime.stats().makespan_s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wf.task_count()));
  state.counters["tasks"] = static_cast<double>(wf.task_count());
}

void BM_ChainEager(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_shape(state, workflow::make_chain(n, 1e6, 1024), "eager");
}

void BM_BagEager(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_shape(state, workflow::make_bag(n, 1e6, 1024), "eager");
}

void BM_BagMct(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_shape(state, workflow::make_bag(n, 1e6, 1024), "mct");
}

void BM_LayeredDmda(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_shape(state, workflow::make_random_layered(n / 32, 32, 0.5, 5), "dmda");
}

void BM_CholeskyHeft(benchmark::State& state) {
  const auto nt = static_cast<std::size_t>(state.range(0));
  run_shape(state, workflow::make_cholesky(nt, 512), "heft");
}

}  // namespace

BENCHMARK(BM_ChainEager)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_BagEager)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_BagMct)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_LayeredDmda)->Arg(320)->Arg(3200);
BENCHMARK(BM_CholeskyHeft)->Arg(8)->Arg(16)->Arg(24);

BENCHMARK_MAIN();
