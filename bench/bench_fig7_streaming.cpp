// Fig 7 (extension) — Streaming deadline misses: three periodic sensing
// pipelines share a workstation; sweeping the common period from relaxed
// to saturated shows the deadline-miss onset, and data-aware placement
// (dmda) sustains a shorter period than eager before missing. Expected
// shape: 0% misses above the capacity period, then a sharp rise; the
// dmda curve sits at or below eager's at every period.
#include "bench_common.hpp"

#include "workflow/streaming.hpp"

int main() {
  using namespace hetflow;
  bench::print_experiment_header(
      "Fig 7", "periodic pipelines: deadline miss rate vs period");

  const hw::Platform platform = hw::make_workstation();
  const auto library = workflow::CodeletLibrary::standard();

  const auto make_pipelines = [](double period) {
    std::vector<workflow::PeriodicPipeline> pipelines;
    for (int i = 0; i < 3; ++i) {
      workflow::PeriodicPipeline p;
      p.name = util::format("sensor%d", i);
      p.period_s = period;
      p.stages = {workflow::StageSpec{"io", 2e8, 2 << 20},
                  workflow::StageSpec{"compute", 3e9, 2 << 20},
                  workflow::StageSpec{"reduce", 4e8, 256 << 10}};
      pipelines.push_back(std::move(p));
    }
    return pipelines;
  };

  util::Table table({"period s", "eager miss%", "eager p-lat s",
                     "dmda miss%", "dmda p-lat s"});
  for (double period : {1.0, 0.5, 0.35, 0.25, 0.18, 0.12, 0.08}) {
    std::vector<std::string> row = {util::format("%.2f", period)};
    for (const char* policy : {"eager", "dmda"}) {
      const workflow::StreamingResult result = workflow::run_streaming(
          platform, policy, make_pipelines(period), /*horizon_s=*/20.0,
          library);
      double mean_latency = 0.0;
      for (const auto& p : result.pipelines) {
        mean_latency += p.mean_latency_s / 3.0;
      }
      row.push_back(util::format("%.1f", result.overall_miss_rate() * 100));
      row.push_back(util::format("%.3f", mean_latency));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(deadline = period; 60+ instances per point)\n";
  return 0;
}
