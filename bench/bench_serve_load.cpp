// Serve-layer load generator: closed-loop multi-tenant throughput vs
// tail latency.
//
// Each scale point registers N tenants on one ServeEngine (shared HPC
// platform) and drives a closed loop: every round each tenant offers one
// small workflow, admission decides (per-tenant backlog caps + global
// ceiling with deferral), then batches run until every queue is empty
// (full drain — the structural p99 bound is stated per round). Admission
// keeps the queue bounded by construction; the bench verifies the two
// service-level claims:
//
//   bounded queues   peak pending never exceeds max_pending + defer_cap
//                    (backpressure engaged, nothing grew without bound);
//   bounded p99      p99 workflow latency (service-clock seconds from
//                    admission to last task) stays under the structural
//                    bound (backlog-cap/max-in-flight + overflow-drain +
//                    2 batches) x the worst observed batch makespan.
//
// Emits BENCH_serve.json. --smoke shrinks the grid for CI/ASan runs;
// full mode spans 10^3..10^5 tenants.
//
// hetflow-lint: allow-file(det-wallclock)  — wall time is the measurand
#include <algorithm>
#include <chrono>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/engine.hpp"
#include "util/json.hpp"

namespace {

using namespace hetflow;

struct ScaleResult {
  std::size_t tenants = 0;
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t deferred = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::size_t batches = 0;
  std::size_t peak_pending = 0;
  std::size_t pending_bound = 0;
  double wall_s = 0.0;
  double clock_s = 0.0;
  double submissions_per_s = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double p99_bound_s = 0.0;
  bool ok = false;
};

double wall_since(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)
      .count();
}

ScaleResult run_scale(std::size_t tenants, std::size_t rounds) {
  const hw::Platform platform = hw::make_hpc_node(16, 4);

  serve::ServeConfig config;
  config.seed = 42;
  config.batch_limit = 4096;
  config.backlog_cap = 4;
  config.max_in_flight = 2;
  // The global ceiling is deliberately far below tenants x backlog_cap at
  // the larger scales, so backpressure (deferral, then rejection) is the
  // steady state rather than a corner case.
  config.admission.max_pending = std::max<std::size_t>(tenants / 2, 256);
  config.admission.defer_cap = config.admission.max_pending / 4;
  config.admission.policy = serve::BackpressurePolicy::Defer;

  serve::ServeEngine engine(platform, config);
  for (std::size_t i = 0; i < tenants; ++i) {
    serve::TenantSpec spec;
    // Three weight classes so fair-share has real work to do.
    spec.weight = 1.0 + static_cast<double>(i % 3);
    engine.add_tenant(spec);
  }

  serve::JobSpec job;
  job.shape = serve::JobShape::Chain;
  job.tasks = 2;
  job.flops = 5e8;
  job.bytes = 1 << 16;

  ScaleResult r;
  r.tenants = tenants;
  r.pending_bound = config.admission.max_pending + config.admission.defer_cap;
  double max_makespan_s = 0.0;
  const auto begin = std::chrono::steady_clock::now();
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < tenants; ++i) {
      ++r.offered;
      engine.submit(static_cast<serve::TenantId>(i), job);
      r.peak_pending = std::max(r.peak_pending, engine.total_pending());
    }
    // Closed loop: service gates the next arrival wave. A full drain per
    // round keeps the structural wait bound honest — every admitted job
    // is behind at most pending_bound others and each batch releases
    // batch_limit of them, so nothing lingers across rounds.
    while (engine.total_pending() > 0) {
      const serve::BatchResult batch = engine.run_batch();
      max_makespan_s = std::max(max_makespan_s, batch.makespan_s);
      if (batch.released == 0) {
        break;  // wedged; the invariant check below will fail loudly
      }
    }
  }
  r.wall_s = wall_since(begin);

  util::Sample latency;
  for (serve::TenantId t = 0; t < engine.tenant_count(); ++t) {
    const serve::TenantStats& stats = engine.stats(t);
    r.admitted += stats.admitted;
    r.deferred += stats.deferred;
    r.rejected += stats.rejected;
    r.completed += stats.completed;
    for (double x : stats.latency.values()) {
      latency.add(x);
    }
  }
  r.batches = engine.batches_run();
  r.clock_s = engine.clock();
  r.submissions_per_s =
      r.wall_s > 0.0 ? static_cast<double>(r.offered) / r.wall_s : 0.0;
  if (!latency.empty()) {
    r.p50_s = latency.quantile(0.5);
    r.p99_s = latency.quantile(0.99);
  }
  // Structural wait bound, in batches: a job in the system is behind at
  // most pending_bound others, each non-wedged batch releases up to
  // batch_limit of them, a full tenant backlog adds
  // backlog_cap/max_in_flight tenant-local batches, and +2 covers the
  // admission and completion batches.
  const double wait_batches =
      static_cast<double>(r.pending_bound) /
          static_cast<double>(config.batch_limit) +
      static_cast<double>(config.backlog_cap) /
          static_cast<double>(config.max_in_flight) +
      2.0;
  r.p99_bound_s = wait_batches * max_makespan_s;
  // `admitted` counts entries into a backlog, so a deferred job shows up
  // there too once the overflow drains; after a full drain every admitted
  // job must have completed.
  r.ok = r.completed == r.admitted && engine.total_pending() == 0 &&
         r.peak_pending <= r.pending_bound && r.p99_s <= r.p99_bound_s &&
         r.completed > 0;
  return r;
}

util::Json to_json(const ScaleResult& r) {
  util::Json doc = util::Json::object();
  doc["tenants"] = static_cast<double>(r.tenants);
  doc["offered"] = static_cast<double>(r.offered);
  doc["admitted"] = static_cast<double>(r.admitted);
  doc["deferred"] = static_cast<double>(r.deferred);
  doc["rejected"] = static_cast<double>(r.rejected);
  doc["completed"] = static_cast<double>(r.completed);
  doc["batches"] = static_cast<double>(r.batches);
  doc["peak_pending"] = static_cast<double>(r.peak_pending);
  doc["pending_bound"] = static_cast<double>(r.pending_bound);
  doc["wall_s"] = r.wall_s;
  doc["clock_s"] = r.clock_s;
  doc["submissions_per_s"] = r.submissions_per_s;
  doc["p50_latency_s"] = r.p50_s;
  doc["p99_latency_s"] = r.p99_s;
  doc["p99_bound_s"] = r.p99_bound_s;
  doc["ok"] = r.ok;
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    }
  }
  bench::print_experiment_header(
      "serve load", "sustained multi-tenant submission throughput vs "
                    "p50/p99 workflow latency under backpressure");

  const std::vector<std::size_t> scales =
      smoke ? std::vector<std::size_t>{200, 2000}
            : std::vector<std::size_t>{1000, 10000, 100000};
  const std::size_t rounds = smoke ? 2 : 3;

  util::Table table({"tenants", "offered", "admitted", "deferred",
                     "rejected", "peak q", "batches", "subs/s", "p50 s",
                     "p99 s", "bound s", "ok"});
  util::Json runs = util::Json::array();
  bool ok = true;
  for (std::size_t tenants : scales) {
    const ScaleResult r = run_scale(tenants, rounds);
    ok = ok && r.ok;
    table.add_row({std::to_string(r.tenants), std::to_string(r.offered),
                   std::to_string(r.admitted), std::to_string(r.deferred),
                   std::to_string(r.rejected),
                   std::to_string(r.peak_pending),
                   std::to_string(r.batches),
                   util::format("%.0f", r.submissions_per_s),
                   util::format("%.3f", r.p50_s),
                   util::format("%.3f", r.p99_s),
                   util::format("%.3f", r.p99_bound_s), r.ok ? "ok" : "FAIL"});
    runs.push_back(to_json(r));
  }
  table.print(std::cout);

  // A smoke run is a CI gate, not a measurement: no JSON (a shrunken grid
  // must never masquerade as the recorded BENCH_serve.json).
  if (!smoke) {
    util::Json doc = util::Json::object();
    doc["bench"] = "serve_load";
    doc["smoke"] = false;
    doc["runs"] = runs;
    std::ofstream out("BENCH_serve.json");
    out << doc.dump_pretty() << '\n';
    std::cout << "\nwrote BENCH_serve.json\n";
  }
  if (!ok) {
    std::cerr << "FAIL: a serve scale point violated its queue or latency "
                 "bound\n";
  }
  return ok ? 0 : 1;
}
