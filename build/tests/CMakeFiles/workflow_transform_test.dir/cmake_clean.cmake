file(REMOVE_RECURSE
  "CMakeFiles/workflow_transform_test.dir/workflow_transform_test.cpp.o"
  "CMakeFiles/workflow_transform_test.dir/workflow_transform_test.cpp.o.d"
  "workflow_transform_test"
  "workflow_transform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
