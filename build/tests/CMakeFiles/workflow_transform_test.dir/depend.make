# Empty dependencies file for workflow_transform_test.
# This may be replaced when dependencies are built.
