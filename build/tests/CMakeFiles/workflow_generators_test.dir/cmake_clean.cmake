file(REMOVE_RECURSE
  "CMakeFiles/workflow_generators_test.dir/workflow_generators_test.cpp.o"
  "CMakeFiles/workflow_generators_test.dir/workflow_generators_test.cpp.o.d"
  "workflow_generators_test"
  "workflow_generators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_generators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
