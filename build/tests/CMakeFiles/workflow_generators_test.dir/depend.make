# Empty dependencies file for workflow_generators_test.
# This may be replaced when dependencies are built.
