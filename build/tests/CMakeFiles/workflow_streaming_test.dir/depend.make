# Empty dependencies file for workflow_streaming_test.
# This may be replaced when dependencies are built.
