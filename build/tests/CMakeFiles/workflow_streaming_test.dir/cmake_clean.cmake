file(REMOVE_RECURSE
  "CMakeFiles/workflow_streaming_test.dir/workflow_streaming_test.cpp.o"
  "CMakeFiles/workflow_streaming_test.dir/workflow_streaming_test.cpp.o.d"
  "workflow_streaming_test"
  "workflow_streaming_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_streaming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
