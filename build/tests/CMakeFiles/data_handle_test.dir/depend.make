# Empty dependencies file for data_handle_test.
# This may be replaced when dependencies are built.
