file(REMOVE_RECURSE
  "CMakeFiles/data_handle_test.dir/data_handle_test.cpp.o"
  "CMakeFiles/data_handle_test.dir/data_handle_test.cpp.o.d"
  "data_handle_test"
  "data_handle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_handle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
