# Empty compiler generated dependencies file for core_redux_release_test.
# This may be replaced when dependencies are built.
