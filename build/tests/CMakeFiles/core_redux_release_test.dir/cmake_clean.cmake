file(REMOVE_RECURSE
  "CMakeFiles/core_redux_release_test.dir/core_redux_release_test.cpp.o"
  "CMakeFiles/core_redux_release_test.dir/core_redux_release_test.cpp.o.d"
  "core_redux_release_test"
  "core_redux_release_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_redux_release_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
