# Empty dependencies file for hw_device_test.
# This may be replaced when dependencies are built.
