file(REMOVE_RECURSE
  "CMakeFiles/hw_device_test.dir/hw_device_test.cpp.o"
  "CMakeFiles/hw_device_test.dir/hw_device_test.cpp.o.d"
  "hw_device_test"
  "hw_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
