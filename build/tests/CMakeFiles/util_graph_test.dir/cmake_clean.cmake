file(REMOVE_RECURSE
  "CMakeFiles/util_graph_test.dir/util_graph_test.cpp.o"
  "CMakeFiles/util_graph_test.dir/util_graph_test.cpp.o.d"
  "util_graph_test"
  "util_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
