# Empty compiler generated dependencies file for workflow_linalg_test.
# This may be replaced when dependencies are built.
