file(REMOVE_RECURSE
  "CMakeFiles/workflow_linalg_test.dir/workflow_linalg_test.cpp.o"
  "CMakeFiles/workflow_linalg_test.dir/workflow_linalg_test.cpp.o.d"
  "workflow_linalg_test"
  "workflow_linalg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_linalg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
