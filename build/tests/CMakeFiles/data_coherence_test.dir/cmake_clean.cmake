file(REMOVE_RECURSE
  "CMakeFiles/data_coherence_test.dir/data_coherence_test.cpp.o"
  "CMakeFiles/data_coherence_test.dir/data_coherence_test.cpp.o.d"
  "data_coherence_test"
  "data_coherence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_coherence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
