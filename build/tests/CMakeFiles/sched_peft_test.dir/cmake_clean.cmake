file(REMOVE_RECURSE
  "CMakeFiles/sched_peft_test.dir/sched_peft_test.cpp.o"
  "CMakeFiles/sched_peft_test.dir/sched_peft_test.cpp.o.d"
  "sched_peft_test"
  "sched_peft_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_peft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
