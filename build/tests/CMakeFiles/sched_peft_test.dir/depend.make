# Empty dependencies file for sched_peft_test.
# This may be replaced when dependencies are built.
