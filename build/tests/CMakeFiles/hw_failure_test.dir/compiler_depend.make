# Empty compiler generated dependencies file for hw_failure_test.
# This may be replaced when dependencies are built.
