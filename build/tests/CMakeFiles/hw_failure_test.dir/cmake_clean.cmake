file(REMOVE_RECURSE
  "CMakeFiles/hw_failure_test.dir/hw_failure_test.cpp.o"
  "CMakeFiles/hw_failure_test.dir/hw_failure_test.cpp.o.d"
  "hw_failure_test"
  "hw_failure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
