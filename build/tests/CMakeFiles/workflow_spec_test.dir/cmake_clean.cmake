file(REMOVE_RECURSE
  "CMakeFiles/workflow_spec_test.dir/workflow_spec_test.cpp.o"
  "CMakeFiles/workflow_spec_test.dir/workflow_spec_test.cpp.o.d"
  "workflow_spec_test"
  "workflow_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
