# Empty dependencies file for workflow_spec_test.
# This may be replaced when dependencies are built.
