# Empty compiler generated dependencies file for core_codelet_test.
# This may be replaced when dependencies are built.
