file(REMOVE_RECURSE
  "CMakeFiles/core_codelet_test.dir/core_codelet_test.cpp.o"
  "CMakeFiles/core_codelet_test.dir/core_codelet_test.cpp.o.d"
  "core_codelet_test"
  "core_codelet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_codelet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
