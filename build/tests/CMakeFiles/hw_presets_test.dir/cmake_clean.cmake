file(REMOVE_RECURSE
  "CMakeFiles/hw_presets_test.dir/hw_presets_test.cpp.o"
  "CMakeFiles/hw_presets_test.dir/hw_presets_test.cpp.o.d"
  "hw_presets_test"
  "hw_presets_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_presets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
