# Empty compiler generated dependencies file for hw_presets_test.
# This may be replaced when dependencies are built.
