file(REMOVE_RECURSE
  "CMakeFiles/perf_models_test.dir/perf_models_test.cpp.o"
  "CMakeFiles/perf_models_test.dir/perf_models_test.cpp.o.d"
  "perf_models_test"
  "perf_models_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
