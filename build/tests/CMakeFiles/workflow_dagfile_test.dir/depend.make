# Empty dependencies file for workflow_dagfile_test.
# This may be replaced when dependencies are built.
