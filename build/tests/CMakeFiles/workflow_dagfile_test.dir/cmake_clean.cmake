file(REMOVE_RECURSE
  "CMakeFiles/workflow_dagfile_test.dir/workflow_dagfile_test.cpp.o"
  "CMakeFiles/workflow_dagfile_test.dir/workflow_dagfile_test.cpp.o.d"
  "workflow_dagfile_test"
  "workflow_dagfile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_dagfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
