# Empty dependencies file for data_manager_test.
# This may be replaced when dependencies are built.
