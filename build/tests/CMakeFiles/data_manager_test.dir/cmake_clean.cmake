file(REMOVE_RECURSE
  "CMakeFiles/data_manager_test.dir/data_manager_test.cpp.o"
  "CMakeFiles/data_manager_test.dir/data_manager_test.cpp.o.d"
  "data_manager_test"
  "data_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
