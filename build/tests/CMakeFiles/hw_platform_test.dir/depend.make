# Empty dependencies file for hw_platform_test.
# This may be replaced when dependencies are built.
