# Empty compiler generated dependencies file for trace_svg_test.
# This may be replaced when dependencies are built.
