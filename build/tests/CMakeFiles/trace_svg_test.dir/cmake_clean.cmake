file(REMOVE_RECURSE
  "CMakeFiles/trace_svg_test.dir/trace_svg_test.cpp.o"
  "CMakeFiles/trace_svg_test.dir/trace_svg_test.cpp.o.d"
  "trace_svg_test"
  "trace_svg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_svg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
