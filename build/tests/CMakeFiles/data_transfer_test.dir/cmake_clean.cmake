file(REMOVE_RECURSE
  "CMakeFiles/data_transfer_test.dir/data_transfer_test.cpp.o"
  "CMakeFiles/data_transfer_test.dir/data_transfer_test.cpp.o.d"
  "data_transfer_test"
  "data_transfer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
