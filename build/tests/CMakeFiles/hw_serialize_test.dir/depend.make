# Empty dependencies file for hw_serialize_test.
# This may be replaced when dependencies are built.
