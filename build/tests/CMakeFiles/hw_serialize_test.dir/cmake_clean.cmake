file(REMOVE_RECURSE
  "CMakeFiles/hw_serialize_test.dir/hw_serialize_test.cpp.o"
  "CMakeFiles/hw_serialize_test.dir/hw_serialize_test.cpp.o.d"
  "hw_serialize_test"
  "hw_serialize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
