file(REMOVE_RECURSE
  "CMakeFiles/sched_cpop_test.dir/sched_cpop_test.cpp.o"
  "CMakeFiles/sched_cpop_test.dir/sched_cpop_test.cpp.o.d"
  "sched_cpop_test"
  "sched_cpop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_cpop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
