# Empty dependencies file for sched_cpop_test.
# This may be replaced when dependencies are built.
