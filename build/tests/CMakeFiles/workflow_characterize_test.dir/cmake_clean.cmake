file(REMOVE_RECURSE
  "CMakeFiles/workflow_characterize_test.dir/workflow_characterize_test.cpp.o"
  "CMakeFiles/workflow_characterize_test.dir/workflow_characterize_test.cpp.o.d"
  "workflow_characterize_test"
  "workflow_characterize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_characterize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
