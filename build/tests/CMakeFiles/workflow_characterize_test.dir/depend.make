# Empty dependencies file for workflow_characterize_test.
# This may be replaced when dependencies are built.
