file(REMOVE_RECURSE
  "CMakeFiles/workflow_campaign_test.dir/workflow_campaign_test.cpp.o"
  "CMakeFiles/workflow_campaign_test.dir/workflow_campaign_test.cpp.o.d"
  "workflow_campaign_test"
  "workflow_campaign_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_campaign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
