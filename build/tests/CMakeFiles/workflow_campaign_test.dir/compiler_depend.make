# Empty compiler generated dependencies file for workflow_campaign_test.
# This may be replaced when dependencies are built.
