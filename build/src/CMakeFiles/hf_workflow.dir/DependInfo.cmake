
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workflow/campaign.cpp" "src/CMakeFiles/hf_workflow.dir/workflow/campaign.cpp.o" "gcc" "src/CMakeFiles/hf_workflow.dir/workflow/campaign.cpp.o.d"
  "/root/repo/src/workflow/characterize.cpp" "src/CMakeFiles/hf_workflow.dir/workflow/characterize.cpp.o" "gcc" "src/CMakeFiles/hf_workflow.dir/workflow/characterize.cpp.o.d"
  "/root/repo/src/workflow/codelets.cpp" "src/CMakeFiles/hf_workflow.dir/workflow/codelets.cpp.o" "gcc" "src/CMakeFiles/hf_workflow.dir/workflow/codelets.cpp.o.d"
  "/root/repo/src/workflow/dagfile.cpp" "src/CMakeFiles/hf_workflow.dir/workflow/dagfile.cpp.o" "gcc" "src/CMakeFiles/hf_workflow.dir/workflow/dagfile.cpp.o.d"
  "/root/repo/src/workflow/generators.cpp" "src/CMakeFiles/hf_workflow.dir/workflow/generators.cpp.o" "gcc" "src/CMakeFiles/hf_workflow.dir/workflow/generators.cpp.o.d"
  "/root/repo/src/workflow/linalg.cpp" "src/CMakeFiles/hf_workflow.dir/workflow/linalg.cpp.o" "gcc" "src/CMakeFiles/hf_workflow.dir/workflow/linalg.cpp.o.d"
  "/root/repo/src/workflow/spec.cpp" "src/CMakeFiles/hf_workflow.dir/workflow/spec.cpp.o" "gcc" "src/CMakeFiles/hf_workflow.dir/workflow/spec.cpp.o.d"
  "/root/repo/src/workflow/streaming.cpp" "src/CMakeFiles/hf_workflow.dir/workflow/streaming.cpp.o" "gcc" "src/CMakeFiles/hf_workflow.dir/workflow/streaming.cpp.o.d"
  "/root/repo/src/workflow/transform.cpp" "src/CMakeFiles/hf_workflow.dir/workflow/transform.cpp.o" "gcc" "src/CMakeFiles/hf_workflow.dir/workflow/transform.cpp.o.d"
  "/root/repo/src/workflow/workflow.cpp" "src/CMakeFiles/hf_workflow.dir/workflow/workflow.cpp.o" "gcc" "src/CMakeFiles/hf_workflow.dir/workflow/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hf_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
