file(REMOVE_RECURSE
  "libhf_workflow.a"
)
