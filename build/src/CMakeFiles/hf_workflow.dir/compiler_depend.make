# Empty compiler generated dependencies file for hf_workflow.
# This may be replaced when dependencies are built.
