file(REMOVE_RECURSE
  "CMakeFiles/hf_workflow.dir/workflow/campaign.cpp.o"
  "CMakeFiles/hf_workflow.dir/workflow/campaign.cpp.o.d"
  "CMakeFiles/hf_workflow.dir/workflow/characterize.cpp.o"
  "CMakeFiles/hf_workflow.dir/workflow/characterize.cpp.o.d"
  "CMakeFiles/hf_workflow.dir/workflow/codelets.cpp.o"
  "CMakeFiles/hf_workflow.dir/workflow/codelets.cpp.o.d"
  "CMakeFiles/hf_workflow.dir/workflow/dagfile.cpp.o"
  "CMakeFiles/hf_workflow.dir/workflow/dagfile.cpp.o.d"
  "CMakeFiles/hf_workflow.dir/workflow/generators.cpp.o"
  "CMakeFiles/hf_workflow.dir/workflow/generators.cpp.o.d"
  "CMakeFiles/hf_workflow.dir/workflow/linalg.cpp.o"
  "CMakeFiles/hf_workflow.dir/workflow/linalg.cpp.o.d"
  "CMakeFiles/hf_workflow.dir/workflow/spec.cpp.o"
  "CMakeFiles/hf_workflow.dir/workflow/spec.cpp.o.d"
  "CMakeFiles/hf_workflow.dir/workflow/streaming.cpp.o"
  "CMakeFiles/hf_workflow.dir/workflow/streaming.cpp.o.d"
  "CMakeFiles/hf_workflow.dir/workflow/transform.cpp.o"
  "CMakeFiles/hf_workflow.dir/workflow/transform.cpp.o.d"
  "CMakeFiles/hf_workflow.dir/workflow/workflow.cpp.o"
  "CMakeFiles/hf_workflow.dir/workflow/workflow.cpp.o.d"
  "libhf_workflow.a"
  "libhf_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
