# Empty dependencies file for hf_sched.
# This may be replaced when dependencies are built.
