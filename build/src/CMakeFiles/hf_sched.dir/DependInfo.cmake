
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/batch.cpp" "src/CMakeFiles/hf_sched.dir/sched/batch.cpp.o" "gcc" "src/CMakeFiles/hf_sched.dir/sched/batch.cpp.o.d"
  "/root/repo/src/sched/cpop.cpp" "src/CMakeFiles/hf_sched.dir/sched/cpop.cpp.o" "gcc" "src/CMakeFiles/hf_sched.dir/sched/cpop.cpp.o.d"
  "/root/repo/src/sched/critical_path.cpp" "src/CMakeFiles/hf_sched.dir/sched/critical_path.cpp.o" "gcc" "src/CMakeFiles/hf_sched.dir/sched/critical_path.cpp.o.d"
  "/root/repo/src/sched/dmda.cpp" "src/CMakeFiles/hf_sched.dir/sched/dmda.cpp.o" "gcc" "src/CMakeFiles/hf_sched.dir/sched/dmda.cpp.o.d"
  "/root/repo/src/sched/dmdas.cpp" "src/CMakeFiles/hf_sched.dir/sched/dmdas.cpp.o" "gcc" "src/CMakeFiles/hf_sched.dir/sched/dmdas.cpp.o.d"
  "/root/repo/src/sched/eager.cpp" "src/CMakeFiles/hf_sched.dir/sched/eager.cpp.o" "gcc" "src/CMakeFiles/hf_sched.dir/sched/eager.cpp.o.d"
  "/root/repo/src/sched/energy_aware.cpp" "src/CMakeFiles/hf_sched.dir/sched/energy_aware.cpp.o" "gcc" "src/CMakeFiles/hf_sched.dir/sched/energy_aware.cpp.o.d"
  "/root/repo/src/sched/graph_utils.cpp" "src/CMakeFiles/hf_sched.dir/sched/graph_utils.cpp.o" "gcc" "src/CMakeFiles/hf_sched.dir/sched/graph_utils.cpp.o.d"
  "/root/repo/src/sched/heft.cpp" "src/CMakeFiles/hf_sched.dir/sched/heft.cpp.o" "gcc" "src/CMakeFiles/hf_sched.dir/sched/heft.cpp.o.d"
  "/root/repo/src/sched/mct.cpp" "src/CMakeFiles/hf_sched.dir/sched/mct.cpp.o" "gcc" "src/CMakeFiles/hf_sched.dir/sched/mct.cpp.o.d"
  "/root/repo/src/sched/peft.cpp" "src/CMakeFiles/hf_sched.dir/sched/peft.cpp.o" "gcc" "src/CMakeFiles/hf_sched.dir/sched/peft.cpp.o.d"
  "/root/repo/src/sched/random_sched.cpp" "src/CMakeFiles/hf_sched.dir/sched/random_sched.cpp.o" "gcc" "src/CMakeFiles/hf_sched.dir/sched/random_sched.cpp.o.d"
  "/root/repo/src/sched/registry.cpp" "src/CMakeFiles/hf_sched.dir/sched/registry.cpp.o" "gcc" "src/CMakeFiles/hf_sched.dir/sched/registry.cpp.o.d"
  "/root/repo/src/sched/round_robin.cpp" "src/CMakeFiles/hf_sched.dir/sched/round_robin.cpp.o" "gcc" "src/CMakeFiles/hf_sched.dir/sched/round_robin.cpp.o.d"
  "/root/repo/src/sched/work_stealing.cpp" "src/CMakeFiles/hf_sched.dir/sched/work_stealing.cpp.o" "gcc" "src/CMakeFiles/hf_sched.dir/sched/work_stealing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
