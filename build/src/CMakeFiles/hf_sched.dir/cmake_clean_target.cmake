file(REMOVE_RECURSE
  "libhf_sched.a"
)
