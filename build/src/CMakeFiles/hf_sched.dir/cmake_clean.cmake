file(REMOVE_RECURSE
  "CMakeFiles/hf_sched.dir/sched/batch.cpp.o"
  "CMakeFiles/hf_sched.dir/sched/batch.cpp.o.d"
  "CMakeFiles/hf_sched.dir/sched/cpop.cpp.o"
  "CMakeFiles/hf_sched.dir/sched/cpop.cpp.o.d"
  "CMakeFiles/hf_sched.dir/sched/critical_path.cpp.o"
  "CMakeFiles/hf_sched.dir/sched/critical_path.cpp.o.d"
  "CMakeFiles/hf_sched.dir/sched/dmda.cpp.o"
  "CMakeFiles/hf_sched.dir/sched/dmda.cpp.o.d"
  "CMakeFiles/hf_sched.dir/sched/dmdas.cpp.o"
  "CMakeFiles/hf_sched.dir/sched/dmdas.cpp.o.d"
  "CMakeFiles/hf_sched.dir/sched/eager.cpp.o"
  "CMakeFiles/hf_sched.dir/sched/eager.cpp.o.d"
  "CMakeFiles/hf_sched.dir/sched/energy_aware.cpp.o"
  "CMakeFiles/hf_sched.dir/sched/energy_aware.cpp.o.d"
  "CMakeFiles/hf_sched.dir/sched/graph_utils.cpp.o"
  "CMakeFiles/hf_sched.dir/sched/graph_utils.cpp.o.d"
  "CMakeFiles/hf_sched.dir/sched/heft.cpp.o"
  "CMakeFiles/hf_sched.dir/sched/heft.cpp.o.d"
  "CMakeFiles/hf_sched.dir/sched/mct.cpp.o"
  "CMakeFiles/hf_sched.dir/sched/mct.cpp.o.d"
  "CMakeFiles/hf_sched.dir/sched/peft.cpp.o"
  "CMakeFiles/hf_sched.dir/sched/peft.cpp.o.d"
  "CMakeFiles/hf_sched.dir/sched/random_sched.cpp.o"
  "CMakeFiles/hf_sched.dir/sched/random_sched.cpp.o.d"
  "CMakeFiles/hf_sched.dir/sched/registry.cpp.o"
  "CMakeFiles/hf_sched.dir/sched/registry.cpp.o.d"
  "CMakeFiles/hf_sched.dir/sched/round_robin.cpp.o"
  "CMakeFiles/hf_sched.dir/sched/round_robin.cpp.o.d"
  "CMakeFiles/hf_sched.dir/sched/work_stealing.cpp.o"
  "CMakeFiles/hf_sched.dir/sched/work_stealing.cpp.o.d"
  "libhf_sched.a"
  "libhf_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
