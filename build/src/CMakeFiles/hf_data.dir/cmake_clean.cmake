file(REMOVE_RECURSE
  "CMakeFiles/hf_data.dir/data/allocator.cpp.o"
  "CMakeFiles/hf_data.dir/data/allocator.cpp.o.d"
  "CMakeFiles/hf_data.dir/data/coherence.cpp.o"
  "CMakeFiles/hf_data.dir/data/coherence.cpp.o.d"
  "CMakeFiles/hf_data.dir/data/handle.cpp.o"
  "CMakeFiles/hf_data.dir/data/handle.cpp.o.d"
  "CMakeFiles/hf_data.dir/data/manager.cpp.o"
  "CMakeFiles/hf_data.dir/data/manager.cpp.o.d"
  "CMakeFiles/hf_data.dir/data/transfer.cpp.o"
  "CMakeFiles/hf_data.dir/data/transfer.cpp.o.d"
  "libhf_data.a"
  "libhf_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
