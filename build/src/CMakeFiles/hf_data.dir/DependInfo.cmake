
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/allocator.cpp" "src/CMakeFiles/hf_data.dir/data/allocator.cpp.o" "gcc" "src/CMakeFiles/hf_data.dir/data/allocator.cpp.o.d"
  "/root/repo/src/data/coherence.cpp" "src/CMakeFiles/hf_data.dir/data/coherence.cpp.o" "gcc" "src/CMakeFiles/hf_data.dir/data/coherence.cpp.o.d"
  "/root/repo/src/data/handle.cpp" "src/CMakeFiles/hf_data.dir/data/handle.cpp.o" "gcc" "src/CMakeFiles/hf_data.dir/data/handle.cpp.o.d"
  "/root/repo/src/data/manager.cpp" "src/CMakeFiles/hf_data.dir/data/manager.cpp.o" "gcc" "src/CMakeFiles/hf_data.dir/data/manager.cpp.o.d"
  "/root/repo/src/data/transfer.cpp" "src/CMakeFiles/hf_data.dir/data/transfer.cpp.o" "gcc" "src/CMakeFiles/hf_data.dir/data/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hf_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
