# Empty dependencies file for hf_data.
# This may be replaced when dependencies are built.
