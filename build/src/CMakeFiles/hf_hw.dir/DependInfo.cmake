
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/device.cpp" "src/CMakeFiles/hf_hw.dir/hw/device.cpp.o" "gcc" "src/CMakeFiles/hf_hw.dir/hw/device.cpp.o.d"
  "/root/repo/src/hw/failure.cpp" "src/CMakeFiles/hf_hw.dir/hw/failure.cpp.o" "gcc" "src/CMakeFiles/hf_hw.dir/hw/failure.cpp.o.d"
  "/root/repo/src/hw/link.cpp" "src/CMakeFiles/hf_hw.dir/hw/link.cpp.o" "gcc" "src/CMakeFiles/hf_hw.dir/hw/link.cpp.o.d"
  "/root/repo/src/hw/memory.cpp" "src/CMakeFiles/hf_hw.dir/hw/memory.cpp.o" "gcc" "src/CMakeFiles/hf_hw.dir/hw/memory.cpp.o.d"
  "/root/repo/src/hw/platform.cpp" "src/CMakeFiles/hf_hw.dir/hw/platform.cpp.o" "gcc" "src/CMakeFiles/hf_hw.dir/hw/platform.cpp.o.d"
  "/root/repo/src/hw/presets.cpp" "src/CMakeFiles/hf_hw.dir/hw/presets.cpp.o" "gcc" "src/CMakeFiles/hf_hw.dir/hw/presets.cpp.o.d"
  "/root/repo/src/hw/serialize.cpp" "src/CMakeFiles/hf_hw.dir/hw/serialize.cpp.o" "gcc" "src/CMakeFiles/hf_hw.dir/hw/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
