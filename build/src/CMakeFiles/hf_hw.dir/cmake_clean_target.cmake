file(REMOVE_RECURSE
  "libhf_hw.a"
)
