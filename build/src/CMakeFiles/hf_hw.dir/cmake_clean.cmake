file(REMOVE_RECURSE
  "CMakeFiles/hf_hw.dir/hw/device.cpp.o"
  "CMakeFiles/hf_hw.dir/hw/device.cpp.o.d"
  "CMakeFiles/hf_hw.dir/hw/failure.cpp.o"
  "CMakeFiles/hf_hw.dir/hw/failure.cpp.o.d"
  "CMakeFiles/hf_hw.dir/hw/link.cpp.o"
  "CMakeFiles/hf_hw.dir/hw/link.cpp.o.d"
  "CMakeFiles/hf_hw.dir/hw/memory.cpp.o"
  "CMakeFiles/hf_hw.dir/hw/memory.cpp.o.d"
  "CMakeFiles/hf_hw.dir/hw/platform.cpp.o"
  "CMakeFiles/hf_hw.dir/hw/platform.cpp.o.d"
  "CMakeFiles/hf_hw.dir/hw/presets.cpp.o"
  "CMakeFiles/hf_hw.dir/hw/presets.cpp.o.d"
  "CMakeFiles/hf_hw.dir/hw/serialize.cpp.o"
  "CMakeFiles/hf_hw.dir/hw/serialize.cpp.o.d"
  "libhf_hw.a"
  "libhf_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
