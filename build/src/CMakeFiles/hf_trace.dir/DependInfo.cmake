
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/report.cpp" "src/CMakeFiles/hf_trace.dir/trace/report.cpp.o" "gcc" "src/CMakeFiles/hf_trace.dir/trace/report.cpp.o.d"
  "/root/repo/src/trace/svg.cpp" "src/CMakeFiles/hf_trace.dir/trace/svg.cpp.o" "gcc" "src/CMakeFiles/hf_trace.dir/trace/svg.cpp.o.d"
  "/root/repo/src/trace/tracer.cpp" "src/CMakeFiles/hf_trace.dir/trace/tracer.cpp.o" "gcc" "src/CMakeFiles/hf_trace.dir/trace/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hf_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
