file(REMOVE_RECURSE
  "libhf_trace.a"
)
