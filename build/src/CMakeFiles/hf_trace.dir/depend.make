# Empty dependencies file for hf_trace.
# This may be replaced when dependencies are built.
