file(REMOVE_RECURSE
  "CMakeFiles/hf_trace.dir/trace/report.cpp.o"
  "CMakeFiles/hf_trace.dir/trace/report.cpp.o.d"
  "CMakeFiles/hf_trace.dir/trace/svg.cpp.o"
  "CMakeFiles/hf_trace.dir/trace/svg.cpp.o.d"
  "CMakeFiles/hf_trace.dir/trace/tracer.cpp.o"
  "CMakeFiles/hf_trace.dir/trace/tracer.cpp.o.d"
  "libhf_trace.a"
  "libhf_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
