file(REMOVE_RECURSE
  "CMakeFiles/hf_perf.dir/perf/energy_model.cpp.o"
  "CMakeFiles/hf_perf.dir/perf/energy_model.cpp.o.d"
  "CMakeFiles/hf_perf.dir/perf/history_model.cpp.o"
  "CMakeFiles/hf_perf.dir/perf/history_model.cpp.o.d"
  "CMakeFiles/hf_perf.dir/perf/transfer_model.cpp.o"
  "CMakeFiles/hf_perf.dir/perf/transfer_model.cpp.o.d"
  "libhf_perf.a"
  "libhf_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
