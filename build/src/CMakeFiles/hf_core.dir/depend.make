# Empty dependencies file for hf_core.
# This may be replaced when dependencies are built.
