
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/CMakeFiles/hf_core.dir/core/analysis.cpp.o" "gcc" "src/CMakeFiles/hf_core.dir/core/analysis.cpp.o.d"
  "/root/repo/src/core/codelet.cpp" "src/CMakeFiles/hf_core.dir/core/codelet.cpp.o" "gcc" "src/CMakeFiles/hf_core.dir/core/codelet.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/CMakeFiles/hf_core.dir/core/runtime.cpp.o" "gcc" "src/CMakeFiles/hf_core.dir/core/runtime.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/CMakeFiles/hf_core.dir/core/stats.cpp.o" "gcc" "src/CMakeFiles/hf_core.dir/core/stats.cpp.o.d"
  "/root/repo/src/core/task.cpp" "src/CMakeFiles/hf_core.dir/core/task.cpp.o" "gcc" "src/CMakeFiles/hf_core.dir/core/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
