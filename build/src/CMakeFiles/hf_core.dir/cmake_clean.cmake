file(REMOVE_RECURSE
  "CMakeFiles/hf_core.dir/core/analysis.cpp.o"
  "CMakeFiles/hf_core.dir/core/analysis.cpp.o.d"
  "CMakeFiles/hf_core.dir/core/codelet.cpp.o"
  "CMakeFiles/hf_core.dir/core/codelet.cpp.o.d"
  "CMakeFiles/hf_core.dir/core/runtime.cpp.o"
  "CMakeFiles/hf_core.dir/core/runtime.cpp.o.d"
  "CMakeFiles/hf_core.dir/core/stats.cpp.o"
  "CMakeFiles/hf_core.dir/core/stats.cpp.o.d"
  "CMakeFiles/hf_core.dir/core/task.cpp.o"
  "CMakeFiles/hf_core.dir/core/task.cpp.o.d"
  "libhf_core.a"
  "libhf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
