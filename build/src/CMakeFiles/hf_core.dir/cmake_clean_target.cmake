file(REMOVE_RECURSE
  "libhf_core.a"
)
