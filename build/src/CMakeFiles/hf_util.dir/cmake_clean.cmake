file(REMOVE_RECURSE
  "CMakeFiles/hf_util.dir/util/cli.cpp.o"
  "CMakeFiles/hf_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/hf_util.dir/util/csv.cpp.o"
  "CMakeFiles/hf_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/hf_util.dir/util/graph.cpp.o"
  "CMakeFiles/hf_util.dir/util/graph.cpp.o.d"
  "CMakeFiles/hf_util.dir/util/json.cpp.o"
  "CMakeFiles/hf_util.dir/util/json.cpp.o.d"
  "CMakeFiles/hf_util.dir/util/log.cpp.o"
  "CMakeFiles/hf_util.dir/util/log.cpp.o.d"
  "CMakeFiles/hf_util.dir/util/rng.cpp.o"
  "CMakeFiles/hf_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/hf_util.dir/util/stats.cpp.o"
  "CMakeFiles/hf_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/hf_util.dir/util/strings.cpp.o"
  "CMakeFiles/hf_util.dir/util/strings.cpp.o.d"
  "CMakeFiles/hf_util.dir/util/table.cpp.o"
  "CMakeFiles/hf_util.dir/util/table.cpp.o.d"
  "libhf_util.a"
  "libhf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
