# Empty compiler generated dependencies file for hf_util.
# This may be replaced when dependencies are built.
