file(REMOVE_RECURSE
  "libhf_util.a"
)
