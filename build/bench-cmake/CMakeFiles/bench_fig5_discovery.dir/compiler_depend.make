# Empty compiler generated dependencies file for bench_fig5_discovery.
# This may be replaced when dependencies are built.
