file(REMOVE_RECURSE
  "../bench/bench_fig5_discovery"
  "../bench/bench_fig5_discovery.pdb"
  "CMakeFiles/bench_fig5_discovery.dir/bench_fig5_discovery.cpp.o"
  "CMakeFiles/bench_fig5_discovery.dir/bench_fig5_discovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
