# Empty dependencies file for bench_fig9_prefetch.
# This may be replaced when dependencies are built.
