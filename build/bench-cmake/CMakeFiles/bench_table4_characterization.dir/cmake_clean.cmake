file(REMOVE_RECURSE
  "../bench/bench_table4_characterization"
  "../bench/bench_table4_characterization.pdb"
  "CMakeFiles/bench_table4_characterization.dir/bench_table4_characterization.cpp.o"
  "CMakeFiles/bench_table4_characterization.dir/bench_table4_characterization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
