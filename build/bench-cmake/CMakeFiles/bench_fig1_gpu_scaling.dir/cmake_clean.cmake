file(REMOVE_RECURSE
  "../bench/bench_fig1_gpu_scaling"
  "../bench/bench_fig1_gpu_scaling.pdb"
  "CMakeFiles/bench_fig1_gpu_scaling.dir/bench_fig1_gpu_scaling.cpp.o"
  "CMakeFiles/bench_fig1_gpu_scaling.dir/bench_fig1_gpu_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_gpu_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
