file(REMOVE_RECURSE
  "../bench/bench_fig8_api_ablation"
  "../bench/bench_fig8_api_ablation.pdb"
  "CMakeFiles/bench_fig8_api_ablation.dir/bench_fig8_api_ablation.cpp.o"
  "CMakeFiles/bench_fig8_api_ablation.dir/bench_fig8_api_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_api_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
