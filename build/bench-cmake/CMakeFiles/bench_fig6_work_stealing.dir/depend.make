# Empty dependencies file for bench_fig6_work_stealing.
# This may be replaced when dependencies are built.
