file(REMOVE_RECURSE
  "../bench/bench_fig6_work_stealing"
  "../bench/bench_fig6_work_stealing.pdb"
  "CMakeFiles/bench_fig6_work_stealing.dir/bench_fig6_work_stealing.cpp.o"
  "CMakeFiles/bench_fig6_work_stealing.dir/bench_fig6_work_stealing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_work_stealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
