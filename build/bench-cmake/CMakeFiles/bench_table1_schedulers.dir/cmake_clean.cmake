file(REMOVE_RECURSE
  "../bench/bench_table1_schedulers"
  "../bench/bench_table1_schedulers.pdb"
  "CMakeFiles/bench_table1_schedulers.dir/bench_table1_schedulers.cpp.o"
  "CMakeFiles/bench_table1_schedulers.dir/bench_table1_schedulers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
