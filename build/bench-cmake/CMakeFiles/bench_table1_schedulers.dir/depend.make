# Empty dependencies file for bench_table1_schedulers.
# This may be replaced when dependencies are built.
