file(REMOVE_RECURSE
  "../bench/bench_table2_energy"
  "../bench/bench_table2_energy.pdb"
  "CMakeFiles/bench_table2_energy.dir/bench_table2_energy.cpp.o"
  "CMakeFiles/bench_table2_energy.dir/bench_table2_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
