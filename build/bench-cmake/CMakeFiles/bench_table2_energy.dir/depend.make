# Empty dependencies file for bench_table2_energy.
# This may be replaced when dependencies are built.
