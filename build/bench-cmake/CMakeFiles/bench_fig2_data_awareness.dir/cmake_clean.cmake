file(REMOVE_RECURSE
  "../bench/bench_fig2_data_awareness"
  "../bench/bench_fig2_data_awareness.pdb"
  "CMakeFiles/bench_fig2_data_awareness.dir/bench_fig2_data_awareness.cpp.o"
  "CMakeFiles/bench_fig2_data_awareness.dir/bench_fig2_data_awareness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_data_awareness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
