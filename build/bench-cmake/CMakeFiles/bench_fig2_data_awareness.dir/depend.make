# Empty dependencies file for bench_fig2_data_awareness.
# This may be replaced when dependencies are built.
