file(REMOVE_RECURSE
  "CMakeFiles/blocked_solver.dir/blocked_solver.cpp.o"
  "CMakeFiles/blocked_solver.dir/blocked_solver.cpp.o.d"
  "blocked_solver"
  "blocked_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocked_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
