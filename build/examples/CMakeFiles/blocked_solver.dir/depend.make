# Empty dependencies file for blocked_solver.
# This may be replaced when dependencies are built.
