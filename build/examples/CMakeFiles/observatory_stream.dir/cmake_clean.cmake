file(REMOVE_RECURSE
  "CMakeFiles/observatory_stream.dir/observatory_stream.cpp.o"
  "CMakeFiles/observatory_stream.dir/observatory_stream.cpp.o.d"
  "observatory_stream"
  "observatory_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observatory_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
