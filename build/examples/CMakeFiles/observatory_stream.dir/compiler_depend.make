# Empty compiler generated dependencies file for observatory_stream.
# This may be replaced when dependencies are built.
