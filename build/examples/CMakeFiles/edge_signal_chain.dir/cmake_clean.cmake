file(REMOVE_RECURSE
  "CMakeFiles/edge_signal_chain.dir/edge_signal_chain.cpp.o"
  "CMakeFiles/edge_signal_chain.dir/edge_signal_chain.cpp.o.d"
  "edge_signal_chain"
  "edge_signal_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_signal_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
