# Empty dependencies file for edge_signal_chain.
# This may be replaced when dependencies are built.
