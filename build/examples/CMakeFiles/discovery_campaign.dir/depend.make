# Empty dependencies file for discovery_campaign.
# This may be replaced when dependencies are built.
