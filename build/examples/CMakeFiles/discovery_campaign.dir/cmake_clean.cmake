file(REMOVE_RECURSE
  "CMakeFiles/discovery_campaign.dir/discovery_campaign.cpp.o"
  "CMakeFiles/discovery_campaign.dir/discovery_campaign.cpp.o.d"
  "discovery_campaign"
  "discovery_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discovery_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
