file(REMOVE_RECURSE
  "CMakeFiles/hetflow_run.dir/hetflow_run.cpp.o"
  "CMakeFiles/hetflow_run.dir/hetflow_run.cpp.o.d"
  "hetflow_run"
  "hetflow_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetflow_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
