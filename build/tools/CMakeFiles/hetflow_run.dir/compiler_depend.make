# Empty compiler generated dependencies file for hetflow_run.
# This may be replaced when dependencies are built.
