# Empty compiler generated dependencies file for hetflow_bench.
# This may be replaced when dependencies are built.
