file(REMOVE_RECURSE
  "CMakeFiles/hetflow_bench.dir/hetflow_bench.cpp.o"
  "CMakeFiles/hetflow_bench.dir/hetflow_bench.cpp.o.d"
  "hetflow_bench"
  "hetflow_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetflow_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
