// Golden-trace regression suite: runs two pinned scenarios with the
// observability layer on and compares every serialized artifact —
// metrics snapshot (JSON + CSV), merged Chrome trace, scheduler decision
// log — byte for byte against the reference files checked in under
// tests/golden/. Any drift in an exporter, an instrumentation point, or
// the runtime's event order fails here first.
//
// To bless intentional changes, regenerate the references:
//
//   $ HETFLOW_REGEN_GOLDEN=1 ./obs_golden_test && git diff tests/golden/
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/runtime.hpp"
#include "helpers.hpp"
#include "hw/presets.hpp"
#include "obs/chrome_trace.hpp"
#include "sched/registry.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "workflow/generators.hpp"
#include "workflow/workflow.hpp"

#ifndef HETFLOW_GOLDEN_DIR
#error "build must define HETFLOW_GOLDEN_DIR (see tests/CMakeLists.txt)"
#endif

namespace hetflow {
namespace {

bool regen_requested() {
  const char* value = std::getenv("HETFLOW_REGEN_GOLDEN");
  return value != nullptr && *value != '\0' && std::string(value) != "0";
}

std::string golden_path(const std::string& scenario,
                        const std::string& file) {
  return std::string(HETFLOW_GOLDEN_DIR) + "/" + scenario + "/" + file;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return {};
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Byte-exact comparison against the checked-in reference, or (in regen
/// mode) re-blessing of the reference from the current output.
void expect_golden(const std::string& scenario, const std::string& file,
                   const std::string& actual) {
  const std::string path = golden_path(scenario, file);
  if (regen_requested()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << "missing golden file " << path
      << " — run with HETFLOW_REGEN_GOLDEN=1 to create it";
  EXPECT_EQ(actual, expected)
      << file << " drifted from its golden reference (" << path
      << "); if the change is intentional, regenerate with "
         "HETFLOW_REGEN_GOLDEN=1 and review the diff";
}

struct Artifacts {
  std::string metrics_json;
  std::string metrics_csv;
  std::string chrome_trace;
  std::string decisions;
};

Artifacts collect(const hw::Platform& platform, core::Runtime& runtime) {
  Artifacts out;
  out.metrics_json = runtime.recorder()->metrics().to_json_string();
  out.metrics_csv = runtime.recorder()->metrics().to_csv();
  out.chrome_trace =
      obs::chrome_trace_json(runtime.tracer(), platform, runtime.recorder());
  out.decisions = runtime.recorder()->decisions_jsonl(platform);
  return out;
}

void check_scenario(const std::string& scenario, const hw::Platform& platform,
                    core::Runtime& runtime) {
  const Artifacts artifacts = collect(platform, runtime);
  expect_golden(scenario, "metrics.json", artifacts.metrics_json);
  expect_golden(scenario, "metrics.csv", artifacts.metrics_csv);
  expect_golden(scenario, "chrome_trace.json", artifacts.chrome_trace);
  expect_golden(scenario, "decisions.jsonl", artifacts.decisions);
}

TEST(ObsGolden, MontageOnWorkstationWithDmda) {
  // The "clean run" reference: data-aware scheduling, real transfers and
  // prefetches, no failures.
  const hw::Platform p = hw::make_workstation();
  core::RuntimeOptions options;
  options.metrics = true;
  options.seed = 3;
  core::Runtime rt(p, sched::make_scheduler("dmda"), options);
  workflow::submit_workflow(rt, workflow::make_montage(12),
                            workflow::CodeletLibrary::standard());
  rt.wait_all();
  check_scenario("montage_dmda", p, rt);
}

TEST(ObsGolden, FaultInjectionOnCpuPairWithMct) {
  // The "faulty run" reference: retries, timeouts-free fail/requeue
  // cycles, and blacklist traffic flow through the event log.
  const hw::Platform p = hw::make_cpu_only(2);
  core::RuntimeOptions options;
  options.metrics = true;
  options.seed = 7;
  options.failure_model = hw::FailureModel::uniform(3.0);
  options.failure_policy = core::FailurePolicy::Reschedule;
  options.retry.max_attempts = 6;
  options.retry.on_exhausted = core::ExhaustionPolicy::Drop;
  options.retry.blacklist_after = 2;
  options.retry.probation_s = 0.5;
  core::Runtime rt(p, sched::make_scheduler("mct"), options);
  for (int i = 0; i < 12; ++i) {
    rt.submit(util::format("t%d", i), hetflow::testing::cpu_only_codelet(),
              2e9, {});
  }
  rt.wait_all();
  check_scenario("faulty_mct", p, rt);
}

// Sanity on the golden artifacts themselves (run in both modes): the
// Chrome trace must parse as JSON with the Perfetto-required fields, and
// the metrics snapshot must reconcile with RunStats — so a re-blessed
// reference can never be structurally broken.
TEST(ObsGolden, GoldenChromeTraceIsWellFormed) {
  const hw::Platform p = hw::make_workstation();
  core::RuntimeOptions options;
  options.metrics = true;
  options.seed = 3;
  core::Runtime rt(p, sched::make_scheduler("dmda"), options);
  workflow::submit_workflow(rt, workflow::make_montage(12),
                            workflow::CodeletLibrary::standard());
  rt.wait_all();
  const util::Json doc =
      util::Json::parse(obs::chrome_trace_json(rt.tracer(), p, rt.recorder()));
  ASSERT_TRUE(doc.contains("traceEvents"));
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  std::size_t spans = 0;
  std::size_t metas = 0;
  for (const util::Json& event : doc.at("traceEvents").as_array()) {
    const std::string ph = event.at("ph").as_string();
    if (ph == "X") {
      ++spans;
      EXPECT_TRUE(event.contains("dur"));
    }
    if (ph == "M") {
      ++metas;
    }
    EXPECT_TRUE(event.contains("pid"));
  }
  EXPECT_GE(spans, rt.stats().tasks_completed);
  EXPECT_GT(metas, p.device_count());  // process + devices + xfer tracks

  // Metrics reconcile exactly with the runtime's own accounting.
  const obs::MetricsRegistry& m = rt.recorder()->metrics();
  EXPECT_EQ(m.counter_sum("tasks_completed"),
            static_cast<double>(rt.stats().tasks_completed));
  EXPECT_EQ(m.counter_sum("bytes_transferred"),
            static_cast<double>(rt.stats().transfers.bytes_moved));
}

}  // namespace
}  // namespace hetflow
