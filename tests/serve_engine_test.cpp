// ServeEngine behavior: admission + fair-share + batched execution on
// one shared platform, with the fairness auditor live on every run
// (the serve acceptance bar: checkers pass on every serve test).
#include <gtest/gtest.h>

#include <string>

#include "hw/presets.hpp"
#include "serve/engine.hpp"
#include "util/error.hpp"

namespace hetflow::serve {
namespace {

ServeConfig audited_config() {
  ServeConfig config;
  config.audit = true;
  return config;
}

JobSpec small_job(JobShape shape = JobShape::Chain,
                  std::uint32_t tasks = 3) {
  JobSpec job;
  job.shape = shape;
  job.tasks = tasks;
  job.flops = 1e9;
  job.bytes = 1 << 16;
  return job;
}

TEST(ServeEngine, ServesTwoTenantsToCompletionAndPassesAudit) {
  const hw::Platform platform = hw::make_workstation();
  ServeEngine engine(platform, audited_config());
  TenantSpec heavy;
  heavy.weight = 2.0;
  const TenantId a = engine.add_tenant(heavy);
  const TenantId b = engine.add_tenant({});
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(engine.submit(a, small_job()).decision,
              AdmissionDecision::Admitted);
    EXPECT_EQ(engine.submit(b, small_job(JobShape::Fanout, 6)).decision,
              AdmissionDecision::Admitted);
  }
  EXPECT_EQ(engine.total_pending(), 10u);
  engine.run_until_drained();
  EXPECT_EQ(engine.total_pending(), 0u);
  EXPECT_EQ(engine.stats(a).completed, 5u);
  EXPECT_EQ(engine.stats(b).completed, 5u);
  EXPECT_EQ(engine.stats(a).tasks_completed, 15u);
  EXPECT_EQ(engine.stats(b).tasks_completed, 30u);
  EXPECT_GT(engine.clock(), 0.0);
  EXPECT_EQ(engine.stats(a).latency.count(), 5u);
  EXPECT_TRUE(engine.audit_report().passed())
      << engine.audit_report().summary();
}

TEST(ServeEngine, AllJobShapesExecuteIncludingDegenerateSizes) {
  const hw::Platform platform = hw::make_workstation();
  ServeEngine engine(platform, audited_config());
  const TenantId t = engine.add_tenant({});
  engine.submit(t, small_job(JobShape::Chain, 1));
  engine.submit(t, small_job(JobShape::Fanout, 2));
  engine.submit(t, small_job(JobShape::Diamond, 2));
  engine.submit(t, small_job(JobShape::Diamond, 6));
  engine.run_until_drained();
  EXPECT_EQ(engine.stats(t).completed, 4u);
  EXPECT_EQ(engine.stats(t).tasks_completed, 1u + 2u + 2u + 6u);
  EXPECT_TRUE(engine.audit_report().passed())
      << engine.audit_report().summary();
}

TEST(ServeEngine, BacklogCapRejectsPerTenant) {
  ServeConfig config = audited_config();
  config.backlog_cap = 2;
  const hw::Platform platform = hw::make_workstation();
  ServeEngine engine(platform, config);
  const TenantId t = engine.add_tenant({});
  EXPECT_EQ(engine.submit(t, small_job()).decision,
            AdmissionDecision::Admitted);
  EXPECT_EQ(engine.submit(t, small_job()).decision,
            AdmissionDecision::Admitted);
  EXPECT_EQ(engine.submit(t, small_job()).decision,
            AdmissionDecision::Rejected);
  EXPECT_EQ(engine.stats(t).rejected, 1u);
  engine.run_until_drained();
  EXPECT_EQ(engine.stats(t).completed, 2u);
  EXPECT_TRUE(engine.audit_report().passed())
      << engine.audit_report().summary();
}

TEST(ServeEngine, DeferredJobsDrainFifoAndComplete) {
  ServeConfig config = audited_config();
  config.backlog_cap = 8;
  config.admission.max_pending = 2;
  config.admission.defer_cap = 2;
  config.admission.policy = BackpressurePolicy::Defer;
  const hw::Platform platform = hw::make_workstation();
  ServeEngine engine(platform, config);
  const TenantId t = engine.add_tenant({});
  EXPECT_EQ(engine.submit(t, small_job()).decision,
            AdmissionDecision::Admitted);
  EXPECT_EQ(engine.submit(t, small_job()).decision,
            AdmissionDecision::Admitted);
  EXPECT_EQ(engine.submit(t, small_job()).decision,
            AdmissionDecision::Deferred);
  EXPECT_EQ(engine.submit(t, small_job()).decision,
            AdmissionDecision::Deferred);
  EXPECT_EQ(engine.submit(t, small_job()).decision,
            AdmissionDecision::Rejected);  // overflow full
  EXPECT_EQ(engine.overflow_size(), 2u);
  EXPECT_EQ(engine.total_pending(), 4u);
  engine.run_until_drained();
  engine.note_drained();
  EXPECT_EQ(engine.overflow_size(), 0u);
  EXPECT_EQ(engine.stats(t).completed, 4u);
  EXPECT_TRUE(engine.audit_report().passed())
      << engine.audit_report().summary();
}

TEST(ServeEngine, PriorityTierCompletesInEarlierBatch) {
  ServeConfig config = audited_config();
  config.batch_limit = 2;
  const hw::Platform platform = hw::make_workstation();
  ServeEngine engine(platform, config);
  TenantSpec urgent;
  urgent.priority = 3;
  const TenantId lo = engine.add_tenant({});
  const TenantId hi = engine.add_tenant(urgent);
  engine.submit(lo, small_job());
  engine.submit(lo, small_job());
  engine.submit(hi, small_job());
  engine.submit(hi, small_job());
  const BatchResult first = engine.run_batch();
  EXPECT_EQ(first.released, 2u);
  EXPECT_EQ(engine.stats(hi).completed, 2u);
  EXPECT_EQ(engine.stats(lo).completed, 0u);
  engine.run_until_drained();
  EXPECT_EQ(engine.stats(lo).completed, 2u);
  EXPECT_TRUE(engine.audit_report().passed())
      << engine.audit_report().summary();
}

TEST(ServeEngine, WeightedFairShareAlternatesByDeficit) {
  // Equal-cost jobs, batch_limit 1: the release order must follow the
  // weighted deficit — the weight-2 tenant gets roughly two releases for
  // every one of the weight-1 tenant once consumption accrues.
  ServeConfig config = audited_config();
  config.batch_limit = 1;
  config.max_in_flight = 1;
  const hw::Platform platform = hw::make_workstation();
  ServeEngine engine(platform, config);
  TenantSpec heavy;
  heavy.weight = 2.0;
  const TenantId a = engine.add_tenant(heavy);
  const TenantId b = engine.add_tenant({});
  for (int i = 0; i < 6; ++i) {
    engine.submit(a, small_job());
    engine.submit(b, small_job());
  }
  // After 9 single-job batches, the 2:1 entitlement puts ~6 of tenant a
  // and ~3 of tenant b through (exact split depends on identical costs;
  // the audit enforces the rule exactly, the counts sanity-check it).
  for (int i = 0; i < 9; ++i) {
    engine.run_batch();
  }
  EXPECT_GT(engine.stats(a).completed, engine.stats(b).completed);
  engine.run_until_drained();
  EXPECT_EQ(engine.stats(a).completed, 6u);
  EXPECT_EQ(engine.stats(b).completed, 6u);
  EXPECT_TRUE(engine.audit_report().passed())
      << engine.audit_report().summary();
}

TEST(ServeEngine, MetricsAndValidationRunsStayClean) {
  ServeConfig config = audited_config();
  config.metrics = true;
  config.validate = true;
  const hw::Platform platform = hw::make_workstation();
  ServeEngine engine(platform, config);
  TenantSpec named;
  named.name = "lab-x";
  const TenantId t = engine.add_tenant(named);
  engine.submit(t, small_job());
  engine.run_until_drained();
  const std::string metrics = engine.metrics_json();
  EXPECT_NE(metrics.find("serve_admitted"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("lab-x"), std::string::npos) << metrics;
  EXPECT_TRUE(engine.audit_report().passed())
      << engine.audit_report().summary();
}

TEST(ServeEngine, StaticSchedulersAreRejectedAtConstruction) {
  ServeConfig config;
  config.scheduler = "heft";
  const hw::Platform platform = hw::make_workstation();
  EXPECT_THROW(ServeEngine(platform, config), util::Error);
}

TEST(ServeEngine, RunScriptDrivesTheFullProtocol) {
  const ServeScript script = parse_script(
      "{\"op\":\"tenant\",\"name\":\"a\",\"weight\":2}\n"
      "{\"op\":\"tenant\",\"name\":\"b\"}\n"
      "{\"op\":\"submit\",\"tenant\":0,\"tasks\":4,\"count\":3}\n"
      "{\"op\":\"submit\",\"tenant\":1,\"shape\":\"diamond\",\"tasks\":5,"
      "\"count\":3}\n"
      "{\"op\":\"batch\"}\n"
      "{\"op\":\"drain\"}\n");
  const hw::Platform platform = hw::make_workstation();
  ServeEngine engine(platform, audited_config());
  const ScriptRunResult result = run_script(engine, script);
  EXPECT_EQ(result.ops_applied, script.size());
  EXPECT_FALSE(result.stopped_early);
  EXPECT_GE(result.batches, 1u);
  EXPECT_EQ(engine.total_pending(), 0u);
  EXPECT_EQ(engine.stats(0).completed, 3u);
  EXPECT_EQ(engine.stats(1).completed, 3u);
  EXPECT_TRUE(engine.audit_report().passed())
      << engine.audit_report().summary();
}

TEST(FairnessMonitorSeeded, DetectsRuleViolations) {
  // The monitor is only trustworthy if it actually fires: feed it biased
  // event sequences and expect each violation class.
  {
    FairnessMonitor monitor;  // fair-share: wrong tenant released
    monitor.add_tenant(1.0, 0, 4);
    monitor.add_tenant(1.0, 0, 4);
    monitor.on_admit(0);
    monitor.on_admit(1);
    monitor.begin_batch();
    monitor.on_release(1);  // rule says tenant 0 (id tie-break)
    EXPECT_EQ(monitor.report().count(check::ViolationKind::FairShare), 1u);
  }
  {
    FairnessMonitor monitor;  // admission-wedge: pending but no release
    monitor.add_tenant(1.0, 0, 4);
    monitor.on_admit(0);
    monitor.begin_batch();
    monitor.end_batch(0, 1);
    EXPECT_EQ(monitor.report().count(check::ViolationKind::AdmissionWedge),
              1u);
  }
  {
    FairnessMonitor monitor;  // accounting: engine and runtime disagree
    monitor.reconcile_batch(3, 4, 1.0, 1.0);
    monitor.reconcile_batch(2, 2, 1.0, 2.0);
    EXPECT_EQ(
        monitor.report().count(check::ViolationKind::TenantAccounting), 2u);
  }
}

}  // namespace
}  // namespace hetflow::serve
