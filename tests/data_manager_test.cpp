#include "data/manager.hpp"

#include <gtest/gtest.h>

namespace hetflow::data {
namespace {

constexpr std::uint64_t kMiB = 1024ull * 1024;

/// host (large) + device memory (small, 10 MiB) over a 10 GB/s link.
hw::Platform small_vram_platform() {
  hw::PlatformBuilder b("mgr");
  const auto host = b.add_memory_node("host", 1024 * kMiB);
  const auto vram = b.add_memory_node("vram", 10 * kMiB);
  b.add_device("cpu", hw::DeviceType::Cpu, 10.0, host);
  b.add_device("gpu", hw::DeviceType::Gpu, 100.0, vram);
  b.add_link(host, vram, 10.0, 1e-6);
  return b.build();
}

TEST(DataManager, RegisterValidatesAgainstPlatform) {
  const hw::Platform p = small_vram_platform();
  sim::EventQueue q;
  DataManager mgr(p, q);
  EXPECT_THROW(mgr.register_data("big", 100 * kMiB, 1),
               util::InternalError);  // larger than vram
  EXPECT_THROW(mgr.register_data("x", 1, 9), util::InternalError);
  EXPECT_NO_THROW(mgr.register_data("ok", kMiB, 0));
}

TEST(DataManager, ReadAcquireFetchesReplica) {
  const hw::Platform p = small_vram_platform();
  sim::EventQueue q;
  DataManager mgr(p, q);
  const DataId d = mgr.register_data("A", kMiB, 0);
  const std::vector<Access> accesses = {{d, AccessMode::Read}};
  const double ready = mgr.acquire(accesses, 1, 0.0);
  EXPECT_GT(ready, 0.0);  // transfer took time
  EXPECT_EQ(mgr.directory().state(d, 1), ReplicaState::Shared);
  EXPECT_EQ(mgr.directory().state(d, 0), ReplicaState::Shared);
  EXPECT_EQ(mgr.stats().fetches, 1u);
  mgr.release(accesses, 1);
}

TEST(DataManager, LocalReadIsInstant) {
  const hw::Platform p = small_vram_platform();
  sim::EventQueue q;
  DataManager mgr(p, q);
  const DataId d = mgr.register_data("A", kMiB, 0);
  const std::vector<Access> accesses = {{d, AccessMode::Read}};
  EXPECT_DOUBLE_EQ(mgr.acquire(accesses, 0, 3.0), 3.0);
  EXPECT_EQ(mgr.stats().fetches, 0u);
  mgr.release(accesses, 0);
}

TEST(DataManager, WriteInvalidatesOtherReplicas) {
  const hw::Platform p = small_vram_platform();
  sim::EventQueue q;
  DataManager mgr(p, q);
  const DataId d = mgr.register_data("A", kMiB, 0);
  const std::vector<Access> read = {{d, AccessMode::Read}};
  mgr.acquire(read, 1, 0.0);
  mgr.release(read, 1);
  // Now write on host: vram replica must die.
  const std::vector<Access> write = {{d, AccessMode::Write}};
  mgr.acquire(write, 0, 1.0);
  EXPECT_EQ(mgr.directory().state(d, 0), ReplicaState::Modified);
  EXPECT_EQ(mgr.directory().state(d, 1), ReplicaState::Invalid);
  mgr.release(write, 0);
}

TEST(DataManager, WriteOnlySkipsFetch) {
  const hw::Platform p = small_vram_platform();
  sim::EventQueue q;
  DataManager mgr(p, q);
  const DataId d = mgr.register_data("A", 5 * kMiB, 0);
  const std::vector<Access> write = {{d, AccessMode::Write}};
  const double ready = mgr.acquire(write, 1, 0.0);
  EXPECT_DOUBLE_EQ(ready, 0.0);  // no transfer of the stale value
  EXPECT_EQ(mgr.stats().fetches, 0u);
  EXPECT_EQ(mgr.directory().state(d, 1), ReplicaState::Modified);
  mgr.release(write, 1);
}

TEST(DataManager, ReadWriteFetchesThenOwns) {
  const hw::Platform p = small_vram_platform();
  sim::EventQueue q;
  DataManager mgr(p, q);
  const DataId d = mgr.register_data("A", kMiB, 0);
  const std::vector<Access> rw = {{d, AccessMode::ReadWrite}};
  const double ready = mgr.acquire(rw, 1, 0.0);
  EXPECT_GT(ready, 0.0);
  EXPECT_EQ(mgr.stats().fetches, 1u);
  EXPECT_EQ(mgr.directory().state(d, 1), ReplicaState::Modified);
  EXPECT_EQ(mgr.directory().state(d, 0), ReplicaState::Invalid);
  mgr.release(rw, 1);
}

TEST(DataManager, EvictionMakesRoom) {
  const hw::Platform p = small_vram_platform();  // 10 MiB vram
  sim::EventQueue q;
  DataManager mgr(p, q);
  const DataId a = mgr.register_data("A", 6 * kMiB, 0);
  const DataId b = mgr.register_data("B", 6 * kMiB, 0);
  const std::vector<Access> ra = {{a, AccessMode::Read}};
  const std::vector<Access> rb = {{b, AccessMode::Read}};
  mgr.acquire(ra, 1, 0.0);
  mgr.release(ra, 1);
  // B does not fit beside A: A (clean, home copy exists) gets dropped.
  mgr.acquire(rb, 1, 1.0);
  EXPECT_EQ(mgr.directory().state(a, 1), ReplicaState::Invalid);
  EXPECT_EQ(mgr.directory().state(b, 1), ReplicaState::Shared);
  EXPECT_EQ(mgr.stats().evictions, 1u);
  EXPECT_EQ(mgr.stats().writebacks, 0u);  // clean drop, home copy alive
  mgr.release(rb, 1);
}

TEST(DataManager, ModifiedVictimIsWrittenBack) {
  const hw::Platform p = small_vram_platform();
  sim::EventQueue q;
  DataManager mgr(p, q);
  const DataId a = mgr.register_data("A", 6 * kMiB, 0);
  const DataId b = mgr.register_data("B", 6 * kMiB, 0);
  const std::vector<Access> wa = {{a, AccessMode::ReadWrite}};
  mgr.acquire(wa, 1, 0.0);
  mgr.release(wa, 1);  // A is Modified on vram, sole copy
  const std::vector<Access> rb = {{b, AccessMode::Read}};
  mgr.acquire(rb, 1, 1.0);
  EXPECT_EQ(mgr.stats().writebacks, 1u);
  // A's only valid copy is now back home.
  EXPECT_EQ(mgr.directory().state(a, 0), ReplicaState::Shared);
  EXPECT_EQ(mgr.directory().state(a, 1), ReplicaState::Invalid);
  mgr.release(rb, 1);
}

TEST(DataManager, RemoteReadDowngradesModifiedOwner) {
  // Regression (found by the hetflow-verify coherence checker): a read
  // fetching from a Modified source must downgrade the source to Shared —
  // Modified means "sole valid copy", which stops being true the moment a
  // second replica materializes.
  const hw::Platform p = small_vram_platform();
  sim::EventQueue q;
  DataManager mgr(p, q);
  const DataId d = mgr.register_data("A", kMiB, 0);
  const std::vector<Access> rw = {{d, AccessMode::ReadWrite}};
  mgr.acquire(rw, 1, 0.0);
  mgr.release(rw, 1);  // d is Modified on vram, Invalid at home
  ASSERT_EQ(mgr.directory().state(d, 1), ReplicaState::Modified);
  const std::vector<Access> read = {{d, AccessMode::Read}};
  mgr.acquire(read, 0, 1.0);
  EXPECT_EQ(mgr.directory().state(d, 0), ReplicaState::Shared);
  EXPECT_EQ(mgr.directory().state(d, 1), ReplicaState::Shared);
  mgr.release(read, 0);
}

TEST(DataManager, PrefetchDowngradesModifiedSource) {
  // Same invariant through the prefetch path.
  const hw::Platform p = small_vram_platform();
  sim::EventQueue q;
  DataManager mgr(p, q);
  const DataId d = mgr.register_data("A", kMiB, 0);
  const std::vector<Access> rw = {{d, AccessMode::ReadWrite}};
  mgr.acquire(rw, 1, 0.0);
  mgr.release(rw, 1);
  const std::vector<Access> read = {{d, AccessMode::Read}};
  mgr.prefetch(read, 0, 1.0);
  EXPECT_EQ(mgr.directory().state(d, 0), ReplicaState::Shared);
  EXPECT_EQ(mgr.directory().state(d, 1), ReplicaState::Shared);
  mgr.release_prefetch(read, 0);
}

TEST(DataManager, PinnedReplicasAreNotEvicted) {
  const hw::Platform p = small_vram_platform();
  sim::EventQueue q;
  DataManager mgr(p, q);
  const DataId a = mgr.register_data("A", 6 * kMiB, 0);
  const DataId b = mgr.register_data("B", 6 * kMiB, 0);
  const std::vector<Access> ra = {{a, AccessMode::Read}};
  mgr.acquire(ra, 1, 0.0);  // A pinned (not released)
  const std::vector<Access> rb = {{b, AccessMode::Read}};
  EXPECT_THROW(mgr.acquire(rb, 1, 1.0), ResourceExhausted);
  mgr.release(ra, 1);
  EXPECT_NO_THROW(mgr.acquire(rb, 1, 2.0));
  mgr.release(rb, 1);
}

TEST(DataManager, EstimateMatchesAcquireForSimpleFetch) {
  const hw::Platform p = small_vram_platform();
  sim::EventQueue q;
  DataManager mgr(p, q);
  const DataId d = mgr.register_data("A", 2 * kMiB, 0);
  const std::vector<Access> read = {{d, AccessMode::Read}};
  const double est = mgr.estimate_ready_time(read, 1, 0.0);
  const double real = mgr.acquire(read, 1, 0.0);
  EXPECT_DOUBLE_EQ(est, real);
  mgr.release(read, 1);
  // Second estimate is now zero-cost: replica resident.
  EXPECT_DOUBLE_EQ(mgr.estimate_ready_time(read, 1, 5.0), 5.0);
}

TEST(DataManager, MissingInputBytes) {
  const hw::Platform p = small_vram_platform();
  sim::EventQueue q;
  DataManager mgr(p, q);
  const DataId a = mgr.register_data("A", 3 * kMiB, 0);
  const DataId b = mgr.register_data("B", 2 * kMiB, 0);
  const std::vector<Access> accesses = {{a, AccessMode::Read},
                                        {b, AccessMode::Read}};
  EXPECT_EQ(mgr.missing_input_bytes(accesses, 1), 5 * kMiB);
  EXPECT_EQ(mgr.missing_input_bytes(accesses, 0), 0u);
  const std::vector<Access> read_a = {{a, AccessMode::Read}};
  mgr.acquire(read_a, 1, 0.0);
  EXPECT_EQ(mgr.missing_input_bytes(accesses, 1), 2 * kMiB);
  mgr.release(read_a, 1);
}

TEST(DataManager, WriteOutputsDoNotCountAsMissing) {
  const hw::Platform p = small_vram_platform();
  sim::EventQueue q;
  DataManager mgr(p, q);
  const DataId d = mgr.register_data("out", 4 * kMiB, 0);
  const std::vector<Access> write_d = {{d, AccessMode::Write}};
  EXPECT_EQ(mgr.missing_input_bytes(write_d, 1), 0u);
}

TEST(DataManager, ZeroByteHandleNeedsNoTransfer) {
  const hw::Platform p = small_vram_platform();
  sim::EventQueue q;
  DataManager mgr(p, q);
  const DataId d = mgr.register_data("ctrl", 0, 0);
  const std::vector<Access> read = {{d, AccessMode::Read}};
  EXPECT_DOUBLE_EQ(mgr.acquire(read, 1, 2.0), 2.0);
  EXPECT_EQ(mgr.stats().fetches, 0u);
  mgr.release(read, 1);
}

TEST(MemoryLedger, PinUnpinCounts) {
  const hw::Platform p = small_vram_platform();
  MemoryLedger ledger(p);
  ledger.pin(0, 1);
  ledger.pin(0, 1);
  EXPECT_TRUE(ledger.pinned(0, 1));
  EXPECT_EQ(ledger.pin_count(0, 1), 2u);
  ledger.unpin(0, 1);
  EXPECT_TRUE(ledger.pinned(0, 1));
  ledger.unpin(0, 1);
  EXPECT_FALSE(ledger.pinned(0, 1));
  EXPECT_THROW(ledger.unpin(0, 1), util::InternalError);
}

TEST(MemoryLedger, LruOrderLeastRecentFirst) {
  const hw::Platform p = small_vram_platform();
  MemoryLedger ledger(p);
  ledger.touch(0, 1);
  ledger.touch(1, 1);
  ledger.touch(0, 1);  // 0 is now most recent
  std::vector<DataId> candidates = {0, 1, 2};
  ledger.lru_order(1, candidates);
  // 2 never touched -> first; then 1; then 0.
  EXPECT_EQ(candidates, (std::vector<DataId>{2, 1, 0}));
}

}  // namespace
}  // namespace hetflow::data
