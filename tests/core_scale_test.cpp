// Counter-width regression at scale: a run of more than 2^20 tasks must
// produce exact (not saturated, truncated, or drifted) completion counts
// everywhere they are reported — RunStats, per-device stats, and the
// event queue's executed() tally. Guards the std::uint64_t promotion of
// the accounting counters (size_t is only guaranteed 16 bits, and the
// campaign engine accumulates these across sweeps).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/runtime.hpp"
#include "hw/presets.hpp"
#include "sched/registry.hpp"

namespace hetflow {
namespace {

TEST(CoreScale, MillionTaskRunCountsExactly) {
  constexpr std::uint64_t kTasks = (1ULL << 20) + 3;  // > 2^20, odd tail
  const hw::Platform platform = hw::make_workstation();
  core::RuntimeOptions options;
  options.record_trace = false;      // the count is the point, not spans
  options.use_history_model = false;
  core::Runtime rt(platform, sched::make_scheduler("eager"), options);

  // Independent tasks on one shared read-only handle: no dependency
  // chains to slow the drain, every task goes through the full
  // ready -> queue -> run -> finish accounting path.
  const data::DataId h = rt.register_data("h", 64);
  const core::CodeletPtr codelet =
      core::Codelet::make("noop", {{hw::DeviceType::Cpu, 1.0},
                                   {hw::DeviceType::Gpu, 1.0}});
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    rt.submit("t", codelet, 1e3, {{h, data::AccessMode::Read}});
  }
  rt.wait_all();

  const core::RunStats& stats = rt.stats();
  EXPECT_EQ(stats.tasks_completed, kTasks);
  EXPECT_EQ(stats.failed_attempts, 0u);
  EXPECT_EQ(stats.tasks_lost, 0u);

  // The per-device counters must add back up to the global one exactly.
  std::uint64_t per_device_total = 0;
  for (const core::DeviceRunStats& device : stats.devices) {
    per_device_total += device.tasks_completed;
  }
  EXPECT_EQ(per_device_total, kTasks);

  // One completion event per task (lean run: no watchdogs, no probes).
  EXPECT_EQ(rt.event_queue().executed(), kTasks);
}

}  // namespace
}  // namespace hetflow
