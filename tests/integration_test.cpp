// Whole-stack integration: realistic workflows on realistic platforms,
// checking cross-module behavior (scheduling quality relations, data
// movement, energy, memory pressure, cluster execution).
#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "helpers.hpp"
#include "sched/registry.hpp"
#include "trace/report.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "workflow/dagfile.hpp"
#include "workflow/generators.hpp"
#include "workflow/linalg.hpp"
#include "workflow/workflow.hpp"

namespace hetflow {
namespace {

const workflow::CodeletLibrary& lib() {
  static const workflow::CodeletLibrary instance =
      workflow::CodeletLibrary::standard();
  return instance;
}

TEST(Integration, CostAwareSchedulersBeatRandomOnEveryWorkflow) {
  const hw::Platform p = hw::make_hpc_node(8, 2, 0);
  for (const workflow::Workflow& wf :
       {workflow::make_montage(24), workflow::make_epigenomics(3, 6),
        workflow::make_ligo(16, 4)}) {
    const double random =
        workflow::run_workflow(p, "random", wf, lib()).makespan_s;
    for (const char* policy : {"mct", "dmda", "heft", "min-min"}) {
      const double cost_aware =
          workflow::run_workflow(p, policy, wf, lib()).makespan_s;
      EXPECT_LT(cost_aware, random * 1.05)
          << policy << " on " << wf.name();
    }
  }
}

TEST(Integration, MoreGpusNeverHurtCholeskyMuch) {
  // Monotone-ish scaling: 4 GPUs should be at least as good as 1 GPU.
  const workflow::Workflow wf = workflow::make_cholesky(12, 2048);
  const double one_gpu =
      workflow::run_workflow(hw::make_hpc_node(4, 1, 0), "dmda", wf, lib())
          .makespan_s;
  const double four_gpu =
      workflow::run_workflow(hw::make_hpc_node(4, 4, 0), "dmda", wf, lib())
          .makespan_s;
  EXPECT_LE(four_gpu, one_gpu * 1.02);
}

TEST(Integration, GpuPlatformBeatsCpuOnlyForDenseWork) {
  const workflow::Workflow wf = workflow::make_cholesky(10, 2048);
  const double cpu_only =
      workflow::run_workflow(hw::make_cpu_only(8), "dmda", wf, lib())
          .makespan_s;
  const double with_gpu =
      workflow::run_workflow(hw::make_hpc_node(8, 2, 0), "dmda", wf, lib())
          .makespan_s;
  EXPECT_LT(with_gpu, cpu_only / 3.0);
}

TEST(Integration, DataAwareSchedulingReducesTrafficOnHighCcr) {
  const hw::Platform p = hw::make_hpc_node(4, 2, 0);
  const workflow::Workflow wf =
      workflow::make_random_layered(8, 6, 4.0, 11);
  const auto mct = workflow::run_workflow(p, "mct", wf, lib());
  const auto dmda = workflow::run_workflow(p, "dmda", wf, lib());
  EXPECT_LE(dmda.makespan_s, mct.makespan_s * 1.01);
}

TEST(Integration, EnergyAwareSavesEnergyVersusPerformanceFirst) {
  const hw::Platform p = hw::make_hpc_node(8, 2, 0);
  const workflow::Workflow wf = workflow::make_montage(32);
  const auto perf = workflow::run_workflow(p, "energy-performance", wf, lib());
  const auto energy = workflow::run_workflow(p, "energy-energy", wf, lib());
  EXPECT_LT(energy.busy_energy_j(), perf.busy_energy_j());
}

TEST(Integration, TinyDeviceMemoryStillCompletesViaEviction) {
  // GPU memory smaller than the workflow footprint: the allocator must
  // evict and write back, and the run must still complete correctly.
  hw::PlatformBuilder b("tiny-vram");
  const auto host = b.add_memory_node("host", 4ull << 30);
  const auto vram = b.add_memory_node("vram", 24ull << 20);  // 24 MiB
  b.add_device("cpu0", hw::DeviceType::Cpu, 12.0, host);
  b.add_device("gpu0", hw::DeviceType::Gpu, 600.0, vram, 8e-6);
  b.add_link(host, vram, 16.0, 4e-6);
  const hw::Platform p = b.build();

  core::Runtime rt(p, sched::make_scheduler("dmda"));
  // 8 MiB tiles, 6x6 Cholesky: working set far exceeds 24 MiB.
  workflow::submit_cholesky_inplace(rt, 6, 1024,
                                    workflow::CodeletLibrary::standard());
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed,
            workflow::cholesky_task_count(6));
  EXPECT_GT(rt.stats().data.evictions, 0u);
}

TEST(Integration, ClusterRunsLargeWorkflow) {
  const hw::Platform p = hw::make_cluster(3, 4, 1);
  const workflow::Workflow wf = workflow::make_cybershake(4, 20);
  const auto stats = workflow::run_workflow(p, "dmda", wf, lib());
  EXPECT_EQ(stats.tasks_completed, wf.task_count());
  EXPECT_GT(stats.mean_utilization(), 0.0);
}

TEST(Integration, EdgePlatformRunsSignalPipeline) {
  const hw::Platform p = hw::make_edge_node();
  core::Runtime rt(p, sched::make_scheduler("dmda"));
  const auto filter = lib().get("filter");
  const auto fft = lib().get("fft");
  auto samples = rt.register_data("samples", 4 << 20);
  auto filtered = rt.register_data("filtered", 4 << 20);
  auto spectrum = rt.register_data("spectrum", 1 << 20);
  rt.submit("filter", filter, 2e8,
            {{samples, data::AccessMode::Read},
             {filtered, data::AccessMode::Write}});
  rt.submit("fft", fft, 5e8,
            {{filtered, data::AccessMode::Read},
             {spectrum, data::AccessMode::Write}});
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, 2u);
  // DSP (20 GFLOPS, fft-efficient) should host the FFT.
  const auto dsps = p.devices_of_type(hw::DeviceType::Dsp);
  EXPECT_GE(rt.stats().devices[dsps[0]].tasks_completed, 1u);
}

TEST(Integration, ChromeTraceOfFullRunIsParseable) {
  const hw::Platform p = hw::make_workstation();
  core::Runtime rt(p, sched::make_scheduler("heft"));
  workflow::submit_workflow(rt, workflow::make_montage(12), lib());
  rt.wait_all();
  const util::Json doc =
      util::Json::parse(rt.tracer().to_chrome_json(p));
  EXPECT_GE(doc.at("traceEvents").size(),
            static_cast<std::size_t>(rt.stats().tasks_completed));
  const std::string report = trace::utilization_report(rt.tracer(), p);
  EXPECT_NE(report.find("gpu0"), std::string::npos);
}

TEST(Integration, DagfileToExecutionPipeline) {
  // Serialize a generated workflow, re-load it, run it: same makespan as
  // running the original (end-to-end format fidelity).
  const hw::Platform p = hw::make_hpc_node(4, 1, 0);
  const workflow::Workflow original = workflow::make_ligo(10, 5);
  const workflow::Workflow reloaded =
      workflow::parse_dagfile(workflow::to_dagfile(original));
  const double direct =
      workflow::run_workflow(p, "heft", original, lib()).makespan_s;
  const double roundtrip =
      workflow::run_workflow(p, "heft", reloaded, lib()).makespan_s;
  EXPECT_DOUBLE_EQ(direct, roundtrip);
}

TEST(Integration, NoiseShiftsButDoesNotBreakScheduling) {
  const hw::Platform p = hw::make_hpc_node(4, 2, 0);
  const workflow::Workflow wf = workflow::make_montage(20);
  core::RuntimeOptions options;
  options.noise_cv = 0.25;
  const auto noisy = workflow::run_workflow(p, "dmda", wf, lib(), options);
  const auto clean = workflow::run_workflow(p, "dmda", wf, lib());
  EXPECT_EQ(noisy.tasks_completed, wf.task_count());
  EXPECT_NE(noisy.makespan_s, clean.makespan_s);
  EXPECT_LT(noisy.makespan_s, clean.makespan_s * 3.0);
}

TEST(Integration, FaultInjectionAcrossWholeWorkflow) {
  const hw::Platform p = hw::make_hpc_node(4, 2, 0);
  core::RuntimeOptions options;
  options.failure_model = hw::FailureModel::uniform(0.5);
  options.failure_policy = core::FailurePolicy::Reschedule;
  const workflow::Workflow wf = workflow::make_epigenomics(2, 6);
  const auto stats = workflow::run_workflow(p, "dmda", wf, lib(), options);
  EXPECT_EQ(stats.tasks_completed, wf.task_count());
  const auto clean = workflow::run_workflow(p, "dmda", wf, lib());
  EXPECT_GE(stats.makespan_s, clean.makespan_s);
}

TEST(Integration, HistoryModelImprovesEstimatesWithinRun) {
  // With a deliberately wrong analytic model (efficiency set far from the
  // noise-free truth is impossible here, so instead check convergence):
  // after many repetitions the history mean matches the observed rate.
  const hw::Platform p = hw::make_cpu_only(2);
  core::RuntimeOptions options;
  options.noise_cv = 0.3;
  options.seed = 9;
  core::Runtime rt(p, sched::make_scheduler("mct"), options);
  const core::CodeletPtr codelet = hetflow::testing::cpu_only_codelet();
  for (int i = 0; i < 60; ++i) {
    rt.submit(util::format("t%d", i), codelet, 2e9, {});
  }
  rt.wait_all();
  ASSERT_TRUE(rt.history().calibrated(codelet->id(), hw::DeviceType::Cpu));
  // True mean rate: 2e9 flops at 6 GFLOP/s effective = 1/3 s, noise has
  // unit mean, so the history estimate converges to ~1/3 s.
  EXPECT_NEAR(rt.history().estimate(codelet->id(), hw::DeviceType::Cpu, 2e9),
              1.0 / 3.0, 0.05);
}

TEST(Integration, DeterministicEndToEnd) {
  const hw::Platform p = hw::make_hpc_node(4, 2, 1);
  core::RuntimeOptions options;
  options.noise_cv = 0.2;
  options.failure_model = hw::FailureModel::uniform(0.05);
  options.seed = 2026;
  const workflow::Workflow wf = workflow::make_cybershake(3, 8);
  const auto a = workflow::run_workflow(p, "dmda", wf, lib(), options);
  const auto b = workflow::run_workflow(p, "dmda", wf, lib(), options);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.failed_attempts, b.failed_attempts);
  EXPECT_EQ(a.transfers.bytes_moved, b.transfers.bytes_moved);
  EXPECT_DOUBLE_EQ(a.total_energy_j(), b.total_energy_j());
}

}  // namespace
}  // namespace hetflow
