#include "workflow/characterize.hpp"

#include <gtest/gtest.h>

#include "workflow/generators.hpp"
#include "workflow/linalg.hpp"

namespace hetflow::workflow {
namespace {

TEST(Characterize, ChainIsFullySerial) {
  const Characterization c = characterize(make_chain(10, 1e9, 1 << 20));
  EXPECT_EQ(c.tasks, 10u);
  EXPECT_EQ(c.depth, 10u);
  EXPECT_EQ(c.max_width, 1u);
  EXPECT_NEAR(c.avg_parallelism, 1.0, 1e-9);
  EXPECT_NEAR(c.serial_fraction, 1.0, 1e-9);
}

TEST(Characterize, BagIsFullyParallel) {
  const Characterization c = characterize(make_bag(16, 1e9, 1 << 20));
  EXPECT_EQ(c.depth, 1u);
  EXPECT_EQ(c.max_width, 16u);
  EXPECT_NEAR(c.avg_parallelism, 16.0, 1e-9);
  EXPECT_NEAR(c.serial_fraction, 1.0 / 16.0, 1e-9);
}

TEST(Characterize, CountsMatchWorkflow) {
  const Workflow w = make_montage(16);
  const Characterization c = characterize(w);
  EXPECT_EQ(c.name, w.name());
  EXPECT_EQ(c.tasks, w.task_count());
  EXPECT_EQ(c.files, w.file_count());
  EXPECT_EQ(c.edges, w.task_graph().edge_count());
  EXPECT_EQ(c.depth, w.depth());
  EXPECT_EQ(c.max_width, w.max_width());
  EXPECT_NEAR(c.total_gflop, w.total_flops() / 1e9, 1e-9);
  EXPECT_EQ(c.total_bytes, w.total_bytes());
}

TEST(Characterize, ParallelismBounds) {
  // 1 <= avg_parallelism <= tasks for any DAG with positive work.
  for (const Workflow& w :
       {make_montage(12), make_epigenomics(2, 4), make_cybershake(2, 6),
        make_ligo(8, 3), make_sipht(4, 4), make_cholesky(6, 1024),
        make_wavefront(6)}) {
    const Characterization c = characterize(w);
    EXPECT_GE(c.avg_parallelism, 1.0 - 1e-9) << w.name();
    EXPECT_LE(c.avg_parallelism, static_cast<double>(c.tasks) + 1e-9)
        << w.name();
    EXPECT_GT(c.serial_fraction, 0.0) << w.name();
    EXPECT_LE(c.serial_fraction, 1.0 + 1e-9) << w.name();
    EXPECT_GE(c.ccr, 0.0) << w.name();
  }
}

TEST(Characterize, CcrTracksGeneratorKnob) {
  const Characterization low =
      characterize(make_random_layered(6, 6, 0.2, 3));
  const Characterization high =
      characterize(make_random_layered(6, 6, 5.0, 3));
  EXPECT_GT(high.ccr, low.ccr * 10.0);
}

TEST(Characterize, TableRendersAllRows) {
  const std::vector<Characterization> rows = {
      characterize(make_chain(3, 1e9, 1024)),
      characterize(make_bag(3, 1e9, 1024))};
  const std::string table = characterization_table(rows);
  EXPECT_NE(table.find("chain-3"), std::string::npos);
  EXPECT_NE(table.find("bag-3"), std::string::npos);
  EXPECT_NE(table.find("avg-par"), std::string::npos);
}

TEST(Characterize, EmptyWorkflow) {
  const Characterization c = characterize(Workflow("empty"));
  EXPECT_EQ(c.tasks, 0u);
  EXPECT_EQ(c.depth, 0u);
  EXPECT_EQ(c.avg_parallelism, 0.0);
}

}  // namespace
}  // namespace hetflow::workflow
