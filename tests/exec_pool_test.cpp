#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace hetflow::exec {
namespace {

TEST(ParseJobs, AcceptsPositiveIntegers) {
  EXPECT_EQ(parse_jobs("1"), 1u);
  EXPECT_EQ(parse_jobs("4"), 4u);
  EXPECT_EQ(parse_jobs("16"), 16u);
}

TEST(ParseJobs, ZeroMeansAllHardwareThreads) {
  const std::size_t jobs = parse_jobs("0");
  EXPECT_GE(jobs, 1u);
}

TEST(ParseJobs, RejectsGarbage) {
  EXPECT_THROW(parse_jobs(""), InvalidArgument);
  EXPECT_THROW(parse_jobs("abc"), InvalidArgument);
  EXPECT_THROW(parse_jobs("4x"), InvalidArgument);
}

TEST(DefaultJobs, FollowsEnvironment) {
  ::setenv("HETFLOW_JOBS", "3", 1);
  EXPECT_EQ(default_jobs(), 3u);
  ::setenv("HETFLOW_JOBS", "not-a-number", 1);
  EXPECT_EQ(default_jobs(), 1u);  // invalid -> serial, never crashes
  ::unsetenv("HETFLOW_JOBS");
  EXPECT_EQ(default_jobs(), 1u);
}

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ParallelMap, ResultsLandInIndexOrder) {
  const std::vector<std::size_t> out =
      parallel_map<std::size_t>(257, 8, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelForEach, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  parallel_for_each(kCount, 8, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForEach, SerialPathRunsInline) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(3);
  parallel_for_each(3, 1, [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const std::thread::id& id : seen) {
    EXPECT_EQ(id, caller);
  }
}

TEST(ParallelForEach, SingleItemRunsInlineEvenWithManyJobs) {
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  parallel_for_each(1, 8, [&](std::size_t) {
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ParallelForEach, ZeroCountIsANoOp) {
  bool called = false;
  parallel_for_each(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForEach, LowestIndexExceptionWinsDeterministically) {
  for (int round = 0; round < 10; ++round) {
    try {
      parallel_for_each(64, 8, [](std::size_t i) {
        if (i == 7 || i == 3 || i == 50) {
          throw InvalidArgument("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const InvalidArgument& e) {
      EXPECT_STREQ(e.what(), "boom at 3");
    }
  }
}

TEST(ParallelForEach, SerialExceptionPropagates) {
  EXPECT_THROW(
      parallel_for_each(4, 1,
                        [](std::size_t i) {
                          if (i == 2) {
                            throw InternalError("serial boom");
                          }
                        }),
      InternalError);
}

}  // namespace
}  // namespace hetflow::exec
