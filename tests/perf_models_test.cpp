#include <gtest/gtest.h>

#include "hw/presets.hpp"
#include "perf/energy_model.hpp"
#include "perf/history_model.hpp"
#include "perf/transfer_model.hpp"

namespace hetflow::perf {
namespace {

TEST(HistoryModel, UncalibratedReturnsNegative) {
  HistoryModel model;
  EXPECT_FALSE(model.calibrated(0, hw::DeviceType::Cpu));
  EXPECT_LT(model.estimate(0, hw::DeviceType::Cpu, 1e9), 0.0);
}

TEST(HistoryModel, CalibratesAfterMinSamples) {
  HistoryModel model;
  for (std::size_t i = 0; i < HistoryModel::kMinSamples; ++i) {
    model.record(7, hw::DeviceType::Gpu, 1e9, 0.01);
  }
  EXPECT_TRUE(model.calibrated(7, hw::DeviceType::Gpu));
  EXPECT_NEAR(model.estimate(7, hw::DeviceType::Gpu, 1e9), 0.01, 1e-12);
  // Scales linearly in flops.
  EXPECT_NEAR(model.estimate(7, hw::DeviceType::Gpu, 2e9), 0.02, 1e-12);
}

TEST(HistoryModel, SeparatesCodeletAndDeviceType) {
  HistoryModel model;
  for (int i = 0; i < 5; ++i) {
    model.record(1, hw::DeviceType::Cpu, 1e9, 0.1);
    model.record(1, hw::DeviceType::Gpu, 1e9, 0.001);
    model.record(2, hw::DeviceType::Cpu, 1e9, 0.5);
  }
  EXPECT_NEAR(model.estimate(1, hw::DeviceType::Cpu, 1e9), 0.1, 1e-12);
  EXPECT_NEAR(model.estimate(1, hw::DeviceType::Gpu, 1e9), 0.001, 1e-12);
  EXPECT_NEAR(model.estimate(2, hw::DeviceType::Cpu, 1e9), 0.5, 1e-12);
  EXPECT_FALSE(model.calibrated(2, hw::DeviceType::Gpu));
}

TEST(HistoryModel, AveragesNoisySamples) {
  HistoryModel model;
  model.record(3, hw::DeviceType::Cpu, 1e9, 0.08);
  model.record(3, hw::DeviceType::Cpu, 1e9, 0.12);
  model.record(3, hw::DeviceType::Cpu, 1e9, 0.10);
  EXPECT_NEAR(model.estimate(3, hw::DeviceType::Cpu, 1e9), 0.10, 1e-9);
  EXPECT_EQ(model.sample_count(3, hw::DeviceType::Cpu), 3u);
}

TEST(HistoryModel, ZeroFlopSamplesIgnored) {
  HistoryModel model;
  for (int i = 0; i < 10; ++i) {
    model.record(4, hw::DeviceType::Cpu, 0.0, 0.5);
  }
  EXPECT_FALSE(model.calibrated(4, hw::DeviceType::Cpu));
}

TEST(HistoryModel, ClearResets) {
  HistoryModel model;
  for (int i = 0; i < 5; ++i) {
    model.record(1, hw::DeviceType::Cpu, 1e9, 0.1);
  }
  model.clear();
  EXPECT_FALSE(model.calibrated(1, hw::DeviceType::Cpu));
}

TEST(TransferModel, SingleNodePlatformHasZeroMeanComm) {
  const hw::Platform p = hw::make_cpu_only(4);
  const TransferModel model(p);
  EXPECT_DOUBLE_EQ(model.mean_time_s(1000000), 0.0);
}

TEST(TransferModel, MeanGrowsWithBytes) {
  const hw::Platform p = hw::make_hpc_node(4, 2, 0);
  const TransferModel model(p);
  const double small = model.mean_time_s(1024);
  const double large = model.mean_time_s(1024 * 1024 * 1024);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, 100.0 * small);
}

TEST(TransferModel, DeviceTimeZeroOnSameNode) {
  const hw::Platform p = hw::make_hpc_node(4, 1, 0);
  const TransferModel model(p);
  const auto cpus = p.devices_of_type(hw::DeviceType::Cpu);
  EXPECT_DOUBLE_EQ(model.mean_device_time_s(cpus[0], cpus[1], 1 << 20), 0.0);
  const auto gpus = p.devices_of_type(hw::DeviceType::Gpu);
  EXPECT_GT(model.mean_device_time_s(cpus[0], gpus[0], 1 << 20), 0.0);
}

TEST(TransferModel, TimeMatchesPlatform) {
  const hw::Platform p = hw::make_workstation();
  const TransferModel model(p);
  EXPECT_DOUBLE_EQ(model.time_s(0, 1, 123456),
                   p.transfer_time_s(0, 1, 123456));
}

TEST(EnergyModel, BusyEnergyScalesWithState) {
  hw::Device d(0, "g", hw::DeviceType::Gpu, 100.0, 0);
  d.set_dvfs_states({{0.5, 50.0, 5.0}, {1.0, 120.0, 10.0}}, 1);
  EXPECT_DOUBLE_EQ(EnergyModel::busy_energy_j(d, 0, 2.0), 100.0);
  EXPECT_DOUBLE_EQ(EnergyModel::busy_energy_j(d, 1, 2.0), 240.0);
}

TEST(EnergyModel, IdleEnergyUsesNominalIdlePower) {
  hw::Device d(0, "g", hw::DeviceType::Gpu, 100.0, 0);
  d.set_dvfs_states({{0.5, 50.0, 5.0}, {1.0, 120.0, 10.0}}, 1);
  EXPECT_DOUBLE_EQ(EnergyModel::idle_energy_j(d, 3.0), 30.0);
  // Tiny negative slack tolerated (floating point), clamped to zero.
  EXPECT_DOUBLE_EQ(EnergyModel::idle_energy_j(d, -1e-12), 0.0);
}

TEST(EnergyModel, NegativeBusyRejected) {
  const hw::Device d(0, "c", hw::DeviceType::Cpu, 10.0, 0);
  EXPECT_THROW(EnergyModel::busy_energy_j(d, 0, -1.0), util::InternalError);
}

}  // namespace
}  // namespace hetflow::perf
