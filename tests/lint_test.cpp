// hetflow_lint rule-by-rule fixture suite: every rule in the catalog must
// fire on its known-bad fixture under tests/lint/, and the suppression and
// baseline machinery must behave as documented in docs/static_analysis.md.
//
// Fixtures are lexed from disk but re-homed onto virtual src/ paths so the
// non-test rules (det-unordered-iter skips tests/, hyg-explicit-ctor only
// scans src/) treat them as production code.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/project.hpp"
#include "lint/source.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace lint = hetflow::lint;

namespace {

std::string fixture_path(const std::string& name) {
  return std::string(HETFLOW_LINT_FIXTURE_DIR) + "/" + name;
}

std::string read_fixture(const std::string& name) {
  std::ifstream in(fixture_path(name));
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct VirtualFile {
  std::string virtual_path;  ///< where the analyzer believes the file lives
  std::string fixture;       ///< file name under tests/lint/
};

lint::Project project_of(const std::vector<VirtualFile>& files,
                         lint::ProjectOptions options = {}) {
  std::vector<lint::SourceFile> sources;
  for (const VirtualFile& file : files) {
    sources.push_back(
        lint::make_source(file.virtual_path, read_fixture(file.fixture)));
  }
  return lint::build_project(std::move(sources), std::move(options));
}

lint::AnalysisResult analyze_rule(const std::string& rule,
                                  const std::vector<VirtualFile>& files,
                                  lint::ProjectOptions options = {}) {
  return lint::analyze(project_of(files, std::move(options)), {rule},
                       lint::Baseline{});
}

std::size_t count_rule(const lint::AnalysisResult& result,
                       const std::string& rule) {
  std::size_t n = 0;
  for (const lint::Finding& finding : result.findings) {
    n += finding.rule == rule ? 1 : 0;
  }
  return n;
}

int line_of_first(const lint::AnalysisResult& result) {
  return result.findings.empty() ? 0 : result.findings.front().line;
}

// --- determinism family ---------------------------------------------------

TEST(LintDeterminism, BannedApiFlagsRandomHeaderEngineAndCalls) {
  const auto result = analyze_rule(
      "det-banned-api", {{"src/core/fixture.cpp", "det_banned_api.cpp"}});
  // <random> include, std::mt19937, rand(), time(nullptr).
  EXPECT_EQ(count_rule(result, "det-banned-api"), 4u);
  EXPECT_EQ(result.unsuppressed(), 4u);
}

TEST(LintDeterminism, BannedApiExemptsUtil) {
  const auto result = analyze_rule(
      "det-banned-api", {{"src/util/fixture.cpp", "det_banned_api.cpp"}});
  EXPECT_EQ(result.unsuppressed(), 0u);
}

TEST(LintDeterminism, WallClockFlagsSteadyClock) {
  const auto result = analyze_rule(
      "det-wallclock", {{"src/core/fixture.cpp", "det_wallclock.cpp"}});
  ASSERT_EQ(count_rule(result, "det-wallclock"), 1u);
  EXPECT_EQ(line_of_first(result), 5);
}

TEST(LintDeterminism, UnorderedIterFlagsRangeForAndBegin) {
  const auto result = analyze_rule(
      "det-unordered-iter",
      {{"src/core/fixture.cpp", "det_unordered_iter.cpp"}});
  EXPECT_EQ(count_rule(result, "det-unordered-iter"), 2u);
}

TEST(LintDeterminism, UnorderedIterSkipsTestCode) {
  const auto result = analyze_rule(
      "det-unordered-iter",
      {{"tests/fixture_test.cpp", "det_unordered_iter.cpp"}});
  EXPECT_EQ(result.unsuppressed(), 0u);
}

TEST(LintDeterminism, PointerOrderFlagsFormatAndPointerKeyedMap) {
  const auto result = analyze_rule(
      "det-pointer-order",
      {{"src/core/fixture.cpp", "det_pointer_order.cpp"}});
  // One for the pointer-keyed std::map, one for the format string.
  EXPECT_EQ(count_rule(result, "det-pointer-order"), 2u);
}

// --- layering family ------------------------------------------------------

TEST(LintLayering, DagFlagsUpwardInclude) {
  const auto result = analyze_rule(
      "layer-dag", {{"src/util/bad_dep.cpp", "layer_dag_util_bad.cpp"},
                    {"src/core/runtime_stub.hpp", "layer_dag_core_stub.hpp"}});
  ASSERT_EQ(count_rule(result, "layer-dag"), 1u);
  EXPECT_NE(result.findings.front().message.find("may not depend on core"),
            std::string::npos);
}

TEST(LintLayering, DagAllowsDownwardInclude) {
  // The same include is legal when the includer sits above the target.
  const auto result = analyze_rule(
      "layer-dag", {{"src/sched/bad_dep.cpp", "layer_dag_util_bad.cpp"},
                    {"src/core/runtime_stub.hpp", "layer_dag_core_stub.hpp"}});
  EXPECT_EQ(result.unsuppressed(), 0u);
}

TEST(LintLayering, CycleFlagsMutualIncludeOnce) {
  const auto result = analyze_rule(
      "layer-cycle", {{"src/util/cycle_a.hpp", "layer_cycle_a.hpp"},
                      {"src/util/cycle_b.hpp", "layer_cycle_b.hpp"}});
  // The a->b->a loop is one cycle, deduplicated across entry points.
  ASSERT_EQ(count_rule(result, "layer-cycle"), 1u);
  EXPECT_NE(result.findings.front().message.find("include cycle"),
            std::string::npos);
}

TEST(LintLayering, SelfContainedProbeCatchesMissingInclude) {
  lint::ProjectOptions options;
  options.probe_headers = true;
  options.include_dirs = {HETFLOW_LINT_FIXTURE_DIR};
  const auto bad = analyze_rule(
      "layer-self-contained",
      {{fixture_path("layer_self_contained.hpp"), "layer_self_contained.hpp"}},
      options);
  EXPECT_EQ(count_rule(bad, "layer-self-contained"), 1u);

  const auto good = analyze_rule(
      "layer-self-contained",
      {{fixture_path("layer_dag_core_stub.hpp"), "layer_dag_core_stub.hpp"}},
      options);
  EXPECT_EQ(good.unsuppressed(), 0u);
}

// --- lock family ----------------------------------------------------------

TEST(LintLocks, OrderCycleFlagsAbBaAndReacquisition) {
  const auto result = analyze_rule(
      "lock-order-cycle", {{"src/exec/fixture.cpp", "lock_order_cycle.cpp"}});
  ASSERT_EQ(count_rule(result, "lock-order-cycle"), 2u);
  bool saw_cycle = false;
  bool saw_self = false;
  for (const lint::Finding& finding : result.findings) {
    saw_cycle |= finding.message.find("lock-order cycle") != std::string::npos;
    saw_self |= finding.message.find("re-acquired") != std::string::npos;
  }
  EXPECT_TRUE(saw_cycle);
  EXPECT_TRUE(saw_self);
}

TEST(LintLocks, CallbackUnderLockFlagged) {
  const auto result = analyze_rule(
      "lock-callback", {{"src/exec/fixture.cpp", "lock_callback.cpp"}});
  ASSERT_EQ(count_rule(result, "lock-callback"), 1u);
  EXPECT_NE(result.findings.front().message.find("on_done"),
            std::string::npos);
}

// --- hygiene family -------------------------------------------------------

TEST(LintHygiene, MissingIncludeGuardWarned) {
  const auto result = analyze_rule(
      "hyg-include-guard",
      {{"src/core/fixture.hpp", "hyg_include_guard.hpp"}});
  ASSERT_EQ(count_rule(result, "hyg-include-guard"), 1u);
  EXPECT_EQ(result.findings.front().severity, lint::Severity::Warning);
}

TEST(LintHygiene, UsingNamespaceInHeaderWarned) {
  const auto result = analyze_rule(
      "hyg-using-namespace",
      {{"src/core/fixture.hpp", "hyg_using_namespace.hpp"}});
  EXPECT_EQ(count_rule(result, "hyg-using-namespace"), 1u);
}

TEST(LintHygiene, NonExplicitSingleArgCtorFlaggedInSrcOnly) {
  const auto in_src = analyze_rule(
      "hyg-explicit-ctor",
      {{"src/core/widget.cpp", "hyg_explicit_ctor.cpp"}});
  EXPECT_EQ(count_rule(in_src, "hyg-explicit-ctor"), 1u);

  const auto in_tools = analyze_rule(
      "hyg-explicit-ctor", {{"tools/widget.cpp", "hyg_explicit_ctor.cpp"}});
  EXPECT_EQ(in_tools.unsuppressed(), 0u);
}

// --- suppression ----------------------------------------------------------

TEST(LintSuppression, AllowOnPrecedingLineSuppresses) {
  const auto result = analyze_rule(
      "det-wallclock", {{"src/core/fixture.cpp", "suppressed_wallclock.cpp"}});
  // The finding is still produced and reported, but marked suppressed.
  ASSERT_EQ(count_rule(result, "det-wallclock"), 1u);
  EXPECT_TRUE(result.findings.front().suppressed);
  EXPECT_EQ(result.unsuppressed(), 0u);
}

TEST(LintSuppression, AllowForDifferentRuleDoesNotSuppress) {
  const std::string text =
      "// hetflow-lint: allow(det-banned-api)\n"
      "auto t = std::chrono::steady_clock::now();\n";
  auto project = lint::build_project(
      {lint::make_source("src/core/fixture.cpp", text)}, {});
  const auto result =
      lint::analyze(project, {"det-wallclock"}, lint::Baseline{});
  EXPECT_EQ(result.unsuppressed(), 1u);
}

TEST(LintSuppression, AllowStarAndAllowFileSuppress) {
  const std::string starred =
      "// hetflow-lint: allow(*)\n"
      "auto t = std::chrono::steady_clock::now();\n";
  auto star_project = lint::build_project(
      {lint::make_source("src/core/fixture.cpp", starred)}, {});
  EXPECT_EQ(lint::analyze(star_project, {"det-wallclock"}, lint::Baseline{})
                .unsuppressed(),
            0u);

  const std::string file_wide =
      "// hetflow-lint: allow-file(det-wallclock)\n"
      "auto a = std::chrono::steady_clock::now();\n"
      "auto b = std::chrono::system_clock::now();\n";
  auto file_project = lint::build_project(
      {lint::make_source("src/core/fixture.cpp", file_wide)}, {});
  const auto result =
      lint::analyze(file_project, {"det-wallclock"}, lint::Baseline{});
  EXPECT_EQ(count_rule(result, "det-wallclock"), 2u);
  EXPECT_EQ(result.unsuppressed(), 0u);
}

// --- baseline -------------------------------------------------------------

TEST(LintBaseline, RoundTripSuppressesAndSurvivesLineShifts) {
  const VirtualFile fixture{"src/core/fixture.cpp", "det_wallclock.cpp"};
  auto project = project_of({fixture});
  const auto fresh =
      lint::analyze(project, {"det-wallclock"}, lint::Baseline{});
  ASSERT_EQ(fresh.unsuppressed(), 1u);

  const std::string text = lint::Baseline::render(fresh.findings, project);
  const lint::Baseline baseline = lint::Baseline::parse(text);
  EXPECT_EQ(baseline.size(), 1u);
  EXPECT_EQ(
      lint::analyze(project, {"det-wallclock"}, baseline).unsuppressed(), 0u);

  // Entries key on the source-line text, not its number: shifting the
  // violation down by three lines must not invalidate the baseline.
  auto shifted = lint::build_project(
      {lint::make_source(fixture.virtual_path,
                         "\n\n\n" + read_fixture(fixture.fixture))},
      {});
  EXPECT_EQ(
      lint::analyze(shifted, {"det-wallclock"}, baseline).unsuppressed(), 0u);

  // Rewriting the flagged line is a new finding again.
  auto edited = lint::build_project(
      {lint::make_source(fixture.virtual_path,
                         "auto later = std::chrono::steady_clock::now();\n")},
      {});
  EXPECT_EQ(
      lint::analyze(edited, {"det-wallclock"}, baseline).unsuppressed(), 1u);
}

// --- analyzer surface -----------------------------------------------------

TEST(LintAnalyzer, UnknownRuleFilterThrows) {
  auto project =
      lint::build_project({lint::make_source("src/core/a.cpp", "int x;\n")}, {});
  EXPECT_THROW(lint::analyze(project, {"no-such-rule"}, lint::Baseline{}),
               hetflow::InvalidArgument);
}

TEST(LintAnalyzer, FamilyNameSelectsWholeFamily) {
  const auto result = analyze_rule(
      "determinism", {{"src/core/fixture.cpp", "det_banned_api.cpp"}});
  EXPECT_GE(result.unsuppressed(), 4u);
  EXPECT_EQ(count_rule(result, "hyg-include-guard"), 0u);
}

TEST(LintAnalyzer, JsonReportParsesAndCounts) {
  const auto result = analyze_rule(
      "det-wallclock", {{"src/core/fixture.cpp", "det_wallclock.cpp"}});
  const hetflow::util::Json doc =
      hetflow::util::Json::parse(lint::render_json(result));
  EXPECT_EQ(doc.at("unsuppressed").as_number(), 1.0);
  ASSERT_EQ(doc.at("findings").size(), 1u);
  EXPECT_EQ(doc.at("findings").as_array()[0].at("rule").as_string(),
            "det-wallclock");
}

}  // namespace
