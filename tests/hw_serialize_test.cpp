#include "hw/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "hw/presets.hpp"

namespace hetflow::hw {
namespace {

void expect_platforms_equal(const Platform& a, const Platform& b) {
  EXPECT_EQ(a.name(), b.name());
  ASSERT_EQ(a.memory_node_count(), b.memory_node_count());
  ASSERT_EQ(a.device_count(), b.device_count());
  ASSERT_EQ(a.links().size(), b.links().size());
  for (std::size_t i = 0; i < a.memory_node_count(); ++i) {
    EXPECT_EQ(a.memory_node(static_cast<MemoryNodeId>(i)).name(),
              b.memory_node(static_cast<MemoryNodeId>(i)).name());
    EXPECT_EQ(a.memory_node(static_cast<MemoryNodeId>(i)).capacity_bytes(),
              b.memory_node(static_cast<MemoryNodeId>(i)).capacity_bytes());
  }
  for (std::size_t i = 0; i < a.device_count(); ++i) {
    const Device& da = a.device(static_cast<DeviceId>(i));
    const Device& db = b.device(static_cast<DeviceId>(i));
    EXPECT_EQ(da.name(), db.name());
    EXPECT_EQ(da.type(), db.type());
    EXPECT_DOUBLE_EQ(da.peak_gflops(), db.peak_gflops());
    EXPECT_EQ(da.memory_node(), db.memory_node());
    EXPECT_DOUBLE_EQ(da.launch_overhead_s(), db.launch_overhead_s());
    ASSERT_EQ(da.dvfs_states().size(), db.dvfs_states().size());
    EXPECT_EQ(da.nominal_dvfs_index(), db.nominal_dvfs_index());
    for (std::size_t s = 0; s < da.dvfs_states().size(); ++s) {
      EXPECT_DOUBLE_EQ(da.dvfs_states()[s].frequency_ghz,
                       db.dvfs_states()[s].frequency_ghz);
      EXPECT_DOUBLE_EQ(da.dvfs_states()[s].busy_watts,
                       db.dvfs_states()[s].busy_watts);
    }
  }
  for (std::size_t i = 0; i < a.links().size(); ++i) {
    EXPECT_EQ(a.links()[i].src(), b.links()[i].src());
    EXPECT_EQ(a.links()[i].dst(), b.links()[i].dst());
    EXPECT_DOUBLE_EQ(a.links()[i].bandwidth_gbps(),
                     b.links()[i].bandwidth_gbps());
    EXPECT_DOUBLE_EQ(a.links()[i].latency_s(), b.links()[i].latency_s());
  }
}

class PresetRoundTrip : public ::testing::TestWithParam<int> {
 public:
  static Platform make(int which) {
    switch (which) {
      case 0:
        return make_cpu_only(4);
      case 1:
        return make_workstation();
      case 2:
        return make_hpc_node(4, 2, 1);
      case 3:
        return make_edge_node();
      default:
        return make_cluster(2, 2, 1);
    }
  }
};

TEST_P(PresetRoundTrip, JsonPreservesEverything) {
  const Platform original = make(GetParam());
  const Platform reparsed = platform_from_json(to_json(original));
  expect_platforms_equal(original, reparsed);
}

TEST_P(PresetRoundTrip, RoundTripPreservesRouting) {
  const Platform original = make(GetParam());
  const Platform reparsed = platform_from_json(to_json(original));
  for (MemoryNodeId s = 0; s < original.memory_node_count(); ++s) {
    for (MemoryNodeId d = 0; d < original.memory_node_count(); ++d) {
      EXPECT_DOUBLE_EQ(original.transfer_time_s(s, d, 1 << 20),
                       reparsed.transfer_time_s(s, d, 1 << 20));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Presets, PresetRoundTrip, ::testing::Range(0, 5));

TEST(PlatformJson, FileRoundTrip) {
  const Platform original = make_hpc_node(2, 1, 0);
  const std::string path = ::testing::TempDir() + "/hetflow_platform.json";
  save_platform(original, path);
  const Platform loaded = load_platform(path);
  expect_platforms_equal(original, loaded);
  std::remove(path.c_str());
}

TEST(PlatformJson, ParseFromHandWrittenJson) {
  const Platform p = platform_from_json(util::Json::parse(R"({
    "name": "custom",
    "memory_nodes": [
      {"name": "host", "capacity_bytes": 1073741824},
      {"name": "acc", "capacity_bytes": 268435456}
    ],
    "devices": [
      {"name": "c0", "type": "cpu", "peak_gflops": 10, "memory_node": 0},
      {"name": "f0", "type": "fpga", "peak_gflops": 100, "memory_node": 1,
       "launch_overhead_s": 5e-05,
       "dvfs": {"nominal": 0, "states": [
         {"frequency_ghz": 0.25, "busy_watts": 20, "idle_watts": 4}]}}
    ],
    "links": [
      {"src": 0, "dst": 1, "bandwidth_gbps": 8, "latency_s": 1e-06,
       "bidirectional": true}
    ]
  })"));
  EXPECT_EQ(p.name(), "custom");
  EXPECT_EQ(p.device_count(), 2u);
  EXPECT_EQ(p.device(1).type(), DeviceType::Fpga);
  EXPECT_DOUBLE_EQ(p.device(1).launch_overhead_s(), 5e-5);
  EXPECT_EQ(p.links().size(), 2u);  // bidirectional expanded
  EXPECT_TRUE(p.fully_connected());
}

TEST(PlatformJson, MissingFieldsThrow) {
  EXPECT_THROW(platform_from_json(util::Json::parse("{}")), ParseError);
  EXPECT_THROW(platform_from_json(util::Json::parse(
                   R"({"memory_nodes": [], "devices": []})")),
               InvalidArgument);  // no nodes/devices
  EXPECT_THROW(
      platform_from_json(util::Json::parse(
          R"({"memory_nodes": [{"name": "m", "capacity_bytes": 1024}],
              "devices": [{"name": "d", "type": "warp-core",
                           "peak_gflops": 1, "memory_node": 0}]})")),
      ParseError);  // unknown device type
}

}  // namespace
}  // namespace hetflow::hw
