#include "sched/cpop.hpp"

#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "helpers.hpp"
#include "sched/registry.hpp"
#include "util/strings.hpp"
#include "workflow/generators.hpp"
#include "workflow/linalg.hpp"
#include "workflow/workflow.hpp"

namespace hetflow::sched {
namespace {

using core::Runtime;
using core::TaskId;
using hetflow::testing::cpu_gpu_codelet;
using hetflow::testing::cpu_only_codelet;

TEST(Cpop, SelectsSinglePathNotAllTiedBranches) {
  // 16 identical independent chains: the critical path must be ONE chain
  // (3 tasks), not all 48 tied tasks.
  const hw::Platform p = hw::make_cpu_only(4);
  auto scheduler = std::make_unique<CpopScheduler>();
  const CpopScheduler* cpop = scheduler.get();
  Runtime rt(p, std::move(scheduler));
  for (int chain = 0; chain < 16; ++chain) {
    const auto d = rt.register_data(util::format("d%d", chain), 1024);
    for (int s = 0; s < 3; ++s) {
      rt.submit(util::format("c%d_s%d", chain, s), cpu_only_codelet(), 1e9,
                {{d, data::AccessMode::ReadWrite}});
    }
  }
  rt.wait_all();
  EXPECT_EQ(cpop->critical_path_length(), 3u);
  EXPECT_EQ(rt.stats().tasks_completed, 48u);
  // Parallel chains must actually spread over the cores.
  for (const auto& device : rt.stats().devices) {
    EXPECT_GT(device.tasks_completed, 0u);
  }
}

TEST(Cpop, CriticalPathRunsOnOneDevice) {
  const hw::Platform p = hw::make_workstation();
  auto scheduler = std::make_unique<CpopScheduler>();
  const CpopScheduler* cpop = scheduler.get();
  Runtime rt(p, std::move(scheduler));
  // One heavy GPU-friendly chain + light noise.
  const auto d = rt.register_data("chain", 1024);
  std::vector<TaskId> chain;
  for (int s = 0; s < 5; ++s) {
    chain.push_back(rt.submit(util::format("cp%d", s), cpu_gpu_codelet(),
                              20e9, {{d, data::AccessMode::ReadWrite}}));
  }
  for (int i = 0; i < 6; ++i) {
    rt.submit(util::format("noise%d", i), cpu_only_codelet(), 1e9, {});
  }
  rt.wait_all();
  const hw::DeviceId cp_device = cpop->critical_path_device();
  for (TaskId id : chain) {
    EXPECT_EQ(rt.task(id).device(), cp_device);
  }
  // The heavy chain's best processor is the GPU.
  EXPECT_EQ(p.device(cp_device).type(), hw::DeviceType::Gpu);
}

TEST(Cpop, CompetitiveWithHeftOnCholesky) {
  const hw::Platform p = hw::make_hpc_node(4, 2, 0);
  const auto lib = workflow::CodeletLibrary::standard();
  const workflow::Workflow wf = workflow::make_cholesky(10, 2048);
  const double cpop_ms =
      workflow::run_workflow(p, "cpop", wf, lib).makespan_s;
  const double heft_ms =
      workflow::run_workflow(p, "heft", wf, lib).makespan_s;
  const double random_ms =
      workflow::run_workflow(p, "random", wf, lib).makespan_s;
  EXPECT_LT(cpop_ms, random_ms);       // sane
  EXPECT_LT(cpop_ms, heft_ms * 1.5);   // in HEFT's ballpark
}

TEST(Cpop, FallsBackWhenNoDeviceRunsWholePath) {
  // Alternate CPU-only and GPU-only stages along one chain: no single
  // device can host the whole critical path; CPOP must still schedule.
  const hw::Platform p = hw::make_workstation();
  Runtime rt(p, std::make_unique<CpopScheduler>());
  const auto cpu_only = core::Codelet::make("c", {{hw::DeviceType::Cpu, 0.5}});
  const auto gpu_only = core::Codelet::make("g", {{hw::DeviceType::Gpu, 0.8}});
  const auto d = rt.register_data("chain", 1024);
  for (int s = 0; s < 6; ++s) {
    rt.submit(util::format("s%d", s), (s % 2 == 0) ? cpu_only : gpu_only,
              2e9, {{d, data::AccessMode::ReadWrite}});
  }
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, 6u);
}

TEST(Cpop, DeterministicReplay) {
  const hw::Platform p = hw::make_hpc_node(4, 2, 0);
  const auto lib = workflow::CodeletLibrary::standard();
  const workflow::Workflow wf = workflow::make_montage(20);
  const auto a = workflow::run_workflow(p, "cpop", wf, lib);
  const auto b = workflow::run_workflow(p, "cpop", wf, lib);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.transfers.bytes_moved, b.transfers.bytes_moved);
}

TEST(Cpop, SecondWaveReplans) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, std::make_unique<CpopScheduler>());
  rt.submit("a", cpu_only_codelet(), 1e9, {});
  rt.wait_all();
  rt.submit("b", cpu_only_codelet(), 1e9, {});
  rt.wait_all();
  EXPECT_EQ(rt.stats().tasks_completed, 2u);
}

}  // namespace
}  // namespace hetflow::sched
