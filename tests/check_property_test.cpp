// hetflow-verify soundness sweep: every built-in scheduler, run over
// random and canonical DAGs with RuntimeOptions::validate on, must
// produce a schedule the race detector and invariant checkers accept.
// This is the "no false positives on real runs" half of the detector's
// contract (tests/check_race_test.cpp covers "no false negatives").
#include <gtest/gtest.h>

#include <tuple>

#include "check/audit.hpp"
#include "check/dag.hpp"
#include "core/runtime.hpp"
#include "hw/presets.hpp"
#include "sched/registry.hpp"
#include "workflow/generators.hpp"
#include "workflow/linalg.hpp"
#include "workflow/workflow.hpp"

namespace hetflow::check {
namespace {

using Combo = std::tuple<std::string, std::uint64_t>;  // (policy, seed)

class ValidateSweep : public ::testing::TestWithParam<Combo> {};

TEST_P(ValidateSweep, RandomLayeredDagValidatesClean) {
  const auto& [policy, seed] = GetParam();
  // Vary shape with the seed: width/depth/ccr sweep the interesting
  // regimes (communication-bound vs compute-bound, wide vs deep).
  const std::size_t layers = 3 + seed % 4;
  const std::size_t width = 2 + (seed / 2) % 5;
  const double ccr = 0.25 * static_cast<double>(1 + seed % 8);
  const workflow::Workflow wf =
      workflow::make_random_layered(layers, width, ccr, seed);
  EXPECT_TRUE(check_workflow(wf).empty());

  const hw::Platform platform = hw::make_hpc_node(4, 2, 1);
  core::RuntimeOptions options;
  options.validate = true;
  options.enable_prefetch = (seed % 2) == 1;  // exercise both data paths
  core::Runtime rt(platform, sched::make_scheduler(policy), options);
  workflow::submit_workflow(rt, wf, workflow::CodeletLibrary::standard());
  // wait_all() runs the full audit (races, trace, directory, event
  // queue) and throws ValidationError with the report on any violation.
  EXPECT_NO_THROW(rt.wait_all());
  EXPECT_EQ(rt.stats().tasks_completed, wf.task_count());
}

std::vector<Combo> all_combos() {
  std::vector<Combo> combos;
  std::uint64_t seed = 1;
  for (const std::string& policy : sched::scheduler_names()) {
    // Two random DAGs per policy keeps the sweep broad but fast.
    combos.emplace_back(policy, seed++);
    combos.emplace_back(policy, seed++);
  }
  return combos;
}

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  auto [policy, seed] = info.param;
  for (char& c : policy) {
    if (c == '-') {
      c = '_';
    }
  }
  return policy + "_seed" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ValidateSweep,
                         ::testing::ValuesIn(all_combos()), combo_name);

TEST(ValidateCanonical, PegasusShapesValidateCleanUnderHeft) {
  // The canonical published shapes through one representative policy.
  const auto lib = workflow::CodeletLibrary::standard();
  const hw::Platform platform = hw::make_workstation();
  const workflow::Workflow shapes[] = {
      workflow::make_montage(8),
      workflow::make_epigenomics(2, 3),
      workflow::make_cybershake(2, 4),
      workflow::make_ligo(6, 3),
      workflow::make_cholesky(4, 1024),
  };
  for (const workflow::Workflow& wf : shapes) {
    core::RuntimeOptions options;
    options.validate = true;
    core::Runtime rt(platform, sched::make_scheduler("heft"), options);
    workflow::submit_workflow(rt, wf, lib);
    EXPECT_NO_THROW(rt.wait_all()) << wf.name();
  }
}

}  // namespace
}  // namespace hetflow::check
