#include "util/interner.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hetflow::util {
namespace {

TEST(StringInterner, DeduplicatesAndReturnsStableIds) {
  StringInterner interner;
  const NameId a = interner.intern("alpha");
  const NameId b = interner.intern("beta");
  const NameId a2 = interner.intern("alpha");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.view(a), "alpha");
  EXPECT_EQ(interner.view(b), "beta");
}

TEST(StringInterner, InternViewReturnsArenaBackedView) {
  StringInterner interner;
  std::string transient = "task_name";
  const std::string_view view = interner.intern_view(transient);
  // Mutate and destroy the caller's string: the view must be backed by
  // the arena, not the argument.
  transient.assign(transient.size(), 'x');
  transient.clear();
  EXPECT_EQ(view, "task_name");
  EXPECT_EQ(interner.intern_view("task_name").data(), view.data());
}

TEST(StringInterner, ViewsSurviveArenaGrowth) {
  // Force multiple 64 KiB chunks and keep every earlier view valid —
  // the property Task/DataHandle/Span lifetimes depend on.
  StringInterner interner;
  std::vector<std::string_view> views;
  std::vector<std::string> expected;
  for (int i = 0; i < 5000; ++i) {
    expected.push_back("name_" + std::to_string(i) +
                       std::string(32, static_cast<char>('a' + i % 26)));
    views.push_back(interner.intern_view(expected.back()));
  }
  EXPECT_GT(interner.arena_bytes(), 64u * 1024u);
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i], expected[i]);
  }
  EXPECT_EQ(interner.size(), 5000u);
}

TEST(StringInterner, HandlesEmptyAndOversizedStrings) {
  StringInterner interner;
  const NameId empty = interner.intern("");
  EXPECT_EQ(interner.view(empty), "");
  // A single string larger than the chunk size gets its own allocation.
  const std::string big(200 * 1024, 'z');
  const std::string_view view = interner.intern_view(big);
  EXPECT_EQ(view.size(), big.size());
  EXPECT_EQ(view, big);
  EXPECT_EQ(interner.intern(big), interner.intern(big));
  // Subsequent small strings still intern fine after the jumbo chunk.
  EXPECT_EQ(interner.intern_view("after"), "after");
}

TEST(StringInterner, IdsAreDense) {
  StringInterner interner;
  for (NameId i = 0; i < 100; ++i) {
    EXPECT_EQ(interner.intern("s" + std::to_string(i)), i);
  }
}

}  // namespace
}  // namespace hetflow::util
