#include "core/runtime.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "util/strings.hpp"
#include "sched/eager.hpp"
#include "sched/mct.hpp"

namespace hetflow::core {
namespace {

using hetflow::testing::cpu_gpu_codelet;
using hetflow::testing::cpu_only_codelet;

TEST(Runtime, RequiresScheduler) {
  const hw::Platform p = hw::make_cpu_only(2);
  EXPECT_THROW(Runtime(p, nullptr), util::InternalError);
}

TEST(Runtime, SingleTaskExecutes) {
  const hw::Platform p = hw::make_cpu_only(1);
  Runtime rt(p, std::make_unique<sched::EagerScheduler>());
  const TaskId id = rt.submit("t0", cpu_only_codelet(), 6e9, {});
  rt.wait_all();
  const Task& t = rt.task(id);
  EXPECT_EQ(t.state(), TaskState::Completed);
  // 6e9 flops / (12 GFLOPS * 0.5) = 1.0 s + 1 us launch overhead.
  EXPECT_NEAR(rt.stats().makespan_s, 1.0, 1e-4);
  EXPECT_EQ(rt.stats().tasks_completed, 1u);
}

TEST(Runtime, ZeroFlopsTaskCompletesInstantly) {
  const hw::Platform p = hw::make_cpu_only(1);
  Runtime rt(p, std::make_unique<sched::EagerScheduler>());
  rt.submit("noop", cpu_only_codelet(), 0.0, {});
  rt.wait_all();
  EXPECT_LT(rt.stats().makespan_s, 1e-3);  // only launch overhead
}

TEST(Runtime, UnrunnableCodeletRejectedAtSubmit) {
  const hw::Platform p = hw::make_cpu_only(2);  // no GPU
  Runtime rt(p, std::make_unique<sched::EagerScheduler>());
  const CodeletPtr gpu_only =
      Codelet::make("gpu", {{hw::DeviceType::Gpu, 0.9}});
  EXPECT_THROW(rt.submit("t", gpu_only, 1e9, {}), util::InvalidArgument);
}

TEST(Runtime, UnregisteredDataRejected) {
  const hw::Platform p = hw::make_cpu_only(1);
  Runtime rt(p, std::make_unique<sched::EagerScheduler>());
  EXPECT_THROW(
      rt.submit("t", cpu_only_codelet(), 1e9, {{5, data::AccessMode::Read}}),
      util::InternalError);
}

TEST(Runtime, IndependentTasksRunInParallel) {
  const hw::Platform p = hw::make_cpu_only(4);
  Runtime rt(p, std::make_unique<sched::MctScheduler>());
  for (int i = 0; i < 4; ++i) {
    rt.submit(util::format("t%d", i), cpu_only_codelet(), 6e9, {});
  }
  rt.wait_all();
  // 4 x 1 s of work on 4 cores: makespan ~1 s, not ~4 s.
  EXPECT_NEAR(rt.stats().makespan_s, 1.0, 0.01);
  EXPECT_EQ(rt.stats().tasks_completed, 4u);
}

TEST(Runtime, GpuOffloadBeatsCpuForDenseWork) {
  const hw::Platform p = hw::make_workstation();
  Runtime rt(p, std::make_unique<sched::MctScheduler>());
  rt.submit("dense", cpu_gpu_codelet(0.5, 0.8), 32e9, {});
  rt.wait_all();
  // GPU: 32e9/(400e9*0.8) = 0.1 s. CPU would need 6.4 s.
  EXPECT_LT(rt.stats().makespan_s, 0.2);
  const auto gpus = p.devices_of_type(hw::DeviceType::Gpu);
  EXPECT_EQ(rt.stats().devices[gpus[0]].tasks_completed, 1u);
}

TEST(Runtime, MakespanRespectsChainSerialization) {
  const hw::Platform p = hw::make_cpu_only(4);
  Runtime rt(p, std::make_unique<sched::MctScheduler>());
  const auto d = rt.register_data("acc", 1024);
  for (int i = 0; i < 3; ++i) {
    rt.submit(util::format("link%d", i), cpu_only_codelet(), 6e9,
              {{d, data::AccessMode::ReadWrite}});
  }
  rt.wait_all();
  // RW chain serializes: ~3 s even with 4 cores.
  EXPECT_NEAR(rt.stats().makespan_s, 3.0, 0.01);
}

TEST(Runtime, StatsAccounting) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, std::make_unique<sched::MctScheduler>());
  rt.submit("a", cpu_only_codelet(), 6e9, {});
  rt.submit("b", cpu_only_codelet(), 6e9, {});
  rt.wait_all();
  const RunStats& stats = rt.stats();
  EXPECT_EQ(stats.tasks_completed, 2u);
  EXPECT_EQ(stats.failed_attempts, 0u);
  EXPECT_NEAR(stats.total_busy_seconds(), 2.0, 0.01);
  EXPECT_GT(stats.busy_energy_j(), 0.0);
  EXPECT_GT(stats.idle_energy_j(), 0.0);
  EXPECT_GT(stats.total_energy_j(), stats.busy_energy_j());
  EXPECT_NEAR(stats.mean_utilization(), 1.0, 0.01);
  EXPECT_GT(stats.edp(), 0.0);
  const std::string summary = stats.summary(p);
  EXPECT_NE(summary.find("makespan"), std::string::npos);
  EXPECT_NE(summary.find("cpu0"), std::string::npos);
}

TEST(Runtime, ZeroMakespanSummaryRendersWithoutInfNan) {
  // An empty/instant run has makespan 0 — the per-device util% column
  // must degrade to 0.0 instead of emitting inf/nan.
  const hw::Platform p = hw::make_cpu_only(2);
  RunStats stats;
  stats.devices.resize(p.device_count());
  for (hw::DeviceId id = 0; id < p.device_count(); ++id) {
    stats.devices[id].device = id;
  }
  stats.devices[0].busy_seconds = 1.0;  // degenerate: busy but no makespan
  EXPECT_DOUBLE_EQ(stats.mean_utilization(), 0.0);
  const std::string summary = stats.summary(p);
  EXPECT_NE(summary.find("makespan"), std::string::npos);
  EXPECT_EQ(summary.find("inf"), std::string::npos);
  EXPECT_EQ(summary.find("nan"), std::string::npos);
}

TEST(Runtime, TimesAreOrdered) {
  const hw::Platform p = hw::make_cpu_only(1);
  Runtime rt(p, std::make_unique<sched::EagerScheduler>());
  const auto d = rt.register_data("x", 1024);
  const TaskId a = rt.submit("a", cpu_only_codelet(), 1e9,
                             {{d, data::AccessMode::Write}});
  const TaskId b = rt.submit("b", cpu_only_codelet(), 1e9,
                             {{d, data::AccessMode::Read}});
  rt.wait_all();
  const TaskTimes& ta = rt.task(a).times();
  const TaskTimes& tb = rt.task(b).times();
  EXPECT_LE(ta.submitted, ta.ready);
  EXPECT_LE(ta.ready, ta.started);
  EXPECT_LT(ta.started, ta.completed);
  // b could only become ready once a finished.
  EXPECT_GE(tb.ready, ta.completed - 1e-12);
}

TEST(Runtime, TraceRecordsExecutions) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, std::make_unique<sched::MctScheduler>());
  rt.submit("a", cpu_only_codelet(), 1e9, {});
  rt.submit("b", cpu_only_codelet(), 1e9, {});
  rt.wait_all();
  EXPECT_EQ(rt.tracer().spans().size(), 2u);
  hetflow::testing::expect_no_device_overlap(rt.tracer(), p);
}

TEST(Runtime, TraceCanBeDisabled) {
  const hw::Platform p = hw::make_cpu_only(1);
  RuntimeOptions options;
  options.record_trace = false;
  Runtime rt(p, std::make_unique<sched::EagerScheduler>(), options);
  rt.submit("a", cpu_only_codelet(), 1e9, {});
  rt.wait_all();
  EXPECT_TRUE(rt.tracer().spans().empty());
}

TEST(Runtime, NoiseIsDeterministicPerSeed) {
  const hw::Platform p = hw::make_cpu_only(2);
  RuntimeOptions options;
  options.noise_cv = 0.3;
  options.seed = 99;
  double first_makespan = 0.0;
  for (int run = 0; run < 2; ++run) {
    Runtime rt(p, std::make_unique<sched::MctScheduler>(), options);
    for (int i = 0; i < 6; ++i) {
      rt.submit(util::format("t%d", i), cpu_only_codelet(), 2e9, {});
    }
    rt.wait_all();
    if (run == 0) {
      first_makespan = rt.stats().makespan_s;
    } else {
      EXPECT_DOUBLE_EQ(rt.stats().makespan_s, first_makespan);
    }
  }
  // A different seed gives a different makespan.
  options.seed = 100;
  Runtime rt(p, std::make_unique<sched::MctScheduler>(), options);
  for (int i = 0; i < 6; ++i) {
    rt.submit(util::format("t%d", i), cpu_only_codelet(), 2e9, {});
  }
  rt.wait_all();
  EXPECT_NE(rt.stats().makespan_s, first_makespan);
}

TEST(Runtime, NoisePreservesMeanRoughly) {
  const hw::Platform p = hw::make_cpu_only(1);
  RuntimeOptions options;
  options.noise_cv = 0.2;
  Runtime rt(p, std::make_unique<sched::EagerScheduler>(), options);
  for (int i = 0; i < 200; ++i) {
    rt.submit(util::format("t%d", i), cpu_only_codelet(), 6e9, {});
  }
  rt.wait_all();
  // 200 x ~1 s serialized on one core.
  EXPECT_NEAR(rt.stats().makespan_s, 200.0, 10.0);
}

TEST(Runtime, HistoryModelCalibratesOverRun) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, std::make_unique<sched::MctScheduler>());
  const CodeletPtr codelet = cpu_only_codelet();
  for (int i = 0; i < 5; ++i) {
    rt.submit(util::format("t%d", i), codelet, 1e9, {});
  }
  rt.wait_all();
  EXPECT_TRUE(rt.history().calibrated(codelet->id(), hw::DeviceType::Cpu));
}

TEST(Runtime, HistoryModelCanBeDisabled) {
  const hw::Platform p = hw::make_cpu_only(2);
  RuntimeOptions options;
  options.use_history_model = false;
  Runtime rt(p, std::make_unique<sched::MctScheduler>(), options);
  const CodeletPtr codelet = cpu_only_codelet();
  for (int i = 0; i < 5; ++i) {
    rt.submit(util::format("t%d", i), codelet, 1e9, {});
  }
  rt.wait_all();
  EXPECT_FALSE(rt.history().calibrated(codelet->id(), hw::DeviceType::Cpu));
}

TEST(Runtime, MultipleWavesAccumulate) {
  const hw::Platform p = hw::make_cpu_only(2);
  Runtime rt(p, std::make_unique<sched::MctScheduler>());
  rt.submit("w1", cpu_only_codelet(), 6e9, {});
  const double first = rt.wait_all();
  rt.submit("w2", cpu_only_codelet(), 6e9, {});
  const double second = rt.wait_all();
  EXPECT_GT(second, first);
  EXPECT_EQ(rt.stats().tasks_completed, 2u);
}

TEST(Runtime, WaitAllOnEmptyRuntimeIsNoop) {
  const hw::Platform p = hw::make_cpu_only(1);
  Runtime rt(p, std::make_unique<sched::EagerScheduler>());
  EXPECT_DOUBLE_EQ(rt.wait_all(), 0.0);
  EXPECT_EQ(rt.stats().tasks_completed, 0u);
}

TEST(Runtime, TaskAccessorBounds) {
  const hw::Platform p = hw::make_cpu_only(1);
  Runtime rt(p, std::make_unique<sched::EagerScheduler>());
  EXPECT_THROW(rt.task(0), util::InternalError);
}

TEST(Runtime, PrioritySubmitStoresPriority) {
  const hw::Platform p = hw::make_cpu_only(1);
  Runtime rt(p, std::make_unique<sched::EagerScheduler>());
  const TaskId id = rt.submit("p", cpu_only_codelet(), 1e9, {}, 7.5);
  EXPECT_DOUBLE_EQ(rt.task(id).priority(), 7.5);
}

TEST(Runtime, TransfersAccountedInStats) {
  const hw::Platform p = hw::make_workstation();
  Runtime rt(p, std::make_unique<sched::MctScheduler>());
  const auto d = rt.register_data("big", 64ull << 20);  // home = host
  // Force GPU execution: GPU-only codelet reading host-resident data.
  const CodeletPtr gpu_only =
      Codelet::make("gpu", {{hw::DeviceType::Gpu, 0.9}});
  rt.submit("t", gpu_only, 1e9, {{d, data::AccessMode::Read}});
  rt.wait_all();
  EXPECT_EQ(rt.stats().transfers.transfer_count, 1u);
  EXPECT_EQ(rt.stats().transfers.bytes_moved, 64ull << 20);
  EXPECT_EQ(rt.stats().data.fetches, 1u);
}

}  // namespace
}  // namespace hetflow::core
