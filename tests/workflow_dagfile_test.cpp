#include "workflow/dagfile.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "workflow/generators.hpp"
#include "workflow/linalg.hpp"

namespace hetflow::workflow {
namespace {

TEST(Dagfile, SerializeContainsRecords) {
  Workflow w("tiny");
  const auto in = w.add_file("input.dat", 1024);
  const auto out = w.add_file("output.dat", 2048);
  w.add_task("t0", "compute", 5e8, {in}, {out});
  const std::string text = to_dagfile(w);
  EXPECT_NE(text.find("# hetflow dag v1"), std::string::npos);
  EXPECT_NE(text.find("workflow tiny"), std::string::npos);
  EXPECT_NE(text.find("file input.dat 1024"), std::string::npos);
  EXPECT_NE(text.find("task t0 kind=compute"), std::string::npos);
  EXPECT_NE(text.find("in=input.dat"), std::string::npos);
  EXPECT_NE(text.find("out=output.dat"), std::string::npos);
}

TEST(Dagfile, ParseMinimal) {
  const Workflow w = parse_dagfile(R"(
# comment
workflow demo
file a.dat 1Ki
file b.dat 2048
task t kind=gemm flops=2G in=a.dat out=b.dat
)");
  EXPECT_EQ(w.name(), "demo");
  EXPECT_EQ(w.file_count(), 2u);
  EXPECT_EQ(w.task_count(), 1u);
  EXPECT_EQ(w.files()[0].bytes, 1024u);
  EXPECT_DOUBLE_EQ(w.tasks()[0].flops, 2e9);
  EXPECT_EQ(w.tasks()[0].kind, "gemm");
}

TEST(Dagfile, ImplicitFileDeclaration) {
  const Workflow w = parse_dagfile(
      "task t kind=compute flops=1 out=implicit.dat\n");
  EXPECT_EQ(w.file_count(), 1u);
  EXPECT_EQ(w.files()[0].bytes, 0u);
  EXPECT_EQ(w.files()[0].name, "implicit.dat");
}

TEST(Dagfile, TaskWithoutFiles) {
  const Workflow w = parse_dagfile("task solo kind=io flops=5\n");
  EXPECT_EQ(w.task_count(), 1u);
  EXPECT_TRUE(w.tasks()[0].inputs.empty());
  EXPECT_TRUE(w.tasks()[0].outputs.empty());
}

TEST(Dagfile, ParseErrorsCarryLineNumbers) {
  const auto expect_error_with = [](const std::string& text,
                                    const std::string& needle) {
    try {
      parse_dagfile(text);
      FAIL() << "expected ParseError for: " << text;
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error_with("bogus record\n", "line 1");
  expect_error_with("task t kind=k\n", "flops");
  expect_error_with("task t flops=1\n", "kind");
  expect_error_with("file x\n", "expected");
  expect_error_with("file x 10\nfile x 20\n", "already declared");
  expect_error_with("task t kind=k flops=1 bad\n", "malformed attribute");
  expect_error_with("task t kind=k flops=1 color=red\n", "unknown attribute");
  expect_error_with("task t kind=k flops=abc\n", "not a number");
  expect_error_with("workflow a\nworkflow b\n", "duplicate");
  expect_error_with("file x 1\nworkflow late\n", "must precede");
  expect_error_with("task t kind=k flops=1 in=a,,b\n", "empty file name");
}

TEST(Dagfile, CycleRejectedOnParse) {
  EXPECT_THROW(parse_dagfile(R"(
task a kind=k flops=1 in=f2 out=f1
task b kind=k flops=1 in=f1 out=f2
)"),
               util::InvalidArgument);
}

class DagfileRoundTrip : public ::testing::TestWithParam<int> {
 public:
  static Workflow make(int which) {
    switch (which) {
      case 0:
        return make_montage(8);
      case 1:
        return make_epigenomics(2, 3);
      case 2:
        return make_cybershake(2, 4);
      case 3:
        return make_ligo(6, 2);
      case 4:
        return make_cholesky(4, 512);
      case 5:
        return make_random_layered(4, 5, 1.0, 3);
      default:
        return make_wavefront(3);
    }
  }
};

TEST_P(DagfileRoundTrip, PreservesStructure) {
  const Workflow original = make(GetParam());
  const Workflow reparsed = parse_dagfile(to_dagfile(original));
  EXPECT_EQ(reparsed.name(), original.name());
  ASSERT_EQ(reparsed.file_count(), original.file_count());
  ASSERT_EQ(reparsed.task_count(), original.task_count());
  for (std::size_t f = 0; f < original.file_count(); ++f) {
    EXPECT_EQ(reparsed.files()[f].name, original.files()[f].name);
    EXPECT_EQ(reparsed.files()[f].bytes, original.files()[f].bytes);
  }
  for (std::size_t t = 0; t < original.task_count(); ++t) {
    EXPECT_EQ(reparsed.tasks()[t].name, original.tasks()[t].name);
    EXPECT_EQ(reparsed.tasks()[t].kind, original.tasks()[t].kind);
    EXPECT_DOUBLE_EQ(reparsed.tasks()[t].flops, original.tasks()[t].flops);
    EXPECT_EQ(reparsed.tasks()[t].inputs, original.tasks()[t].inputs);
    EXPECT_EQ(reparsed.tasks()[t].outputs, original.tasks()[t].outputs);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, DagfileRoundTrip,
                         ::testing::Range(0, 7));

TEST(Dagfile, FileRoundTrip) {
  const Workflow original = make_montage(6);
  const std::string path = ::testing::TempDir() + "/hetflow_test.dag";
  save_dagfile(original, path);
  const Workflow loaded = load_dagfile(path);
  EXPECT_EQ(loaded.task_count(), original.task_count());
  EXPECT_EQ(loaded.name(), original.name());
  std::remove(path.c_str());
}

TEST(Dagfile, MissingFileThrows) {
  EXPECT_THROW(load_dagfile("/nonexistent/path/x.dag"), util::Error);
}

}  // namespace
}  // namespace hetflow::workflow
